#!/usr/bin/env bash
# Workspace lint gates that rustc/clippy don't cover. See ci/README.md.
#
# Gate 1: no `.unwrap()` in non-test code under crates/faultinj/src.
#         Campaign tooling must surface failures as typed errors
#         (ShardError & friends), not panics — a panicking shard loses
#         its checkpoint guarantee.
# Gate 2: no `Instant::now` outside the files in ci/instant_allowlist.txt.
#         Wall-clock reads belong to obs::profile's Wall mode and the
#         harness timing layer; anywhere else they threaten the
#         bit-identical merge invariant.
# Gate 3: no `&mut SensorFrame` outside the sensor-fault injection hook.
#         The frame between World::sense_into and the driver is mutated
#         in exactly one sanctioned place (runtime::inject, applied by
#         runtime::simloop); a second mutation site would bypass the
#         fault-onset bookkeeping and break seed-pure realizations.
# Gate 4: no time sources in the flight recorder. Flight records and
#         incident artifacts are part of the bit-identical merge surface;
#         a single `Instant::now` / `SystemTime` / chrono timestamp in
#         obs::flight or runtime::flight would make recordings differ
#         across machines and break the exactly-once incident merge.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- Gate 1: unwrap() in faultinj non-test code -------------------------
# awk stops scanning each file at its first #[cfg(test)] marker, so test
# modules (which unwrap freely) don't trip the gate.
unwrap_hits=$(awk '
    FNR == 1 { in_tests = 0 }
    /#\[cfg\(test\)\]/ { in_tests = 1 }
    !in_tests && /\.unwrap\(\)/ { print FILENAME ":" FNR ": " $0 }
' crates/faultinj/src/*.rs)
if [[ -n "$unwrap_hits" ]]; then
    echo "lint: .unwrap() in non-test faultinj code (use typed errors):" >&2
    echo "$unwrap_hits" >&2
    fail=1
fi

# --- Gate 2: Instant::now outside the allowlist -------------------------
allowed=()
while IFS= read -r line; do
    line="${line%%#*}"
    line="$(echo "$line" | tr -d '[:space:]')"
    [[ -n "$line" ]] && allowed+=("$line")
done < ci/instant_allowlist.txt

instant_hits=""
while IFS= read -r hit; do
    file="${hit%%:*}"
    ok=0
    for prefix in "${allowed[@]}"; do
        if [[ "$file" == "$prefix" || "$file" == "$prefix"* && "$prefix" == */ ]]; then
            ok=1
            break
        fi
    done
    if [[ $ok -eq 0 ]]; then
        instant_hits+="$hit"$'\n'
    fi
done < <(grep -rn 'Instant::now' crates --include='*.rs' || true)
if [[ -n "$instant_hits" ]]; then
    echo "lint: Instant::now outside ci/instant_allowlist.txt (wall-clock" >&2
    echo "reads belong to obs::profile Wall mode / harness timing only):" >&2
    printf '%s' "$instant_hits" >&2
    fail=1
fi

# --- Gate 3: SensorFrame mutation outside the injection hook ------------
# The producer (simworld fills frames it owns) and the one sanctioned
# injection site are allowed; everything else must take &SensorFrame.
frame_hits=$(grep -rn '&mut SensorFrame' crates --include='*.rs' \
    | grep -v '^crates/simworld/' \
    | grep -v '^crates/runtime/src/inject.rs:' \
    | grep -v '^crates/runtime/src/simloop.rs:' || true)
if [[ -n "$frame_hits" ]]; then
    echo "lint: &mut SensorFrame outside the sanctioned injection hook" >&2
    echo "(sensor faults go through runtime::inject::FrameInjector only):" >&2
    echo "$frame_hits" >&2
    fail=1
fi

# --- Gate 4: time sources in the flight recorder ------------------------
# Stricter than Gate 2: the recorder files may not name *any* wall-clock
# or system-time API, allowlist or not — recordings must be pure
# functions of the seeds.
flight_hits=$(grep -rnE 'Instant::now|SystemTime|chrono|time::OffsetDateTime' \
    crates/obs/src/flight.rs crates/runtime/src/flight.rs || true)
if [[ -n "$flight_hits" ]]; then
    echo "lint: time source in the flight recorder (records must be" >&2
    echo "seed-pure; timestamps break the bit-identical incident merge):" >&2
    echo "$flight_hits" >&2
    fail=1
fi

if [[ $fail -ne 0 ]]; then
    exit 1
fi
echo "lint: ok (no stray unwrap(), no unlisted Instant::now, no rogue SensorFrame mutation, no clock in the flight recorder)"
