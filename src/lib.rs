//! # diverseav-suite
//!
//! Umbrella crate of the DiverseAV reproduction: re-exports every
//! workspace crate under one roof and hosts the cross-crate integration
//! tests (`tests/`) and runnable examples (`examples/`).
//!
//! Start with [`diverseav`] (the paper's contribution) and
//! [`diverseav_simworld`] (the world it drives in); see the repository
//! README for the experiment harness.

pub use diverseav;
pub use diverseav_agent as agent;
pub use diverseav_analysis as analysis;
pub use diverseav_fabric as fabric;
pub use diverseav_faultinj as faultinj;
pub use diverseav_simworld as simworld;
