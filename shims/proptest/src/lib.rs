//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses: the `proptest!` macro (including an optional
//! `#![proptest_config(...)]` header), range/tuple/`collection::vec`/
//! `any::<T>()` strategies, and the `prop_assert*` macros.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors this shim via a path dependency. Unlike real proptest there is
//! no shrinking and no persistence of failing cases: each test runs a
//! fixed number of deterministically seeded cases (default 32, override
//! with `PROPTEST_CASES`), and a failing case panics with the case index
//! and the sampled inputs' debug representation where available.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! Value-generation strategies (sampling only — no shrinking).

    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T> Strategy for Range<T>
    where
        T: Copy,
        Range<T>: SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Copy,
        RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// Types with a default "anything" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Sample an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Arbitrary finite f32: random bits with NaN/inf exponents
            // remapped (keeps bit-level tests meaningful, avoids NaN
            // equality surprises).
            let mut bits: u32 = rng.gen();
            if bits & 0x7F80_0000 == 0x7F80_0000 {
                bits &= !0x4000_0000;
            }
            f32::from_bits(bits)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            let mut bits: u64 = rng.gen();
            if bits & 0x7FF0_0000_0000_0000 == 0x7FF0_0000_0000_0000 {
                bits &= !0x4000_0000_0000_0000;
            }
            f64::from_bits(bits)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` strategy constructor.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Vector length specification.
    #[derive(Copy, Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    //! Case orchestration for the `proptest!` macro.

    /// A failed property assertion (carried as `Err` inside a case).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-test configuration (mirrors `ProptestConfig`'s used fields).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Accepted-but-ignored knob kept for struct-update compatibility.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(32);
            ProptestConfig { cases, max_shrink_iters: 0 }
        }
    }
}

pub mod prelude {
    //! The glob-imported surface (`use proptest::prelude::*`).

    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic per-(test, case) generator: no entropy, no persistence.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5eed))
}

/// The `proptest!` macro: runs each property over `cases` deterministic
/// samples. Supports an optional `#![proptest_config(expr)]` header and
/// any number of `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut proptest_case_rng = $crate::case_rng(stringify!($name), case);
                $(
                    let $arg = $crate::strategy::Strategy::sample(
                        &($strat),
                        &mut proptest_case_rng,
                    );
                )*
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest case {case} of {}: {e}", stringify!($name));
                }
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!`: like `assert!` but returns an `Err` from the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert_eq!`: equality variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{}: {:?} != {:?}", format!($($fmt)*), a, b);
    }};
}

/// `prop_assert_ne!`: inequality variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both sides are {:?}", a);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 1u32..10, y in -2.0f64..2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(
            v in crate::collection::vec((0.0f32..1.0, 0u64..5), 2..7),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
            for (f, i) in &v {
                prop_assert!((0.0..1.0).contains(f));
                prop_assert!(*i < 5);
            }
        }

        #[test]
        fn any_floats_are_usable(x in any::<f32>(), b in any::<bool>()) {
            prop_assert!(!x.is_nan() && !x.is_infinite());
            prop_assert!(u32::from(b) <= 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let a: Vec<u64> = (0..5).map(|c| s.sample(&mut crate::case_rng("t", c))).collect();
        let b: Vec<u64> = (0..5).map(|c| s.sample(&mut crate::case_rng("t", c))).collect();
        assert_eq!(a, b);
    }
}
