//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses: `Criterion` with `bench_function`/`benchmark_group`,
//! `Bencher::{iter, iter_batched}`, `Throughput`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors this shim via a path dependency. It is a plain timing harness:
//! each benchmark is warmed up, then timed for the configured measurement
//! window, and a single mean-per-iteration line (plus derived throughput)
//! is printed. No statistics, baselines, or HTML reports.

use std::time::{Duration, Instant};

/// Opaque hint preserved for API compatibility.
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs (the only variant this workspace uses).
    SmallInput,
    /// Larger inputs, batched less aggressively.
    LargeInput,
}

/// Per-iteration work declaration for derived rates.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// (iterations, total time) recorded by the last `iter*` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn run<F: FnMut()>(&mut self, mut one: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            one();
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let end = start + self.measurement;
        while Instant::now() < end {
            one();
            iters += 1;
        }
        self.result = Some((iters.max(1), start.elapsed()));
    }

    /// Time a closure repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        self.run(|| {
            std::hint::black_box(routine());
        });
    }

    /// Time `routine` over fresh inputs built by `setup` (setup excluded
    /// from the timing in real criterion; here it is included in the
    /// wall-clock window but each `routine` call still gets a fresh
    /// input, which preserves correctness of the benchmarked code).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        self.run(|| {
            let input = setup();
            std::hint::black_box(routine(input));
        });
    }
}

/// Top-level harness state and configuration.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { warm_up: Duration::from_millis(300), measurement: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Accepted-but-ignored (no statistical resampling here).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.warm_up, self.measurement, name, None, f);
        self
    }

    /// Open a named group (prefixes benchmark ids, carries throughput).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        run_one(self.criterion.warm_up, self.criterion.measurement, &id, self.throughput, f);
        self
    }

    /// End the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    warm_up: Duration,
    measurement: Duration,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { warm_up, measurement, result: None };
    f(&mut bencher);
    match bencher.result {
        Some((iters, total)) => {
            let per_iter = total.as_secs_f64() / iters as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  {:>12.0} elem/s", n as f64 / per_iter)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  {:>12.0} B/s", n as f64 / per_iter)
                }
                None => String::new(),
            };
            println!("{id:<40} {:>12} /iter  ({iters} iters){rate}", fmt_duration(per_iter));
        }
        None => println!("{id:<40} (no measurement recorded)"),
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// `criterion_group!`: both the `name/config/targets` and positional
/// forms produce a function running every target.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),* $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// `criterion_main!`: entry point invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = quick();
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn groups_and_batched_iters_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
