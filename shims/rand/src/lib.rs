//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng`, `SeedableRng::{seed_from_u64, from_seed}`, and the
//! `Rng::{gen, gen_range, gen_bool}` methods over the primitive types.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim via a path dependency (see the workspace
//! `Cargo.toml`). The generator is xoshiro256++ seeded through SplitMix64
//! — a different stream than real `rand`'s ChaCha12-based `StdRng`, so
//! absolute experiment numbers differ from runs against the real crate,
//! but every determinism property (same seed → same stream) holds.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step — used to expand small seeds into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from 64 random bits (the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Half-open or inclusive ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing sampling methods (the subset of `rand::Rng` used here).
pub trait Rng: RngCore {
    /// Draw a value of an inferred primitive type.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as StandardSample>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is the one invalid xoshiro state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i: u32 = rng.gen_range(0..32);
            assert!(i < 32);
            let f: f64 = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
            let inc: f64 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&inc));
            let neg: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&neg));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
