//! Temporal data diversity in one page: render consecutive camera frames,
//! count differing bits per pixel, and project object motion — the
//! property DiverseAV's round-robin distribution exploits (§V-A).
//!
//! ```text
//! cargo run --release --example bit_diversity
//! ```

use diverseav_analysis::{generate_sequence, SynthConfig};
use diverseav_analysis::{matched_shifts, percentile, pixel_bit_diffs, DiversityStats};
use diverseav_runtime::{LoopObserver, PolicyDriver, SimLoop, TickContext};
use diverseav_simworld::{lead_slowdown, Controls, Image, SensorConfig, World};

/// Accumulates per-pixel bit differences between consecutive center-camera
/// frames as they stream through the loop.
#[derive(Default)]
struct FrameDiffs {
    prev: Option<Image>,
    diffs: Vec<u32>,
}

impl LoopObserver for FrameDiffs {
    fn on_tick(&mut self, ctx: &TickContext<'_>) {
        let cam = &ctx.frame.cameras[1];
        if let Some(prev) = &self.prev {
            self.diffs.extend(pixel_bit_diffs(prev, cam));
        }
        self.prev = Some(cam.clone());
    }
}

fn main() {
    // --- simulator stream at 40 Hz (Fig 5b) ---
    let world = World::new(lead_slowdown(), SensorConfig::default(), 3);
    let driver = PolicyDriver(|_: &World| Controls::clamped(0.2, 0.0, 0.0));
    let mut sim_loop = SimLoop::new(world, driver);
    let mut frame_diffs = FrameDiffs::default();
    sim_loop.run_for(81, &mut [&mut frame_diffs]);
    let sim = DiversityStats::of(&frame_diffs.diffs);
    println!(
        "simulator camera, consecutive 40 Hz frames: median {:.1} bits and p90 {:.1} bits \
         of each 24-bit pixel differ (paper Fig 5b: 5 / 9)",
        sim.p50, sim.p90
    );

    // --- real-world-like 10 Hz stream (Fig 5a analogue) ---
    let seq = generate_sequence(&SynthConfig { n_frames: 30, ..Default::default() });
    let mut kitti_diffs = Vec::new();
    let mut shifts = Vec::new();
    for w in seq.windows(2) {
        kitti_diffs.extend(pixel_bit_diffs(&w[0].camera, &w[1].camera));
        shifts.extend(matched_shifts(&w[0].objects_px, &w[1].objects_px));
    }
    let kitti = DiversityStats::of(&kitti_diffs);
    println!(
        "real-world-like camera, 10 Hz: median {:.1} bits, p90 {:.1} bits (paper Fig 5a: 8 / 13)",
        kitti.p50, kitti.p90
    );
    if !shifts.is_empty() {
        println!(
            "...while tracked object centers shift only {:.1} px at the median — \
             semantically consistent, bit-level diverse.",
            percentile(&shifts, 50.0)
        );
    }

    // --- the paper's single-pixel illustration (Fig 2(2)) ---
    let bits = (95u8 ^ 96u8).count_ones() * 3;
    println!("\nFig 2(2): RGB (95,95,95) → (96,96,96) flips {bits} of 24 bits.");
}
