//! A miniature fault-injection campaign: golden runs, plan generation,
//! injections, and a Table-I style summary — the full Fig-3 assessment
//! platform in one binary.
//!
//! ```text
//! cargo run --release --example mini_campaign
//! ```

use diverseav::AgentMode;
use diverseav_fabric::Profile;
use diverseav_faultinj::{
    run_campaign_with_traces, summarize, Campaign, CampaignScale, FaultModelKind, OutcomeClass,
};
use diverseav_simworld::{ScenarioKind, SensorConfig};

fn main() {
    let scale = CampaignScale {
        n_transient: 8,
        permanent_repeats: 1,
        golden_runs: 3,
        ..CampaignScale::quick()
    };
    let campaign = Campaign {
        scenario: ScenarioKind::LeadSlowdown,
        target: Profile::Gpu,
        kind: FaultModelKind::Permanent,
        mode: AgentMode::RoundRobin,
    };
    println!("running campaign: {campaign} (miniature scale)\n");
    let result = run_campaign_with_traces(campaign, &scale, None, SensorConfig::default(), true);

    println!("per-run outcomes:");
    for run in &result.injected {
        let class = diverseav_faultinj::classify(run, &result.baseline, 2.0);
        let label = match class {
            OutcomeClass::HangCrash => "hang/crash",
            OutcomeClass::Accident => "ACCIDENT",
            OutcomeClass::TrajViolation => "trajectory violation",
            OutcomeClass::Benign => "benign",
        };
        println!(
            "  {:<44} active={:<5} → {label}",
            run.fault.expect("injected run").to_string(),
            run.fault_activated,
        );
    }

    let row = summarize(&result, 2.0);
    println!(
        "\nTable-I row: #Active={} Hang/Crash={} Total={} #Acc={} #TrajViol={}",
        row.active, row.hang_crash, row.total, row.accidents, row.traj_violations
    );
    println!(
        "(the paper's GPU-permanent LSD row: 513 active, 83 hang/crash, 513 total, 3 acc, 9 viol)"
    );
}
