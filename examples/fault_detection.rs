//! End-to-end fault detection: train the DiverseAV error detector on the
//! long routes, inject a permanent GPU fault into the lead-slowdown
//! scenario, and watch the alarm fire before the safety violation.
//!
//! ```text
//! cargo run --release --example fault_detection
//! ```

use diverseav::{AgentMode, DetectorConfig, DetectorModel};
use diverseav_fabric::{FaultModel, Op, Profile};
use diverseav_faultinj::{
    collect_training_runs, run_experiment, CampaignScale, FaultSpec, RunConfig,
};
use diverseav_simworld::{lead_slowdown, SensorConfig};

fn main() {
    // 1. Train the error detector on fault-free long-route executions
    //    (§III-D of the paper). A small scale keeps this example fast.
    let scale =
        CampaignScale { long_route_duration: 60.0, training_runs: 1, ..CampaignScale::quick() };
    println!("training the error detector on the long routes ...");
    let training = collect_training_runs(AgentMode::RoundRobin, &scale, SensorConfig::default());
    let det_cfg = DetectorConfig::default().with_rw(3);
    let model = DetectorModel::train(&training, &det_cfg);
    println!("  {model}\n");

    // 2. A golden run: the detector must stay silent.
    let mut golden = RunConfig::new(lead_slowdown(), AgentMode::RoundRobin, 7);
    golden.detector = Some((model.clone(), det_cfg));
    let g = run_experiment(&golden);
    println!(
        "golden run: termination = {:?}, alarm = {:?} (must be None)",
        g.termination, g.alarm_time
    );
    assert!(g.alarm_time.is_none(), "no false alarm on the golden run");

    // 3. Inject a permanent GPU fault: every FMax result has an exponent
    //    bit flipped — perception degrades, the agents disagree, and the
    //    detector raises the alarm with usable lead time.
    let mut faulty = RunConfig::new(lead_slowdown(), AgentMode::RoundRobin, 7);
    faulty.detector = Some((model, det_cfg));
    faulty.fault = Some(FaultSpec::Fabric {
        unit: 0,
        profile: Profile::Gpu,
        model: FaultModel::Permanent { op: Op::FMax, mask: 1 << 23 },
    });
    let f = run_experiment(&faulty);
    println!(
        "faulty run: termination = {:?}, collision = {:?}, alarm = {:?}",
        f.termination, f.collision_time, f.alarm_time
    );
    match (f.alarm_time, f.collision_time) {
        (Some(alarm), Some(collision)) => {
            println!(
                "alarm raised {:.2} s before the collision — enough for a fail-back \
                 system (braking reaction ≈ 0.85 s).",
                collision - alarm
            );
        }
        (Some(alarm), None) => {
            println!("alarm raised at t = {alarm:.2} s; the fault did not escalate to a crash.");
        }
        (None, _) => println!("this particular fault stayed below the detection thresholds."),
    }
}
