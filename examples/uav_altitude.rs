//! DiverseAV beyond cars: temporal data diversity on a UAV altitude-hold
//! loop — the "other dynamical systems such as unmanned aerial vehicles"
//! the paper's conclusion points to.
//!
//! The error-detection engine is plant-agnostic: it only needs (vehicle
//! state, output divergence) streams. Here two instances of a small
//! altitude controller, executing on the shared fabric, receive barometer
//! samples round-robin; a permanent fault in the shared processor makes
//! their thrust commands diverge and the detector fires.
//!
//! ```text
//! cargo run --release --example uav_altitude
//! ```

use diverseav::{DetectorConfig, DetectorModel, Divergence, OnlineDetector, TrainSample, VehState};
use diverseav_fabric::{Fabric, FaultModel, Op, Profile, Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 1-D UAV plant: altitude + vertical speed under thrust and gravity.
struct Uav {
    z: f64,
    vz: f64,
}

impl Uav {
    fn step(&mut self, thrust: f64, dt: f64) {
        let accel = thrust.clamp(0.0, 2.0) * 15.0 - 9.81 - 0.1 * self.vz;
        self.vz += accel * dt;
        self.z = (self.z + self.vz * dt).max(0.0);
    }
}

/// PID-style altitude controller as a fabric program.
/// mem: [0]=z_meas, [1]=z_target, [2]=dt, [3]=integrator, [4]=out thrust,
/// [5]=vz_meas (rate damping).
fn build_controller() -> Program {
    let r = Reg;
    let mut b = ProgramBuilder::new();
    b.ldimm_i(r(15), 0);
    b.ld(r(0), r(15), 0); // z
    b.ld(r(1), r(15), 1); // target
    b.fsub(r(2), r(1), r(0)); // e
    b.ld(r(3), r(15), 3); // integrator
    b.ld(r(4), r(15), 2); // dt
    b.fmul(r(5), r(2), r(4));
    b.fadd(r(3), r(3), r(5));
    b.ldimm_f(r(6), 2.0);
    b.fmin(r(3), r(3), r(6));
    b.fneg(r(7), r(6));
    b.fmax(r(3), r(3), r(7));
    b.st(r(15), r(3), 3);
    b.ldimm_f(r(8), 0.35); // kp
    b.fmul(r(9), r(8), r(2));
    b.ldimm_f(r(10), 0.25); // ki
    b.fmul(r(11), r(10), r(3));
    b.fadd(r(9), r(9), r(11));
    b.ld(r(14), r(15), 5); // vz
    b.ldimm_f(r(12), 0.30); // rate damping
    b.fmul(r(14), r(14), r(12));
    b.fsub(r(9), r(9), r(14));
    b.ldimm_f(r(12), 0.654); // hover feed-forward (9.81 / 15)
    b.fadd(r(9), r(9), r(12));
    b.ldimm_f(r(13), 0.0);
    b.fmax(r(9), r(9), r(13));
    b.ldimm_f(r(13), 2.0);
    b.fmin(r(9), r(9), r(13));
    b.st(r(15), r(9), 4);
    b.halt();
    b.build()
}

struct Controller {
    ctx: diverseav_fabric::Context,
}

impl Controller {
    fn new(fabric: &Fabric) -> Self {
        Controller { ctx: fabric.new_context(8) }
    }

    fn step(
        &mut self,
        prog: &Program,
        fabric: &mut Fabric,
        z: f64,
        vz: f64,
        target: f64,
        dt: f64,
    ) -> f64 {
        self.ctx.write_f32(0, z as f32);
        self.ctx.write_f32(1, target as f32);
        self.ctx.write_f32(2, dt as f32);
        self.ctx.write_f32(5, vz as f32);
        fabric.run_scalar(prog, &mut self.ctx, 10_000).expect("controller runs");
        self.ctx.read_f32(4) as f64
    }
}

/// Fly a mission; returns the per-tick (state, divergence) stream and the
/// worst altitude error.
fn fly(fault: Option<FaultModel>, seed: u64) -> (Vec<TrainSample>, f64) {
    let prog = build_controller();
    let mut fabric = Fabric::new(Profile::Cpu);
    if let Some(f) = fault {
        fabric.inject(f);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut uav = Uav { z: 10.0, vz: 0.0 };
    let mut a = Controller::new(&fabric);
    let mut b = Controller::new(&fabric);
    let dt = 0.02; // 50 Hz barometer
    let mut last = [0.654f64; 2];
    let mut stream = Vec::new();
    let mut worst = 0.0f64;
    for k in 0..2_000u64 {
        let t = k as f64 * dt;
        // Mission profile: climb to 25 m, then descend to 15 m.
        let target = if t < 20.0 { 25.0 } else { 15.0 };
        let baro = uav.z + rng.gen_range(-0.05..0.05);
        let vz_meas = uav.vz + rng.gen_range(-0.02..0.02);
        // Round-robin distribution of barometer samples.
        let active = (k % 2) as usize;
        let thrust = if active == 0 {
            a.step(&prog, &mut fabric, baro, vz_meas, target, 2.0 * dt)
        } else {
            b.step(&prog, &mut fabric, baro, vz_meas, target, 2.0 * dt)
        };
        let div = (thrust - last[1 - active]).abs();
        last[active] = thrust;
        stream.push(TrainSample {
            t,
            state: VehState { v: uav.vz.abs(), a: 0.0, w: 0.0, alpha: 0.0 },
            div: Divergence { throttle: div, brake: 0.0, steer: 0.0 },
        });
        uav.step(thrust, dt);
        // Final approach: error over the last 10 s of the mission.
        if t > 30.0 {
            worst = worst.max((uav.z - target).abs());
        }
    }
    (stream, worst)
}

fn main() {
    // Train on fault-free flights.
    let training: Vec<_> = (0..3).map(|s| fly(None, s).0).collect();
    let cfg = DetectorConfig::default().with_rw(3);
    let model = DetectorModel::train(&training, &cfg);
    println!("UAV altitude-hold detector: {model}");

    let (golden, worst_g) = fly(None, 77);
    let golden_alarm = OnlineDetector::replay(&model, cfg, &golden);
    println!("golden flight: final-approach error {worst_g:.2} m, alarm = {golden_alarm:?}");
    assert!(golden_alarm.is_none(), "no false alarm on a healthy flight");

    // A permanent fault in the shared processor's multiplier.
    let fault = FaultModel::Permanent { op: Op::FMul, mask: 1 << 20 };
    let (faulty, worst_f) = fly(Some(fault), 77);
    let alarm = OnlineDetector::replay(&model, cfg, &faulty);
    println!("faulty flight: final-approach error {worst_f:.2} m, alarm = {alarm:?}");
    match alarm {
        Some(t) => println!("temporal data diversity detected the fault at t = {t:.2} s ✓"),
        None => println!("fault stayed below detection thresholds for this mask"),
    }
}
