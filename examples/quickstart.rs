//! Quickstart: drive the lead-slowdown scenario with a DiverseAV-enabled
//! ADS and watch the two agents' actuation divergence stay bounded.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use diverseav::{Ads, AdsConfig, AgentMode, VehState};
use diverseav_simworld::{lead_slowdown, SensorConfig, World, WorldStatus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A world: the NHTSA-style lead-slowdown scenario at 40 Hz.
    let mut world = World::new(lead_slowdown(), SensorConfig::default(), 42);

    // A DiverseAV-enabled ADS: two agents time-multiplexed on one
    // processor, sensor frames distributed round-robin.
    let mut ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 42));

    let mut max_div: f64 = 0.0;
    println!("t(s)   speed  throttle brake  CVIP(m)  inter-agent divergence");
    while !world.finished() {
        let frame = world.sense();
        let hint = world.route_hint();
        let state = VehState::from(world.ego_state());
        let out = ads.tick(&frame, hint, state, world.time())?;
        if let Some(div) = out.divergence {
            max_div = max_div.max(div.throttle.max(div.brake).max(div.steer));
        }
        let status = world.step(out.controls);
        if world.trajectory().len().is_multiple_of(40) {
            println!(
                "{:5.1}  {:5.2}  {:6.2}  {:5.2}  {:7.1}  {:.3}",
                world.time(),
                world.ego_state().speed,
                out.controls.throttle,
                out.controls.brake,
                world.cvip().unwrap_or(f64::INFINITY),
                out.divergence.map(|d| d.throttle.max(d.brake)).unwrap_or(0.0),
            );
        }
        if status == WorldStatus::Collision {
            println!("collision at t = {:.2} s!", world.time());
            break;
        }
    }
    println!(
        "\nscenario finished: collision = {:?}, min CVIP = {:.2} m, max divergence = {max_div:.3}",
        world.collision_time(),
        world.min_cvip()
    );
    assert!(world.collision_time().is_none(), "fault-free DiverseAV must be safe");
    Ok(())
}
