//! Quickstart: drive the lead-slowdown scenario with a DiverseAV-enabled
//! ADS on the canonical [`SimLoop`] and watch the two agents' actuation
//! divergence stay bounded.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use diverseav::{Ads, AdsConfig, AgentMode};
use diverseav_runtime::{registry, LoopObserver, SimLoop, Termination, TickContext};
use diverseav_simworld::{SensorConfig, World};

/// Prints a 1 Hz telemetry line and tracks the peak inter-agent divergence.
struct Telemetry {
    max_div: f64,
    tick: u64,
}

impl LoopObserver for Telemetry {
    fn on_tick(&mut self, ctx: &TickContext<'_>) {
        if let Some(div) = ctx.out.divergence {
            self.max_div = self.max_div.max(div.throttle.max(div.brake).max(div.steer));
        }
        if self.tick.is_multiple_of(40) {
            println!(
                "{:5.1}  {:5.2}  {:6.2}  {:5.2}  {:7.1}  {:.3}",
                ctx.t,
                ctx.world.ego_state().speed,
                ctx.out.controls.throttle,
                ctx.out.controls.brake,
                ctx.world.cvip().unwrap_or(f64::INFINITY),
                ctx.out.divergence.map(|d| d.throttle.max(d.brake)).unwrap_or(0.0),
            );
        }
        self.tick += 1;
    }
}

fn main() {
    // A world: the NHTSA-style lead-slowdown scenario at 40 Hz, looked up
    // by its stable key in the scenario registry.
    let scenario = registry::build("lead-slowdown").expect("built-in scenario");
    let world = World::new(scenario, SensorConfig::default(), 42);

    // A DiverseAV-enabled ADS: two agents time-multiplexed on one
    // processor, sensor frames distributed round-robin.
    let ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 42));

    println!("t(s)   speed  throttle brake  CVIP(m)  inter-agent divergence");
    let mut sim = SimLoop::new(world, ads);
    let mut telemetry = Telemetry { max_div: 0.0, tick: 0 };
    let term = sim.run_observed(&mut [&mut telemetry]);
    if term == Termination::Collision {
        println!("collision at t = {:.2} s!", sim.world().time());
    }
    assert!(!term.is_hang_or_crash(), "fault-free run must not trap: {term:?}");

    println!(
        "\nscenario finished: collision = {:?}, min CVIP = {:.2} m, max divergence = {:.3}",
        sim.world().collision_time(),
        sim.world().min_cvip(),
        telemetry.max_div,
    );
    assert!(sim.world().collision_time().is_none(), "fault-free DiverseAV must be safe");
}
