//! The "no silent divergence" gate: every sensor-boundary fault class,
//! injected into every registered safety-critical scenario, must (a)
//! corrupt at least one frame, (b) measurably grow the inter-agent
//! divergence after onset, and (c) raise a detector alarm before the run
//! ends. A fault class that sneaks through silently fails this suite —
//! and CI runs it as a required job, so the failure blocks the merge.
//!
//! The detector is the PR's trend-aware configuration (magnitude
//! threshold OR'd with the divergence-slope EWMA); a fault that only
//! drifts slowly still has to be caught.

use diverseav::AgentMode;
use diverseav::{DetectorConfig, DetectorModel, TrendConfig};
use diverseav_faultinj::{
    collect_training_runs, run_experiment, CampaignScale, FaultSpec, RunConfig, SensorFault,
    SensorFaultKind,
};
use diverseav_simworld::{Scenario, ScenarioKind, SensorConfig};
use std::sync::OnceLock;

/// Long-route training scale: enough coverage for a usable LUT without
/// making the gate slow.
fn training_scale() -> CampaignScale {
    CampaignScale {
        n_transient: 0,
        permanent_repeats: 1,
        golden_runs: 1,
        long_route_duration: 30.0,
        training_runs: 1,
    }
}

/// One trained model shared across every (class, scenario) case — the
/// training runs are the expensive part of the gate.
fn trained() -> &'static (DetectorModel, DetectorConfig) {
    static MODEL: OnceLock<(DetectorModel, DetectorConfig)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfg = DetectorConfig::default().with_trend(TrendConfig::default());
        let training = collect_training_runs(
            AgentMode::RoundRobin,
            &training_scale(),
            SensorConfig::default(),
        );
        (DetectorModel::train(&training, &cfg), cfg)
    })
}

/// Largest per-sample divergence (max over channels) within `[lo, hi)`.
fn peak_divergence(samples: &[diverseav::TrainSample], lo: f64, hi: f64) -> f64 {
    samples
        .iter()
        .filter(|s| s.t >= lo && s.t < hi)
        .map(|s| s.div.throttle.max(s.div.brake).max(s.div.steer))
        .fold(0.0, f64::max)
}

/// Drive one (fault class, scenario) case through the closed loop and
/// assert the full activate → diverge → alarm chain.
fn assert_fault_is_caught(class: SensorFaultKind, kind: ScenarioKind, seed: u64) {
    let (model, dcfg) = trained().clone();
    let mut scenario = Scenario::of_kind(kind);
    scenario.duration = scenario.duration.min(12.0);
    let fault = SensorFault { kind: class, seed };
    let mut cfg = RunConfig::new(scenario, AgentMode::RoundRobin, 4242);
    cfg.fault = Some(FaultSpec::Sensor(fault));
    cfg.detector = Some((model, dcfg));
    cfg.collect_training = true;
    let r = run_experiment(&cfg);

    assert!(r.fault_activated, "{class} on {kind:?}: fault never corrupted a frame");
    let onset =
        r.fault_onset_time.unwrap_or_else(|| panic!("{class} on {kind:?}: no onset time recorded"));

    // (b) Divergence must grow: the peak after onset has to clear the
    // fault-free peak before onset. The pre-onset window can be nearly
    // silent, so also require a meaningful absolute level.
    let pre = peak_divergence(&r.training, 0.0, onset);
    let post = peak_divergence(&r.training, onset, r.end_time + 1.0);
    assert!(
        post > pre && post > 0.01,
        "{class} on {kind:?}: divergence did not grow after onset \
         (pre-onset peak {pre:.5}, post-onset peak {post:.5})"
    );

    // (c) The detector must alarm before the run ends — the "no silent
    // divergence" clause. A hang/crash of the faulted stack also counts
    // as caught (platform detection, as for register faults).
    let caught = r.alarm_time.is_some() || r.termination.is_hang_or_crash();
    assert!(
        caught,
        "{class} on {kind:?}: SILENT DIVERGENCE — fault active at t={onset:.3}, \
         divergence peaked at {post:.5}, but no alarm by end of run (t={:.2})",
        r.end_time
    );
    if let Some(alarm) = r.alarm_time {
        assert!(
            alarm >= onset,
            "{class} on {kind:?}: alarm at {alarm:.3} precedes onset {onset:.3} \
             (false positive before the fault existed)"
        );
    }
}

/// Every fault class × every registered safety-critical scenario.
/// Per-class seeds keep realizations distinct while staying pinned.
macro_rules! gate {
    ($name:ident, $class:expr, $seed:expr) => {
        #[test]
        fn $name() {
            for (i, kind) in ScenarioKind::safety_critical().into_iter().enumerate() {
                assert_fault_is_caught($class, kind, $seed + i as u64);
            }
        }
    };
}

gate!(dropout_never_diverges_silently, SensorFaultKind::Dropout, 0x0D10);
gate!(bias_drift_never_diverges_silently, SensorFaultKind::BiasDrift, 0x0D20);
gate!(outlier_burst_never_diverges_silently, SensorFaultKind::OutlierBurst, 0x0D30);
gate!(noise_inflation_never_diverges_silently, SensorFaultKind::NoiseInflation, 0x0D40);
gate!(oscillation_never_diverges_silently, SensorFaultKind::Oscillation, 0x0D50);

#[test]
fn golden_runs_stay_silent_under_the_same_detector() {
    // The gate is meaningless if the detector alarms on clean runs too:
    // pin the false-alarm side on every registered scenario.
    let (model, dcfg) = trained().clone();
    for kind in ScenarioKind::safety_critical() {
        let mut scenario = Scenario::of_kind(kind);
        scenario.duration = scenario.duration.min(12.0);
        let mut cfg = RunConfig::new(scenario, AgentMode::RoundRobin, 4242);
        cfg.detector = Some((model.clone(), dcfg));
        let r = run_experiment(&cfg);
        assert!(
            r.alarm_time.is_none(),
            "golden {kind:?} run alarmed at {:?} — detector too hot for the gate",
            r.alarm_time
        );
    }
}
