//! Refactor-equivalence guard: one full Table-I cell — {GPU, CPU} ×
//! {transient, permanent} on (LeadSlowdown, RoundRobin) — must reproduce
//! the pinned golden fixture bit-for-bit: identical `RunResult`s (hashed
//! over their full `Debug` rendering, which prints every f64 with
//! shortest-roundtrip precision), identical Table-I rows, identical
//! violation baselines, and byte-identical run-journal lines, for any
//! `DIVERSEAV_THREADS`.
//!
//! The fixture was generated *before* the `SimLoop` runtime migration
//! (`crates/runtime`), so this test proves the refactor changed no
//! observable output. Regenerate deliberately with:
//!
//! ```text
//! cargo test --test refactor_equivalence -- --ignored
//! ```

use diverseav::AgentMode;
use diverseav_fabric::Profile;
use diverseav_faultinj::{
    run_campaign_cached, summarize, Campaign, CampaignScale, FaultModelKind, GoldenCache,
};
use diverseav_obs::journal;
use diverseav_simworld::{ScenarioKind, SensorConfig};
use std::fmt::Write as _;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/table1_cell_lsd.txt");

fn scale() -> CampaignScale {
    CampaignScale {
        n_transient: 2,
        permanent_repeats: 1,
        golden_runs: 2,
        long_route_duration: 20.0,
        training_runs: 1,
    }
}

/// The four campaigns of one (scenario, mode) Table-I cell.
fn cell() -> [Campaign; 4] {
    let base = Campaign {
        scenario: ScenarioKind::LeadSlowdown,
        target: Profile::Gpu,
        kind: FaultModelKind::Transient,
        mode: AgentMode::RoundRobin,
    };
    [
        base,
        Campaign { target: Profile::Cpu, ..base },
        Campaign { kind: FaultModelKind::Permanent, ..base },
        Campaign { target: Profile::Cpu, kind: FaultModelKind::Permanent, ..base },
    ]
}

/// FNV-1a over the bytes of a run's `Debug` rendering: compact, stable,
/// and sensitive to any bit change in any recorded field (floats print
/// with shortest-roundtrip precision).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run the cell (tracing on) and render every observable output as a
/// deterministic text document.
fn render_cell() -> String {
    let before = journal::len();
    let cache = GoldenCache::new();
    let mut out = String::new();
    for campaign in cell() {
        let r = run_campaign_cached(
            campaign,
            &scale(),
            None,
            SensorConfig::default(),
            true,
            Some(&cache),
        );
        let label = r.campaign.to_string();
        writeln!(out, "summary {label} {:?}", summarize(&r, 2.0)).unwrap();
        for (i, g) in r.golden.iter().enumerate() {
            writeln!(out, "golden {label} {i} {:016x}", fnv1a(format!("{g:?}").as_bytes()))
                .unwrap();
        }
        for (i, g) in r.injected.iter().enumerate() {
            writeln!(out, "injected {label} {i} {:016x}", fnv1a(format!("{g:?}").as_bytes()))
                .unwrap();
        }
        writeln!(out, "baseline {label} {:016x}", fnv1a(format!("{:?}", r.baseline).as_bytes()))
            .unwrap();
    }
    for line in journal::snapshot()
        .into_iter()
        .skip(before)
        .filter(|l| l.starts_with("{\"type\": \"run\"") && l.contains(" LSD ["))
    {
        writeln!(out, "journal {line}").unwrap();
    }
    out
}

#[test]
fn table1_cell_matches_pinned_fixture() {
    let expected = std::fs::read_to_string(FIXTURE).expect(
        "missing golden fixture; regenerate with \
         `cargo test --test refactor_equivalence -- --ignored`",
    );
    std::env::set_var("DIVERSEAV_TRACE", "1");
    for threads in ["1", "3"] {
        std::env::set_var("DIVERSEAV_THREADS", threads);
        let got = render_cell();
        for (i, (g, e)) in got.lines().zip(expected.lines()).enumerate() {
            assert_eq!(g, e, "fixture line {i} diverged with DIVERSEAV_THREADS={threads}");
        }
        assert_eq!(
            got.lines().count(),
            expected.lines().count(),
            "line count diverged with DIVERSEAV_THREADS={threads}"
        );
    }
    std::env::remove_var("DIVERSEAV_THREADS");
    std::env::remove_var("DIVERSEAV_TRACE");
}

#[test]
#[ignore = "regenerates the pinned golden fixture"]
fn generate_fixture() {
    std::env::set_var("DIVERSEAV_TRACE", "1");
    let doc = render_cell();
    std::env::remove_var("DIVERSEAV_TRACE");
    let dir = std::path::Path::new(FIXTURE).parent().expect("fixture has a parent dir");
    std::fs::create_dir_all(dir).expect("create fixtures dir");
    std::fs::write(FIXTURE, doc).expect("write fixture");
}
