//! Steady-state allocation test: after warm-up, the canonical
//! `sense → ads.tick → world.step` loop must not touch the heap. The
//! per-run `SensorFrame` buffer in `SimLoop`, the scratch buffers inside
//! `World`, and the preallocated trajectory make every tick allocation-free,
//! which is what keeps large campaigns cache-friendly and free of
//! allocator contention across worker threads.
//!
//! The whole binary runs under a counting wrapper around the system
//! allocator; an observer samples the counter each tick and the test
//! asserts the per-tick delta hits zero once buffers have grown to their
//! steady-state sizes.
//!
//! The flight recorder rides along on every observed run (the runner
//! attaches it as a stock observer), so the end-to-end test gates its
//! per-tick write path too; a second test drives the ring through
//! several wraparounds directly to pin the no-allocation contract of
//! `FlightRing::push` itself.

use diverseav::AgentMode;
use diverseav_faultinj::{run_experiment_observed, RunConfig};
use diverseav_obs::flight::{FlightRing, TickRecord, DEFAULT_RING_CAPACITY};
use diverseav_runtime::{LoopObserver, TickContext};
use diverseav_simworld::lead_slowdown;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts every allocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Records the allocation-counter delta of every tick. The sample vector
/// is preallocated so the observer itself never allocates on the hot path.
struct AllocSampler {
    last: u64,
    per_tick: Vec<u64>,
}

impl AllocSampler {
    fn new(capacity: usize) -> Self {
        AllocSampler {
            last: ALLOCS.load(Ordering::Relaxed),
            per_tick: Vec::with_capacity(capacity),
        }
    }
}

impl LoopObserver for AllocSampler {
    fn on_tick(&mut self, _ctx: &TickContext<'_>) {
        let now = ALLOCS.load(Ordering::Relaxed);
        if self.per_tick.len() < self.per_tick.capacity() {
            self.per_tick.push(now - self.last);
        }
        self.last = now;
    }
}

#[test]
fn steady_state_ticks_are_allocation_free() {
    let mut scenario = lead_slowdown();
    scenario.duration = 2.0;
    // Default config: no detector, no training collection — the paper's
    // fault-injection hot path.
    let cfg = RunConfig::new(scenario, AgentMode::RoundRobin, 11);
    let mut sampler = AllocSampler::new(128);
    let result = run_experiment_observed(&cfg, &mut [&mut sampler]);
    assert!(!result.termination.is_hang_or_crash(), "clean run expected: {:?}", result.termination);

    // Warm-up: the trajectory vector, fabric contexts, and lidar/camera
    // buffers reach steady-state size within the first ticks.
    const WARMUP: usize = 16;
    assert!(sampler.per_tick.len() > WARMUP + 16, "run long enough to observe steady state");
    let warmup_total: u64 = sampler.per_tick[..WARMUP].iter().sum();
    assert!(warmup_total > 0, "counter sanity: warm-up ticks must allocate (buffer growth)");
    let steady = &sampler.per_tick[WARMUP..];
    let total: u64 = steady.iter().sum();
    assert_eq!(
        total, 0,
        "heap allocations after warm-up (per-tick deltas from tick {WARMUP}): {steady:?}"
    );
}

/// `FlightRing::push` must never allocate — not while filling, and not
/// across wraparound — so the recorder can run on every tick of every
/// campaign run without perturbing the steady-state gate above.
#[test]
fn flight_ring_push_is_allocation_free_across_wraparound() {
    let mut ring = FlightRing::new(DEFAULT_RING_CAPACITY);
    let template = TickRecord {
        tick: 0,
        flags: 0b1111,
        score: 0.75,
        slope: -0.003,
        margin: 0.25,
        phase_ns: [1_000, 2_000, 3_000, 4_000],
        deadline_margin_ns: -5_000,
        d_throttle: 0.1,
        d_brake: 0.0,
        d_steer: -0.02,
    };
    let before = ALLOCS.load(Ordering::Relaxed);
    for t in 0..4 * DEFAULT_RING_CAPACITY as u64 {
        ring.push(TickRecord { tick: t, ..template });
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "flight-ring pushes allocated {} time(s)", after - before);
    assert_eq!(ring.len(), DEFAULT_RING_CAPACITY);
    assert_eq!(ring.pushed(), 4 * DEFAULT_RING_CAPACITY as u64);
}
