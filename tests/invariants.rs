//! Property-based cross-crate invariants: whatever fault is injected, the
//! system must degrade along the defined failure modes — actuation stays
//! bounded, runs terminate, reproducibility holds.

use diverseav::{Ads, AdsConfig, AgentMode};
use diverseav_fabric::{FaultModel, Op, Profile, ALL_OPS};
use diverseav_faultinj::{run_experiment, FaultSpec, RunConfig};
use diverseav_runtime::{LoopObserver, SimLoop, TickContext};
use diverseav_simworld::{lead_slowdown, Controls, Scenario, SensorConfig, World};
use proptest::prelude::*;

fn short_scenario() -> Scenario {
    let mut s = lead_slowdown();
    s.duration = 1.5;
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Under ANY single permanent fault, every actuation command the ADS
    /// emits stays within its physical range, and the run terminates in
    /// one of the defined ways (completed / collision / trap).
    #[test]
    fn actuation_is_always_bounded_under_faults(
        op_idx in 0usize..ALL_OPS.len(),
        bit in 0u32..32,
        gpu_target in any::<bool>(),
    ) {
        /// Records the first out-of-range actuation the ADS emits.
        struct Bounds(Option<Controls>);
        impl LoopObserver for Bounds {
            fn on_tick(&mut self, ctx: &TickContext<'_>) {
                let c = ctx.out.controls;
                let ok = (0.0..=1.0).contains(&c.throttle)
                    && (0.0..=1.0).contains(&c.brake)
                    && (-1.0..=1.0).contains(&c.steer);
                if !ok && self.0.is_none() {
                    self.0 = Some(c);
                }
            }
        }
        let world = World::new(short_scenario(), SensorConfig::default(), 99);
        let mut ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 99));
        let profile = if gpu_target { Profile::Gpu } else { Profile::Cpu };
        ads.inject_fault(0, profile, FaultModel::Permanent { op: ALL_OPS[op_idx], mask: 1 << bit });
        let mut bounds = Bounds(None);
        // A trap (the platform-detected path) terminates the loop; any
        // other termination means every emitted actuation was observed.
        SimLoop::new(world, ads).run_observed(&mut [&mut bounds]);
        prop_assert!(bounds.0.is_none(), "actuation out of range: {:?}", bounds.0);
    }

    /// Transient faults at arbitrary sites never corrupt the *recorded*
    /// experiment metadata invariants: activation implies the site was in
    /// range, and the trajectory always starts at the spawn point.
    #[test]
    fn transient_runs_have_consistent_records(site in 0u64..3_000_000, bit in 0u32..32) {
        let mut rc = RunConfig::new(short_scenario(), AgentMode::RoundRobin, 7);
        rc.fault = Some(FaultSpec::Fabric {
            unit: 0,
            profile: Profile::Gpu,
            model: FaultModel::Transient { instr_index: site, mask: 1 << bit },
        });
        let r = run_experiment(&rc);
        prop_assert!(!r.trajectory.is_empty());
        prop_assert!(r.end_time <= 1.5 + 0.026, "one tick of overshoot allowed");
        if r.fault_activated {
            prop_assert!(site < r.gpu_dyn_instr.max(site + 1));
        }
        // Activation accounting: an out-of-range site never activates.
        if site > 200_000_000 {
            prop_assert!(!r.fault_activated);
        }
    }

    /// Identical configurations reproduce identical runs — fault
    /// injection is fully deterministic.
    #[test]
    fn runs_are_reproducible(seed in 0u64..50, bit in 0u32..32) {
        let mut rc = RunConfig::new(short_scenario(), AgentMode::RoundRobin, seed);
        rc.fault = Some(FaultSpec::Fabric {
            unit: 0,
            profile: Profile::Gpu,
            model: FaultModel::Permanent { op: Op::FMul, mask: 1 << bit },
        });
        let a = run_experiment(&rc);
        let b = run_experiment(&rc);
        prop_assert_eq!(a.trajectory, b.trajectory);
        prop_assert_eq!(a.alarm_time, b.alarm_time);
        prop_assert_eq!(a.fault_activated, b.fault_activated);
        prop_assert_eq!(a.gpu_dyn_instr, b.gpu_dyn_instr);
    }
}

#[test]
fn duplicate_mode_unit1_fault_leaves_vehicle_control_clean() {
    // In FD mode the vehicle follows agent 0; a unit-1 fault must only
    // affect the reference stream, never the driven trajectory.
    let mut clean_rc = RunConfig::new(short_scenario(), AgentMode::Duplicate, 5);
    let clean = run_experiment(&clean_rc);
    clean_rc.fault = Some(FaultSpec::Fabric {
        unit: 1,
        profile: Profile::Gpu,
        model: FaultModel::Permanent { op: Op::FAdd, mask: 1 << 30 },
    });
    let faulty = run_experiment(&clean_rc);
    if !faulty.termination.is_hang_or_crash() {
        assert_eq!(clean.trajectory, faulty.trajectory, "unit-1 faults must not steer the car");
    }
}
