//! Determinism of the parallel campaign engine and hygiene of the
//! golden-run cache.
//!
//! The engine's contract is that `DIVERSEAV_THREADS` changes wall-clock
//! only: every run derives from an explicit per-run seed and results
//! land in index-order slots, so campaign outputs are bit-identical for
//! any thread count. The golden cache must share golden sets across the
//! campaigns of one (scenario, mode) cell and never alias cells whose
//! golden runs could differ.
//!
//! Both tests live in one integration binary: they mutate the
//! `DIVERSEAV_THREADS` process environment, and the engine reads it at
//! every fan-out, so a concurrently running test only ever observes
//! *some* valid thread count — which by the determinism contract cannot
//! change any result.

use diverseav::{AgentMode, DetectorConfig, DetectorModel};
use diverseav_fabric::Profile;
use diverseav_faultinj::{
    collect_training_runs, run_campaign_cached, summarize, Campaign, CampaignScale, FaultModelKind,
    GoldenCache,
};
use diverseav_obs::journal;
use diverseav_simworld::{ScenarioKind, SensorConfig};

fn tiny_scale() -> CampaignScale {
    CampaignScale {
        n_transient: 3,
        permanent_repeats: 1,
        golden_runs: 2,
        long_route_duration: 20.0,
        training_runs: 1,
    }
}

fn tiny_campaign() -> Campaign {
    Campaign {
        scenario: ScenarioKind::LeadSlowdown,
        target: Profile::Gpu,
        kind: FaultModelKind::Transient,
        mode: AgentMode::RoundRobin,
    }
}

#[test]
fn results_are_bit_identical_across_thread_counts() {
    let scale = tiny_scale();
    let campaign = tiny_campaign();
    let run_all = || {
        let result =
            run_campaign_cached(campaign, &scale, None, SensorConfig::default(), true, None);
        let training =
            collect_training_runs(AgentMode::RoundRobin, &scale, SensorConfig::default());
        (result, training)
    };

    std::env::set_var("DIVERSEAV_THREADS", "1");
    let (seq, seq_training) = run_all();
    std::env::set_var("DIVERSEAV_THREADS", "4");
    let (par, par_training) = run_all();
    std::env::remove_var("DIVERSEAV_THREADS");

    assert_eq!(seq.golden, par.golden, "golden runs must not depend on thread count");
    assert_eq!(seq.injected, par.injected, "injected runs must not depend on thread count");
    assert_eq!(seq.baseline, par.baseline, "violation baseline must not depend on thread count");
    assert_eq!(
        summarize(&seq, 2.0),
        summarize(&par, 2.0),
        "Table-I rows must not depend on thread count"
    );
    assert_eq!(seq_training, par_training, "training streams must not depend on thread count");
}

#[test]
fn golden_cache_shares_within_a_cell_and_separates_cells() {
    let scale = tiny_scale();
    let base = tiny_campaign();
    let sensor = SensorConfig::default();
    let cache = GoldenCache::new();

    // The four campaigns of one (scenario, mode) cell — {GPU, CPU} ×
    // {transient, permanent} — must share one golden set: 1 miss, 3 hits.
    let gpu_t = run_campaign_cached(base, &scale, None, sensor, true, Some(&cache));
    let cpu_t = run_campaign_cached(
        Campaign { target: Profile::Cpu, ..base },
        &scale,
        None,
        sensor,
        true,
        Some(&cache),
    );
    let gpu_p = run_campaign_cached(
        Campaign { kind: FaultModelKind::Permanent, ..base },
        &scale,
        None,
        sensor,
        true,
        Some(&cache),
    );
    let cpu_p = run_campaign_cached(
        Campaign { target: Profile::Cpu, kind: FaultModelKind::Permanent, ..base },
        &scale,
        None,
        sensor,
        true,
        Some(&cache),
    );
    assert_eq!((cache.misses(), cache.hits()), (1, 3), "one golden set per cell");
    assert_eq!(gpu_t.golden, cpu_t.golden);
    assert_eq!(gpu_t.golden, gpu_p.golden);
    assert_eq!(gpu_t.baseline, cpu_p.baseline);

    // Key hygiene: anything that reaches a golden run must split the key.
    let miss = |campaign: Campaign, scale: &CampaignScale, sensor: SensorConfig| {
        let before = cache.misses();
        run_campaign_cached(campaign, scale, None, sensor, true, Some(&cache));
        assert_eq!(cache.misses(), before + 1, "expected a fresh cache key");
    };
    miss(Campaign { scenario: ScenarioKind::GhostCutIn, ..base }, &scale, sensor);
    miss(Campaign { mode: AgentMode::Single, ..base }, &scale, sensor);
    miss(base, &CampaignScale { golden_runs: 3, ..scale }, sensor);
    miss(base, &scale, SensorConfig { pixel_noise: sensor.pixel_noise + 0.5, ..sensor });
    // LongRoute duration comes from the scale; a different duration is a
    // different golden set even for the same scenario kind.
    let long = Campaign { scenario: ScenarioKind::LongRoute(0), ..base };
    miss(long, &scale, sensor);
    miss(long, &CampaignScale { long_route_duration: 24.0, ..scale }, sensor);

    // Detector-attached campaigns bypass the cache entirely: their golden
    // runs carry per-campaign alarm annotations.
    let cfg = DetectorConfig::default();
    let training = collect_training_runs(AgentMode::RoundRobin, &scale, sensor);
    let model = DetectorModel::train(&training, &cfg);
    let (hits, misses) = (cache.hits(), cache.misses());
    run_campaign_cached(base, &scale, Some((model, cfg)), sensor, true, Some(&cache));
    assert_eq!(
        (cache.hits(), cache.misses()),
        (hits, misses),
        "detector campaigns must not touch the cache"
    );
}

/// Differential test for the observability layer: a full Table-I cell —
/// {GPU, CPU} × {transient, permanent} on one (scenario, mode) — must
/// produce bit-identical campaign outcomes with `DIVERSEAV_TRACE` on or
/// off and `DIVERSEAV_THREADS` ∈ {1, 4}; tracing is an observer, never a
/// participant. The trace-on run journals must themselves be
/// bit-identical across thread counts (run records carry no timestamps
/// and are appended from the engine's index-ordered results).
///
/// This cell uses FrontAccident so its journal lines are the only ones
/// in this binary carrying the " FA [" campaign label — the other tests
/// here run LSD / GC / Rxx campaigns, which keeps the line filter exact
/// even when the test harness interleaves them.
#[test]
fn tracing_is_an_observer_of_a_full_table1_cell() {
    let scale = CampaignScale { n_transient: 2, ..tiny_scale() };
    let base = Campaign {
        scenario: ScenarioKind::FrontAccident,
        target: Profile::Gpu,
        kind: FaultModelKind::Transient,
        mode: AgentMode::RoundRobin,
    };
    let cell = [
        base,
        Campaign { target: Profile::Cpu, ..base },
        Campaign { kind: FaultModelKind::Permanent, ..base },
        Campaign { target: Profile::Cpu, kind: FaultModelKind::Permanent, ..base },
    ];
    let run_cell = || {
        let cache = GoldenCache::new();
        cell.iter()
            .map(|&c| {
                run_campaign_cached(c, &scale, None, SensorConfig::default(), true, Some(&cache))
            })
            .collect::<Vec<_>>()
    };

    let mut outputs = Vec::new();
    for (trace, threads) in [(false, 1), (false, 4), (true, 1), (true, 4)] {
        std::env::set_var("DIVERSEAV_THREADS", threads.to_string());
        if trace {
            std::env::set_var("DIVERSEAV_TRACE", "1");
        } else {
            std::env::remove_var("DIVERSEAV_TRACE");
        }
        let before = journal::len();
        let results = run_cell();
        let run_lines: Vec<String> = journal::snapshot()
            .into_iter()
            .skip(before)
            .filter(|l| l.starts_with("{\"type\": \"run\"") && l.contains(" FA ["))
            .collect();
        outputs.push((trace, threads, results, run_lines));
    }
    std::env::remove_var("DIVERSEAV_TRACE");
    std::env::remove_var("DIVERSEAV_THREADS");

    let reference = &outputs[0].2;
    for (trace, threads, results, run_lines) in &outputs {
        for (r, e) in results.iter().zip(reference) {
            let what = format!("trace={trace} threads={threads} {}", r.campaign);
            assert_eq!(r.golden, e.golden, "golden runs changed: {what}");
            assert_eq!(r.injected, e.injected, "injected runs changed: {what}");
            assert_eq!(r.baseline, e.baseline, "baseline changed: {what}");
            assert_eq!(summarize(r, 2.0), summarize(e, 2.0), "Table-I row changed: {what}");
        }
        if !trace {
            assert!(run_lines.is_empty(), "journal must stay silent with tracing off");
        }
    }

    let lines_t1 = &outputs[2].3;
    let lines_t4 = &outputs[3].3;
    let expected =
        cell.len() * scale.golden_runs + reference.iter().map(|r| r.injected.len()).sum::<usize>();
    assert_eq!(lines_t1.len(), expected, "one journal line per golden+injected run");
    assert_eq!(lines_t1, lines_t4, "run journal must not depend on thread count");
}
