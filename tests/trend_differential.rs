//! Differential gate for the trend-aware detector: replay the *same*
//! recorded divergence traces through a magnitude-only and a trend-aware
//! detector. The trend path is OR-composed on top of the unchanged
//! magnitude check, so on every sensor-fault class its detection latency
//! must be less than or equal to the magnitude-only latency — and on
//! golden (fault-free) traces the two must agree exactly, pinning the
//! false-alarm rate.

use diverseav::{AgentMode, DetectorConfig, DetectorModel, OnlineDetector, TrendConfig};
use diverseav_faultinj::{
    collect_training_runs, run_experiment, CampaignScale, FaultSpec, RunConfig, SensorFault,
    SensorFaultKind,
};
use diverseav_simworld::{Scenario, ScenarioKind, SensorConfig};
use std::sync::OnceLock;

fn scale() -> CampaignScale {
    CampaignScale {
        n_transient: 0,
        permanent_repeats: 1,
        golden_runs: 1,
        long_route_duration: 30.0,
        training_runs: 1,
    }
}

fn model() -> &'static DetectorModel {
    static MODEL: OnceLock<DetectorModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let training =
            collect_training_runs(AgentMode::RoundRobin, &scale(), SensorConfig::default());
        DetectorModel::train(&training, &DetectorConfig::default())
    })
}

/// Record one run's divergence trace (no online detector — the replay is
/// the experiment).
fn trace_of(fault: Option<FaultSpec>, seed: u64) -> Vec<diverseav::TrainSample> {
    let mut scenario = Scenario::of_kind(ScenarioKind::LeadSlowdown);
    scenario.duration = scenario.duration.min(12.0);
    let mut cfg = RunConfig::new(scenario, AgentMode::RoundRobin, seed);
    cfg.fault = fault;
    cfg.collect_training = true;
    run_experiment(&cfg).training
}

#[test]
fn trend_latency_never_exceeds_magnitude_latency_on_any_fault_class() {
    let magnitude_cfg = DetectorConfig::default();
    let trend_cfg = magnitude_cfg.with_trend(TrendConfig::default());
    for (i, class) in SensorFaultKind::ALL.into_iter().enumerate() {
        let fault = SensorFault { kind: class, seed: 0xDF00 + i as u64 };
        let stream = trace_of(Some(FaultSpec::Sensor(fault)), 77);
        assert!(!stream.is_empty(), "{class}: no divergence trace recorded");
        let magnitude = OnlineDetector::replay(model(), magnitude_cfg, &stream);
        let trend = OnlineDetector::replay(model(), trend_cfg, &stream);
        match (trend, magnitude) {
            (Some(t), Some(m)) => assert!(
                t <= m,
                "{class}: trend-aware latency regressed (trend alarm {t:.3} > magnitude {m:.3})"
            ),
            (None, Some(m)) => panic!(
                "{class}: trend-aware detector missed an alarm magnitude-only raised at {m:.3}"
            ),
            (Some(_), None) => {} // trend caught what magnitude missed — strictly better
            (None, None) => panic!("{class}: neither detector alarmed on a faulted trace"),
        }
    }
}

#[test]
fn golden_false_alarm_behaviour_is_unchanged_by_the_trend_path() {
    let magnitude_cfg = DetectorConfig::default();
    let trend_cfg = magnitude_cfg.with_trend(TrendConfig::default());
    for seed in [101, 202, 303] {
        let stream = trace_of(None, seed);
        assert!(!stream.is_empty(), "golden trace recorded");
        let magnitude = OnlineDetector::replay(model(), magnitude_cfg, &stream);
        let trend = OnlineDetector::replay(model(), trend_cfg, &stream);
        assert_eq!(magnitude, None, "magnitude-only detector false-alarmed on golden seed {seed}");
        assert_eq!(
            trend, magnitude,
            "trend path changed the golden false-alarm outcome on seed {seed}"
        );
    }
}
