//! Thread-count determinism of the tick-level profiling layer.
//!
//! The modeled profiling time source (default `DIVERSEAV_PROFILE`) must
//! produce *bit-identical* latency histograms and 25 ms deadline tallies
//! for any `DIVERSEAV_THREADS` value: every recorded quantity is a pure
//! function of the run seed, and every aggregation (histogram bucket
//! adds, `counter_add`, `gauge_max`) commutes, so worker scheduling
//! cannot leak into the merged metrics.
//!
//! One `#[test]` in its own integration binary: it mutates the
//! `DIVERSEAV_THREADS` environment and clears the process-global metrics
//! registry between measurements, so it must not share a process with
//! tests that assert on metrics keys.

use diverseav::AgentMode;
use diverseav_faultinj::{par_map, run_experiment, RunConfig};
use diverseav_obs::hist::HistSnapshot;
use diverseav_obs::metrics;
use diverseav_runtime::DEADLINE_NS;
use diverseav_simworld::lead_slowdown;
use std::collections::BTreeMap;

#[derive(Debug, PartialEq)]
struct ProfileSnapshot {
    hists: BTreeMap<String, HistSnapshot>,
    deadline_counters: BTreeMap<String, u64>,
    worst_gauges: BTreeMap<String, u64>,
}

fn profiled_fanout(threads: &str) -> ProfileSnapshot {
    std::env::set_var("DIVERSEAV_THREADS", threads);
    metrics::clear();
    let cfgs: Vec<RunConfig> = (0..4u64)
        .flat_map(|seed| {
            [AgentMode::RoundRobin, AgentMode::Duplicate].map(|mode| {
                let mut scenario = lead_slowdown();
                scenario.duration = 1.0;
                RunConfig::new(scenario, mode, seed)
            })
        })
        .collect();
    let outcomes = par_map(&cfgs, |cfg| run_experiment(cfg).termination);
    assert_eq!(outcomes.len(), cfgs.len());
    let snap = metrics::snapshot();
    ProfileSnapshot {
        hists: snap.hists.into_iter().filter(|(k, _)| k.starts_with("tick.")).collect(),
        deadline_counters: snap
            .counters
            .into_iter()
            .filter(|(k, _)| k.starts_with("deadline."))
            .collect(),
        // f64 gauges compared as exact bit-patterns via integer ns.
        worst_gauges: snap
            .gauges
            .into_iter()
            .filter(|(k, _)| k.starts_with("deadline."))
            .map(|(k, v)| (k, v as u64))
            .collect(),
    }
}

#[test]
fn modeled_profiles_are_bit_identical_across_thread_counts() {
    let seq = profiled_fanout("1");
    let par = profiled_fanout("4");
    std::env::remove_var("DIVERSEAV_THREADS");

    assert!(!seq.hists.is_empty(), "profiling recorded tick.* histograms");
    assert_eq!(seq.hists, par.hists, "histograms independent of thread count");
    assert_eq!(seq.deadline_counters, par.deadline_counters);
    assert_eq!(seq.worst_gauges, par.worst_gauges);

    // The modeled 40 Hz budget separates the modes: single-agent ticks
    // (RoundRobin) hold 25 ms, duplicated ticks (FD baseline) miss it.
    let ticks = seq.deadline_counters["deadline.ticks"];
    let misses = seq.deadline_counters["deadline.misses"];
    assert!(ticks > 0, "deadline accounting ran");
    assert!(misses > 0, "duplicate-mode runs miss the budget");
    assert!(misses < ticks, "round-robin runs hold the budget");
    assert_eq!(
        seq.deadline_counters["deadline.lead-slowdown.ticks"], ticks,
        "per-scenario tallies cover every profiled tick"
    );
    let worst = seq.worst_gauges["deadline.worst_ns"];
    assert!(worst > DEADLINE_NS, "worst tick exceeds the budget: {worst}");

    let total = &seq.hists["tick.total"];
    assert_eq!(total.count(), ticks, "one total-latency sample per profiled tick");
    assert!(total.p50() < DEADLINE_NS, "median tick holds the budget");
    assert!(total.max > DEADLINE_NS, "worst tick recorded in the histogram too");
}
