//! Cross-crate integration tests: the full train → inject → detect
//! pipeline over short scenarios.

use diverseav::{AgentMode, DetectorConfig, DetectorModel, OnlineDetector};
use diverseav_fabric::{FaultModel, Op, Profile};
use diverseav_faultinj::{
    classify, collect_training_runs, generate_plan, mean_trajectory, run_experiment, CampaignScale,
    FaultModelKind, FaultSpec, OutcomeClass, PlanConfig, RunConfig, Termination,
};
use diverseav_simworld::{lead_slowdown, Scenario, ScenarioKind, SensorConfig, TrajPoint};

fn short(kind: ScenarioKind, duration: f64) -> Scenario {
    let mut s = Scenario::of_kind(kind);
    s.duration = duration;
    s
}

fn tiny_scale() -> CampaignScale {
    CampaignScale {
        n_transient: 3,
        permanent_repeats: 1,
        golden_runs: 2,
        long_route_duration: 30.0,
        training_runs: 1,
    }
}

#[test]
fn detector_trains_and_stays_silent_on_golden_run() {
    let training =
        collect_training_runs(AgentMode::RoundRobin, &tiny_scale(), SensorConfig::default());
    assert_eq!(training.len(), 3, "one run per long route");
    let cfg = DetectorConfig::default();
    let model = DetectorModel::train(&training, &cfg);
    assert!(model.entries() > 20, "model learned state bins");

    let mut rc = RunConfig::new(lead_slowdown(), AgentMode::RoundRobin, 11);
    rc.detector = Some((model, cfg));
    let result = run_experiment(&rc);
    assert_eq!(result.termination, Termination::Completed);
    assert!(result.alarm_time.is_none(), "golden run must not alarm");
    assert!(result.collision_time.is_none());
}

#[test]
fn severe_permanent_gpu_fault_is_detected_or_platform_caught() {
    let training =
        collect_training_runs(AgentMode::RoundRobin, &tiny_scale(), SensorConfig::default());
    let cfg = DetectorConfig::default();
    let model = DetectorModel::train(&training, &cfg);
    // An exponent-bit corruption of every FMax destroys perception.
    let mut rc = RunConfig::new(lead_slowdown(), AgentMode::RoundRobin, 13);
    rc.detector = Some((model, cfg));
    rc.fault = Some(FaultSpec::Fabric {
        unit: 0,
        profile: Profile::Gpu,
        model: FaultModel::Permanent { op: Op::FMax, mask: 1 << 23 },
    });
    let result = run_experiment(&rc);
    assert!(result.fault_activated);
    let caught = result.alarm_time.is_some() || result.termination.is_hang_or_crash();
    assert!(caught, "a severe fault must be caught: {result:?}");
}

#[test]
fn cpu_faults_hang_crash_or_mask_without_safety_impact() {
    // §V-C/§V-D: CPU faults are either platform-detected or masked.
    let scenario = short(ScenarioKind::LeadSlowdown, 12.0);
    let golden = run_experiment(&RunConfig::new(scenario.clone(), AgentMode::RoundRobin, 21));
    let baseline = golden.trajectory.clone();
    let mut hang_crash = 0;
    let mut unsafe_runs = 0;
    for (i, op) in [Op::IAdd, Op::FMul, Op::FAdd, Op::F2I, Op::ILt].iter().enumerate() {
        let mut rc = RunConfig::new(scenario.clone(), AgentMode::RoundRobin, 21);
        rc.fault = Some(FaultSpec::Fabric {
            unit: 0,
            profile: Profile::Cpu,
            model: FaultModel::Permanent { op: *op, mask: 1 << (7 + i) },
        });
        let r = run_experiment(&rc);
        match classify(&r, &baseline, 2.0) {
            OutcomeClass::HangCrash => hang_crash += 1,
            OutcomeClass::Accident | OutcomeClass::TrajViolation => unsafe_runs += 1,
            OutcomeClass::Benign => {}
        }
    }
    assert!(hang_crash >= 1, "some permanent CPU faults must crash or hang");
    assert_eq!(unsafe_runs, 0, "CPU faults must not silently break safety (paper §V-C)");
}

#[test]
fn plan_generation_covers_profiled_opcodes() {
    let scenario = short(ScenarioKind::GhostCutIn, 3.0);
    let profile = run_experiment(&RunConfig::new(scenario, AgentMode::RoundRobin, 31));
    let plan = generate_plan(
        &profile,
        &PlanConfig {
            kind: FaultModelKind::Permanent,
            target: Profile::Gpu,
            n_transient: 0,
            repeats: 2,
            seed: 5,
        },
    );
    assert_eq!(plan.len(), profile.gpu_ops.len() * 2);
    // Sanity: the GPU profile includes the numeric ops of the pipeline.
    let ops: Vec<Op> = profile.gpu_ops.iter().map(|&(op, _)| op).collect();
    for expected in [Op::FAdd, Op::FMul, Op::FFma, Op::FMax, Op::Ld, Op::FLt] {
        assert!(ops.contains(&expected), "GPU profile misses {expected}");
    }
}

#[test]
fn fd_mode_detects_single_unit_fault() {
    // FD baseline: fault on one processor, the clean duplicate disagrees.
    let training =
        collect_training_runs(AgentMode::Duplicate, &tiny_scale(), SensorConfig::default());
    let cfg = DetectorConfig::default();
    let model = DetectorModel::train(&training, &cfg);
    let mut rc = RunConfig::new(short(ScenarioKind::LeadSlowdown, 15.0), AgentMode::Duplicate, 41);
    rc.detector = Some((model, cfg));
    rc.fault = Some(FaultSpec::Fabric {
        unit: 0,
        profile: Profile::Gpu,
        model: FaultModel::Permanent { op: Op::FMax, mask: 1 << 23 },
    });
    let r = run_experiment(&rc);
    assert!(
        r.alarm_time.is_some() || r.termination.is_hang_or_crash(),
        "FD must catch a severe unit-0 fault: {:?}",
        r.termination
    );
}

#[test]
fn replay_matches_online_detection() {
    // The offline sweep path must agree with the online detector.
    let training =
        collect_training_runs(AgentMode::RoundRobin, &tiny_scale(), SensorConfig::default());
    let cfg = DetectorConfig::default();
    let model = DetectorModel::train(&training, &cfg);

    let mut rc =
        RunConfig::new(short(ScenarioKind::FrontAccident, 15.0), AgentMode::RoundRobin, 51);
    rc.detector = Some((model.clone(), cfg));
    rc.collect_training = true;
    rc.fault = Some(FaultSpec::Fabric {
        unit: 0,
        profile: Profile::Gpu,
        model: FaultModel::Permanent { op: Op::FFma, mask: 1 << 30 },
    });
    let r = run_experiment(&rc);
    if !r.termination.is_hang_or_crash() {
        let replayed = OnlineDetector::replay(&model, cfg, &r.training);
        assert_eq!(replayed, r.alarm_time, "offline replay must equal online alarm");
    }
}

#[test]
fn mean_trajectory_baseline_is_stable_across_golden_runs() {
    let scenario = short(ScenarioKind::LeadSlowdown, 10.0);
    let runs: Vec<_> = (0..3)
        .map(|i| run_experiment(&RunConfig::new(scenario.clone(), AgentMode::RoundRobin, 60 + i)))
        .collect();
    let trajs: Vec<&[TrajPoint]> = runs.iter().map(|r| r.trajectory.as_slice()).collect();
    let baseline = mean_trajectory(&trajs);
    for r in &runs {
        let d = diverseav_faultinj::max_traj_divergence(&r.trajectory, &baseline);
        assert!(d < 0.6, "golden runs stay near their mean: {d:.3} m");
    }
}

#[test]
fn transient_faults_are_mostly_masked() {
    // §V-C: the vast majority of single-bit transients have no safety
    // impact. Sample a handful of sites across the dynamic stream.
    let scenario = short(ScenarioKind::LeadSlowdown, 12.0);
    let profile = run_experiment(&RunConfig::new(scenario.clone(), AgentMode::RoundRobin, 71));
    let space = profile.gpu_dyn_instr;
    let golden = profile.trajectory.clone();
    let mut safe = 0;
    let total = 5;
    for k in 0..total {
        let mut rc = RunConfig::new(scenario.clone(), AgentMode::RoundRobin, 71);
        rc.fault = Some(FaultSpec::Fabric {
            unit: 0,
            profile: Profile::Gpu,
            model: FaultModel::Transient {
                instr_index: space / total as u64 * k as u64 + 17,
                mask: 1 << 5,
            },
        });
        let r = run_experiment(&rc);
        if !matches!(classify(&r, &golden, 2.0), OutcomeClass::Accident) {
            safe += 1;
        }
    }
    assert!(safe >= total - 1, "low-bit transients rarely cause accidents: {safe}/{total}");
}
