//! Program construction: a tiny assembler with label fix-ups.

use crate::isa::{f32_to_bits, Instr, Op, Reg, NUM_REGS};

/// A forward-referenceable branch target created by
/// [`ProgramBuilder::new_label`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A validated, immutable fabric program.
///
/// Programs are built with [`ProgramBuilder`] which resolves labels and
/// validates register indices and branch targets, so executing a `Program`
/// can never fault on malformed encodings (only on data-dependent traps).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// The instructions of this program.
    #[inline]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of static instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Incremental builder for fabric [`Program`]s.
///
/// # Example
///
/// ```
/// use diverseav_fabric::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let loop_top = b.new_label();
/// b.ldimm_i(Reg(0), 10);
/// b.bind(loop_top);
/// b.ldimm_i(Reg(1), 1);
/// b.isub(Reg(0), Reg(0), Reg(1));
/// b.jnz(Reg(0), loop_top);
/// b.halt();
/// let prog = b.build();
/// assert!(prog.len() > 0);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: Vec<Option<usize>>,
    /// (instruction index, label) pairs awaiting resolution.
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction offset (useful for size accounting in tests).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Allocate a label that can be bound later with [`bind`](Self::bind).
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current instruction offset.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.instrs.len());
    }

    fn check_reg(r: Reg) -> Reg {
        assert!(r.idx() < NUM_REGS, "register {r} out of range");
        r
    }

    fn push(&mut self, op: Op, dst: Reg, a: Reg, b: Reg, c: Reg, imm: u32) {
        self.instrs.push(Instr::new(
            op,
            Self::check_reg(dst),
            Self::check_reg(a),
            Self::check_reg(b),
            Self::check_reg(c),
            imm,
        ));
    }

    fn push_jump(&mut self, op: Op, cond: Reg, label: Label) {
        self.fixups.push((self.instrs.len(), label));
        self.push(op, Reg(0), cond, Reg(0), Reg(0), u32::MAX);
    }

    /// Resolve all labels and return the finished program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn build(mut self) -> Program {
        for (at, label) in self.fixups.drain(..) {
            let target = self.labels[label.0].expect("jump to unbound label");
            self.instrs[at].imm = target as u32;
        }
        Program { instrs: self.instrs }
    }

    // --- float ALU ---

    /// `dst = a + b` (f32)
    pub fn fadd(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::FAdd, dst, a, b, Reg(0), 0);
    }
    /// `dst = a - b` (f32)
    pub fn fsub(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::FSub, dst, a, b, Reg(0), 0);
    }
    /// `dst = a * b` (f32)
    pub fn fmul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::FMul, dst, a, b, Reg(0), 0);
    }
    /// `dst = a / b` (f32)
    pub fn fdiv(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::FDiv, dst, a, b, Reg(0), 0);
    }
    /// `dst = min(a, b)` (f32)
    pub fn fmin(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::FMin, dst, a, b, Reg(0), 0);
    }
    /// `dst = max(a, b)` (f32)
    pub fn fmax(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::FMax, dst, a, b, Reg(0), 0);
    }
    /// `dst = |a|` (f32)
    pub fn fabs(&mut self, dst: Reg, a: Reg) {
        self.push(Op::FAbs, dst, a, Reg(0), Reg(0), 0);
    }
    /// `dst = -a` (f32)
    pub fn fneg(&mut self, dst: Reg, a: Reg) {
        self.push(Op::FNeg, dst, a, Reg(0), Reg(0), 0);
    }
    /// `dst = sqrt(a)` (f32)
    pub fn fsqrt(&mut self, dst: Reg, a: Reg) {
        self.push(Op::FSqrt, dst, a, Reg(0), Reg(0), 0);
    }
    /// `dst = a * b + c` (f32)
    pub fn ffma(&mut self, dst: Reg, a: Reg, b: Reg, c: Reg) {
        self.push(Op::FFma, dst, a, b, c, 0);
    }

    // --- integer ALU ---

    /// `dst = a + b` (u32, wrapping)
    pub fn iadd(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::IAdd, dst, a, b, Reg(0), 0);
    }
    /// `dst = a - b` (u32, wrapping)
    pub fn isub(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::ISub, dst, a, b, Reg(0), 0);
    }
    /// `dst = a * b` (u32, wrapping)
    pub fn imul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::IMul, dst, a, b, Reg(0), 0);
    }
    /// `dst = a & b`
    pub fn iand(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::IAnd, dst, a, b, Reg(0), 0);
    }
    /// `dst = a | b`
    pub fn ior(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::IOr, dst, a, b, Reg(0), 0);
    }
    /// `dst = a ^ b`
    pub fn ixor(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::IXor, dst, a, b, Reg(0), 0);
    }
    /// `dst = a << (b & 31)`
    pub fn ishl(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::IShl, dst, a, b, Reg(0), 0);
    }
    /// `dst = a >> (b & 31)`
    pub fn ishr(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::IShr, dst, a, b, Reg(0), 0);
    }

    // --- compares & select ---

    /// `dst = (a < b) as u32` (f32)
    pub fn flt(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::FLt, dst, a, b, Reg(0), 0);
    }
    /// `dst = (a <= b) as u32` (f32)
    pub fn fle(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::FLe, dst, a, b, Reg(0), 0);
    }
    /// `dst = (a < b) as u32` (u32)
    pub fn ilt(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::ILt, dst, a, b, Reg(0), 0);
    }
    /// `dst = (a == b) as u32` (u32)
    pub fn ieq(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.push(Op::IEq, dst, a, b, Reg(0), 0);
    }
    /// `dst = if cond != 0 { a } else { b }`
    pub fn sel(&mut self, dst: Reg, cond: Reg, a: Reg, b: Reg) {
        self.push(Op::Sel, dst, cond, a, b, 0);
    }

    // --- moves & immediates ---

    /// `dst = a`
    pub fn mov(&mut self, dst: Reg, a: Reg) {
        self.push(Op::Mov, dst, a, Reg(0), Reg(0), 0);
    }
    /// `dst = imm` (f32 payload)
    pub fn ldimm_f(&mut self, dst: Reg, imm: f32) {
        self.push(Op::LdImm, dst, Reg(0), Reg(0), Reg(0), f32_to_bits(imm));
    }
    /// `dst = imm` (raw u32 payload)
    pub fn ldimm_i(&mut self, dst: Reg, imm: u32) {
        self.push(Op::LdImm, dst, Reg(0), Reg(0), Reg(0), imm);
    }

    // --- memory ---

    /// `dst = mem[a + offset]`
    pub fn ld(&mut self, dst: Reg, addr: Reg, offset: u32) {
        self.push(Op::Ld, dst, addr, Reg(0), Reg(0), offset);
    }
    /// `mem[a + offset] = b`
    pub fn st(&mut self, addr: Reg, src: Reg, offset: u32) {
        self.push(Op::St, Reg(0), addr, src, Reg(0), offset);
    }

    // --- control flow ---

    /// unconditional jump
    pub fn jmp(&mut self, target: Label) {
        self.push_jump(Op::Jmp, Reg(0), target);
    }
    /// jump if `cond == 0`
    pub fn jz(&mut self, cond: Reg, target: Label) {
        self.push_jump(Op::Jz, cond, target);
    }
    /// jump if `cond != 0`
    pub fn jnz(&mut self, cond: Reg, target: Label) {
        self.push_jump(Op::Jnz, cond, target);
    }

    // --- conversions & misc ---

    /// `dst = a as u32` (f32 → u32, saturating at 0 and `u32::MAX`)
    pub fn f2i(&mut self, dst: Reg, a: Reg) {
        self.push(Op::F2I, dst, a, Reg(0), Reg(0), 0);
    }
    /// `dst = a as f32`
    pub fn i2f(&mut self, dst: Reg, a: Reg) {
        self.push(Op::I2F, dst, a, Reg(0), Reg(0), 0);
    }
    /// `dst = thread index`
    pub fn tid(&mut self, dst: Reg) {
        self.push(Op::Tid, dst, Reg(0), Reg(0), Reg(0), 0);
    }
    /// stop execution
    pub fn halt(&mut self) {
        self.push(Op::Halt, Reg(0), Reg(0), Reg(0), Reg(0), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_fixups_resolve() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.jmp(end);
        b.ldimm_i(Reg(0), 42);
        b.bind(end);
        b.halt();
        let p = b.build();
        assert_eq!(p.instrs()[0].imm, 2, "jump should target the halt");
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jmp(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_register_panics() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg(64), Reg(0));
    }

    #[test]
    fn empty_program() {
        let p = ProgramBuilder::new().build();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn ldimm_f_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(Reg(1), -2.5);
        let p = b.build();
        assert_eq!(f32::from_bits(p.instrs()[0].imm), -2.5);
    }
}
