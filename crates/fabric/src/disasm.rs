//! Disassembler: human-readable listings of fabric programs, for
//! debugging kernels and inspecting injection sites.

use crate::isa::{bits_to_f32, Instr, Op};
use crate::program::Program;
use std::fmt::Write as _;

/// Render one instruction at program offset `at`.
pub fn disasm_instr(ins: &Instr, at: usize) -> String {
    let Instr { op, dst, a, b, c, imm } = *ins;
    match op {
        Op::FAdd | Op::FSub | Op::FMul | Op::FDiv | Op::FMin | Op::FMax => {
            format!("{at:4}: {op:<6} {dst}, {a}, {b}")
        }
        Op::FAbs | Op::FNeg | Op::FSqrt | Op::Mov | Op::F2I | Op::I2F => {
            format!("{at:4}: {op:<6} {dst}, {a}")
        }
        Op::FFma => format!("{at:4}: {op:<6} {dst}, {a}, {b}, {c}"),
        Op::IAdd | Op::ISub | Op::IMul | Op::IAnd | Op::IOr | Op::IXor | Op::IShl | Op::IShr => {
            format!("{at:4}: {op:<6} {dst}, {a}, {b}")
        }
        Op::FLt | Op::FLe | Op::ILt | Op::IEq => format!("{at:4}: {op:<6} {dst}, {a}, {b}"),
        Op::Sel => format!("{at:4}: {op:<6} {dst}, {a} ? {b} : {c}"),
        Op::LdImm => {
            let f = bits_to_f32(imm);
            if f.is_finite() && (f == 0.0 || f.abs() > 1e-6) && f.abs() < 1e9 && imm > 0xFFFF {
                format!("{at:4}: {op:<6} {dst}, {f}")
            } else {
                format!("{at:4}: {op:<6} {dst}, {imm:#x}")
            }
        }
        Op::Ld => format!("{at:4}: {op:<6} {dst}, [{a} + {imm}]"),
        Op::St => format!("{at:4}: {op:<6} [{a} + {imm}], {b}"),
        Op::Jmp => format!("{at:4}: {op:<6} -> {imm}"),
        Op::Jz => format!("{at:4}: {op:<6} {a} == 0 -> {imm}"),
        Op::Jnz => format!("{at:4}: {op:<6} {a} != 0 -> {imm}"),
        Op::Tid => format!("{at:4}: {op:<6} {dst}"),
        Op::Halt => format!("{at:4}: {op}"),
    }
}

/// Render a whole program as a listing, one instruction per line.
pub fn disasm(prog: &Program) -> String {
    let mut out = String::new();
    for (i, ins) in prog.instrs().iter().enumerate() {
        let _ = writeln!(out, "{}", disasm_instr(ins, i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;
    use crate::program::ProgramBuilder;

    #[test]
    fn listing_covers_every_instruction() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.ldimm_f(Reg(0), 1.5);
        b.ldimm_i(Reg(1), 3);
        b.fadd(Reg(2), Reg(0), Reg(0));
        b.ffma(Reg(3), Reg(0), Reg(2), Reg(0));
        b.sel(Reg(4), Reg(1), Reg(0), Reg(2));
        b.ld(Reg(5), Reg(1), 10);
        b.st(Reg(1), Reg(5), 12);
        b.jz(Reg(1), end);
        b.tid(Reg(6));
        b.bind(end);
        b.halt();
        let p = b.build();
        let text = disasm(&p);
        assert_eq!(text.lines().count(), p.len());
        assert!(text.contains("LdImm"));
        assert!(text.contains("FFma"));
        assert!(text.contains("? r0 : r2"));
        assert!(text.contains("[r1 + 10]"));
        assert!(text.contains("-> 9"), "jump target resolved:\n{text}");
        assert!(text.contains("Halt"));
    }

    #[test]
    fn float_immediates_render_as_floats() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(Reg(0), 2.5);
        let p = b.build();
        assert!(disasm(&p).contains("2.5"));
    }

    #[test]
    fn small_int_immediates_render_as_hex() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(Reg(0), 7);
        let p = b.build();
        assert!(disasm(&p).contains("0x7"));
    }
}
