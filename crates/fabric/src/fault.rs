//! Fault models and injection bookkeeping.
//!
//! Implements the paper's §II-B architectural fault model: the destination
//! register of an executing opcode is XOR-ed with a mask — once for a
//! *transient* fault (a single selected dynamic instruction), or on every
//! dynamic instance of a selected opcode for a *permanent* fault.

use crate::isa::Op;
use std::fmt;

/// A fault to be injected into a fabric.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultModel {
    /// Corrupt the destination register of exactly one dynamic instruction,
    /// identified by its position in the fabric's global dynamic-instruction
    /// stream (the NVBitFI profiling-pass index).
    Transient {
        /// Zero-based dynamic-instruction index at which to inject.
        instr_index: u64,
        /// XOR mask applied to the destination register.
        mask: u32,
    },
    /// Corrupt the destination register of *every* dynamic instance of
    /// `op` for the remainder of the run.
    Permanent {
        /// The targeted opcode.
        op: Op,
        /// XOR mask applied to each destination write.
        mask: u32,
    },
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::Transient { instr_index, mask } => {
                write!(f, "transient@{instr_index} mask={mask:#010x}")
            }
            FaultModel::Permanent { op, mask } => {
                write!(f, "permanent({op}) mask={mask:#010x}")
            }
        }
    }
}

/// Runtime state of an injected fault: the model plus activation accounting.
///
/// A fault is *active* once it has corrupted at least one destination
/// register; the campaign manager uses this to compute the paper's
/// "#Active" column in Table I.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultState {
    model: FaultModel,
    activations: u64,
}

impl FaultState {
    /// Arm a fault for injection.
    pub fn new(model: FaultModel) -> Self {
        FaultState { model, activations: 0 }
    }

    /// The fault model this state tracks.
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// Number of destination-register corruptions performed so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Whether the fault corrupted at least one register.
    pub fn is_active(&self) -> bool {
        self.activations > 0
    }

    /// Decide whether the instruction that just executed should have its
    /// destination corrupted, and if so return the XOR mask.
    ///
    /// `dyn_index` is the zero-based index of the instruction in the
    /// fabric's global dynamic stream; `op` is its opcode. Call only for
    /// opcodes with a destination register.
    #[inline]
    pub fn poll(&mut self, dyn_index: u64, op: Op) -> Option<u32> {
        match self.model {
            FaultModel::Transient { instr_index, mask } => {
                if dyn_index == instr_index {
                    self.activations += 1;
                    Some(mask)
                } else {
                    None
                }
            }
            FaultModel::Permanent { op: target, mask } => {
                if op == target {
                    self.activations += 1;
                    Some(mask)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_fires_once() {
        let mut f = FaultState::new(FaultModel::Transient { instr_index: 5, mask: 0xff });
        assert_eq!(f.poll(4, Op::FAdd), None);
        assert_eq!(f.poll(5, Op::FMul), Some(0xff));
        assert_eq!(f.poll(6, Op::FMul), None);
        assert_eq!(f.activations(), 1);
        assert!(f.is_active());
    }

    #[test]
    fn permanent_fires_on_every_instance() {
        let mut f = FaultState::new(FaultModel::Permanent { op: Op::FMul, mask: 1 });
        assert_eq!(f.poll(0, Op::FAdd), None);
        assert_eq!(f.poll(1, Op::FMul), Some(1));
        assert_eq!(f.poll(2, Op::FMul), Some(1));
        assert_eq!(f.activations(), 2);
    }

    #[test]
    fn inactive_until_polled() {
        let f = FaultState::new(FaultModel::Transient { instr_index: 0, mask: 1 });
        assert!(!f.is_active());
        assert_eq!(f.activations(), 0);
    }

    #[test]
    fn display_formats() {
        let t = FaultModel::Transient { instr_index: 3, mask: 0x10 };
        assert!(t.to_string().contains("transient@3"));
        let p = FaultModel::Permanent { op: Op::FAdd, mask: 0x10 };
        assert!(p.to_string().contains("permanent(FAdd)"));
    }
}
