//! Execution statistics: dynamic-instruction accounting.
//!
//! Used for (i) the NVBitFI-style profiling pass that sizes the transient
//! fault-site space, and (ii) the compute-utilization proxy of Table II.

use crate::isa::{Op, ALL_OPS};
use std::fmt;
use std::ops::AddAssign;

/// Dynamic-instruction counters for one fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecStats {
    total: u64,
    per_op: [u64; ALL_OPS.len()],
    /// Number of scalar program runs + kernel launches.
    launches: u64,
}

impl Default for ExecStats {
    fn default() -> Self {
        ExecStats { total: 0, per_op: [0; ALL_OPS.len()], launches: 0 }
    }
}

impl ExecStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total dynamic instructions executed.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Dynamic instructions executed for one opcode.
    #[inline]
    pub fn count(&self, op: Op) -> u64 {
        self.per_op[op.index()]
    }

    /// Number of scalar runs and kernel launches recorded.
    #[inline]
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Record one executed instruction.
    #[inline]
    pub(crate) fn record(&mut self, op: Op) {
        self.total += 1;
        self.per_op[op.index()] += 1;
    }

    /// Record `n` executions of one opcode at once — the lockstep batch
    /// engine amortizes one decode over all active lanes and accounts the
    /// whole mask here. Equivalent to `n` calls to [`record`](Self::record).
    #[inline]
    pub(crate) fn record_n(&mut self, op: Op, n: u64) {
        self.total += n;
        self.per_op[op.index()] += n;
    }

    /// Record one program run / kernel launch.
    #[inline]
    pub(crate) fn record_launch(&mut self) {
        self.launches += 1;
    }

    /// Opcodes that executed at least once, with their counts.
    ///
    /// Permanent-fault campaigns enumerate exactly this set, mirroring the
    /// paper's "the Sensorimotor agent uses 131 Intel opcodes" profiling.
    pub fn used_ops(&self) -> Vec<(Op, u64)> {
        ALL_OPS
            .iter()
            .filter_map(|&op| {
                let n = self.count(op);
                (n > 0).then_some((op, n))
            })
            .collect()
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl AddAssign<&ExecStats> for ExecStats {
    fn add_assign(&mut self, rhs: &ExecStats) {
        self.total += rhs.total;
        self.launches += rhs.launches;
        for (a, b) in self.per_op.iter_mut().zip(rhs.per_op.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} dynamic instructions over {} launches", self.total, self.launches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = ExecStats::new();
        s.record(Op::FAdd);
        s.record(Op::FAdd);
        s.record(Op::Ld);
        s.record_launch();
        assert_eq!(s.total(), 3);
        assert_eq!(s.count(Op::FAdd), 2);
        assert_eq!(s.count(Op::Ld), 1);
        assert_eq!(s.count(Op::Halt), 0);
        assert_eq!(s.launches(), 1);
    }

    #[test]
    fn used_ops_filters_zero_counts() {
        let mut s = ExecStats::new();
        s.record(Op::FMul);
        let used = s.used_ops();
        assert_eq!(used, vec![(Op::FMul, 1)]);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = ExecStats::new();
        a.record(Op::FAdd);
        let mut b = ExecStats::new();
        b.record(Op::FAdd);
        b.record(Op::Halt);
        b.record_launch();
        a += &b;
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(Op::FAdd), 2);
        assert_eq!(a.launches(), 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = ExecStats::new();
        s.record(Op::FAdd);
        s.reset();
        assert_eq!(s.total(), 0);
        assert!(s.used_ops().is_empty());
    }

    #[test]
    fn display_nonempty() {
        assert!(!ExecStats::new().to_string().is_empty());
    }
}
