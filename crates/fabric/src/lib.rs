//! # diverseav-fabric
//!
//! An instruction-level compute-fabric simulator used as the fault-injection
//! substrate for the DiverseAV reproduction (Jha et al., DSN 2022).
//!
//! The paper injects architectural-level faults with NVBitFI (GPU) and PinFI
//! (CPU): the destination register of an executing opcode is XOR-ed with a
//! mask, either for a single dynamic instruction (*transient*) or for every
//! dynamic instance of a selected opcode (*permanent*). Neither tool can run
//! here, so this crate provides a small register-based virtual machine that
//! implements the same fault model natively:
//!
//! * a 64-entry register file of raw 32-bit words (bit-flips XOR raw bits),
//! * a numeric/scalar ISA with floating-point and integer ALU ops, compares,
//!   selects, register-addressed loads/stores, branches, and conversions,
//! * **scalar** execution (CPU profile) and **data-parallel kernel**
//!   execution over N threads (GPU profile),
//! * traps (out-of-bounds access, invalid branch target, watchdog budget)
//!   so that corrupted addresses and loop bounds produce crashes and hangs
//!   organically, mirroring the CPU failure modes observed in the paper,
//! * dynamic-instruction counting for fault-site sampling (the NVBitFI
//!   profiling pass) and for the resource accounting of Table II.
//!
//! ## Example
//!
//! ```
//! use diverseav_fabric::{Fabric, Profile, ProgramBuilder, Reg};
//!
//! # fn main() -> Result<(), diverseav_fabric::Trap> {
//! let mut b = ProgramBuilder::new();
//! let (r0, r1, r2) = (Reg(0), Reg(1), Reg(2));
//! b.ldimm_f(r0, 2.0);
//! b.ldimm_f(r1, 3.0);
//! b.fmul(r2, r0, r1);
//! b.halt();
//! let prog = b.build();
//!
//! let mut fabric = Fabric::new(Profile::Cpu);
//! let mut ctx = fabric.new_context(0);
//! fabric.run_scalar(&prog, &mut ctx, 1_000)?;
//! assert_eq!(ctx.reg_f(r2), 6.0);
//! # Ok(())
//! # }
//! ```

pub mod disasm;
pub mod fault;
pub mod isa;
pub mod program;
pub mod stats;
pub mod vm;

pub use disasm::{disasm, disasm_instr};
pub use fault::{FaultModel, FaultState};
pub use isa::{bits_to_f32, f32_to_bits, Instr, Op, Reg, ALL_OPS, NUM_REGS};
pub use program::{Label, Program, ProgramBuilder};
pub use stats::ExecStats;
pub use vm::{Context, Fabric, Profile, Trap, LANES};
