//! Instruction-set definition for the compute fabric.
//!
//! Registers hold raw 32-bit words; floating-point ops reinterpret them as
//! IEEE-754 `f32`, integer ops as `u32`. Bit-level fault injection XORs the
//! raw word, so the same mechanism corrupts floats, integers, and addresses.

use std::fmt;

/// Number of architectural registers per execution context.
pub const NUM_REGS: usize = 64;

/// A register index.
///
/// Must be `< NUM_REGS`; the [`ProgramBuilder`](crate::ProgramBuilder)
/// validates this at program-construction time.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Reg(pub u8);

impl Reg {
    /// Index into a register file.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Opcodes of the fabric ISA.
///
/// The set is deliberately small but spans the categories the paper's fault
/// model exercises: floating-point arithmetic (the GPU compute kernels),
/// integer/address arithmetic, memory access, compares/selects, and control
/// flow (the CPU-profile programs). Permanent-fault campaigns enumerate
/// [`ALL_OPS`], mirroring the paper's per-opcode GPU/CPU campaigns.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// `dst = a + b` (f32)
    FAdd,
    /// `dst = a - b` (f32)
    FSub,
    /// `dst = a * b` (f32)
    FMul,
    /// `dst = a / b` (f32)
    FDiv,
    /// `dst = min(a, b)` (f32)
    FMin,
    /// `dst = max(a, b)` (f32)
    FMax,
    /// `dst = |a|` (f32)
    FAbs,
    /// `dst = -a` (f32)
    FNeg,
    /// `dst = sqrt(a)` (f32)
    FSqrt,
    /// `dst = a * b + c` (f32 fused multiply-add)
    FFma,
    /// `dst = a + b` (u32, wrapping)
    IAdd,
    /// `dst = a - b` (u32, wrapping)
    ISub,
    /// `dst = a * b` (u32, wrapping)
    IMul,
    /// `dst = a & b`
    IAnd,
    /// `dst = a | b`
    IOr,
    /// `dst = a ^ b`
    IXor,
    /// `dst = a << (b & 31)`
    IShl,
    /// `dst = a >> (b & 31)`
    IShr,
    /// `dst = (a < b) as u32` (f32 compare)
    FLt,
    /// `dst = (a <= b) as u32` (f32 compare)
    FLe,
    /// `dst = (a < b) as u32` (u32 compare)
    ILt,
    /// `dst = (a == b) as u32` (u32 compare)
    IEq,
    /// `dst = if a != 0 { b } else { c }`
    Sel,
    /// `dst = a`
    Mov,
    /// `dst = imm` (raw 32-bit word; also used for f32 immediates)
    LdImm,
    /// `dst = mem[a + imm]` — traps on out-of-bounds
    Ld,
    /// `mem[a + imm] = b` — traps on out-of-bounds
    St,
    /// unconditional jump to `imm`
    Jmp,
    /// jump to `imm` if `a == 0`
    Jz,
    /// jump to `imm` if `a != 0`
    Jnz,
    /// `dst = (a as f32) as u32-truncated-int` (f32 → u32 saturating at 0)
    F2I,
    /// `dst = a as f32` (u32 → f32)
    I2F,
    /// `dst = thread index` (0 in scalar execution)
    Tid,
    /// stop execution
    Halt,
}

/// All opcodes, in a stable order, for permanent-fault campaign enumeration.
pub const ALL_OPS: &[Op] = &[
    Op::FAdd,
    Op::FSub,
    Op::FMul,
    Op::FDiv,
    Op::FMin,
    Op::FMax,
    Op::FAbs,
    Op::FNeg,
    Op::FSqrt,
    Op::FFma,
    Op::IAdd,
    Op::ISub,
    Op::IMul,
    Op::IAnd,
    Op::IOr,
    Op::IXor,
    Op::IShl,
    Op::IShr,
    Op::FLt,
    Op::FLe,
    Op::ILt,
    Op::IEq,
    Op::Sel,
    Op::Mov,
    Op::LdImm,
    Op::Ld,
    Op::St,
    Op::Jmp,
    Op::Jz,
    Op::Jnz,
    Op::F2I,
    Op::I2F,
    Op::Tid,
    Op::Halt,
];

impl Op {
    /// Whether this opcode writes a destination register.
    ///
    /// Only opcodes with a destination register are injectable under the
    /// paper's fault model ("corrupt the destination register of the
    /// executing opcode"); stores, branches, and `Halt` are not.
    #[inline]
    pub fn has_dst(self) -> bool {
        !matches!(self, Op::St | Op::Jmp | Op::Jz | Op::Jnz | Op::Halt)
    }

    /// Stable index of this opcode within [`ALL_OPS`].
    #[inline]
    pub fn index(self) -> usize {
        // ALL_OPS is ordered by declaration; a match keeps this O(1).
        match self {
            Op::FAdd => 0,
            Op::FSub => 1,
            Op::FMul => 2,
            Op::FDiv => 3,
            Op::FMin => 4,
            Op::FMax => 5,
            Op::FAbs => 6,
            Op::FNeg => 7,
            Op::FSqrt => 8,
            Op::FFma => 9,
            Op::IAdd => 10,
            Op::ISub => 11,
            Op::IMul => 12,
            Op::IAnd => 13,
            Op::IOr => 14,
            Op::IXor => 15,
            Op::IShl => 16,
            Op::IShr => 17,
            Op::FLt => 18,
            Op::FLe => 19,
            Op::ILt => 20,
            Op::IEq => 21,
            Op::Sel => 22,
            Op::Mov => 23,
            Op::LdImm => 24,
            Op::Ld => 25,
            Op::St => 26,
            Op::Jmp => 27,
            Op::Jz => 28,
            Op::Jnz => 29,
            Op::F2I => 30,
            Op::I2F => 31,
            Op::Tid => 32,
            Op::Halt => 33,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One decoded fabric instruction.
///
/// `imm` holds raw immediate bits: an `f32` payload for [`Op::LdImm`], a
/// word offset for [`Op::Ld`]/[`Op::St`], or a branch target for the jump
/// opcodes.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Instr {
    /// Opcode.
    pub op: Op,
    /// Destination register (ignored by opcodes without one).
    pub dst: Reg,
    /// First source register.
    pub a: Reg,
    /// Second source register.
    pub b: Reg,
    /// Third source register (FFma addend, Sel else-branch).
    pub c: Reg,
    /// Immediate payload (see type-level docs).
    pub imm: u32,
}

impl Instr {
    /// Construct an instruction with all fields explicit.
    pub fn new(op: Op, dst: Reg, a: Reg, b: Reg, c: Reg, imm: u32) -> Self {
        Instr { op, dst, a, b, c, imm }
    }
}

/// Reinterpret an `f32` as its raw bit pattern.
#[inline]
pub fn f32_to_bits(x: f32) -> u32 {
    x.to_bits()
}

/// Reinterpret a raw bit pattern as an `f32`.
#[inline]
pub fn bits_to_f32(w: u32) -> f32 {
    f32::from_bits(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ops_index_is_consistent() {
        for (i, op) in ALL_OPS.iter().enumerate() {
            assert_eq!(op.index(), i, "index mismatch for {op}");
        }
    }

    #[test]
    fn dst_writing_classification() {
        assert!(Op::FAdd.has_dst());
        assert!(Op::Ld.has_dst());
        assert!(Op::Tid.has_dst());
        assert!(!Op::St.has_dst());
        assert!(!Op::Jmp.has_dst());
        assert!(!Op::Jz.has_dst());
        assert!(!Op::Jnz.has_dst());
        assert!(!Op::Halt.has_dst());
    }

    #[test]
    fn float_bit_roundtrip() {
        for x in [0.0f32, -1.5, 3.25e7, f32::MIN_POSITIVE] {
            assert_eq!(bits_to_f32(f32_to_bits(x)), x);
        }
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(Reg(7).idx(), 7);
    }

    #[test]
    fn op_display_nonempty() {
        for op in ALL_OPS {
            assert!(!op.to_string().is_empty());
        }
    }
}
