//! The fabric interpreter: scalar (CPU-profile) and data-parallel
//! (GPU-profile) execution with trap semantics and fault injection.

use crate::fault::{FaultModel, FaultState};
use crate::isa::{bits_to_f32, f32_to_bits, Op, Reg, NUM_REGS};
use crate::program::Program;
use crate::stats::ExecStats;
use std::error::Error;
use std::fmt;

/// Which processing element a fabric models.
///
/// The profiles share an ISA; the distinction selects the fault-injection
/// *target* (the paper's "CPU vs GPU" injection-site axis) and labels the
/// resource accounting of Table II.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Profile {
    /// Scalar control/glue processor (PinFI target analogue).
    Cpu,
    /// Data-parallel numeric processor (NVBitFI target analogue).
    Gpu,
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Profile::Cpu => write!(f, "CPU"),
            Profile::Gpu => write!(f, "GPU"),
        }
    }
}

/// Abnormal termination of a fabric execution.
///
/// Traps are the fabric-level manifestation of the paper's *crash*
/// (`OutOfBounds`, `InvalidTarget`) and *hang* (`Watchdog`) outcome classes:
/// corrupted address registers fault on access, and corrupted loop counters
/// exhaust the watchdog budget.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// A load or store addressed memory outside the context.
    OutOfBounds {
        /// The offending word address.
        addr: u32,
    },
    /// A branch targeted an address outside the program.
    InvalidTarget {
        /// The offending target.
        target: u32,
    },
    /// The instruction budget was exhausted (hang detector).
    Watchdog,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfBounds { addr } => write!(f, "out-of-bounds access at word {addr}"),
            Trap::InvalidTarget { target } => write!(f, "invalid branch target {target}"),
            Trap::Watchdog => write!(f, "watchdog budget exhausted"),
        }
    }
}

impl Error for Trap {}

/// An execution context: word-addressed memory plus a persistent scalar
/// register file.
///
/// Each agent owns its own contexts (its *private state*, in the paper's
/// terms) while the [`Fabric`] — the shared processor — owns the fault state
/// and instruction counters.
#[derive(Clone, Debug, PartialEq)]
pub struct Context {
    /// Word-addressed memory (raw 32-bit words).
    pub mem: Vec<u32>,
    /// Scalar register file, persisted across `run_scalar` calls.
    pub regs: [u32; NUM_REGS],
}

impl Context {
    /// Create a context with `words` words of zeroed memory.
    pub fn new(words: usize) -> Self {
        Context { mem: vec![0; words], regs: [0; NUM_REGS] }
    }

    /// Read a register as `f32`.
    #[inline]
    pub fn reg_f(&self, r: Reg) -> f32 {
        bits_to_f32(self.regs[r.idx()])
    }

    /// Read a register as raw `u32`.
    #[inline]
    pub fn reg_i(&self, r: Reg) -> u32 {
        self.regs[r.idx()]
    }

    /// Write a register as `f32`.
    #[inline]
    pub fn set_reg_f(&mut self, r: Reg, v: f32) {
        self.regs[r.idx()] = f32_to_bits(v);
    }

    /// Write a register as raw `u32`.
    #[inline]
    pub fn set_reg_i(&mut self, r: Reg, v: u32) {
        self.regs[r.idx()] = v;
    }

    /// Read memory word `addr` as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range (host-side accessor; fabric-side
    /// accesses trap instead).
    #[inline]
    pub fn read_f32(&self, addr: usize) -> f32 {
        bits_to_f32(self.mem[addr])
    }

    /// Write memory word `addr` as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn write_f32(&mut self, addr: usize, v: f32) {
        self.mem[addr] = f32_to_bits(v);
    }

    /// Copy a float slice into memory starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the destination range is out of bounds.
    pub fn write_slice_f32(&mut self, addr: usize, data: &[f32]) {
        for (i, &v) in data.iter().enumerate() {
            self.mem[addr + i] = f32_to_bits(v);
        }
    }

    /// Read `len` floats starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the source range is out of bounds.
    pub fn read_slice_f32(&self, addr: usize, len: usize) -> Vec<f32> {
        self.mem[addr..addr + len].iter().map(|&w| bits_to_f32(w)).collect()
    }

    /// Memory footprint in bytes (Table II accounting).
    pub fn bytes(&self) -> usize {
        self.mem.len() * 4 + NUM_REGS * 4
    }
}

/// A processing element: interpreter state shared by everything that runs
/// on this "chip" — the dynamic-instruction counter, execution statistics,
/// and at most one injected fault.
///
/// Sharing one `Fabric` between DiverseAV's two agents is what makes a
/// *permanent* fault affect both agents (they time-multiplex the same
/// processor), while a *transient* fault lands in whichever agent happens to
/// execute the targeted dynamic instruction — exactly the paper's §VI-A
/// independence argument.
#[derive(Clone, Debug)]
pub struct Fabric {
    profile: Profile,
    stats: ExecStats,
    fault: Option<FaultState>,
    dyn_counter: u64,
}

impl Fabric {
    /// Create a fabric with the given profile.
    pub fn new(profile: Profile) -> Self {
        Fabric { profile, stats: ExecStats::new(), fault: None, dyn_counter: 0 }
    }

    /// The fabric's profile (CPU or GPU).
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// Execution statistics accumulated since the last reset.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Total dynamic instructions executed since the last
    /// [`reset_for_run`](Self::reset_for_run) — the transient fault-site
    /// space for plan generation.
    pub fn dyn_instr_count(&self) -> u64 {
        self.dyn_counter
    }

    /// Allocate an execution context with `words` words of memory.
    pub fn new_context(&self, words: usize) -> Context {
        Context::new(words)
    }

    /// Arm a fault for this fabric. Replaces any previously armed fault.
    pub fn inject(&mut self, model: FaultModel) {
        self.fault = Some(FaultState::new(model));
    }

    /// Remove any armed fault, returning its final state.
    pub fn clear_fault(&mut self) -> Option<FaultState> {
        self.fault.take()
    }

    /// The armed fault's state, if any.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.fault.as_ref()
    }

    /// Reset the dynamic-instruction counter, statistics, and fault state
    /// ahead of a new experimental run.
    pub fn reset_for_run(&mut self) {
        self.stats.reset();
        self.dyn_counter = 0;
        self.fault = None;
    }

    /// Run `prog` in scalar mode using the context's persistent register
    /// file.
    ///
    /// Returns the number of instructions executed.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on out-of-bounds access, invalid branch target,
    /// or when more than `budget` instructions execute (hang).
    pub fn run_scalar(
        &mut self,
        prog: &Program,
        ctx: &mut Context,
        budget: u64,
    ) -> Result<u64, Trap> {
        self.stats.record_launch();
        let mut regs = ctx.regs;
        let r = self.exec(prog, &mut regs, &mut ctx.mem, 0, budget);
        ctx.regs = regs;
        r
    }

    /// Launch `prog` as a data-parallel kernel over `n_threads` threads.
    ///
    /// Each thread starts from a zeroed register file with `args` preloaded
    /// and its index available via [`Op::Tid`]; threads share the context's
    /// memory and run sequentially in thread order (the fabric models a
    /// time-multiplexed processor, not a parallel machine).
    ///
    /// Returns the total number of instructions executed.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if any thread traps; `budget_per_thread` bounds
    /// each thread's instruction count.
    pub fn run_kernel(
        &mut self,
        prog: &Program,
        ctx: &mut Context,
        n_threads: u32,
        args: &[(Reg, u32)],
        budget_per_thread: u64,
    ) -> Result<u64, Trap> {
        self.stats.record_launch();
        let mut total = 0u64;
        for t in 0..n_threads {
            let mut regs = [0u32; NUM_REGS];
            for &(r, v) in args {
                regs[r.idx()] = v;
            }
            total += self.exec(prog, &mut regs, &mut ctx.mem, t, budget_per_thread)?;
        }
        Ok(total)
    }

    #[inline(always)]
    fn exec(
        &mut self,
        prog: &Program,
        regs: &mut [u32; NUM_REGS],
        mem: &mut [u32],
        tid: u32,
        budget: u64,
    ) -> Result<u64, Trap> {
        let instrs = prog.instrs();
        let mut pc = 0usize;
        let mut executed = 0u64;
        loop {
            let Some(ins) = instrs.get(pc) else {
                // Falling off the end is an implicit halt.
                return Ok(executed);
            };
            if executed >= budget {
                return Err(Trap::Watchdog);
            }
            executed += 1;
            self.stats.record(ins.op);
            let dyn_index = self.dyn_counter;
            self.dyn_counter += 1;
            pc += 1;

            let fa = bits_to_f32(regs[ins.a.idx()]);
            let fb = bits_to_f32(regs[ins.b.idx()]);
            let ia = regs[ins.a.idx()];
            let ib = regs[ins.b.idx()];

            let wrote: Option<u32> = match ins.op {
                Op::FAdd => Some(f32_to_bits(fa + fb)),
                Op::FSub => Some(f32_to_bits(fa - fb)),
                Op::FMul => Some(f32_to_bits(fa * fb)),
                Op::FDiv => Some(f32_to_bits(fa / fb)),
                Op::FMin => Some(f32_to_bits(fa.min(fb))),
                Op::FMax => Some(f32_to_bits(fa.max(fb))),
                Op::FAbs => Some(f32_to_bits(fa.abs())),
                Op::FNeg => Some(f32_to_bits(-fa)),
                Op::FSqrt => Some(f32_to_bits(fa.sqrt())),
                Op::FFma => {
                    let fc = bits_to_f32(regs[ins.c.idx()]);
                    Some(f32_to_bits(fa.mul_add(fb, fc)))
                }
                Op::IAdd => Some(ia.wrapping_add(ib)),
                Op::ISub => Some(ia.wrapping_sub(ib)),
                Op::IMul => Some(ia.wrapping_mul(ib)),
                Op::IAnd => Some(ia & ib),
                Op::IOr => Some(ia | ib),
                Op::IXor => Some(ia ^ ib),
                Op::IShl => Some(ia << (ib & 31)),
                Op::IShr => Some(ia >> (ib & 31)),
                Op::FLt => Some((fa < fb) as u32),
                Op::FLe => Some((fa <= fb) as u32),
                Op::ILt => Some((ia < ib) as u32),
                Op::IEq => Some((ia == ib) as u32),
                Op::Sel => {
                    let ic = regs[ins.c.idx()];
                    Some(if ia != 0 { ib } else { ic })
                }
                Op::Mov => Some(ia),
                Op::LdImm => Some(ins.imm),
                Op::Ld => {
                    let addr = ia.wrapping_add(ins.imm);
                    let Some(&w) = mem.get(addr as usize) else {
                        return Err(Trap::OutOfBounds { addr });
                    };
                    Some(w)
                }
                Op::St => {
                    let addr = ia.wrapping_add(ins.imm);
                    let Some(slot) = mem.get_mut(addr as usize) else {
                        return Err(Trap::OutOfBounds { addr });
                    };
                    *slot = ib;
                    None
                }
                Op::Jmp | Op::Jz | Op::Jnz => {
                    let taken = match ins.op {
                        Op::Jmp => true,
                        Op::Jz => ia == 0,
                        _ => ia != 0,
                    };
                    if taken {
                        let target = ins.imm as usize;
                        if target > instrs.len() {
                            return Err(Trap::InvalidTarget { target: ins.imm });
                        }
                        pc = target;
                    }
                    None
                }
                Op::F2I => Some(fa as u32),
                Op::I2F => Some(f32_to_bits(ia as f32)),
                Op::Tid => Some(tid),
                Op::Halt => return Ok(executed),
            };

            if let Some(mut val) = wrote {
                if let Some(fault) = &mut self.fault {
                    if let Some(mask) = fault.poll(dyn_index, ins.op) {
                        val ^= mask;
                    }
                }
                regs[ins.dst.idx()] = val;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn r(i: u8) -> Reg {
        Reg(i)
    }

    fn run(b: ProgramBuilder) -> (Fabric, Context) {
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(64);
        f.run_scalar(&prog, &mut ctx, 10_000).expect("program should not trap");
        (f, ctx)
    }

    #[test]
    fn float_arithmetic() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(r(0), 3.0);
        b.ldimm_f(r(1), 4.0);
        b.fmul(r(2), r(0), r(1));
        b.fadd(r(3), r(2), r(1));
        b.fsub(r(4), r(3), r(0));
        b.fdiv(r(5), r(4), r(1));
        b.fsqrt(r(6), r(0));
        b.fneg(r(7), r(6));
        b.fabs(r(8), r(7));
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_f(r(2)), 12.0);
        assert_eq!(ctx.reg_f(r(3)), 16.0);
        assert_eq!(ctx.reg_f(r(4)), 13.0);
        assert_eq!(ctx.reg_f(r(5)), 3.25);
        assert!((ctx.reg_f(r(8)) - 3.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn fma_min_max() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(r(0), 2.0);
        b.ldimm_f(r(1), 5.0);
        b.ldimm_f(r(2), 1.0);
        b.ffma(r(3), r(0), r(1), r(2));
        b.fmin(r(4), r(0), r(1));
        b.fmax(r(5), r(0), r(1));
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_f(r(3)), 11.0);
        assert_eq!(ctx.reg_f(r(4)), 2.0);
        assert_eq!(ctx.reg_f(r(5)), 5.0);
    }

    #[test]
    fn integer_ops_and_compares() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 6);
        b.ldimm_i(r(1), 3);
        b.iadd(r(2), r(0), r(1));
        b.isub(r(3), r(0), r(1));
        b.imul(r(4), r(0), r(1));
        b.iand(r(5), r(0), r(1));
        b.ior(r(6), r(0), r(1));
        b.ixor(r(7), r(0), r(1));
        b.ishl(r(8), r(1), r(1));
        b.ishr(r(9), r(0), r(1));
        b.ilt(r(10), r(1), r(0));
        b.ieq(r(11), r(0), r(0));
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_i(r(2)), 9);
        assert_eq!(ctx.reg_i(r(3)), 3);
        assert_eq!(ctx.reg_i(r(4)), 18);
        assert_eq!(ctx.reg_i(r(5)), 2);
        assert_eq!(ctx.reg_i(r(6)), 7);
        assert_eq!(ctx.reg_i(r(7)), 5);
        assert_eq!(ctx.reg_i(r(8)), 24);
        assert_eq!(ctx.reg_i(r(9)), 0);
        assert_eq!(ctx.reg_i(r(10)), 1);
        assert_eq!(ctx.reg_i(r(11)), 1);
    }

    #[test]
    fn select_and_conversions() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 1);
        b.ldimm_i(r(1), 10);
        b.ldimm_i(r(2), 20);
        b.sel(r(3), r(0), r(1), r(2));
        b.ldimm_i(r(4), 0);
        b.sel(r(5), r(4), r(1), r(2));
        b.ldimm_f(r(6), 7.9);
        b.f2i(r(7), r(6));
        b.i2f(r(8), r(7));
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_i(r(3)), 10);
        assert_eq!(ctx.reg_i(r(5)), 20);
        assert_eq!(ctx.reg_i(r(7)), 7);
        assert_eq!(ctx.reg_f(r(8)), 7.0);
    }

    #[test]
    fn f2i_saturates_negative_and_nan() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(r(0), -3.0);
        b.f2i(r(1), r(0));
        b.ldimm_f(r(2), f32::NAN);
        b.f2i(r(3), r(2));
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_i(r(1)), 0);
        assert_eq!(ctx.reg_i(r(3)), 0);
    }

    #[test]
    fn memory_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 5);
        b.ldimm_f(r(1), 2.5);
        b.st(r(0), r(1), 2); // mem[7] = 2.5
        b.ld(r(2), r(0), 2);
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_f(r(2)), 2.5);
        assert_eq!(ctx.read_f32(7), 2.5);
    }

    #[test]
    fn out_of_bounds_load_traps() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 1_000_000);
        b.ld(r(1), r(0), 0);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(16);
        let err = f.run_scalar(&prog, &mut ctx, 100).unwrap_err();
        assert_eq!(err, Trap::OutOfBounds { addr: 1_000_000 });
    }

    #[test]
    fn out_of_bounds_store_traps() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 99);
        b.st(r(0), r(0), 0);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(16);
        assert_eq!(f.run_scalar(&prog, &mut ctx, 100).unwrap_err(), Trap::OutOfBounds { addr: 99 });
    }

    #[test]
    fn infinite_loop_hits_watchdog() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top);
        b.jmp(top);
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(4);
        assert_eq!(f.run_scalar(&prog, &mut ctx, 1000).unwrap_err(), Trap::Watchdog);
    }

    #[test]
    fn loop_counts_down() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 10);
        b.ldimm_i(r(1), 1);
        b.ldimm_i(r(2), 0);
        let top = b.new_label();
        b.bind(top);
        b.iadd(r(2), r(2), r(1));
        b.isub(r(0), r(0), r(1));
        b.jnz(r(0), top);
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_i(r(2)), 10);
    }

    #[test]
    fn kernel_threads_see_tid_and_share_memory() {
        // mem[tid] = tid as f32 * 2.0
        let mut b = ProgramBuilder::new();
        b.tid(r(0));
        b.i2f(r(1), r(0));
        b.ldimm_f(r(2), 2.0);
        b.fmul(r(3), r(1), r(2));
        b.st(r(0), r(3), 0);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Gpu);
        let mut ctx = f.new_context(8);
        f.run_kernel(&prog, &mut ctx, 8, &[], 100).unwrap();
        for t in 0..8 {
            assert_eq!(ctx.read_f32(t), t as f32 * 2.0);
        }
    }

    #[test]
    fn kernel_args_are_preloaded() {
        let mut b = ProgramBuilder::new();
        b.tid(r(0));
        b.st(r(0), r(10), 0); // store arg value at mem[tid]
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Gpu);
        let mut ctx = f.new_context(4);
        f.run_kernel(&prog, &mut ctx, 4, &[(r(10), f32_to_bits(9.0))], 100).unwrap();
        assert_eq!(ctx.read_f32(3), 9.0);
    }

    #[test]
    fn transient_fault_corrupts_exactly_one_write() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(r(0), 1.0);
        b.ldimm_f(r(1), 1.0); // dynamic index 1 — the injection target
        b.ldimm_f(r(2), 1.0);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Gpu);
        f.inject(FaultModel::Transient { instr_index: 1, mask: 0x0040_0000 });
        let mut ctx = f.new_context(4);
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_eq!(ctx.reg_f(r(0)), 1.0);
        assert_ne!(ctx.reg_f(r(1)), 1.0);
        assert_eq!(ctx.reg_f(r(2)), 1.0);
        assert_eq!(f.fault_state().unwrap().activations(), 1);
    }

    #[test]
    fn permanent_fault_corrupts_every_instance() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(r(0), 2.0);
        b.ldimm_f(r(1), 3.0);
        b.fmul(r(2), r(0), r(1));
        b.fmul(r(3), r(0), r(1));
        b.fadd(r(4), r(0), r(1));
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Gpu);
        f.inject(FaultModel::Permanent { op: Op::FMul, mask: 1 });
        let mut ctx = f.new_context(4);
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_ne!(ctx.reg_f(r(2)), 6.0);
        assert_ne!(ctx.reg_f(r(3)), 6.0);
        assert_eq!(ctx.reg_f(r(4)), 5.0, "FAdd must be unaffected");
        assert_eq!(f.fault_state().unwrap().activations(), 2);
    }

    #[test]
    fn store_is_not_injectable() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 0);
        b.ldimm_f(r(1), 5.0);
        b.st(r(0), r(1), 0);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        f.inject(FaultModel::Permanent { op: Op::St, mask: u32::MAX });
        let mut ctx = f.new_context(4);
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_eq!(ctx.read_f32(0), 5.0, "stores have no destination register");
        assert_eq!(f.fault_state().unwrap().activations(), 0);
    }

    #[test]
    fn dyn_counter_spans_runs_until_reset() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 1);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(4);
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_eq!(f.dyn_instr_count(), 4);
        f.reset_for_run();
        assert_eq!(f.dyn_instr_count(), 0);
        assert_eq!(f.stats().total(), 0);
        assert!(f.fault_state().is_none());
    }

    #[test]
    fn stats_count_per_op() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(r(0), 1.0);
        b.fadd(r(1), r(0), r(0));
        b.fadd(r(2), r(1), r(0));
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Gpu);
        let mut ctx = f.new_context(4);
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_eq!(f.stats().count(Op::FAdd), 2);
        assert_eq!(f.stats().count(Op::LdImm), 1);
        assert_eq!(f.stats().count(Op::Halt), 1);
        assert_eq!(f.stats().launches(), 1);
    }

    #[test]
    fn falling_off_end_is_implicit_halt() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 7);
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(4);
        let n = f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_eq!(n, 1);
        assert_eq!(ctx.reg_i(r(0)), 7);
    }

    #[test]
    fn scalar_registers_persist_across_runs() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(1), 1);
        b.iadd(r(0), r(0), r(1));
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(4);
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_eq!(ctx.reg_i(r(0)), 2);
    }

    #[test]
    fn trap_display_and_error() {
        let t: Box<dyn Error> = Box::new(Trap::Watchdog);
        assert!(t.to_string().contains("watchdog"));
        assert!(Trap::OutOfBounds { addr: 3 }.to_string().contains('3'));
        assert!(Trap::InvalidTarget { target: 9 }.to_string().contains('9'));
    }

    #[test]
    fn context_bytes_accounting() {
        let ctx = Context::new(100);
        assert_eq!(ctx.bytes(), 100 * 4 + NUM_REGS * 4);
    }
}
