//! The fabric interpreter: scalar (CPU-profile) and data-parallel
//! (GPU-profile) execution with trap semantics and fault injection.

use crate::fault::{FaultModel, FaultState};
use crate::isa::{bits_to_f32, f32_to_bits, Op, Reg, ALL_OPS, NUM_REGS};
use crate::program::Program;
use crate::stats::ExecStats;
use std::error::Error;
use std::fmt;

/// Which processing element a fabric models.
///
/// The profiles share an ISA; the distinction selects the fault-injection
/// *target* (the paper's "CPU vs GPU" injection-site axis) and labels the
/// resource accounting of Table II.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Profile {
    /// Scalar control/glue processor (PinFI target analogue).
    Cpu,
    /// Data-parallel numeric processor (NVBitFI target analogue).
    Gpu,
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Profile::Cpu => write!(f, "CPU"),
            Profile::Gpu => write!(f, "GPU"),
        }
    }
}

/// Abnormal termination of a fabric execution.
///
/// Traps are the fabric-level manifestation of the paper's *crash*
/// (`OutOfBounds`, `InvalidTarget`) and *hang* (`Watchdog`) outcome classes:
/// corrupted address registers fault on access, and corrupted loop counters
/// exhaust the watchdog budget.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// A load or store addressed memory outside the context.
    OutOfBounds {
        /// The offending word address.
        addr: u32,
    },
    /// A branch targeted an address outside the program.
    InvalidTarget {
        /// The offending target.
        target: u32,
    },
    /// The instruction budget was exhausted (hang detector).
    Watchdog,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfBounds { addr } => write!(f, "out-of-bounds access at word {addr}"),
            Trap::InvalidTarget { target } => write!(f, "invalid branch target {target}"),
            Trap::Watchdog => write!(f, "watchdog budget exhausted"),
        }
    }
}

impl Error for Trap {}

/// An execution context: word-addressed memory plus a persistent scalar
/// register file.
///
/// Each agent owns its own contexts (its *private state*, in the paper's
/// terms) while the [`Fabric`] — the shared processor — owns the fault state
/// and instruction counters.
#[derive(Clone, Debug, PartialEq)]
pub struct Context {
    /// Word-addressed memory (raw 32-bit words).
    pub mem: Vec<u32>,
    /// Scalar register file, persisted across `run_scalar` calls.
    pub regs: [u32; NUM_REGS],
}

impl Context {
    /// Create a context with `words` words of zeroed memory.
    pub fn new(words: usize) -> Self {
        Context { mem: vec![0; words], regs: [0; NUM_REGS] }
    }

    /// Read a register as `f32`.
    #[inline]
    pub fn reg_f(&self, r: Reg) -> f32 {
        bits_to_f32(self.regs[r.idx()])
    }

    /// Read a register as raw `u32`.
    #[inline]
    pub fn reg_i(&self, r: Reg) -> u32 {
        self.regs[r.idx()]
    }

    /// Write a register as `f32`.
    #[inline]
    pub fn set_reg_f(&mut self, r: Reg, v: f32) {
        self.regs[r.idx()] = f32_to_bits(v);
    }

    /// Write a register as raw `u32`.
    #[inline]
    pub fn set_reg_i(&mut self, r: Reg, v: u32) {
        self.regs[r.idx()] = v;
    }

    /// Read memory word `addr` as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range (host-side accessor; fabric-side
    /// accesses trap instead).
    #[inline]
    pub fn read_f32(&self, addr: usize) -> f32 {
        bits_to_f32(self.mem[addr])
    }

    /// Write memory word `addr` as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn write_f32(&mut self, addr: usize, v: f32) {
        self.mem[addr] = f32_to_bits(v);
    }

    /// Copy a float slice into memory starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the destination range is out of bounds.
    pub fn write_slice_f32(&mut self, addr: usize, data: &[f32]) {
        for (i, &v) in data.iter().enumerate() {
            self.mem[addr + i] = f32_to_bits(v);
        }
    }

    /// Read `len` floats starting at `addr`.
    ///
    /// Allocates a fresh vector per call; hot readback paths should use
    /// [`read_slice_f32_into`](Self::read_slice_f32_into) instead to keep
    /// the steady state allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the source range is out of bounds.
    pub fn read_slice_f32(&self, addr: usize, len: usize) -> Vec<f32> {
        self.mem[addr..addr + len].iter().map(|&w| bits_to_f32(w)).collect()
    }

    /// Read `out.len()` floats starting at `addr` into a caller-provided
    /// buffer — the allocation-free counterpart of
    /// [`read_slice_f32`](Self::read_slice_f32) for hot kernel-readback
    /// sites.
    ///
    /// # Panics
    ///
    /// Panics if the source range is out of bounds.
    pub fn read_slice_f32_into(&self, addr: usize, out: &mut [f32]) {
        let src = &self.mem[addr..addr + out.len()];
        for (o, &w) in out.iter_mut().zip(src) {
            *o = bits_to_f32(w);
        }
    }

    /// Memory footprint in bytes (Table II accounting).
    pub fn bytes(&self) -> usize {
        self.mem.len() * 4 + NUM_REGS * 4
    }
}

/// A processing element: interpreter state shared by everything that runs
/// on this "chip" — the dynamic-instruction counter, execution statistics,
/// and at most one injected fault.
///
/// Sharing one `Fabric` between DiverseAV's two agents is what makes a
/// *permanent* fault affect both agents (they time-multiplex the same
/// processor), while a *transient* fault lands in whichever agent happens to
/// execute the targeted dynamic instruction — exactly the paper's §VI-A
/// independence argument.
#[derive(Clone, Debug)]
pub struct Fabric {
    profile: Profile,
    stats: ExecStats,
    fault: Option<FaultState>,
    dyn_counter: u64,
    scratch: LockstepScratch,
}

/// Default lane width of the lockstep kernel engine.
///
/// Sixteen lanes amortize one fetch/decode over sixteen threads while the
/// per-lane state (a lane-major `[[u32; LANES]; NUM_REGS]` register file,
/// 4 KiB at this width) still fits comfortably in L1, and the value loops
/// map onto full vector registers.
pub const LANES: usize = 16;

/// Store-owner map entries pack the owning lane into 8 bits, so lane
/// widths must stay below this bound.
const MAX_LANE_WIDTH: usize = u8::MAX as usize;

/// Per-fabric scratch for lockstep batches: an epoch-tagged store-owner map
/// over context memory, a load-interval summary, an undo log for store
/// rollback, and the batch's deferred instruction accounting. All buffers
/// retain capacity across batches so steady-state kernel launches stay
/// allocation-free.
///
/// Loads are deliberately *not* tracked per word. They only record two
/// address intervals for the batch — `[load_lo, load_hi]` for lane-varying
/// loads and `[uload_lo, uload_hi]` for uniform broadcast loads — and a
/// store landing inside either interval aborts to the exact scalar path
/// instead of consulting a per-word load map. That is strictly more
/// conservative than precise tracking — every previously-detected conflict
/// still aborts, some same-lane or disjoint-word cases now abort too — and
/// aborting is always semantics-preserving (rollback + scalar replay). In
/// exchange the dominant operation of real kernels, the load, costs no map
/// traffic at all. Two intervals instead of one because real layouts put
/// uniform constants (parameter blocks, LUTs) at the far end of memory,
/// past the output planes: one interval would span the outputs and force
/// every store to abort. Kernels that genuinely read and write the same
/// region in one program (the agent's 1-thread planning kernel with its
/// history buffer) simply run scalar.
#[derive(Clone, Debug)]
struct LockstepScratch {
    /// Current batch epoch; a map entry is valid only if its epoch matches.
    epoch: u32,
    /// Store-owner map: per word, `epoch << 8 | lane` packed into one entry
    /// so an ownership probe is a single load.
    store_map: Vec<u64>,
    /// Lowest / highest word address covered by lane-varying loads this
    /// batch (`lo > hi` when empty).
    load_lo: usize,
    load_hi: usize,
    /// Lowest / highest word address covered by uniform broadcast loads
    /// this batch (`lo > hi` when empty).
    uload_lo: usize,
    uload_hi: usize,
    /// `(addr, previous value)` for every store in the current batch, in
    /// execution order; popped in reverse to roll a batch back.
    undo: Vec<(u32, u32)>,
    /// Lane-executions per opcode in the current batch; folded into
    /// [`ExecStats`] and the dynamic-instruction counter only on commit.
    op_counts: [u64; ALL_OPS.len()],
}

impl Default for LockstepScratch {
    fn default() -> Self {
        LockstepScratch {
            epoch: 0,
            store_map: Vec::new(),
            load_lo: usize::MAX,
            load_hi: 0,
            uload_lo: usize::MAX,
            uload_hi: 0,
            undo: Vec::new(),
            op_counts: [0; ALL_OPS.len()],
        }
    }
}

impl LockstepScratch {
    /// Open a new batch epoch over a context of `words` memory words.
    fn begin_batch(&mut self, words: usize) {
        if self.store_map.len() < words {
            self.store_map.resize(words, 0);
        }
        self.undo.clear();
        self.op_counts = [0; ALL_OPS.len()];
        self.load_lo = usize::MAX;
        self.load_hi = 0;
        self.uload_lo = usize::MAX;
        self.uload_hi = 0;
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrap: stale entries could alias the new epoch, so
                // clear the map once every 2^32 batches.
                self.store_map.fill(0);
                1
            }
        };
    }

    /// Widen the batch's lane-varying load interval to cover `[lo, hi]`.
    #[inline]
    fn note_load_range(&mut self, lo: usize, hi: usize) {
        if lo < self.load_lo {
            self.load_lo = lo;
        }
        if hi > self.load_hi {
            self.load_hi = hi;
        }
    }

    /// Widen the batch's uniform-load interval to cover `addr`.
    #[inline]
    fn note_uniform_load(&mut self, addr: usize) {
        if addr < self.uload_lo {
            self.uload_lo = addr;
        }
        if addr > self.uload_hi {
            self.uload_hi = addr;
        }
    }

    /// Whether a load of `addr` by `lane` conflicts with another lane's
    /// earlier store this batch.
    #[inline]
    fn load_conflicts(&self, addr: usize, lane: u8) -> bool {
        let s = self.store_map[addr];
        s >> 8 == self.epoch as u64 && s & 0xFF != lane as u64
    }

    /// Record a store to `addr` by `lane`; returns `false` on a conflict
    /// with any earlier load this batch (conservative interval check) or
    /// with another lane's earlier store.
    #[inline]
    fn note_store(&mut self, addr: usize, lane: u8) -> bool {
        if (self.load_lo <= addr && addr <= self.load_hi)
            || (self.uload_lo <= addr && addr <= self.uload_hi)
        {
            return false;
        }
        let s = self.store_map[addr];
        if s >> 8 == self.epoch as u64 && s & 0xFF != lane as u64 {
            return false;
        }
        self.store_map[addr] = (self.epoch as u64) << 8 | lane as u64;
        true
    }
}

/// Fault realization mode for one lockstep batch.
#[derive(Copy, Clone, Debug)]
enum LaneFault {
    /// No polling this batch: either no fault is armed, a transient fault
    /// targets a dynamic index outside this batch, or this is the probe
    /// pass of a transient fault whose index may land here.
    Inert,
    /// Permanent fault: every active lane executing the target opcode is
    /// corrupted, exactly as every scalar dynamic instance would be.
    Permanent {
        /// Targeted opcode.
        op: Op,
    },
    /// Lane-exact transient pass: only `lane` polls the fault, at its
    /// `local_index`-th executed instruction, reporting the fault's scalar
    /// dynamic index `fire_index` — so the XOR lands on exactly the write
    /// the scalar interpreter would have corrupted.
    Transient { lane: usize, local_index: u64, fire_index: u64 },
}

/// Outcome of one lockstep batch.
enum BatchExit<const L: usize> {
    /// Every lane ran to completion without traps or cross-lane conflicts.
    /// Memory effects are applied; instruction accounting is parked in the
    /// scratch op log until the caller commits it.
    Clean {
        /// Instructions executed per lane (lane order = thread order).
        per_lane: [u64; L],
        /// Total instructions executed, i.e. the dynamic-counter advance.
        dyn_add: u64,
    },
    /// A trap or a cross-lane memory conflict: the caller rolls back and
    /// re-runs the remaining threads on the scalar reference path, which
    /// reproduces the exact partial state and trap the paper's
    /// thread-major model requires.
    Abort,
}

impl Fabric {
    /// Create a fabric with the given profile.
    pub fn new(profile: Profile) -> Self {
        Fabric {
            profile,
            stats: ExecStats::new(),
            fault: None,
            dyn_counter: 0,
            scratch: LockstepScratch::default(),
        }
    }

    /// The fabric's profile (CPU or GPU).
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// Execution statistics accumulated since the last reset.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Total dynamic instructions executed since the last
    /// [`reset_for_run`](Self::reset_for_run) — the transient fault-site
    /// space for plan generation.
    pub fn dyn_instr_count(&self) -> u64 {
        self.dyn_counter
    }

    /// Allocate an execution context with `words` words of memory.
    pub fn new_context(&self, words: usize) -> Context {
        Context::new(words)
    }

    /// Arm a fault for this fabric. Replaces any previously armed fault.
    pub fn inject(&mut self, model: FaultModel) {
        self.fault = Some(FaultState::new(model));
    }

    /// Remove any armed fault, returning its final state.
    pub fn clear_fault(&mut self) -> Option<FaultState> {
        self.fault.take()
    }

    /// The armed fault's state, if any.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.fault.as_ref()
    }

    /// Reset the dynamic-instruction counter, statistics, and fault state
    /// ahead of a new experimental run.
    pub fn reset_for_run(&mut self) {
        self.stats.reset();
        self.dyn_counter = 0;
        self.fault = None;
    }

    /// Run `prog` in scalar mode using the context's persistent register
    /// file.
    ///
    /// Returns the number of instructions executed.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on out-of-bounds access, invalid branch target,
    /// or when more than `budget` instructions execute (hang).
    pub fn run_scalar(
        &mut self,
        prog: &Program,
        ctx: &mut Context,
        budget: u64,
    ) -> Result<u64, Trap> {
        self.stats.record_launch();
        let mut regs = ctx.regs;
        let r = self.exec(prog, &mut regs, &mut ctx.mem, 0, budget);
        ctx.regs = regs;
        r
    }

    /// Launch `prog` as a data-parallel kernel over `n_threads` threads.
    ///
    /// Each thread starts from a zeroed register file with `args` preloaded
    /// and its index available via [`Op::Tid`]; threads share the context's
    /// memory and observe each other in thread order (the fabric models a
    /// time-multiplexed processor, not a parallel machine).
    ///
    /// Execution is lockstep-batched over [`LANES`] threads at a time — one
    /// fetch/decode per batch step instead of one per thread — and is
    /// bit-identical to [`run_kernel_reference`](Self::run_kernel_reference):
    /// batches whose lanes touch overlapping memory, trap, or exhaust the
    /// watchdog are rolled back and replayed on the scalar path.
    ///
    /// Returns the total number of instructions executed.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if any thread traps; `budget_per_thread` bounds
    /// each thread's instruction count.
    pub fn run_kernel(
        &mut self,
        prog: &Program,
        ctx: &mut Context,
        n_threads: u32,
        args: &[(Reg, u32)],
        budget_per_thread: u64,
    ) -> Result<u64, Trap> {
        self.run_kernel_lockstep::<LANES>(prog, ctx, n_threads, args, budget_per_thread)
    }

    /// Thread-major scalar kernel launch — the semantic reference for
    /// [`run_kernel`](Self::run_kernel).
    ///
    /// Runs every thread to completion through the scalar interpreter in
    /// thread order. The lockstep engine must match this path bit for bit
    /// (registers, memory, traps, statistics, dynamic-instruction counter,
    /// and fault activations); `lockstep_differential.rs` and the batch
    /// rollback path both rely on it staying exactly as the paper's
    /// time-multiplexed model specifies.
    pub fn run_kernel_reference(
        &mut self,
        prog: &Program,
        ctx: &mut Context,
        n_threads: u32,
        args: &[(Reg, u32)],
        budget_per_thread: u64,
    ) -> Result<u64, Trap> {
        self.stats.record_launch();
        self.finish_scalar(prog, ctx, 0, n_threads, args, budget_per_thread, 0)
    }

    /// Lockstep kernel launch with an explicit lane width `L`.
    ///
    /// [`run_kernel`](Self::run_kernel) uses `L = LANES`; the differential
    /// tests sweep `L ∈ {1, 4, 8}`. `L = 1` degenerates to the scalar path.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] exactly when the reference path would.
    pub fn run_kernel_lockstep<const L: usize>(
        &mut self,
        prog: &Program,
        ctx: &mut Context,
        n_threads: u32,
        args: &[(Reg, u32)],
        budget_per_thread: u64,
    ) -> Result<u64, Trap> {
        assert!(L >= 1 && L < MAX_LANE_WIDTH, "unsupported lane width {L}");
        self.stats.record_launch();
        let mut total = 0u64;
        let mut t0 = 0u32;
        while t0 < n_threads {
            let width = (n_threads - t0).min(L as u32) as usize;
            if width < 2 {
                // Single-thread batches (tails, 1-thread kernels) take the
                // scalar path directly: it is the reference semantics, and
                // faults poll live against the true dynamic index.
                let mut regs = [0u32; NUM_REGS];
                for &(r, v) in args {
                    regs[r.idx()] = v;
                }
                total += self.exec(prog, &mut regs, &mut ctx.mem, t0, budget_per_thread)?;
                t0 += 1;
                continue;
            }

            let batch_base = self.dyn_counter;
            let snap_fault = self.fault;
            let armed = self.fault.map(|f| f.model());
            // A transient fault whose dynamic index might land in this batch
            // cannot be applied while lanes interleave: the scalar index of
            // each write is only known once per-lane instruction counts are.
            // Run such batches as an unfaulted probe first, then re-run with
            // the injection pinned to the exact lane and local instruction.
            let (mode, probing) = match armed {
                None => (LaneFault::Inert, false),
                Some(FaultModel::Permanent { op, .. }) => (LaneFault::Permanent { op }, false),
                Some(FaultModel::Transient { instr_index, .. }) => {
                    (LaneFault::Inert, instr_index >= batch_base)
                }
            };

            match self.exec_batch::<L>(prog, &mut ctx.mem, t0, width, args, budget_per_thread, mode)
            {
                BatchExit::Abort => {
                    self.rollback_mem(&mut ctx.mem);
                    self.fault = snap_fault;
                    return self.finish_scalar(
                        prog,
                        ctx,
                        t0,
                        n_threads,
                        args,
                        budget_per_thread,
                        total,
                    );
                }
                BatchExit::Clean { per_lane, dyn_add } => {
                    let refire = match armed {
                        Some(FaultModel::Transient { instr_index, .. }) => {
                            probing && instr_index < batch_base + dyn_add
                        }
                        _ => false,
                    };
                    if !refire {
                        self.commit_batch(dyn_add);
                        total += dyn_add;
                    } else {
                        let Some(FaultModel::Transient { instr_index, .. }) = armed else {
                            unreachable!("refire implies an armed transient fault")
                        };
                        // The probe found the target index inside this batch.
                        // Locate the faulted lane from the probe's per-lane
                        // counts: in thread order, lanes before it are
                        // unaffected by the fault, and the faulted lane
                        // executes identically up to the injection point, so
                        // the prefix sums are valid.
                        self.rollback_mem(&mut ctx.mem);
                        let mut local = instr_index - batch_base;
                        let mut lane = 0usize;
                        while lane < L && local >= per_lane[lane] {
                            local -= per_lane[lane];
                            lane += 1;
                        }
                        let mode = LaneFault::Transient {
                            lane,
                            local_index: local,
                            fire_index: instr_index,
                        };
                        match self.exec_batch::<L>(
                            prog,
                            &mut ctx.mem,
                            t0,
                            width,
                            args,
                            budget_per_thread,
                            mode,
                        ) {
                            BatchExit::Abort => {
                                self.rollback_mem(&mut ctx.mem);
                                self.fault = snap_fault;
                                return self.finish_scalar(
                                    prog,
                                    ctx,
                                    t0,
                                    n_threads,
                                    args,
                                    budget_per_thread,
                                    total,
                                );
                            }
                            BatchExit::Clean { dyn_add, .. } => {
                                self.commit_batch(dyn_add);
                                total += dyn_add;
                            }
                        }
                    }
                }
            }
            t0 += width as u32;
        }
        Ok(total)
    }

    /// Fold the current batch's per-op counts into the statistics and
    /// advance the dynamic-instruction counter. Called exactly once per
    /// committed batch; aborted batches leave both untouched.
    fn commit_batch(&mut self, dyn_add: u64) {
        for &op in ALL_OPS {
            let n = self.scratch.op_counts[op.index()];
            if n > 0 {
                self.stats.record_n(op, n);
            }
        }
        self.dyn_counter += dyn_add;
    }

    /// Undo every store of the current batch, newest first.
    fn rollback_mem(&mut self, mem: &mut [u32]) {
        while let Some((addr, old)) = self.scratch.undo.pop() {
            mem[addr as usize] = old;
        }
    }

    /// Run threads `t0..n_threads` through the scalar interpreter in thread
    /// order, accumulating onto `total` — the tail of every rollback and
    /// the whole of [`run_kernel_reference`](Self::run_kernel_reference).
    #[allow(clippy::too_many_arguments)]
    fn finish_scalar(
        &mut self,
        prog: &Program,
        ctx: &mut Context,
        t0: u32,
        n_threads: u32,
        args: &[(Reg, u32)],
        budget_per_thread: u64,
        mut total: u64,
    ) -> Result<u64, Trap> {
        for t in t0..n_threads {
            let mut regs = [0u32; NUM_REGS];
            for &(r, v) in args {
                regs[r.idx()] = v;
            }
            total += self.exec(prog, &mut regs, &mut ctx.mem, t, budget_per_thread)?;
        }
        Ok(total)
    }

    /// Execute one batch of `width` threads (`t0..t0+width`) in lockstep.
    ///
    /// One instruction is fetched and decoded per step and applied across
    /// all active lanes of a lane-major register file. Divergence is
    /// handled by a min-pc reconvergence mask: each step executes the
    /// smallest program counter among live lanes, so lanes that branched
    /// apart rejoin at the earliest common point. Cross-lane memory
    /// conflicts, traps, and watchdog exhaustion abort the batch — the
    /// caller rolls back and replays on the scalar path, which keeps the
    /// committed fast path bit-identical to thread-major execution.
    #[allow(clippy::too_many_arguments)]
    fn exec_batch<const L: usize>(
        &mut self,
        prog: &Program,
        mem: &mut [u32],
        t0: u32,
        width: usize,
        args: &[(Reg, u32)],
        budget: u64,
        mode: LaneFault,
    ) -> BatchExit<L> {
        /// What a batch step does after its value vector is computed.
        enum Step {
            /// Masked register writeback, then advance pc.
            Write,
            /// Advance pc only (stores).
            Advance,
            /// Control flow already updated pc / liveness (branches, halt).
            Control,
        }

        self.scratch.begin_batch(mem.len());
        let instrs = prog.instrs();
        let plen = instrs.len();

        // Lane-major register file: regs[r][lane].
        let mut regs = [[0u32; L]; NUM_REGS];
        for &(r, v) in args {
            regs[r.idx()] = [v; L];
        }
        let mut pc = [0u32; L];
        let mut executed = [0u64; L];
        let mut live = [false; L];
        live[..width].fill(true);
        let mut dyn_add = 0u64;

        // --- Converged fast path -----------------------------------------
        //
        // Until a conditional branch splits them, lanes `0..width` march
        // through a single shared pc: one fetch, one budget compare, one
        // accounting add per step, value loops over all `L` lanes with an
        // unconditional writeback (dead lanes `width..L` hold garbage no one
        // reads). This is the steady state for the agent's straight-line and
        // uniform-loop kernels; only genuinely divergent batches pay for the
        // masked min-pc machinery below.
        let mut cpc = 0usize;
        let mut cexec = 0u64;
        let nw = width as u64;
        'fast: loop {
            if cpc >= plen {
                // Falling off the end is an implicit halt with no budget
                // check, exactly as in the scalar interpreter.
                let mut per_lane = [0u64; L];
                per_lane[..width].fill(cexec);
                return BatchExit::Clean { per_lane, dyn_add };
            }
            let ins = instrs[cpc];
            if cexec >= budget {
                // The scalar path raises Watchdog here.
                return BatchExit::Abort;
            }
            cexec += 1;
            self.scratch.op_counts[ins.op.index()] += nw;
            dyn_add += nw;

            let ai = ins.a.idx();
            let bi = ins.b.idx();
            let mut val = [0u32; L];

            macro_rules! fop2 {
                ($f:expr) => {{
                    let a = regs[ai];
                    let b = regs[bi];
                    for l in 0..L {
                        val[l] = f32_to_bits($f(bits_to_f32(a[l]), bits_to_f32(b[l])));
                    }
                }};
            }
            macro_rules! fop1 {
                ($f:expr) => {{
                    let a = regs[ai];
                    for l in 0..L {
                        val[l] = f32_to_bits($f(bits_to_f32(a[l])));
                    }
                }};
            }
            macro_rules! iop2 {
                ($f:expr) => {{
                    let a = regs[ai];
                    let b = regs[bi];
                    for l in 0..L {
                        val[l] = $f(a[l], b[l]);
                    }
                }};
            }

            match ins.op {
                Op::FAdd => fop2!(|x: f32, y: f32| x + y),
                Op::FSub => fop2!(|x: f32, y: f32| x - y),
                Op::FMul => fop2!(|x: f32, y: f32| x * y),
                Op::FDiv => fop2!(|x: f32, y: f32| x / y),
                Op::FMin => fop2!(|x: f32, y: f32| x.min(y)),
                Op::FMax => fop2!(|x: f32, y: f32| x.max(y)),
                Op::FAbs => fop1!(|x: f32| x.abs()),
                Op::FNeg => fop1!(|x: f32| -x),
                Op::FSqrt => fop1!(|x: f32| x.sqrt()),
                Op::FFma => {
                    let a = regs[ai];
                    let b = regs[bi];
                    let c = regs[ins.c.idx()];
                    for l in 0..L {
                        val[l] = f32_to_bits(
                            bits_to_f32(a[l]).mul_add(bits_to_f32(b[l]), bits_to_f32(c[l])),
                        );
                    }
                }
                Op::IAdd => iop2!(|x: u32, y: u32| x.wrapping_add(y)),
                Op::ISub => iop2!(|x: u32, y: u32| x.wrapping_sub(y)),
                Op::IMul => iop2!(|x: u32, y: u32| x.wrapping_mul(y)),
                Op::IAnd => iop2!(|x: u32, y: u32| x & y),
                Op::IOr => iop2!(|x: u32, y: u32| x | y),
                Op::IXor => iop2!(|x: u32, y: u32| x ^ y),
                Op::IShl => iop2!(|x: u32, y: u32| x << (y & 31)),
                Op::IShr => iop2!(|x: u32, y: u32| x >> (y & 31)),
                Op::FLt => {
                    let a = regs[ai];
                    let b = regs[bi];
                    for l in 0..L {
                        val[l] = (bits_to_f32(a[l]) < bits_to_f32(b[l])) as u32;
                    }
                }
                Op::FLe => {
                    let a = regs[ai];
                    let b = regs[bi];
                    for l in 0..L {
                        val[l] = (bits_to_f32(a[l]) <= bits_to_f32(b[l])) as u32;
                    }
                }
                Op::ILt => iop2!(|x: u32, y: u32| (x < y) as u32),
                Op::IEq => iop2!(|x: u32, y: u32| (x == y) as u32),
                Op::Sel => {
                    let a = regs[ai];
                    let b = regs[bi];
                    let c = regs[ins.c.idx()];
                    for l in 0..L {
                        val[l] = if a[l] != 0 { b[l] } else { c[l] };
                    }
                }
                Op::Mov => val = regs[ai],
                Op::LdImm => val = [ins.imm; L],
                Op::Ld => {
                    let a = regs[ai];
                    let mut uniform = true;
                    for &w in a.iter().take(width).skip(1) {
                        uniform &= w == a[0];
                    }
                    if uniform {
                        // Every lane reads the same word (shared weights,
                        // uniform tables): one bounds check, one conflict
                        // probe, one broadcast. Any same-batch store to the
                        // word aborts — with ≥ 2 lanes reading it is a
                        // guaranteed cross-lane conflict, with one lane it
                        // is merely conservative.
                        let addr = a[0].wrapping_add(ins.imm);
                        let idx = addr as usize;
                        let Some(&w) = mem.get(idx) else {
                            // Scalar path raises OutOfBounds { addr }.
                            return BatchExit::Abort;
                        };
                        let s = &mut self.scratch;
                        if !s.undo.is_empty() && s.store_map[idx] >> 8 == s.epoch as u64 {
                            return BatchExit::Abort;
                        }
                        s.note_uniform_load(idx);
                        val = [w; L];
                    } else {
                        // Hoisted bounds check: one max over the lane
                        // addresses replaces a branch per lane. An abort on
                        // any out-of-range lane replays scalar, which raises
                        // the exact per-lane OutOfBounds trap.
                        let mut addrs = [0u32; L];
                        let mut maxa = 0u32;
                        let mut mina = u32::MAX;
                        for l in 0..L {
                            addrs[l] = a[l].wrapping_add(ins.imm);
                        }
                        for &ad in addrs.iter().take(width) {
                            maxa = maxa.max(ad);
                            mina = mina.min(ad);
                        }
                        if maxa as usize >= mem.len() {
                            return BatchExit::Abort;
                        }
                        self.scratch.note_load_range(mina as usize, maxa as usize);
                        if self.scratch.undo.is_empty() {
                            // No stores in this batch yet, so the store map
                            // holds no live entries: the loads cannot
                            // conflict and cost no probe at all.
                            for (l, v) in val.iter_mut().enumerate().take(width) {
                                *v = mem[addrs[l] as usize];
                            }
                        } else {
                            for (l, v) in val.iter_mut().enumerate().take(width) {
                                let idx = addrs[l] as usize;
                                if self.scratch.load_conflicts(idx, l as u8) {
                                    return BatchExit::Abort;
                                }
                                *v = mem[idx];
                            }
                        }
                    }
                }
                Op::St => {
                    let a = regs[ai];
                    let b = regs[bi];
                    for l in 0..width {
                        let addr = a[l].wrapping_add(ins.imm);
                        let idx = addr as usize;
                        if idx >= mem.len() {
                            // Scalar path raises OutOfBounds { addr }.
                            return BatchExit::Abort;
                        }
                        if !self.scratch.note_store(idx, l as u8) {
                            return BatchExit::Abort;
                        }
                        self.scratch.undo.push((addr, mem[idx]));
                        mem[idx] = b[l];
                    }
                    cpc += 1;
                    continue 'fast;
                }
                Op::Jmp => {
                    if ins.imm as usize > plen {
                        // Scalar path raises InvalidTarget.
                        return BatchExit::Abort;
                    }
                    cpc = ins.imm as usize;
                    continue 'fast;
                }
                Op::Jz | Op::Jnz => {
                    let a = regs[ai];
                    let want_zero = ins.op == Op::Jz;
                    let first = (a[0] == 0) == want_zero;
                    let mut split = false;
                    for &w in a.iter().take(width).skip(1) {
                        split |= ((w == 0) == want_zero) != first;
                    }
                    if !split {
                        if first {
                            if ins.imm as usize > plen {
                                // Scalar path raises InvalidTarget.
                                return BatchExit::Abort;
                            }
                            cpc = ins.imm as usize;
                        } else {
                            cpc += 1;
                        }
                        continue 'fast;
                    }
                    // Lanes split here: materialize per-lane pcs and fall
                    // through to the masked min-pc loop for the rest of the
                    // batch.
                    for l in 0..width {
                        if (a[l] == 0) == want_zero {
                            if ins.imm as usize > plen {
                                return BatchExit::Abort;
                            }
                            pc[l] = ins.imm;
                        } else {
                            pc[l] = cpc as u32 + 1;
                        }
                    }
                    executed[..width].fill(cexec);
                    break 'fast;
                }
                Op::F2I => {
                    let a = regs[ai];
                    for l in 0..L {
                        val[l] = bits_to_f32(a[l]) as u32;
                    }
                }
                Op::I2F => {
                    let a = regs[ai];
                    for l in 0..L {
                        val[l] = f32_to_bits(a[l] as f32);
                    }
                }
                Op::Tid => {
                    for (l, v) in val.iter_mut().enumerate() {
                        *v = t0 + l as u32;
                    }
                }
                Op::Halt => {
                    let mut per_lane = [0u64; L];
                    per_lane[..width].fill(cexec);
                    return BatchExit::Clean { per_lane, dyn_add };
                }
            }

            // Fault realization with the implicit all-active mask: the
            // permanent poll corrupts every lane's matching write (as every
            // scalar dynamic instance would be), the transient pass fires on
            // the one lane-local write the scalar stream indexes.
            match mode {
                LaneFault::Inert => {}
                LaneFault::Permanent { op } => {
                    if op == ins.op {
                        for v in val.iter_mut().take(width) {
                            if let Some(f) = self.fault.as_mut() {
                                // Permanent polling ignores the dynamic index.
                                if let Some(m) = f.poll(0, ins.op) {
                                    *v ^= m;
                                }
                            }
                        }
                    }
                }
                LaneFault::Transient { lane, local_index, fire_index } => {
                    if lane < width && cexec - 1 == local_index {
                        if let Some(f) = self.fault.as_mut() {
                            if let Some(m) = f.poll(fire_index, ins.op) {
                                val[lane] ^= m;
                            }
                        }
                    }
                }
            }
            regs[ins.dst.idx()] = val;
            cpc += 1;
        }

        loop {
            // Reconvergence point: the minimum pc among live lanes.
            let mut pc_cur = u32::MAX;
            for l in 0..L {
                if live[l] && pc[l] < pc_cur {
                    pc_cur = pc[l];
                }
            }
            if pc_cur == u32::MAX {
                break;
            }
            if pc_cur as usize >= plen {
                // Falling off the end is an implicit halt with no budget
                // check, exactly as in the scalar interpreter.
                for l in 0..L {
                    if live[l] && pc[l] == pc_cur {
                        live[l] = false;
                    }
                }
                continue;
            }
            let ins = instrs[pc_cur as usize];

            let mut active = [false; L];
            let mut n_active = 0u64;
            for l in 0..L {
                let on = live[l] && pc[l] == pc_cur;
                active[l] = on;
                n_active += on as u64;
            }
            for l in 0..L {
                if active[l] && executed[l] >= budget {
                    // The scalar path raises Watchdog here.
                    return BatchExit::Abort;
                }
            }
            for l in 0..L {
                executed[l] += active[l] as u64;
            }
            self.scratch.op_counts[ins.op.index()] += n_active;
            dyn_add += n_active;

            let ai = ins.a.idx();
            let bi = ins.b.idx();
            let next = pc_cur + 1;
            let mut val = [0u32; L];

            // Value vectors are computed branch-free over all L lanes —
            // inactive lanes produce garbage that the masked writeback
            // discards — so the per-lane loops autovectorize.
            macro_rules! fop2 {
                ($f:expr) => {{
                    let a = regs[ai];
                    let b = regs[bi];
                    for l in 0..L {
                        val[l] = f32_to_bits($f(bits_to_f32(a[l]), bits_to_f32(b[l])));
                    }
                    Step::Write
                }};
            }
            macro_rules! fop1 {
                ($f:expr) => {{
                    let a = regs[ai];
                    for l in 0..L {
                        val[l] = f32_to_bits($f(bits_to_f32(a[l])));
                    }
                    Step::Write
                }};
            }
            macro_rules! iop2 {
                ($f:expr) => {{
                    let a = regs[ai];
                    let b = regs[bi];
                    for l in 0..L {
                        val[l] = $f(a[l], b[l]);
                    }
                    Step::Write
                }};
            }

            let step = match ins.op {
                Op::FAdd => fop2!(|x: f32, y: f32| x + y),
                Op::FSub => fop2!(|x: f32, y: f32| x - y),
                Op::FMul => fop2!(|x: f32, y: f32| x * y),
                Op::FDiv => fop2!(|x: f32, y: f32| x / y),
                Op::FMin => fop2!(|x: f32, y: f32| x.min(y)),
                Op::FMax => fop2!(|x: f32, y: f32| x.max(y)),
                Op::FAbs => fop1!(|x: f32| x.abs()),
                Op::FNeg => fop1!(|x: f32| -x),
                Op::FSqrt => fop1!(|x: f32| x.sqrt()),
                Op::FFma => {
                    let a = regs[ai];
                    let b = regs[bi];
                    let c = regs[ins.c.idx()];
                    for l in 0..L {
                        val[l] = f32_to_bits(
                            bits_to_f32(a[l]).mul_add(bits_to_f32(b[l]), bits_to_f32(c[l])),
                        );
                    }
                    Step::Write
                }
                Op::IAdd => iop2!(|x: u32, y: u32| x.wrapping_add(y)),
                Op::ISub => iop2!(|x: u32, y: u32| x.wrapping_sub(y)),
                Op::IMul => iop2!(|x: u32, y: u32| x.wrapping_mul(y)),
                Op::IAnd => iop2!(|x: u32, y: u32| x & y),
                Op::IOr => iop2!(|x: u32, y: u32| x | y),
                Op::IXor => iop2!(|x: u32, y: u32| x ^ y),
                Op::IShl => iop2!(|x: u32, y: u32| x << (y & 31)),
                Op::IShr => iop2!(|x: u32, y: u32| x >> (y & 31)),
                Op::FLt => {
                    let a = regs[ai];
                    let b = regs[bi];
                    for l in 0..L {
                        val[l] = (bits_to_f32(a[l]) < bits_to_f32(b[l])) as u32;
                    }
                    Step::Write
                }
                Op::FLe => {
                    let a = regs[ai];
                    let b = regs[bi];
                    for l in 0..L {
                        val[l] = (bits_to_f32(a[l]) <= bits_to_f32(b[l])) as u32;
                    }
                    Step::Write
                }
                Op::ILt => iop2!(|x: u32, y: u32| (x < y) as u32),
                Op::IEq => iop2!(|x: u32, y: u32| (x == y) as u32),
                Op::Sel => {
                    let a = regs[ai];
                    let b = regs[bi];
                    let c = regs[ins.c.idx()];
                    for l in 0..L {
                        val[l] = if a[l] != 0 { b[l] } else { c[l] };
                    }
                    Step::Write
                }
                Op::Mov => {
                    val = regs[ai];
                    Step::Write
                }
                Op::LdImm => {
                    val = [ins.imm; L];
                    Step::Write
                }
                Op::Ld => {
                    let a = regs[ai];
                    for l in 0..L {
                        if active[l] {
                            let addr = a[l].wrapping_add(ins.imm);
                            let idx = addr as usize;
                            let Some(&w) = mem.get(idx) else {
                                // Scalar path raises OutOfBounds { addr }.
                                return BatchExit::Abort;
                            };
                            if !self.scratch.undo.is_empty()
                                && self.scratch.load_conflicts(idx, l as u8)
                            {
                                return BatchExit::Abort;
                            }
                            self.scratch.note_load_range(idx, idx);
                            val[l] = w;
                        }
                    }
                    Step::Write
                }
                Op::St => {
                    let a = regs[ai];
                    let b = regs[bi];
                    for l in 0..L {
                        if active[l] {
                            let addr = a[l].wrapping_add(ins.imm);
                            let idx = addr as usize;
                            if idx >= mem.len() {
                                // Scalar path raises OutOfBounds { addr }.
                                return BatchExit::Abort;
                            }
                            if !self.scratch.note_store(idx, l as u8) {
                                return BatchExit::Abort;
                            }
                            self.scratch.undo.push((addr, mem[idx]));
                            mem[idx] = b[l];
                        }
                    }
                    Step::Advance
                }
                Op::Jmp | Op::Jz | Op::Jnz => {
                    let a = regs[ai];
                    for l in 0..L {
                        if active[l] {
                            let taken = match ins.op {
                                Op::Jmp => true,
                                Op::Jz => a[l] == 0,
                                _ => a[l] != 0,
                            };
                            if taken {
                                if ins.imm as usize > plen {
                                    // Scalar path raises InvalidTarget.
                                    return BatchExit::Abort;
                                }
                                pc[l] = ins.imm;
                            } else {
                                pc[l] = next;
                            }
                        }
                    }
                    Step::Control
                }
                Op::F2I => {
                    let a = regs[ai];
                    for l in 0..L {
                        val[l] = bits_to_f32(a[l]) as u32;
                    }
                    Step::Write
                }
                Op::I2F => {
                    let a = regs[ai];
                    for l in 0..L {
                        val[l] = f32_to_bits(a[l] as f32);
                    }
                    Step::Write
                }
                Op::Tid => {
                    for (l, v) in val.iter_mut().enumerate() {
                        *v = t0 + l as u32;
                    }
                    Step::Write
                }
                Op::Halt => {
                    for l in 0..L {
                        if active[l] {
                            live[l] = false;
                        }
                    }
                    Step::Control
                }
            };

            match step {
                Step::Write => {
                    // Fault realization is lane-exact: a permanent fault
                    // corrupts every active lane's matching write (as every
                    // scalar dynamic instance would be corrupted), while a
                    // transient pass corrupts exactly the one lane-local
                    // write the scalar stream indexes.
                    match mode {
                        LaneFault::Inert => {}
                        LaneFault::Permanent { op } => {
                            if op == ins.op {
                                for l in 0..L {
                                    if active[l] {
                                        if let Some(f) = self.fault.as_mut() {
                                            // Permanent polling ignores the
                                            // dynamic index.
                                            if let Some(m) = f.poll(0, ins.op) {
                                                val[l] ^= m;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        LaneFault::Transient { lane, local_index, fire_index } => {
                            if active[lane] && executed[lane] - 1 == local_index {
                                if let Some(f) = self.fault.as_mut() {
                                    if let Some(m) = f.poll(fire_index, ins.op) {
                                        val[lane] ^= m;
                                    }
                                }
                            }
                        }
                    }
                    let di = ins.dst.idx();
                    for l in 0..L {
                        if active[l] {
                            regs[di][l] = val[l];
                            pc[l] = next;
                        }
                    }
                }
                Step::Advance => {
                    for l in 0..L {
                        if active[l] {
                            pc[l] = next;
                        }
                    }
                }
                Step::Control => {}
            }
        }
        BatchExit::Clean { per_lane: executed, dyn_add }
    }

    #[inline(always)]
    fn exec(
        &mut self,
        prog: &Program,
        regs: &mut [u32; NUM_REGS],
        mem: &mut [u32],
        tid: u32,
        budget: u64,
    ) -> Result<u64, Trap> {
        let instrs = prog.instrs();
        let mut pc = 0usize;
        let mut executed = 0u64;
        loop {
            let Some(ins) = instrs.get(pc) else {
                // Falling off the end is an implicit halt.
                return Ok(executed);
            };
            if executed >= budget {
                return Err(Trap::Watchdog);
            }
            executed += 1;
            self.stats.record(ins.op);
            let dyn_index = self.dyn_counter;
            self.dyn_counter += 1;
            pc += 1;

            let fa = bits_to_f32(regs[ins.a.idx()]);
            let fb = bits_to_f32(regs[ins.b.idx()]);
            let ia = regs[ins.a.idx()];
            let ib = regs[ins.b.idx()];

            let wrote: Option<u32> = match ins.op {
                Op::FAdd => Some(f32_to_bits(fa + fb)),
                Op::FSub => Some(f32_to_bits(fa - fb)),
                Op::FMul => Some(f32_to_bits(fa * fb)),
                Op::FDiv => Some(f32_to_bits(fa / fb)),
                Op::FMin => Some(f32_to_bits(fa.min(fb))),
                Op::FMax => Some(f32_to_bits(fa.max(fb))),
                Op::FAbs => Some(f32_to_bits(fa.abs())),
                Op::FNeg => Some(f32_to_bits(-fa)),
                Op::FSqrt => Some(f32_to_bits(fa.sqrt())),
                Op::FFma => {
                    let fc = bits_to_f32(regs[ins.c.idx()]);
                    Some(f32_to_bits(fa.mul_add(fb, fc)))
                }
                Op::IAdd => Some(ia.wrapping_add(ib)),
                Op::ISub => Some(ia.wrapping_sub(ib)),
                Op::IMul => Some(ia.wrapping_mul(ib)),
                Op::IAnd => Some(ia & ib),
                Op::IOr => Some(ia | ib),
                Op::IXor => Some(ia ^ ib),
                Op::IShl => Some(ia << (ib & 31)),
                Op::IShr => Some(ia >> (ib & 31)),
                Op::FLt => Some((fa < fb) as u32),
                Op::FLe => Some((fa <= fb) as u32),
                Op::ILt => Some((ia < ib) as u32),
                Op::IEq => Some((ia == ib) as u32),
                Op::Sel => {
                    let ic = regs[ins.c.idx()];
                    Some(if ia != 0 { ib } else { ic })
                }
                Op::Mov => Some(ia),
                Op::LdImm => Some(ins.imm),
                Op::Ld => {
                    let addr = ia.wrapping_add(ins.imm);
                    let Some(&w) = mem.get(addr as usize) else {
                        return Err(Trap::OutOfBounds { addr });
                    };
                    Some(w)
                }
                Op::St => {
                    let addr = ia.wrapping_add(ins.imm);
                    let Some(slot) = mem.get_mut(addr as usize) else {
                        return Err(Trap::OutOfBounds { addr });
                    };
                    *slot = ib;
                    None
                }
                Op::Jmp | Op::Jz | Op::Jnz => {
                    let taken = match ins.op {
                        Op::Jmp => true,
                        Op::Jz => ia == 0,
                        _ => ia != 0,
                    };
                    if taken {
                        let target = ins.imm as usize;
                        if target > instrs.len() {
                            return Err(Trap::InvalidTarget { target: ins.imm });
                        }
                        pc = target;
                    }
                    None
                }
                Op::F2I => Some(fa as u32),
                Op::I2F => Some(f32_to_bits(ia as f32)),
                Op::Tid => Some(tid),
                Op::Halt => return Ok(executed),
            };

            if let Some(mut val) = wrote {
                if let Some(fault) = &mut self.fault {
                    if let Some(mask) = fault.poll(dyn_index, ins.op) {
                        val ^= mask;
                    }
                }
                regs[ins.dst.idx()] = val;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn r(i: u8) -> Reg {
        Reg(i)
    }

    fn run(b: ProgramBuilder) -> (Fabric, Context) {
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(64);
        f.run_scalar(&prog, &mut ctx, 10_000).expect("program should not trap");
        (f, ctx)
    }

    #[test]
    fn float_arithmetic() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(r(0), 3.0);
        b.ldimm_f(r(1), 4.0);
        b.fmul(r(2), r(0), r(1));
        b.fadd(r(3), r(2), r(1));
        b.fsub(r(4), r(3), r(0));
        b.fdiv(r(5), r(4), r(1));
        b.fsqrt(r(6), r(0));
        b.fneg(r(7), r(6));
        b.fabs(r(8), r(7));
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_f(r(2)), 12.0);
        assert_eq!(ctx.reg_f(r(3)), 16.0);
        assert_eq!(ctx.reg_f(r(4)), 13.0);
        assert_eq!(ctx.reg_f(r(5)), 3.25);
        assert!((ctx.reg_f(r(8)) - 3.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn fma_min_max() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(r(0), 2.0);
        b.ldimm_f(r(1), 5.0);
        b.ldimm_f(r(2), 1.0);
        b.ffma(r(3), r(0), r(1), r(2));
        b.fmin(r(4), r(0), r(1));
        b.fmax(r(5), r(0), r(1));
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_f(r(3)), 11.0);
        assert_eq!(ctx.reg_f(r(4)), 2.0);
        assert_eq!(ctx.reg_f(r(5)), 5.0);
    }

    #[test]
    fn integer_ops_and_compares() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 6);
        b.ldimm_i(r(1), 3);
        b.iadd(r(2), r(0), r(1));
        b.isub(r(3), r(0), r(1));
        b.imul(r(4), r(0), r(1));
        b.iand(r(5), r(0), r(1));
        b.ior(r(6), r(0), r(1));
        b.ixor(r(7), r(0), r(1));
        b.ishl(r(8), r(1), r(1));
        b.ishr(r(9), r(0), r(1));
        b.ilt(r(10), r(1), r(0));
        b.ieq(r(11), r(0), r(0));
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_i(r(2)), 9);
        assert_eq!(ctx.reg_i(r(3)), 3);
        assert_eq!(ctx.reg_i(r(4)), 18);
        assert_eq!(ctx.reg_i(r(5)), 2);
        assert_eq!(ctx.reg_i(r(6)), 7);
        assert_eq!(ctx.reg_i(r(7)), 5);
        assert_eq!(ctx.reg_i(r(8)), 24);
        assert_eq!(ctx.reg_i(r(9)), 0);
        assert_eq!(ctx.reg_i(r(10)), 1);
        assert_eq!(ctx.reg_i(r(11)), 1);
    }

    #[test]
    fn select_and_conversions() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 1);
        b.ldimm_i(r(1), 10);
        b.ldimm_i(r(2), 20);
        b.sel(r(3), r(0), r(1), r(2));
        b.ldimm_i(r(4), 0);
        b.sel(r(5), r(4), r(1), r(2));
        b.ldimm_f(r(6), 7.9);
        b.f2i(r(7), r(6));
        b.i2f(r(8), r(7));
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_i(r(3)), 10);
        assert_eq!(ctx.reg_i(r(5)), 20);
        assert_eq!(ctx.reg_i(r(7)), 7);
        assert_eq!(ctx.reg_f(r(8)), 7.0);
    }

    #[test]
    fn f2i_saturates_negative_and_nan() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(r(0), -3.0);
        b.f2i(r(1), r(0));
        b.ldimm_f(r(2), f32::NAN);
        b.f2i(r(3), r(2));
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_i(r(1)), 0);
        assert_eq!(ctx.reg_i(r(3)), 0);
    }

    #[test]
    fn memory_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 5);
        b.ldimm_f(r(1), 2.5);
        b.st(r(0), r(1), 2); // mem[7] = 2.5
        b.ld(r(2), r(0), 2);
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_f(r(2)), 2.5);
        assert_eq!(ctx.read_f32(7), 2.5);
    }

    #[test]
    fn out_of_bounds_load_traps() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 1_000_000);
        b.ld(r(1), r(0), 0);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(16);
        let err = f.run_scalar(&prog, &mut ctx, 100).unwrap_err();
        assert_eq!(err, Trap::OutOfBounds { addr: 1_000_000 });
    }

    #[test]
    fn out_of_bounds_store_traps() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 99);
        b.st(r(0), r(0), 0);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(16);
        assert_eq!(f.run_scalar(&prog, &mut ctx, 100).unwrap_err(), Trap::OutOfBounds { addr: 99 });
    }

    #[test]
    fn infinite_loop_hits_watchdog() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top);
        b.jmp(top);
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(4);
        assert_eq!(f.run_scalar(&prog, &mut ctx, 1000).unwrap_err(), Trap::Watchdog);
    }

    #[test]
    fn loop_counts_down() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 10);
        b.ldimm_i(r(1), 1);
        b.ldimm_i(r(2), 0);
        let top = b.new_label();
        b.bind(top);
        b.iadd(r(2), r(2), r(1));
        b.isub(r(0), r(0), r(1));
        b.jnz(r(0), top);
        b.halt();
        let (_, ctx) = run(b);
        assert_eq!(ctx.reg_i(r(2)), 10);
    }

    #[test]
    fn kernel_threads_see_tid_and_share_memory() {
        // mem[tid] = tid as f32 * 2.0
        let mut b = ProgramBuilder::new();
        b.tid(r(0));
        b.i2f(r(1), r(0));
        b.ldimm_f(r(2), 2.0);
        b.fmul(r(3), r(1), r(2));
        b.st(r(0), r(3), 0);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Gpu);
        let mut ctx = f.new_context(8);
        f.run_kernel(&prog, &mut ctx, 8, &[], 100).unwrap();
        for t in 0..8 {
            assert_eq!(ctx.read_f32(t), t as f32 * 2.0);
        }
    }

    #[test]
    fn kernel_args_are_preloaded() {
        let mut b = ProgramBuilder::new();
        b.tid(r(0));
        b.st(r(0), r(10), 0); // store arg value at mem[tid]
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Gpu);
        let mut ctx = f.new_context(4);
        f.run_kernel(&prog, &mut ctx, 4, &[(r(10), f32_to_bits(9.0))], 100).unwrap();
        assert_eq!(ctx.read_f32(3), 9.0);
    }

    #[test]
    fn transient_fault_corrupts_exactly_one_write() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(r(0), 1.0);
        b.ldimm_f(r(1), 1.0); // dynamic index 1 — the injection target
        b.ldimm_f(r(2), 1.0);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Gpu);
        f.inject(FaultModel::Transient { instr_index: 1, mask: 0x0040_0000 });
        let mut ctx = f.new_context(4);
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_eq!(ctx.reg_f(r(0)), 1.0);
        assert_ne!(ctx.reg_f(r(1)), 1.0);
        assert_eq!(ctx.reg_f(r(2)), 1.0);
        assert_eq!(f.fault_state().unwrap().activations(), 1);
    }

    #[test]
    fn permanent_fault_corrupts_every_instance() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(r(0), 2.0);
        b.ldimm_f(r(1), 3.0);
        b.fmul(r(2), r(0), r(1));
        b.fmul(r(3), r(0), r(1));
        b.fadd(r(4), r(0), r(1));
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Gpu);
        f.inject(FaultModel::Permanent { op: Op::FMul, mask: 1 });
        let mut ctx = f.new_context(4);
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_ne!(ctx.reg_f(r(2)), 6.0);
        assert_ne!(ctx.reg_f(r(3)), 6.0);
        assert_eq!(ctx.reg_f(r(4)), 5.0, "FAdd must be unaffected");
        assert_eq!(f.fault_state().unwrap().activations(), 2);
    }

    #[test]
    fn store_is_not_injectable() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 0);
        b.ldimm_f(r(1), 5.0);
        b.st(r(0), r(1), 0);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        f.inject(FaultModel::Permanent { op: Op::St, mask: u32::MAX });
        let mut ctx = f.new_context(4);
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_eq!(ctx.read_f32(0), 5.0, "stores have no destination register");
        assert_eq!(f.fault_state().unwrap().activations(), 0);
    }

    #[test]
    fn dyn_counter_spans_runs_until_reset() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 1);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(4);
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_eq!(f.dyn_instr_count(), 4);
        f.reset_for_run();
        assert_eq!(f.dyn_instr_count(), 0);
        assert_eq!(f.stats().total(), 0);
        assert!(f.fault_state().is_none());
    }

    #[test]
    fn stats_count_per_op() {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(r(0), 1.0);
        b.fadd(r(1), r(0), r(0));
        b.fadd(r(2), r(1), r(0));
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Gpu);
        let mut ctx = f.new_context(4);
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_eq!(f.stats().count(Op::FAdd), 2);
        assert_eq!(f.stats().count(Op::LdImm), 1);
        assert_eq!(f.stats().count(Op::Halt), 1);
        assert_eq!(f.stats().launches(), 1);
    }

    #[test]
    fn falling_off_end_is_implicit_halt() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(0), 7);
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(4);
        let n = f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_eq!(n, 1);
        assert_eq!(ctx.reg_i(r(0)), 7);
    }

    #[test]
    fn scalar_registers_persist_across_runs() {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(r(1), 1);
        b.iadd(r(0), r(0), r(1));
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(4);
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        f.run_scalar(&prog, &mut ctx, 100).unwrap();
        assert_eq!(ctx.reg_i(r(0)), 2);
    }

    #[test]
    fn trap_display_and_error() {
        let t: Box<dyn Error> = Box::new(Trap::Watchdog);
        assert!(t.to_string().contains("watchdog"));
        assert!(Trap::OutOfBounds { addr: 3 }.to_string().contains('3'));
        assert!(Trap::InvalidTarget { target: 9 }.to_string().contains('9'));
    }

    #[test]
    fn context_bytes_accounting() {
        let ctx = Context::new(100);
        assert_eq!(ctx.bytes(), 100 * 4 + NUM_REGS * 4);
    }

    #[test]
    fn read_slice_into_matches_allocating_read() {
        let mut ctx = Context::new(16);
        ctx.write_slice_f32(4, &[1.5, -2.0, 3.25]);
        let mut buf = [0.0f32; 3];
        ctx.read_slice_f32_into(4, &mut buf);
        assert_eq!(buf.as_slice(), ctx.read_slice_f32(4, 3).as_slice());
    }

    /// Run the same kernel through the reference and lockstep paths on two
    /// fresh fabrics and assert every observable matches bit for bit.
    fn assert_lockstep_matches(
        prog: &Program,
        mem_words: usize,
        n_threads: u32,
        budget: u64,
        fault: Option<FaultModel>,
    ) {
        let mut f_ref = Fabric::new(Profile::Gpu);
        let mut f_ls = Fabric::new(Profile::Gpu);
        if let Some(m) = fault {
            f_ref.inject(m);
            f_ls.inject(m);
        }
        let mut ctx_ref = f_ref.new_context(mem_words);
        let mut ctx_ls = f_ls.new_context(mem_words);
        let r_ref = f_ref.run_kernel_reference(prog, &mut ctx_ref, n_threads, &[], budget);
        let r_ls = f_ls.run_kernel(prog, &mut ctx_ls, n_threads, &[], budget);
        assert_eq!(r_ref, r_ls, "result/trap mismatch");
        assert_eq!(ctx_ref, ctx_ls, "memory or registers diverged");
        assert_eq!(f_ref.stats(), f_ls.stats(), "ExecStats diverged");
        assert_eq!(f_ref.dyn_instr_count(), f_ls.dyn_instr_count(), "dyn counter diverged");
        assert_eq!(f_ref.fault_state(), f_ls.fault_state(), "fault state diverged");
    }

    /// tid-dependent loop: lanes iterate different trip counts, so the
    /// batch diverges and must reconverge at the loop exit.
    fn divergent_loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.tid(r(0)); // counter = tid
        b.ldimm_i(r(1), 1);
        b.ldimm_i(r(2), 0); // accumulator
        let top = b.new_label();
        let done = b.new_label();
        b.bind(top);
        b.jz(r(0), done);
        b.iadd(r(2), r(2), r(0));
        b.isub(r(0), r(0), r(1));
        b.jmp(top);
        b.bind(done);
        b.tid(r(3));
        b.st(r(3), r(2), 0); // mem[tid] = sum(1..=tid)
        b.halt();
        b.build()
    }

    #[test]
    fn lockstep_divergent_loop_matches_reference() {
        let prog = divergent_loop_program();
        for n in [1u32, 3, 8, 13, 64] {
            assert_lockstep_matches(&prog, 64, n, 10_000, None);
        }
        let mut f = Fabric::new(Profile::Gpu);
        let mut ctx = f.new_context(64);
        f.run_kernel(&prog, &mut ctx, 8, &[], 10_000).unwrap();
        for t in 0..8u32 {
            assert_eq!(ctx.mem[t as usize], t * (t + 1) / 2);
        }
    }

    #[test]
    fn lockstep_conflicting_stores_fall_back_to_scalar_order() {
        // Every thread stores its tid to the SAME word: thread-major order
        // means the last thread wins. The batch conflicts and must roll
        // back to the scalar path to preserve that.
        let mut b = ProgramBuilder::new();
        b.tid(r(0));
        b.ldimm_i(r(1), 0);
        b.st(r(1), r(0), 7);
        b.halt();
        let prog = b.build();
        assert_lockstep_matches(&prog, 16, 8, 100, None);
        let mut f = Fabric::new(Profile::Gpu);
        let mut ctx = f.new_context(16);
        f.run_kernel(&prog, &mut ctx, 8, &[], 100).unwrap();
        assert_eq!(ctx.mem[7], 7, "last thread's store must win");
    }

    #[test]
    fn lockstep_read_after_write_chain_matches_reference() {
        // Thread t reads the word thread t-1 wrote (cross-lane RAW): the
        // lockstep batch must detect the conflict and replay scalar.
        let mut b = ProgramBuilder::new();
        b.tid(r(0));
        b.ld(r(1), r(0), 0); // mem[tid] (written by thread tid-1... races)
        b.ldimm_i(r(2), 1);
        b.iadd(r(1), r(1), r(2));
        b.iadd(r(3), r(0), r(2));
        b.st(r(3), r(1), 0); // mem[tid+1] = mem[tid] + 1
        b.halt();
        let prog = b.build();
        assert_lockstep_matches(&prog, 64, 16, 100, None);
        let mut f = Fabric::new(Profile::Gpu);
        let mut ctx = f.new_context(64);
        f.run_kernel(&prog, &mut ctx, 16, &[], 100).unwrap();
        assert_eq!(ctx.mem[16], 16, "prefix chain requires thread-major order");
    }

    #[test]
    fn lockstep_watchdog_matches_reference() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top);
        b.jmp(top);
        let prog = b.build();
        assert_lockstep_matches(&prog, 4, 8, 50, None);
    }

    #[test]
    fn lockstep_oob_store_matches_reference() {
        // Thread 5 stores out of bounds; earlier threads' stores must land.
        let mut b = ProgramBuilder::new();
        b.tid(r(0));
        b.ldimm_i(r(1), 5);
        b.ieq(r(2), r(0), r(1));
        b.ldimm_i(r(3), 1_000_000);
        b.ldimm_i(r(4), 0);
        b.sel(r(5), r(2), r(3), r(0));
        b.st(r(5), r(0), 0);
        b.halt();
        let prog = b.build();
        assert_lockstep_matches(&prog, 16, 8, 100, None);
    }

    #[test]
    fn lockstep_transient_fault_is_lane_exact() {
        // Sweep the transient target across the whole dynamic stream of a
        // divergent kernel; every index must reproduce the reference run.
        let prog = divergent_loop_program();
        let mut probe = Fabric::new(Profile::Gpu);
        let mut ctx = probe.new_context(64);
        probe.run_kernel_reference(&prog, &mut ctx, 8, &[], 10_000).unwrap();
        let dyn_total = probe.dyn_instr_count();
        for idx in 0..dyn_total {
            let fault = FaultModel::Transient { instr_index: idx, mask: 0x8000_0001 };
            assert_lockstep_matches(&prog, 64, 8, 10_000, Some(fault));
        }
    }

    #[test]
    fn lockstep_permanent_fault_matches_reference() {
        let prog = divergent_loop_program();
        for op in [Op::IAdd, Op::ISub, Op::Tid, Op::St, Op::Ld] {
            let fault = FaultModel::Permanent { op, mask: 0x0000_0101 };
            assert_lockstep_matches(&prog, 64, 8, 10_000, Some(fault));
        }
    }

    #[test]
    fn lockstep_explicit_widths_match() {
        let prog = divergent_loop_program();
        let mut f_ref = Fabric::new(Profile::Gpu);
        let mut ctx_ref = f_ref.new_context(64);
        f_ref.run_kernel_reference(&prog, &mut ctx_ref, 11, &[], 10_000).unwrap();
        for width in [1usize, 4, 8, 16] {
            let mut f = Fabric::new(Profile::Gpu);
            let mut ctx = f.new_context(64);
            match width {
                1 => f.run_kernel_lockstep::<1>(&prog, &mut ctx, 11, &[], 10_000),
                4 => f.run_kernel_lockstep::<4>(&prog, &mut ctx, 11, &[], 10_000),
                8 => f.run_kernel_lockstep::<8>(&prog, &mut ctx, 11, &[], 10_000),
                _ => f.run_kernel_lockstep::<16>(&prog, &mut ctx, 11, &[], 10_000),
            }
            .unwrap();
            assert_eq!(ctx, ctx_ref, "width {width} diverged");
            assert_eq!(f.stats(), f_ref.stats(), "width {width} stats diverged");
        }
    }
}
