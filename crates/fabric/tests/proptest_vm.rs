//! Property-based tests for the fabric VM.

use diverseav_fabric::{f32_to_bits, Fabric, FaultModel, Op, Profile, ProgramBuilder, Reg, Trap};
use proptest::prelude::*;

/// Build a straight-line float pipeline from `(a, b)` pairs.
fn pipeline_program(pairs: &[(f32, f32)]) -> diverseav_fabric::Program {
    let mut b = ProgramBuilder::new();
    for (i, &(x, y)) in pairs.iter().enumerate() {
        let base = (i % 10) as u8 * 4;
        b.ldimm_f(Reg(base), x);
        b.ldimm_f(Reg(base + 1), y);
        b.fadd(Reg(base + 2), Reg(base), Reg(base + 1));
        b.fmul(Reg(base + 3), Reg(base + 2), Reg(base));
    }
    b.halt();
    b.build()
}

proptest! {
    /// The interpreter is deterministic: two runs of the same program from
    /// the same context state produce identical registers and memory.
    #[test]
    fn deterministic_execution(pairs in proptest::collection::vec((-1e3f32..1e3, -1e3f32..1e3), 1..20)) {
        let prog = pipeline_program(&pairs);
        let mut f1 = Fabric::new(Profile::Gpu);
        let mut f2 = Fabric::new(Profile::Gpu);
        let mut c1 = f1.new_context(16);
        let mut c2 = f2.new_context(16);
        f1.run_scalar(&prog, &mut c1, 1_000_000).unwrap();
        f2.run_scalar(&prog, &mut c2, 1_000_000).unwrap();
        prop_assert_eq!(c1, c2);
    }

    /// A fault with mask 0 never changes any architectural state.
    #[test]
    fn zero_mask_fault_is_identity(
        pairs in proptest::collection::vec((-1e3f32..1e3, -1e3f32..1e3), 1..10),
        idx in 0u64..50,
    ) {
        let prog = pipeline_program(&pairs);
        let mut clean = Fabric::new(Profile::Gpu);
        let mut faulty = Fabric::new(Profile::Gpu);
        faulty.inject(FaultModel::Transient { instr_index: idx, mask: 0 });
        let mut cc = clean.new_context(16);
        let mut cf = faulty.new_context(16);
        clean.run_scalar(&prog, &mut cc, 1_000_000).unwrap();
        faulty.run_scalar(&prog, &mut cf, 1_000_000).unwrap();
        prop_assert_eq!(cc, cf);
    }

    /// A transient single-bit fault changes at most the targeted write and
    /// its data-flow descendants — never instructions before the target.
    #[test]
    fn transient_fault_is_localized_in_time(
        pairs in proptest::collection::vec((1.0f32..100.0, 1.0f32..100.0), 2..10),
        bit in 0u32..32,
    ) {
        let prog = pipeline_program(&pairs);
        let total = prog.len() as u64;
        let target = total / 2;
        let mut clean = Fabric::new(Profile::Gpu);
        let mut faulty = Fabric::new(Profile::Gpu);
        faulty.inject(FaultModel::Transient { instr_index: target, mask: 1 << bit });
        let mut cc = clean.new_context(16);
        let mut cf = faulty.new_context(16);
        // Snapshot after executing only the pre-target prefix is not
        // directly observable, so instead check the fault activation count:
        clean.run_scalar(&prog, &mut cc, 1_000_000).unwrap();
        faulty.run_scalar(&prog, &mut cf, 1_000_000).unwrap();
        let st = faulty.fault_state().unwrap();
        // The target instruction exists, so the fault must fire exactly once
        // if the targeted instruction writes a register.
        prop_assert!(st.activations() <= 1);
    }

    /// Kernel execution visits every thread exactly once: a kernel that
    /// increments mem[tid] leaves every cell at 1.
    #[test]
    fn kernel_covers_all_threads(n in 1u32..64) {
        let mut b = ProgramBuilder::new();
        b.tid(Reg(0));
        b.ld(Reg(1), Reg(0), 0);
        b.ldimm_i(Reg(2), 1);
        b.iadd(Reg(1), Reg(1), Reg(2));
        b.st(Reg(0), Reg(1), 0);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Gpu);
        let mut ctx = f.new_context(n as usize);
        f.run_kernel(&prog, &mut ctx, n, &[], 100).unwrap();
        for i in 0..n as usize {
            prop_assert_eq!(ctx.mem[i], 1);
        }
    }

    /// Loads at arbitrary addresses either succeed (in bounds) or raise
    /// exactly `Trap::OutOfBounds` — never a panic or wrong trap.
    #[test]
    fn loads_trap_iff_out_of_bounds(addr in 0u32..256, mem_words in 1usize..128) {
        let mut b = ProgramBuilder::new();
        b.ldimm_i(Reg(0), addr);
        b.ld(Reg(1), Reg(0), 0);
        b.halt();
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(mem_words);
        let res = f.run_scalar(&prog, &mut ctx, 100);
        if (addr as usize) < mem_words {
            prop_assert!(res.is_ok());
        } else {
            prop_assert_eq!(res.unwrap_err(), Trap::OutOfBounds { addr });
        }
    }

    /// The watchdog fires for any budget smaller than the program length on
    /// straight-line code, and never fires when the budget is sufficient.
    #[test]
    fn watchdog_respects_budget(n_instr in 1usize..50, slack in 0u64..10) {
        let mut b = ProgramBuilder::new();
        for _ in 0..n_instr {
            b.ldimm_i(Reg(0), 1);
        }
        let prog = b.build();
        let mut f = Fabric::new(Profile::Cpu);
        let mut ctx = f.new_context(4);
        let enough = f.run_scalar(&prog, &mut ctx, n_instr as u64 + slack);
        prop_assert!(enough.is_ok());
        let starved = f.run_scalar(&prog, &mut ctx, n_instr as u64 - 1);
        if n_instr > 1 {
            prop_assert_eq!(starved.unwrap_err(), Trap::Watchdog);
        }
    }

    /// XOR-mask injection is an involution: injecting the same mask into the
    /// same LdImm twice (two separate runs) yields the clean value both
    /// times XORed — i.e. value ^ mask, deterministically.
    #[test]
    fn injection_is_deterministic_xor(value in any::<f32>(), mask in 1u32..=u32::MAX) {
        let mut b = ProgramBuilder::new();
        b.ldimm_f(Reg(0), value);
        b.halt();
        let prog = b.build();
        let expected = f32_to_bits(value) ^ mask;
        for _ in 0..2 {
            let mut f = Fabric::new(Profile::Gpu);
            f.inject(FaultModel::Transient { instr_index: 0, mask });
            let mut ctx = f.new_context(4);
            f.run_scalar(&prog, &mut ctx, 10).unwrap();
            prop_assert_eq!(ctx.reg_i(Reg(0)), expected);
        }
    }

    /// Permanent faults on an opcode the program never executes are inert.
    #[test]
    fn permanent_fault_on_unused_opcode_is_inert(
        pairs in proptest::collection::vec((1.0f32..10.0, 1.0f32..10.0), 1..8),
    ) {
        let prog = pipeline_program(&pairs); // uses LdImm/FAdd/FMul/Halt only
        let mut clean = Fabric::new(Profile::Gpu);
        let mut faulty = Fabric::new(Profile::Gpu);
        faulty.inject(FaultModel::Permanent { op: Op::FDiv, mask: u32::MAX });
        let mut cc = clean.new_context(16);
        let mut cf = faulty.new_context(16);
        clean.run_scalar(&prog, &mut cc, 100_000).unwrap();
        faulty.run_scalar(&prog, &mut cf, 100_000).unwrap();
        prop_assert_eq!(cc, cf);
        prop_assert_eq!(faulty.fault_state().unwrap().activations(), 0);
    }
}
