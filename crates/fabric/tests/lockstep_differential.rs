//! Lane-equivalence gate for the lockstep kernel engine.
//!
//! Random kernels — divergent branches, loops, cross-lane memory traffic,
//! watchdog traps, out-of-bounds accesses, and injected transient/permanent
//! faults — must produce identical registers, memory, traps, [`ExecStats`],
//! dynamic-instruction counts, and fault activations under the thread-major
//! reference path (`run_kernel_reference`) and the lockstep path for lane
//! widths {1, 4, 8, 16}. This is the property the whole refactor rests on:
//! the batched interpreter is an *optimization*, never a semantic change.

use diverseav_fabric::{Fabric, FaultModel, Profile, Program, ProgramBuilder, Reg, ALL_OPS};
use proptest::prelude::*;

/// Words of context memory for every generated kernel.
const MEM_WORDS: usize = 64;

/// One generated instruction: an opcode selector plus raw operand fields.
/// `imm` doubles as the branch-target selector so branches can land on any
/// instruction boundary (including backward edges, i.e. loops).
type RandInstr = (u8, u8, u8, u8, u8, u32);

/// Lower a random descriptor list into a program. A label is bound at every
/// instruction boundary (and at end-of-program) so generated branches cover
/// forward jumps, backward loops, and the implicit-halt boundary.
fn build_program(descr: &[RandInstr]) -> Program {
    let n = descr.len();
    let mut b = ProgramBuilder::new();
    let labels: Vec<_> = (0..=n).map(|_| b.new_label()).collect();
    for (i, &(kind, dst, a, b_, c, imm)) in descr.iter().enumerate() {
        b.bind(labels[i]);
        let d = Reg(dst % 8);
        let ra = Reg(a % 8);
        let rb = Reg(b_ % 8);
        let rc = Reg(c % 8);
        let target = labels[(imm as usize) % (n + 1)];
        match kind % 19 {
            0 => b.fadd(d, ra, rb),
            1 => b.fmul(d, ra, rb),
            2 => b.fdiv(d, ra, rb),
            3 => b.iadd(d, ra, rb),
            4 => b.isub(d, ra, rb),
            5 => b.ixor(d, ra, rb),
            6 => b.ishl(d, ra, rb),
            7 => b.ilt(d, ra, rb),
            8 => b.sel(d, ra, rb, rc),
            9 => b.mov(d, ra),
            10 => b.ldimm_i(d, imm),
            11 => b.tid(d),
            // Memory offsets range past MEM_WORDS so some accesses trap.
            12 => b.ld(d, ra, imm % (MEM_WORDS as u32 + 16)),
            13 => b.st(ra, rb, imm % (MEM_WORDS as u32 + 16)),
            14 => b.jz(ra, target),
            15 => b.jnz(ra, target),
            16 => b.i2f(d, ra),
            17 => b.halt(),
            _ => b.jmp(target),
        }
    }
    b.bind(labels[n]);
    b.build()
}

/// Deterministic non-trivial memory image shared by both fabrics.
fn prefill(mem: &mut [u32]) {
    for (i, w) in mem.iter_mut().enumerate() {
        *w = (i as u32).wrapping_mul(0x9E37_79B9).rotate_left(7) ^ 0x5A5A_0001;
    }
}

/// Run the kernel through the reference path and one lockstep width and
/// assert every observable is bit-identical.
fn assert_equivalent<const L: usize>(
    prog: &Program,
    n_threads: u32,
    budget: u64,
    fault: Option<FaultModel>,
) -> Result<(), TestCaseError> {
    let mut f_ref = Fabric::new(Profile::Gpu);
    let mut f_ls = Fabric::new(Profile::Gpu);
    if let Some(m) = fault {
        f_ref.inject(m);
        f_ls.inject(m);
    }
    let mut c_ref = f_ref.new_context(MEM_WORDS);
    let mut c_ls = f_ls.new_context(MEM_WORDS);
    prefill(&mut c_ref.mem);
    prefill(&mut c_ls.mem);

    let r_ref = f_ref.run_kernel_reference(prog, &mut c_ref, n_threads, &[], budget);
    let r_ls = f_ls.run_kernel_lockstep::<L>(prog, &mut c_ls, n_threads, &[], budget);

    prop_assert_eq!(r_ref, r_ls, "executed count / trap diverged at width {}", L);
    prop_assert_eq!(&c_ref, &c_ls, "memory or registers diverged at width {}", L);
    prop_assert_eq!(f_ref.stats(), f_ls.stats(), "ExecStats diverged at width {}", L);
    prop_assert_eq!(
        f_ref.dyn_instr_count(),
        f_ls.dyn_instr_count(),
        "dynamic-instruction counter diverged at width {}",
        L
    );
    prop_assert_eq!(
        f_ref.fault_state(),
        f_ls.fault_state(),
        "fault activations diverged at width {}",
        L
    );
    Ok(())
}

/// Decode the fault selector drawn by the strategies below.
fn pick_fault(sel: u8, idx: u64, mask: u32) -> Option<FaultModel> {
    match sel % 4 {
        0 => None,
        // Early indices land inside the first batches; later ones exercise
        // the probe/re-run machinery deeper into the stream.
        1 => Some(FaultModel::Transient { instr_index: idx % 64, mask }),
        2 => Some(FaultModel::Transient { instr_index: idx, mask }),
        _ => {
            Some(FaultModel::Permanent { op: ALL_OPS[(idx % ALL_OPS.len() as u64) as usize], mask })
        }
    }
}

proptest! {
    /// Arbitrary kernels over arbitrary thread counts and watchdog budgets,
    /// with and without injected faults, are bit-identical across the
    /// reference path and lockstep widths 1, 4, and 8.
    #[test]
    fn lockstep_matches_reference_for_random_kernels(
        descr in proptest::collection::vec(
            (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u32..4096),
            1..48,
        ),
        n_threads in 1u32..24,
        budget in 1u64..220,
        fault_sel in 0u8..=255,
        fault_idx in 0u64..2048,
        fault_mask in any::<u32>(),
    ) {
        let prog = build_program(&descr);
        let fault = pick_fault(fault_sel, fault_idx, fault_mask);
        assert_equivalent::<1>(&prog, n_threads, budget, fault)?;
        assert_equivalent::<4>(&prog, n_threads, budget, fault)?;
        assert_equivalent::<8>(&prog, n_threads, budget, fault)?;
        assert_equivalent::<16>(&prog, n_threads, budget, fault)?;
    }

    /// Focused generator: guaranteed divergent loops (trip count = tid) with
    /// interleaved shared-memory traffic, swept across transient indices —
    /// the worst case for lane-exact fault realization.
    #[test]
    fn lockstep_transient_sweep_on_divergent_loops(
        n_threads in 2u32..17,
        idx in 0u64..600,
        mask in 1u32..=u32::MAX,
    ) {
        let mut b = ProgramBuilder::new();
        b.tid(Reg(0));
        b.ldimm_i(Reg(1), 1);
        b.ldimm_i(Reg(2), 0);
        let top = b.new_label();
        let out = b.new_label();
        b.bind(top);
        b.jz(Reg(0), out);
        b.iadd(Reg(2), Reg(2), Reg(0));
        b.ld(Reg(3), Reg(2), 0);      // data-dependent shared load
        b.iadd(Reg(2), Reg(2), Reg(3));
        b.isub(Reg(0), Reg(0), Reg(1));
        b.jmp(top);
        b.bind(out);
        b.tid(Reg(4));
        b.st(Reg(4), Reg(2), 8);      // lane-private store
        b.halt();
        let prog = b.build();
        let fault = Some(FaultModel::Transient { instr_index: idx, mask });
        assert_equivalent::<4>(&prog, n_threads, 4000, fault)?;
        assert_equivalent::<8>(&prog, n_threads, 4000, fault)?;
        assert_equivalent::<16>(&prog, n_threads, 4000, fault)?;
    }

    /// Focused generator: lanes branch on tid parity to two *different*
    /// store instructions that write the same shared word. Min-pc
    /// scheduling executes the lower-pc store site first regardless of
    /// thread order, while thread-major semantics say the highest thread
    /// must win the word — the scheduling-order trap a lockstep engine
    /// without store-conflict rollback gets wrong.
    #[test]
    fn lockstep_divergent_shared_stores_keep_thread_order(
        n_threads in 2u32..24,
        slot in 0u32..4,
        pad in 0usize..4,
    ) {
        let mut b = ProgramBuilder::new();
        b.tid(Reg(0));
        b.ldimm_i(Reg(1), 1);
        b.iand(Reg(2), Reg(0), Reg(1)); // parity
        b.ldimm_i(Reg(4), slot);
        let odd = b.new_label();
        let even = b.new_label();
        b.jnz(Reg(2), odd);
        b.jmp(even);
        b.bind(odd); // lower-pc store site (odd tids)
        b.st(Reg(4), Reg(0), 16); // mem[16 + slot] = tid
        b.halt();
        b.bind(even); // higher-pc store site (even tids)
        for _ in 0..pad {
            b.iadd(Reg(5), Reg(5), Reg(1));
        }
        b.st(Reg(4), Reg(0), 16);
        b.halt();
        let prog = b.build();
        assert_equivalent::<4>(&prog, n_threads, 1000, None)?;
        assert_equivalent::<8>(&prog, n_threads, 1000, None)?;
        assert_equivalent::<16>(&prog, n_threads, 1000, None)?;

        // Thread-major ground truth: the last thread owns the word.
        let mut f = Fabric::new(Profile::Gpu);
        let mut ctx = f.new_context(MEM_WORDS);
        prefill(&mut ctx.mem);
        f.run_kernel(&prog, &mut ctx, n_threads, &[], 1000).unwrap();
        prop_assert_eq!(ctx.mem[16 + slot as usize], n_threads - 1);
    }
}
