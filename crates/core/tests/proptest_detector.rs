//! Property-based tests of the error-detection engine.

use diverseav::{DetectorConfig, DetectorModel, Divergence, OnlineDetector, TrainSample, VehState};
use proptest::prelude::*;

fn stream(divs: &[f64], v: f64) -> Vec<TrainSample> {
    divs.iter()
        .enumerate()
        .map(|(i, &d)| TrainSample {
            t: i as f64 * 0.05,
            state: VehState { v, a: 0.0, w: 0.0, alpha: 0.0 },
            div: Divergence { throttle: d, brake: d * 0.5, steer: d * 0.1 },
        })
        .collect()
}

proptest! {
    /// A detector never alarms on its own training data (thresholds are
    /// per-state maxima of the same smoothed stream, with margin ≥ 1).
    #[test]
    fn no_alarm_on_training_data(
        divs in proptest::collection::vec(0.0f64..0.5, 5..60),
        v in 0.0f64..20.0,
        rw in 1usize..10,
    ) {
        let run = stream(&divs, v);
        let cfg = DetectorConfig::default().with_rw(rw);
        let model = DetectorModel::train(std::slice::from_ref(&run), &cfg);
        prop_assert_eq!(OnlineDetector::replay(&model, cfg, &run), None);
    }

    /// Scaling every training divergence up scales thresholds up:
    /// a stream that alarms under the larger model also alarms under the
    /// smaller one (monotonicity of detection in threshold scale).
    #[test]
    fn thresholds_are_monotone_in_training_scale(
        divs in proptest::collection::vec(0.01f64..0.2, 10..40),
        probe in 0.05f64..2.0,
    ) {
        let small = stream(&divs, 5.0);
        let big = stream(&divs.iter().map(|d| d * 3.0).collect::<Vec<_>>(), 5.0);
        let cfg = DetectorConfig::default().with_rw(3);
        let m_small = DetectorModel::train(&[small], &cfg);
        let m_big = DetectorModel::train(&[big], &cfg);
        let test = stream(&[probe; 12], 5.0);
        let alarm_big = OnlineDetector::replay(&m_big, cfg, &test).is_some();
        let alarm_small = OnlineDetector::replay(&m_small, cfg, &test).is_some();
        // Anything the lenient (big-threshold) model flags, the strict
        // model flags too.
        if alarm_big {
            prop_assert!(alarm_small);
        }
    }

    /// The margin is monotone: raising it never creates new alarms.
    #[test]
    fn margin_is_monotone(
        divs in proptest::collection::vec(0.01f64..0.3, 10..40),
        probe in 0.01f64..1.0,
        extra in 0.1f64..1.0,
    ) {
        let train = stream(&divs, 5.0);
        let base_cfg = DetectorConfig::default().with_rw(3);
        let model = DetectorModel::train(&[train], &base_cfg);
        let test = stream(&[probe; 10], 5.0);
        let mut wide_cfg = base_cfg;
        wide_cfg.margin = base_cfg.margin + extra;
        let narrow = OnlineDetector::replay(&model, base_cfg, &test);
        let wide = OnlineDetector::replay(&model, wide_cfg, &test);
        if wide.is_some() {
            prop_assert!(narrow.is_some(), "wider margin cannot alarm where narrow did not");
        }
    }

    /// Alarm time is the first exceedance: replaying a prefix containing
    /// the alarm yields the same alarm time.
    #[test]
    fn alarm_time_is_prefix_stable(
        quiet in proptest::collection::vec(0.0f64..0.01, 5..20),
        spike in 0.5f64..2.0,
        tail in proptest::collection::vec(0.0f64..0.01, 0..20),
    ) {
        let train = stream(&vec![0.01; 30], 5.0);
        let cfg = DetectorConfig::default().with_rw(3);
        let model = DetectorModel::train(&[train], &cfg);
        let mut divs = quiet.clone();
        divs.push(spike);
        let cut = divs.len();
        divs.extend(tail);
        let full = stream(&divs, 5.0);
        let alarm_full = OnlineDetector::replay(&model, cfg, &full);
        let alarm_prefix = OnlineDetector::replay(&model, cfg, &full[..cut]);
        prop_assert!(alarm_full.is_some(), "the spike must alarm");
        prop_assert_eq!(alarm_full, alarm_prefix);
    }

    /// Thresholds never fall below the floor, for any state.
    #[test]
    fn floor_is_respected(v in -50.0f64..50.0, a in -20.0f64..20.0, ch in 0usize..3) {
        let cfg = DetectorConfig::default();
        let model = DetectorModel::train(&[], &cfg);
        let state = VehState { v, a, w: v / 10.0, alpha: a / 10.0 };
        prop_assert!(model.threshold(&state, ch, &cfg) >= cfg.floor);
    }
}
