//! The DiverseAV-enabled autonomous driving system: sensor data
//! distributor + redundant agents + control fusion + error detection,
//! wired as a drop-in ADS (Fig 2 of the paper).

use crate::actuation::{Divergence, VehState};
use crate::detector::{DetectorConfig, DetectorModel, DetectorTelemetry, OnlineDetector};
use crate::distributor::AgentMode;
use crate::fusion::FusionPolicy;
use diverseav_agent::{AgentConfig, AgentError, SensorimotorAgent};
use diverseav_fabric::{ExecStats, Fabric, FaultModel, Profile};
use diverseav_simworld::{Controls, RouteHint, SensorFrame};

/// A processor unit: one GPU fabric and one CPU fabric.
#[derive(Clone, Debug)]
pub struct ProcessorUnit {
    /// The data-parallel fabric (perception kernels).
    pub gpu: Fabric,
    /// The scalar fabric (tracker + PID).
    pub cpu: Fabric,
}

impl ProcessorUnit {
    fn new() -> Self {
        ProcessorUnit { gpu: Fabric::new(Profile::Gpu), cpu: Fabric::new(Profile::Cpu) }
    }
}

/// Configuration of an ADS instance.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AdsConfig {
    /// Deployment mode (single / DiverseAV round-robin / FD duplicate).
    pub mode: AgentMode,
    /// Agent parameters (shared by both agent instances).
    pub agent: AgentConfig,
    /// Control fusion policy.
    pub fusion: FusionPolicy,
    /// Seed for the agents' private jitter RNGs.
    pub seed: u64,
    /// Round-robin partial overlap: every Nth frame goes to both agents
    /// (paper footnote 5). `None` = pure round-robin.
    pub overlap_period: Option<u32>,
}

impl AdsConfig {
    /// Default configuration for a mode.
    pub fn for_mode(mode: AgentMode, seed: u64) -> Self {
        AdsConfig {
            mode,
            agent: AgentConfig::default(),
            fusion: FusionPolicy::ActiveAgent,
            seed,
            overlap_period: None,
        }
    }
}

/// Per-tick work accounting for the profiling layer: how much the ADS
/// *did* on its last tick, in units that are pure functions of the run
/// seed (dynamic fabric instructions, detector activity). The modeled
/// profiling time source turns these into deterministic latencies;
/// `detect_ns` is only nonzero under `DIVERSEAV_PROFILE=wall`, where the
/// detector check is timed in place (it runs inside [`Ads::tick`], so
/// the loop cannot bracket it from outside).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TickWork {
    /// Dynamic GPU-fabric instructions executed this tick (all units).
    pub gpu_instr: u64,
    /// Dynamic CPU-fabric instructions executed this tick (all units).
    pub cpu_instr: u64,
    /// Whether the error detector observed a divergence sample.
    pub detector_observed: bool,
    /// Wall-clock nanoseconds spent in the detector check (wall time
    /// source only; 0 otherwise).
    pub detect_ns: u64,
}

/// Output of one ADS tick.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TickOutput {
    /// The actuation command sent to the vehicle.
    pub controls: Controls,
    /// The compared pair `(fresh output, reference output)` feeding the
    /// error detector, once a reference exists.
    pub pair: Option<(Controls, Controls)>,
    /// Divergence of the pair.
    pub divergence: Option<Divergence>,
    /// Whether the error detector raised its alarm on this tick.
    pub alarm_raised: bool,
    /// Detector internals for this tick (`None` when no detector is
    /// attached or it had nothing to observe).
    pub detector: Option<DetectorTelemetry>,
    /// Whether an armed fabric fault had corrupted state by this tick.
    pub fault_active: bool,
}

/// A DiverseAV-enabled (or baseline) autonomous driving system.
///
/// [`Ads::tick`] consumes one sensor frame and produces one actuation;
/// closing the loop (stepping the world under the returned controls) is
/// owned by `diverseav-runtime`'s `SimLoop`.
///
/// # Example
///
/// ```
/// use diverseav::{AdsConfig, AgentMode, Ads, VehState};
/// use diverseav_simworld::{lead_slowdown, SensorConfig, World};
///
/// # fn main() -> Result<(), diverseav_agent::AgentError> {
/// let mut world = World::new(lead_slowdown(), SensorConfig::default(), 1);
/// let mut ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 42));
/// let frame = world.sense();
/// let hint = world.route_hint();
/// let state = VehState::from(world.ego_state());
/// let out = ads.tick(&frame, hint, state, world.time())?;
/// assert!(out.pair.is_none(), "no reference output before the peer runs");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Ads {
    cfg: AdsConfig,
    agents: Vec<SensorimotorAgent>,
    units: Vec<ProcessorUnit>,
    detector: Option<OnlineDetector>,
    step: u64,
    last_output: [Option<Controls>; 2],
    prev_selected: Option<Controls>,
    prev_instr: (u64, u64),
    last_work: TickWork,
    time_detect: bool,
}

impl Ads {
    /// Build an ADS in the configured mode.
    pub fn new(cfg: AdsConfig) -> Self {
        let agents = (0..cfg.mode.n_agents())
            .map(|i| SensorimotorAgent::new(cfg.agent, cfg.seed.wrapping_add(i as u64 * 101)))
            .collect();
        let units = (0..cfg.mode.n_units()).map(|_| ProcessorUnit::new()).collect();
        Ads {
            cfg,
            agents,
            units,
            detector: None,
            step: 0,
            last_output: [None, None],
            prev_selected: None,
            prev_instr: (0, 0),
            last_work: TickWork::default(),
            time_detect: diverseav_obs::profile::source() == diverseav_obs::TimeSource::Wall,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AdsConfig {
        &self.cfg
    }

    /// Attach a trained error detector.
    pub fn attach_detector(&mut self, model: DetectorModel, det_cfg: DetectorConfig) {
        self.detector = Some(OnlineDetector::new(model, det_cfg));
    }

    /// The attached detector, if any.
    pub fn detector(&self) -> Option<&OnlineDetector> {
        self.detector.as_ref()
    }

    /// Time the detector alarm was raised, if it was.
    pub fn alarm_time(&self) -> Option<f64> {
        self.detector.as_ref().and_then(|d| d.alarm_time())
    }

    /// Arm a fault on one processor unit's fabric.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range for the mode.
    pub fn inject_fault(&mut self, unit: usize, profile: Profile, model: FaultModel) {
        let u = &mut self.units[unit];
        match profile {
            Profile::Gpu => u.gpu.inject(model),
            Profile::Cpu => u.cpu.inject(model),
        }
    }

    /// Whether any armed fault has corrupted at least one register.
    pub fn fault_activated(&self) -> bool {
        self.units.iter().any(|u| {
            u.gpu.fault_state().map(|f| f.is_active()).unwrap_or(false)
                || u.cpu.fault_state().map(|f| f.is_active()).unwrap_or(false)
        })
    }

    /// Borrow the execution statistics of one fabric of one processor
    /// unit, without cloning the per-opcode histogram.
    pub fn unit_stats(&self, profile: Profile, unit: usize) -> Option<&ExecStats> {
        let u = self.units.get(unit)?;
        Some(match profile {
            Profile::Gpu => u.gpu.stats(),
            Profile::Cpu => u.cpu.stats(),
        })
    }

    /// Dynamic-instruction totals per fabric: `(profile, unit, stats)`.
    pub fn exec_stats(&self) -> Vec<(Profile, usize, ExecStats)> {
        self.units
            .iter()
            .enumerate()
            .flat_map(|(i, u)| {
                [(Profile::Gpu, i, u.gpu.stats().clone()), (Profile::Cpu, i, u.cpu.stats().clone())]
            })
            .collect()
    }

    /// Total dynamic GPU instructions across units (profiling pass for the
    /// transient fault-site space).
    pub fn dyn_instr(&self, profile: Profile) -> u64 {
        self.units
            .iter()
            .map(|u| match profile {
                Profile::Gpu => u.gpu.dyn_instr_count(),
                Profile::Cpu => u.cpu.dyn_instr_count(),
            })
            .sum()
    }

    /// Memory footprint `(vram_bytes, ram_bytes)` across all agents
    /// (Table II accounting).
    pub fn memory_bytes(&self) -> (usize, usize) {
        self.agents
            .iter()
            .map(|a| a.memory_bytes())
            .fold((0, 0), |acc, m| (acc.0 + m.0, acc.1 + m.1))
    }

    /// Number of frames processed so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Per-agent processed-frame counts (distribution accounting: round
    /// robin splits frames evenly, overlap frames run both agents).
    pub fn agent_steps(&self) -> Vec<u64> {
        self.agents.iter().map(|a| a.steps()).collect()
    }

    /// Process one sensor frame: distribute, execute, fuse, and detect.
    ///
    /// # Errors
    ///
    /// Propagates an [`AgentError`] if a fabric traps — the platform-level
    /// failure path (hang/crash), which triggers the fail-back system.
    pub fn tick(
        &mut self,
        frame: &SensorFrame,
        hint: RouteHint,
        state: VehState,
        t: f64,
    ) -> Result<TickOutput, AgentError> {
        let recipients = self.cfg.mode.recipients_with_overlap(self.step, self.cfg.overlap_period);
        // Per-agent control period: round-robin agents see every other
        // frame.
        let dt = match self.cfg.mode {
            AgentMode::RoundRobin => 2.0 / diverseav_simworld::TICK_HZ,
            _ => 1.0 / diverseav_simworld::TICK_HZ,
        };
        let (controls, pair) = match self.cfg.mode {
            AgentMode::Single => {
                let unit = &mut self.units[0];
                let u = self.agents[0].step(frame, hint, dt, &mut unit.gpu, &mut unit.cpu)?;
                let pair = self.prev_selected.map(|prev| (u, prev));
                (u, pair)
            }
            AgentMode::RoundRobin => {
                let unit = &mut self.units[0];
                if recipients[0] && recipients[1] {
                    // Overlap frame: both agents process it; the regularly
                    // scheduled agent drives, the peer's same-frame output
                    // is the (stronger, FD-like) detection reference.
                    let scheduled = (self.step % 2) as usize;
                    let u0 = self.agents[0].step(frame, hint, dt, &mut unit.gpu, &mut unit.cpu)?;
                    let u1 = self.agents[1].step(frame, hint, dt, &mut unit.gpu, &mut unit.cpu)?;
                    self.last_output = [Some(u0), Some(u1)];
                    let (active_u, peer_u) = if scheduled == 0 { (u0, u1) } else { (u1, u0) };
                    let fused = self.cfg.fusion.fuse(active_u, Some(peer_u));
                    (fused, Some((active_u, peer_u)))
                } else {
                    let active = if recipients[0] { 0 } else { 1 };
                    let u =
                        self.agents[active].step(frame, hint, dt, &mut unit.gpu, &mut unit.cpu)?;
                    self.last_output[active] = Some(u);
                    let peer = self.last_output[1 - active];
                    let fused = self.cfg.fusion.fuse(u, peer);
                    (fused, peer.map(|p| (u, p)))
                }
            }
            AgentMode::Duplicate => {
                let (a0, a_rest) = self.agents.split_at_mut(1);
                let (u_first, u_rest) = self.units.split_at_mut(1);
                let u0 = a0[0].step(frame, hint, dt, &mut u_first[0].gpu, &mut u_first[0].cpu)?;
                let u1 = a_rest[0].step(frame, hint, dt, &mut u_rest[0].gpu, &mut u_rest[0].cpu)?;
                self.last_output = [Some(u0), Some(u1)];
                (u0, Some((u0, u1)))
            }
        };
        self.prev_selected = Some(controls);
        self.step += 1;

        let gpu_total = self.dyn_instr(Profile::Gpu);
        let cpu_total = self.dyn_instr(Profile::Cpu);
        let (gpu_instr, cpu_instr) = (gpu_total - self.prev_instr.0, cpu_total - self.prev_instr.1);
        self.prev_instr = (gpu_total, cpu_total);

        let divergence = pair.map(|(a, b)| Divergence::between(&a, &b));
        let (alarm_raised, detector_observed, detect_ns) = match (&mut self.detector, divergence) {
            (Some(det), Some(div)) => {
                if self.time_detect {
                    let t0 = std::time::Instant::now();
                    let alarm = det.observe(&state, div, t);
                    (alarm, true, t0.elapsed().as_nanos() as u64)
                } else {
                    (det.observe(&state, div, t), true, 0)
                }
            }
            _ => (false, false, 0),
        };
        self.last_work = TickWork { gpu_instr, cpu_instr, detector_observed, detect_ns };
        let detector =
            if detector_observed { self.detector.as_ref().map(|d| d.telemetry()) } else { None };
        Ok(TickOutput {
            controls,
            pair,
            divergence,
            alarm_raised,
            detector,
            fault_active: self.fault_activated(),
        })
    }

    /// Work accounting for the most recent [`Ads::tick`] (zeroed before
    /// the first tick).
    pub fn last_tick_work(&self) -> TickWork {
        self.last_work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Closed-loop behavior of the distributor / fusion / detector plumbing
    // (pairs, overlap, alarms, fault activation) is tested in
    // `crates/runtime/tests/ads_behavior.rs` on the canonical `SimLoop`;
    // only loop-free accounting checks live here.

    #[test]
    fn processor_provisioning_matches_mode() {
        let rr = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 4));
        assert_eq!(rr.exec_stats().len(), 2, "one GPU + one CPU");
        let fd = Ads::new(AdsConfig::for_mode(AgentMode::Duplicate, 4));
        assert_eq!(fd.exec_stats().len(), 4, "two GPUs + two CPUs");
    }

    #[test]
    fn memory_doubles_with_two_agents() {
        let single = Ads::new(AdsConfig::for_mode(AgentMode::Single, 5)).memory_bytes();
        let rr = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 5)).memory_bytes();
        assert_eq!(rr.0, 2 * single.0, "VRAM doubles");
        assert_eq!(rr.1, 2 * single.1, "RAM doubles");
    }
}
