//! The DiverseAV error-detection engine (§III-D of the paper).
//!
//! The detector learns, from fault-free executions of the *long training
//! scenarios*, the maximum rolling-window divergence between the actuation
//! outputs of the two agents for each discretized vehicle state
//! ⟨v, a⟩ (throttle & brake) and ⟨ω, α⟩ (steer). The learned maxima are
//! stored in lookup tables (LUTs); at runtime an alarm is raised when the
//! rolling-window mean divergence exceeds the threshold for the current
//! vehicle state.
//!
//! The same machinery trains the fully-duplicated (FD-ADS, §VI-B) and
//! single-agent temporal-outlier (§VI-C) baselines — only the source of
//! the divergence stream differs (chosen by the ADS mode).

use crate::actuation::{Divergence, VehState};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

/// Discretization and windowing configuration of the detector.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DetectorConfig {
    /// Rolling-window size in received samples (the paper sweeps 3..=40).
    pub rw: usize,
    /// Speed bin width (m/s).
    pub v_bin: f64,
    /// Acceleration bin width (m/s²).
    pub a_bin: f64,
    /// Yaw-rate bin width (rad/s).
    pub w_bin: f64,
    /// Yaw-acceleration bin width (rad/s²).
    pub alpha_bin: f64,
    /// Multiplier applied to learned thresholds at runtime.
    pub margin: f64,
    /// Absolute threshold floor (guards against empty/zero bins).
    pub floor: f64,
    /// Whether threshold lookups take the max over the 3×3 neighborhood
    /// of state bins (robustness against sparse training coverage).
    /// Disable only for ablation studies.
    pub neighborhood: bool,
    /// Optional trend-aware extension: alarm on a sustained upward slope
    /// of the normalized divergence score before the magnitude threshold
    /// is crossed. `None` (the default) reproduces the paper's
    /// magnitude-only detector bit-for-bit.
    pub trend: Option<TrendConfig>,
}

/// Parameters of the trend-aware alarm path (slow-onset sensor faults such
/// as bias drift cross the magnitude threshold late; their divergence
/// *slope* turns positive much earlier).
///
/// Let `s_t = max_ch sm_t(ch) / threshold(state_t, ch)` be the normalized
/// divergence score (1.0 ≡ the magnitude alarm line) and
/// `d_t = s_t − s_{t−1}` its discrete derivative. The detector maintains
/// `ewma_t = alpha·d_t + (1−alpha)·ewma_{t−1}` and raises the alarm when
/// `ewma_t > slope_threshold` **and** `s_t > arming_floor`. The arming
/// floor keeps benign low-divergence jitter from alarming on slope alone;
/// the magnitude check is evaluated first and unchanged, so the trend path
/// can only make detection earlier, never later.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TrendConfig {
    /// EWMA smoothing factor over the score derivative, in (0, 1].
    pub alpha: f64,
    /// Alarm when the smoothed derivative exceeds this (score units per
    /// observation; at 40 Hz, 0.06 ≈ the score rising a full threshold
    /// in ~0.4 s).
    pub slope_threshold: f64,
    /// The trend alarm only arms once the score itself exceeds this
    /// fraction of the magnitude threshold.
    pub arming_floor: f64,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig { alpha: 0.25, slope_threshold: 0.06, arming_floor: 0.8 }
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            rw: 3,
            v_bin: 1.0,
            a_bin: 1.0,
            w_bin: 0.1,
            alpha_bin: 1.0,
            margin: 1.2,
            floor: 0.005,
            neighborhood: true,
            trend: None,
        }
    }
}

impl DetectorConfig {
    /// The configuration with a different rolling-window size.
    pub fn with_rw(mut self, rw: usize) -> Self {
        assert!(rw >= 1, "rolling window must be at least 1");
        self.rw = rw;
        self
    }

    /// The configuration with the trend-aware alarm path enabled.
    pub fn with_trend(mut self, trend: TrendConfig) -> Self {
        assert!(trend.alpha > 0.0 && trend.alpha <= 1.0, "alpha must be in (0, 1]");
        self.trend = Some(trend);
        self
    }

    fn speed_key(&self, s: &VehState) -> (i32, i32) {
        (bin(s.v, self.v_bin, 40), bin(s.a, self.a_bin, 12))
    }

    fn steer_key(&self, s: &VehState) -> (i32, i32) {
        (bin(s.w, self.w_bin, 30), bin(s.alpha, self.alpha_bin, 30))
    }
}

fn bin(x: f64, width: f64, clamp: i32) -> i32 {
    let b = (x / width).floor();
    (b as i32).clamp(-clamp, clamp)
}

/// One observation of the divergence stream: time, vehicle state, and the
/// per-channel divergence between the two reference outputs.
///
/// Used both for training (fault-free long routes) and for offline replay
/// of recorded streams through an [`OnlineDetector`] when sweeping
/// detector parameters.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct TrainSample {
    /// Observation time (s).
    pub t: f64,
    /// Vehicle state at the observation.
    pub state: VehState,
    /// Raw (unsmoothed) divergence.
    pub div: Divergence,
}

/// The learned threshold model: per-state-bin maxima of the rolling-window
/// divergence plus global fallbacks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DetectorModel {
    rw: usize,
    throttle: HashMap<(i32, i32), f64>,
    brake: HashMap<(i32, i32), f64>,
    steer: HashMap<(i32, i32), f64>,
    global: [f64; 3],
}

impl DetectorModel {
    /// Train a model from fault-free runs.
    ///
    /// `runs` holds one sample sequence per training execution. The
    /// rolling-window mean (window `cfg.rw`) is computed within each run,
    /// and the per-bin maximum of the smoothed divergence becomes the
    /// threshold — exactly the paper's training procedure.
    pub fn train(runs: &[Vec<TrainSample>], cfg: &DetectorConfig) -> DetectorModel {
        let mut model = DetectorModel { rw: cfg.rw, ..Default::default() };
        for run in runs {
            let mut window = SmoothedDivergence::new(cfg.rw);
            for sample in run {
                let sm = window.push(sample.div);
                let skey = cfg.speed_key(&sample.state);
                let wkey = cfg.steer_key(&sample.state);
                let up = |m: &mut HashMap<(i32, i32), f64>, k, v: f64| {
                    let e = m.entry(k).or_insert(0.0);
                    if v > *e {
                        *e = v;
                    }
                };
                up(&mut model.throttle, skey, sm.throttle);
                up(&mut model.brake, skey, sm.brake);
                up(&mut model.steer, wkey, sm.steer);
                for (g, v) in model.global.iter_mut().zip([sm.throttle, sm.brake, sm.steer]) {
                    if v > *g {
                        *g = v;
                    }
                }
            }
        }
        model
    }

    /// The rolling-window size the model was trained with.
    pub fn rw(&self) -> usize {
        self.rw
    }

    /// Number of populated (bin, channel) threshold entries.
    pub fn entries(&self) -> usize {
        self.throttle.len() + self.brake.len() + self.steer.len()
    }

    /// Threshold for `channel` (0 = throttle, 1 = brake, 2 = steer) at a
    /// vehicle state.
    ///
    /// The lookup takes the maximum over the 3×3 neighborhood of state
    /// bins: finite training data leaves sparsely-visited bins with
    /// unrealistically tight maxima, and neighboring vehicle states have
    /// near-identical divergence behaviour. Bins with no populated
    /// neighborhood fall back to the global maximum.
    pub fn threshold(&self, state: &VehState, channel: usize, cfg: &DetectorConfig) -> f64 {
        let (lut, key) = match channel {
            0 => (&self.throttle, cfg.speed_key(state)),
            1 => (&self.brake, cfg.speed_key(state)),
            2 => (&self.steer, cfg.steer_key(state)),
            _ => panic!("channel {channel} out of range"),
        };
        let mut raw = f64::NEG_INFINITY;
        let span = if cfg.neighborhood { 1 } else { 0 };
        for di in -span..=span {
            for dj in -span..=span {
                if let Some(&v) = lut.get(&(key.0 + di, key.1 + dj)) {
                    raw = raw.max(v);
                }
            }
        }
        if !raw.is_finite() {
            raw = self.global[channel];
        }
        (raw * cfg.margin).max(cfg.floor)
    }
}

impl fmt::Display for DetectorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "detector model (rw={}, {} bins, global=[{:.3}, {:.3}, {:.3}])",
            self.rw,
            self.entries(),
            self.global[0],
            self.global[1],
            self.global[2]
        )
    }
}

/// Rolling-window mean of a divergence stream.
#[derive(Clone, Debug)]
struct SmoothedDivergence {
    rw: usize,
    buf: VecDeque<Divergence>,
    sum: [f64; 3],
}

impl SmoothedDivergence {
    fn new(rw: usize) -> Self {
        SmoothedDivergence { rw: rw.max(1), buf: VecDeque::new(), sum: [0.0; 3] }
    }

    fn push(&mut self, d: Divergence) -> Divergence {
        self.buf.push_back(d);
        self.sum[0] += d.throttle;
        self.sum[1] += d.brake;
        self.sum[2] += d.steer;
        if self.buf.len() > self.rw {
            let old = self.buf.pop_front().expect("nonempty window");
            self.sum[0] -= old.throttle;
            self.sum[1] -= old.brake;
            self.sum[2] -= old.steer;
        }
        // Zero-padded warm-up: always divide by the full window so early
        // blips are diluted the same way in training and at runtime.
        let n = self.rw as f64;
        Divergence { throttle: self.sum[0] / n, brake: self.sum[1] / n, steer: self.sum[2] / n }
    }
}

/// Per-observation detector telemetry, refreshed on every
/// [`OnlineDetector::observe`] call (including after the alarm has
/// latched) — the flight recorder's view of the detector's internals.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct DetectorTelemetry {
    /// Normalized divergence score: max over channels of smoothed
    /// divergence / threshold. 1.0 is the magnitude alarm line.
    pub score: f64,
    /// EWMA of the score's first difference (0.0 when the trend path is
    /// disabled).
    pub slope: f64,
    /// Whether the trend path was armed on this observation (slope above
    /// threshold with the score past the arming floor).
    pub armed: bool,
}

/// A runtime detector instance: the learned model plus online state.
#[derive(Clone, Debug)]
pub struct OnlineDetector {
    model: DetectorModel,
    cfg: DetectorConfig,
    window: SmoothedDivergence,
    alarm_at: Option<f64>,
    /// Normalized score of the previous observation (trend path).
    prev_score: f64,
    /// EWMA of the score derivative (trend path).
    ewma_slope: f64,
    /// Telemetry of the latest observation.
    last: DetectorTelemetry,
}

impl OnlineDetector {
    /// Instantiate a runtime detector.
    ///
    /// `cfg.rw` should match the window the model was trained with (the
    /// sweep harness trains one model per `rw`).
    pub fn new(model: DetectorModel, cfg: DetectorConfig) -> Self {
        let window = SmoothedDivergence::new(cfg.rw);
        OnlineDetector {
            model,
            cfg,
            window,
            alarm_at: None,
            prev_score: 0.0,
            ewma_slope: 0.0,
            last: DetectorTelemetry::default(),
        }
    }

    /// Feed one divergence observation at time `t`; returns `true` if this
    /// observation raises the alarm (first exceedance only).
    ///
    /// The magnitude check (smoothed divergence above the learned
    /// per-state threshold) is evaluated on every observation exactly as
    /// in the magnitude-only detector. When [`DetectorConfig::trend`] is
    /// set, a second alarm path fires on a sustained positive slope of
    /// the normalized score (see [`TrendConfig`]); the paths are
    /// OR-composed, so the trend path can only move the alarm earlier.
    ///
    /// The first exceedance also increments the process-global
    /// `detector.alarms` counter (at most once per run — alarm events,
    /// not ticks), surfacing alarm totals in `METRICS_campaigns.json`.
    ///
    /// Every observation — before *and* after the alarm latches —
    /// refreshes [`telemetry`](OnlineDetector::telemetry), so the flight
    /// recorder keeps seeing the score trajectory through the end of the
    /// run. The alarm itself is unaffected: once `alarm_at` is set it
    /// never moves and the counter never fires again.
    pub fn observe(&mut self, state: &VehState, div: Divergence, t: f64) -> bool {
        let sm = self.window.push(div);
        let mut magnitude = false;
        let mut score = 0.0_f64;
        for ch in 0..3 {
            // `threshold` bottoms out at `cfg.floor` > 0, so the
            // normalized score is always finite.
            let th = self.model.threshold(state, ch, &self.cfg);
            if sm.channel(ch) > th {
                magnitude = true;
            }
            score = score.max(sm.channel(ch) / th);
        }
        let trend = match self.cfg.trend {
            Some(tr) => {
                let d = score - self.prev_score;
                self.ewma_slope = tr.alpha * d + (1.0 - tr.alpha) * self.ewma_slope;
                self.prev_score = score;
                self.ewma_slope > tr.slope_threshold && score > tr.arming_floor
            }
            None => false,
        };
        self.last = DetectorTelemetry { score, slope: self.ewma_slope, armed: trend };
        if self.alarm_at.is_some() {
            return false;
        }
        if magnitude || trend {
            self.alarm_at = Some(t);
            diverseav_obs::metrics::counter_add("detector.alarms", 1);
            return true;
        }
        false
    }

    /// Telemetry of the most recent observation (zeroed before the
    /// first).
    pub fn telemetry(&self) -> DetectorTelemetry {
        self.last
    }

    /// Time the alarm was first raised, if ever.
    pub fn alarm_time(&self) -> Option<f64> {
        self.alarm_at
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// The underlying model.
    pub fn model(&self) -> &DetectorModel {
        &self.model
    }

    /// Replay a recorded divergence stream and return the alarm time, if
    /// any — the offline path used when sweeping (td, rw) parameters over
    /// recorded campaigns.
    pub fn replay(
        model: &DetectorModel,
        cfg: DetectorConfig,
        stream: &[TrainSample],
    ) -> Option<f64> {
        let mut det = OnlineDetector::new(model.clone(), cfg);
        for s in stream {
            det.observe(&s.state, s.div, s.t);
        }
        det.alarm_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(v: f64, a: f64) -> VehState {
        VehState { v, a, w: 0.0, alpha: 0.0 }
    }

    fn sample(v: f64, a: f64, d: f64) -> TrainSample {
        TrainSample {
            t: 0.0,
            state: state(v, a),
            div: Divergence { throttle: d, brake: d / 2.0, steer: d / 4.0 },
        }
    }

    #[test]
    fn training_learns_binwise_maxima() {
        let runs = vec![vec![sample(5.0, 0.0, 0.1), sample(5.0, 0.0, 0.3), sample(9.0, 0.0, 0.05)]];
        let mut cfg = DetectorConfig::default().with_rw(1);
        cfg.margin = 1.0;
        let model = DetectorModel::train(&runs, &cfg);
        // Bin (5, 0): max 0.3; bin (9, 0): 0.05.
        assert!((model.threshold(&state(5.2, 0.1), 0, &cfg) - 0.3).abs() < 1e-12);
        assert!((model.threshold(&state(9.5, 0.0), 0, &cfg) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn unseen_bins_fall_back_to_global_max() {
        let runs = vec![vec![sample(5.0, 0.0, 0.2)]];
        let mut cfg = DetectorConfig::default().with_rw(1);
        cfg.margin = 1.0;
        let model = DetectorModel::train(&runs, &cfg);
        let th = model.threshold(&state(30.0, -5.0), 0, &cfg);
        assert!((th - 0.2).abs() < 1e-12, "global fallback, got {th}");
    }

    #[test]
    fn floor_guards_empty_model() {
        let model = DetectorModel::train(&[], &DetectorConfig::default());
        let cfg = DetectorConfig::default();
        assert_eq!(model.threshold(&state(0.0, 0.0), 0, &cfg), cfg.floor);
    }

    #[test]
    fn rolling_window_smooths_blips() {
        // One large blip inside a window of 4 is averaged down.
        let mut w = SmoothedDivergence::new(4);
        let zero = Divergence::default();
        w.push(zero);
        w.push(zero);
        w.push(zero);
        let sm = w.push(Divergence { throttle: 1.0, brake: 0.0, steer: 0.0 });
        assert!((sm.throttle - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rolling_window_evicts_old_samples() {
        let mut w = SmoothedDivergence::new(2);
        w.push(Divergence { throttle: 1.0, ..Default::default() });
        w.push(Divergence::default());
        let sm = w.push(Divergence::default());
        assert_eq!(sm.throttle, 0.0, "blip evicted after rw samples");
    }

    #[test]
    fn online_detector_alarms_once() {
        let runs = vec![vec![sample(5.0, 0.0, 0.1)]];
        let mut cfg = DetectorConfig::default().with_rw(1);
        cfg.margin = 1.0;
        let model = DetectorModel::train(&runs, &cfg);
        let mut det = OnlineDetector::new(model, cfg);
        assert!(!det.observe(
            &state(5.0, 0.0),
            Divergence { throttle: 0.05, ..Default::default() },
            0.1
        ));
        assert!(det.observe(
            &state(5.0, 0.0),
            Divergence { throttle: 0.5, ..Default::default() },
            0.2
        ));
        assert!(!det.observe(
            &state(5.0, 0.0),
            Divergence { throttle: 0.9, ..Default::default() },
            0.3
        ));
        assert_eq!(det.alarm_time(), Some(0.2));
    }

    #[test]
    fn margin_scales_thresholds() {
        let runs = vec![vec![sample(5.0, 0.0, 0.1)]];
        let mut cfg = DetectorConfig::default().with_rw(1);
        let model = DetectorModel::train(&runs, &cfg);
        cfg.margin = 2.0;
        assert!((model.threshold(&state(5.0, 0.0), 0, &cfg) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn steer_channel_uses_yaw_binning() {
        let mut s = VehState { v: 5.0, a: 0.0, w: 0.5, alpha: 0.0 };
        let runs = vec![vec![TrainSample {
            t: 0.0,
            state: s,
            div: Divergence { steer: 0.4, ..Default::default() },
        }]];
        let mut cfg = DetectorConfig::default().with_rw(1);
        cfg.margin = 1.0;
        let model = DetectorModel::train(&runs, &cfg);
        assert!((model.threshold(&s, 2, &cfg) - 0.4).abs() < 1e-12);
        // Different yaw bin, same (v, a): falls back to global for steer.
        s.w = -2.0;
        assert!((model.threshold(&s, 2, &cfg) - 0.4).abs() < 1e-12, "global fallback");
    }

    #[test]
    fn training_respects_rolling_window() {
        // Divergence alternates 0 / 0.4; with rw=2 the smoothed max is 0.2.
        let run: Vec<TrainSample> =
            (0..20).map(|i| sample(5.0, 0.0, if i % 2 == 0 { 0.4 } else { 0.0 })).collect();
        let mut cfg = DetectorConfig::default().with_rw(2);
        cfg.margin = 1.0;
        let model = DetectorModel::train(&[run], &cfg);
        let th = model.threshold(&state(5.0, 0.0), 0, &cfg);
        assert!((0.19..=0.21).contains(&th), "smoothed threshold, got {th}");
    }

    #[test]
    fn replay_of_empty_stream_never_alarms() {
        let model = DetectorModel::train(&[], &DetectorConfig::default());
        assert_eq!(OnlineDetector::replay(&model, DetectorConfig::default(), &[]), None);
    }

    #[test]
    fn replay_can_alarm_on_the_first_sample() {
        // An empty model bottoms out at the floor; a large first
        // divergence with rw=1 must alarm immediately — there is no
        // warm-up grace period.
        let cfg = DetectorConfig::default().with_rw(1);
        let model = DetectorModel::train(&[], &cfg);
        let stream = [TrainSample {
            t: 0.0,
            state: state(5.0, 0.0),
            div: Divergence { throttle: 1.0, ..Default::default() },
        }];
        assert_eq!(OnlineDetector::replay(&model, cfg, &stream), Some(0.0));
    }

    #[test]
    fn replay_window_longer_than_stream_keeps_zero_padding() {
        // rw=10 over a 3-sample stream: the window never fills, and the
        // zero-padded mean divides by the full window — 0.1, 0.2, 0.3 —
        // so a floor of 0.25 alarms exactly at the third sample.
        let mut cfg = DetectorConfig::default().with_rw(10);
        cfg.margin = 1.0;
        cfg.floor = 0.25;
        let model = DetectorModel::train(&[], &cfg);
        let stream: Vec<TrainSample> = (0..3)
            .map(|i| TrainSample {
                t: i as f64,
                state: state(5.0, 0.0),
                div: Divergence { throttle: 1.0, ..Default::default() },
            })
            .collect();
        assert_eq!(OnlineDetector::replay(&model, cfg, &stream), Some(2.0));
    }

    #[test]
    fn display_is_informative() {
        let model = DetectorModel::train(&[], &DetectorConfig::default());
        let s = model.to_string();
        assert!(s.contains("rw=3"));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_window_rejected() {
        let _ = DetectorConfig::default().with_rw(0);
    }

    /// A linear ramp of divergence: slow onset, as in sensor bias drift.
    fn ramp(n: usize, step: f64) -> Vec<TrainSample> {
        (0..n)
            .map(|i| TrainSample {
                t: i as f64 * 0.025,
                state: state(5.0, 0.0),
                div: Divergence { throttle: i as f64 * step, ..Default::default() },
            })
            .collect()
    }

    #[test]
    fn trend_path_alarms_before_magnitude_on_a_ramp() {
        let runs = vec![vec![sample(5.0, 0.0, 0.2)]];
        let mut cfg = DetectorConfig::default().with_rw(1);
        cfg.margin = 1.0;
        let model = DetectorModel::train(&runs, &cfg);
        // Normalized slope 0.02 / 0.2 = 0.1 per observation: steep enough
        // for the EWMA to clear the default slope threshold while the
        // magnitude path is still below the alarm line.
        let stream = ramp(60, 0.02);
        let magnitude = OnlineDetector::replay(&model, cfg, &stream).expect("magnitude alarms");
        let trend = OnlineDetector::replay(&model, cfg.with_trend(TrendConfig::default()), &stream)
            .expect("trend alarms");
        assert!(trend < magnitude, "trend {trend} must beat magnitude {magnitude}");
    }

    #[test]
    fn trend_disabled_is_bit_identical_to_magnitude_only() {
        let runs = vec![vec![sample(5.0, 0.0, 0.2)]];
        let cfg = DetectorConfig::default().with_rw(1);
        let model = DetectorModel::train(&runs, &cfg);
        let stream = ramp(60, 0.01);
        // `trend: None` is the default — the config carries no trend state
        // and replay matches the historical detector exactly.
        assert_eq!(cfg.trend, None);
        assert_eq!(
            OnlineDetector::replay(&model, cfg, &stream),
            OnlineDetector::replay(&model, DetectorConfig { trend: None, ..cfg }, &stream),
        );
    }

    #[test]
    fn trend_never_alarms_later_than_magnitude() {
        // The magnitude check is evaluated on every observation regardless
        // of the trend state, so OR-composition can only be earlier.
        let runs = vec![vec![sample(5.0, 0.0, 0.1)]];
        let mut cfg = DetectorConfig::default().with_rw(2);
        cfg.margin = 1.0;
        let model = DetectorModel::train(&runs, &cfg);
        for (n, step) in [(40, 0.02), (80, 0.005), (30, 0.05)] {
            let stream = ramp(n, step);
            let mag = OnlineDetector::replay(&model, cfg, &stream);
            let tr =
                OnlineDetector::replay(&model, cfg.with_trend(TrendConfig::default()), &stream);
            match (tr, mag) {
                (Some(tr), Some(mag)) => assert!(tr <= mag, "trend {tr} > magnitude {mag}"),
                (None, Some(mag)) => panic!("trend missed an alarm magnitude caught at {mag}"),
                _ => {}
            }
        }
    }

    #[test]
    fn trend_arming_floor_suppresses_low_level_jitter() {
        // Alternating tiny divergence has positive slope half the time but
        // never approaches the threshold: the arming floor must hold the
        // alarm (this is the golden-run false-positive guard).
        let runs = vec![vec![sample(5.0, 0.0, 0.2)]];
        let mut cfg = DetectorConfig::default().with_rw(1);
        cfg.margin = 1.0;
        let model = DetectorModel::train(&runs, &cfg);
        let stream: Vec<TrainSample> = (0..200)
            .map(|i| TrainSample {
                t: i as f64 * 0.025,
                state: state(5.0, 0.0),
                div: Divergence {
                    throttle: if i % 2 == 0 { 0.02 } else { 0.0 },
                    ..Default::default()
                },
            })
            .collect();
        let cfg = cfg.with_trend(TrendConfig::default());
        assert_eq!(OnlineDetector::replay(&model, cfg, &stream), None);
    }

    #[test]
    fn telemetry_tracks_every_observation_even_after_the_alarm() {
        let runs = vec![vec![sample(5.0, 0.0, 0.1)]];
        let mut cfg = DetectorConfig::default().with_rw(1);
        cfg.margin = 1.0;
        let model = DetectorModel::train(&runs, &cfg);
        let mut det = OnlineDetector::new(model, cfg.with_trend(TrendConfig::default()));
        assert_eq!(det.telemetry(), DetectorTelemetry::default(), "zeroed before observing");

        assert!(det.observe(
            &state(5.0, 0.0),
            Divergence { throttle: 0.5, ..Default::default() },
            0.1
        ));
        let at_alarm = det.telemetry();
        assert!(at_alarm.score > 1.0, "alarm tick scores past the alarm line");
        assert_eq!(det.alarm_time(), Some(0.1));

        // Post-alarm observations keep refreshing telemetry without
        // moving the latched alarm.
        assert!(!det.observe(&state(5.0, 0.0), Divergence::default(), 0.2));
        assert!(det.telemetry().score < at_alarm.score, "score tracked past the alarm");
        assert_eq!(det.alarm_time(), Some(0.1), "alarm time never moves");
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn trend_alpha_out_of_range_rejected() {
        let _ = DetectorConfig::default()
            .with_trend(TrendConfig { alpha: 0.0, ..TrendConfig::default() });
    }
}
