//! The sensor data distributor (§III-D): decides which agent(s) receive
//! each sensor frame.

use std::fmt;

/// Agent deployment mode of the ADS.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AgentMode {
    /// One agent receiving every frame (the original ADS and the
    /// temporal-outlier baseline of §VI-C).
    Single,
    /// DiverseAV: two agents time-multiplexed on one processor, frames
    /// distributed round-robin (even steps → agent 0, odd → agent 1).
    RoundRobin,
    /// Fully-duplicated ADS (FD-ADS, §VI-B): two agents on dedicated
    /// processors, both receiving every frame.
    Duplicate,
}

impl AgentMode {
    /// Number of agent instances this mode deploys.
    pub fn n_agents(self) -> usize {
        match self {
            AgentMode::Single => 1,
            AgentMode::RoundRobin | AgentMode::Duplicate => 2,
        }
    }

    /// Number of processor units (GPU+CPU fabric pairs) this mode uses.
    ///
    /// DiverseAV shares a single processor between its two agents — that
    /// sharing is what makes permanent faults affect both agents and what
    /// keeps the compute provisioning equal to the single-agent system.
    pub fn n_units(self) -> usize {
        match self {
            AgentMode::Single | AgentMode::RoundRobin => 1,
            AgentMode::Duplicate => 2,
        }
    }

    /// Which agents receive the frame at `step` (index = agent id).
    pub fn recipients(self, step: u64) -> [bool; 2] {
        self.recipients_with_overlap(step, None)
    }

    /// Like [`recipients`](Self::recipients), but in round-robin mode every
    /// `overlap_period`-th frame is sent to *both* agents — the paper's
    /// footnote-5 adjustment for ADSes with lower engineering margins
    /// (input-rate reduction below 50% at extra compute cost).
    pub fn recipients_with_overlap(self, step: u64, overlap_period: Option<u32>) -> [bool; 2] {
        match self {
            AgentMode::Single => [true, false],
            AgentMode::RoundRobin => {
                if let Some(p) = overlap_period {
                    if p > 0 && step.is_multiple_of(p as u64) {
                        return [true, true];
                    }
                }
                if step.is_multiple_of(2) {
                    [true, false]
                } else {
                    [false, true]
                }
            }
            AgentMode::Duplicate => [true, true],
        }
    }

    /// The paper's name for this mode.
    pub fn label(self) -> &'static str {
        match self {
            AgentMode::Single => "single",
            AgentMode::RoundRobin => "diverseav",
            AgentMode::Duplicate => "fd",
        }
    }
}

impl fmt::Display for AgentMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_alternates() {
        assert_eq!(AgentMode::RoundRobin.recipients(0), [true, false]);
        assert_eq!(AgentMode::RoundRobin.recipients(1), [false, true]);
        assert_eq!(AgentMode::RoundRobin.recipients(2), [true, false]);
    }

    #[test]
    fn overlap_period_sends_to_both_periodically() {
        let m = AgentMode::RoundRobin;
        assert_eq!(m.recipients_with_overlap(0, Some(4)), [true, true]);
        assert_eq!(m.recipients_with_overlap(1, Some(4)), [false, true]);
        assert_eq!(m.recipients_with_overlap(2, Some(4)), [true, false]);
        assert_eq!(m.recipients_with_overlap(4, Some(4)), [true, true]);
        // Overlap is a no-op for the other modes.
        assert_eq!(AgentMode::Single.recipients_with_overlap(0, Some(2)), [true, false]);
        assert_eq!(AgentMode::Duplicate.recipients_with_overlap(1, Some(2)), [true, true]);
    }

    #[test]
    fn duplicate_sends_to_both() {
        for step in 0..4 {
            assert_eq!(AgentMode::Duplicate.recipients(step), [true, true]);
        }
    }

    #[test]
    fn single_sends_to_agent_zero() {
        for step in 0..4 {
            assert_eq!(AgentMode::Single.recipients(step), [true, false]);
        }
    }

    #[test]
    fn sizing_matches_paper_deployments() {
        assert_eq!(AgentMode::Single.n_agents(), 1);
        assert_eq!(AgentMode::RoundRobin.n_agents(), 2);
        assert_eq!(AgentMode::RoundRobin.n_units(), 1, "shared processor");
        assert_eq!(AgentMode::Duplicate.n_units(), 2, "dedicated processors");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AgentMode::RoundRobin.to_string(), "diverseav");
        assert_eq!(AgentMode::Duplicate.to_string(), "fd");
        assert_eq!(AgentMode::Single.to_string(), "single");
    }
}
