//! # diverseav
//!
//! Reference implementation of **DiverseAV** (Jha et al., *Exploiting
//! Temporal Data Diversity for Detecting Safety-critical Faults in AV
//! Compute Systems*, DSN 2022): a low-cost, software-only redundancy
//! technique that detects safety-critical transient and permanent hardware
//! faults in AV compute elements by exploiting the temporal data diversity
//! of the sensor stream.
//!
//! The crate provides the paper's three new components (Fig 2):
//!
//! * **Sensor data distributor** ([`AgentMode`]) — routes each sensor
//!   frame round-robin between two agent instances that time-multiplex one
//!   processor, keeping per-agent inputs semantically consistent but
//!   bit-diverse.
//! * **Control fusion engine** ([`FusionPolicy`]) — selects/combines the
//!   agents' actuation outputs.
//! * **Error detection engine** ([`DetectorModel`], [`OnlineDetector`]) —
//!   a rolling-window, vehicle-state-binned LUT detector trained on
//!   fault-free long-route executions.
//!
//! The same machinery instantiates the paper's two baselines: the
//! fully-duplicated FD-ADS (§VI-B, [`AgentMode::Duplicate`]) and the
//! single-agent temporal-outlier detector (§VI-C, [`AgentMode::Single`]).
//!
//! ## Example
//!
//! ```
//! use diverseav::{Ads, AdsConfig, AgentMode, VehState};
//! use diverseav_simworld::{lead_slowdown, SensorConfig, World};
//!
//! # fn main() -> Result<(), diverseav_agent::AgentError> {
//! let mut world = World::new(lead_slowdown(), SensorConfig::default(), 7);
//! let mut ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 7));
//! while !world.finished() && world.time() < 0.25 {
//!     let frame = world.sense();
//!     let hint = world.route_hint();
//!     let state = VehState::from(world.ego_state());
//!     let out = ads.tick(&frame, hint, state, world.time())?;
//!     world.step(out.controls);
//! }
//! # Ok(())
//! # }
//! ```

pub mod actuation;
pub mod ads;
pub mod detector;
pub mod distributor;
pub mod fusion;

pub use actuation::{Divergence, VehState, CHANNELS};
pub use ads::{Ads, AdsConfig, ProcessorUnit, TickOutput};
pub use detector::{DetectorConfig, DetectorModel, OnlineDetector, TrainSample};
pub use distributor::AgentMode;
pub use fusion::FusionPolicy;
