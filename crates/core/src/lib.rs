//! # diverseav
//!
//! Reference implementation of **DiverseAV** (Jha et al., *Exploiting
//! Temporal Data Diversity for Detecting Safety-critical Faults in AV
//! Compute Systems*, DSN 2022): a low-cost, software-only redundancy
//! technique that detects safety-critical transient and permanent hardware
//! faults in AV compute elements by exploiting the temporal data diversity
//! of the sensor stream.
//!
//! The crate provides the paper's three new components (Fig 2):
//!
//! * **Sensor data distributor** ([`AgentMode`]) — routes each sensor
//!   frame round-robin between two agent instances that time-multiplex one
//!   processor, keeping per-agent inputs semantically consistent but
//!   bit-diverse.
//! * **Control fusion engine** ([`FusionPolicy`]) — selects/combines the
//!   agents' actuation outputs.
//! * **Error detection engine** ([`DetectorModel`], [`OnlineDetector`]) —
//!   a rolling-window, vehicle-state-binned LUT detector trained on
//!   fault-free long-route executions.
//!
//! The same machinery instantiates the paper's two baselines: the
//! fully-duplicated FD-ADS (§VI-B, [`AgentMode::Duplicate`]) and the
//! single-agent temporal-outlier detector (§VI-C, [`AgentMode::Single`]).
//!
//! ## Example
//!
//! The closed `sense → tick → step` loop itself is owned by the
//! `diverseav-runtime` crate — an [`Ads`] is a `LoopDriver` there:
//!
//! ```
//! use diverseav::{Ads, AdsConfig, AgentMode};
//! use diverseav_runtime::{SimLoop, Termination};
//! use diverseav_simworld::{lead_slowdown, SensorConfig, World};
//!
//! let mut scenario = lead_slowdown();
//! scenario.duration = 0.25;
//! let world = World::new(scenario, SensorConfig::default(), 7);
//! let ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 7));
//! assert_eq!(SimLoop::new(world, ads).run(), Termination::Completed);
//! ```

pub mod actuation;
pub mod ads;
pub mod detector;
pub mod distributor;
pub mod fusion;

pub use actuation::{Divergence, VehState, CHANNELS};
pub use ads::{Ads, AdsConfig, ProcessorUnit, TickOutput, TickWork};
pub use detector::{
    DetectorConfig, DetectorModel, DetectorTelemetry, OnlineDetector, TrainSample, TrendConfig,
};
pub use distributor::AgentMode;
pub use fusion::FusionPolicy;
