//! The control fusion engine (§III-D): selects the actuation command sent
//! to the vehicle from the outputs of the redundant agents.

use diverseav_simworld::Controls;

/// How the fusion engine combines the agents' outputs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum FusionPolicy {
    /// Lockstep selection: use the output of the agent that received the
    /// current frame (the paper's choice for the Sensorimotor agent).
    #[default]
    ActiveAgent,
    /// Average the active agent's output with the other agent's most
    /// recent output (the paper's option (ii) for asynchronous designs).
    Average,
}

impl FusionPolicy {
    /// Fuse the active agent's fresh output with the peer's last output.
    pub fn fuse(self, active: Controls, peer_last: Option<Controls>) -> Controls {
        match (self, peer_last) {
            (FusionPolicy::ActiveAgent, _) | (FusionPolicy::Average, None) => active,
            (FusionPolicy::Average, Some(p)) => Controls::clamped(
                (active.throttle + p.throttle) / 2.0,
                (active.brake + p.brake) / 2.0,
                (active.steer + p.steer) / 2.0,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_agent_passes_through() {
        let a = Controls { throttle: 0.5, brake: 0.0, steer: 0.1 };
        let p = Controls { throttle: 0.1, brake: 0.2, steer: -0.1 };
        assert_eq!(FusionPolicy::ActiveAgent.fuse(a, Some(p)), a);
    }

    #[test]
    fn average_blends_outputs() {
        let a = Controls { throttle: 0.6, brake: 0.0, steer: 0.2 };
        let p = Controls { throttle: 0.2, brake: 0.2, steer: -0.2 };
        let f = FusionPolicy::Average.fuse(a, Some(p));
        assert!((f.throttle - 0.4).abs() < 1e-12);
        assert!((f.brake - 0.1).abs() < 1e-12);
        assert!(f.steer.abs() < 1e-12);
    }

    #[test]
    fn average_without_peer_uses_active() {
        let a = Controls { throttle: 0.6, brake: 0.0, steer: 0.2 };
        assert_eq!(FusionPolicy::Average.fuse(a, None), a);
    }
}
