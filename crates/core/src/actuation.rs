//! Actuation-level types shared by the distributor, fusion engine, and
//! error detector.

use diverseav_simworld::{Controls, VehicleState};

/// The vehicle-state tuple ⟨v, a, ω, α⟩ the paper's detector bins its
/// thresholds by (§III-D): speed, acceleration, yaw rate, yaw acceleration.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct VehState {
    /// Speed (m/s).
    pub v: f64,
    /// Longitudinal acceleration (m/s²).
    pub a: f64,
    /// Yaw rate (rad/s).
    pub w: f64,
    /// Yaw acceleration (rad/s²).
    pub alpha: f64,
}

impl From<&VehicleState> for VehState {
    fn from(s: &VehicleState) -> Self {
        VehState { v: s.speed, a: s.accel, w: s.yaw_rate, alpha: s.yaw_accel }
    }
}

/// Per-channel absolute divergence between two actuation commands.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct Divergence {
    /// |Δ throttle|.
    pub throttle: f64,
    /// |Δ brake|.
    pub brake: f64,
    /// |Δ steer|.
    pub steer: f64,
}

impl Divergence {
    /// Absolute per-channel difference between two commands.
    pub fn between(a: &Controls, b: &Controls) -> Self {
        Divergence {
            throttle: (a.throttle - b.throttle).abs(),
            brake: (a.brake - b.brake).abs(),
            steer: (a.steer - b.steer).abs(),
        }
    }

    /// Channel accessor by index: 0 = throttle, 1 = brake, 2 = steer.
    ///
    /// # Panics
    ///
    /// Panics if `ch > 2`.
    pub fn channel(&self, ch: usize) -> f64 {
        match ch {
            0 => self.throttle,
            1 => self.brake,
            2 => self.steer,
            _ => panic!("divergence channel {ch} out of range"),
        }
    }
}

/// Names of the three actuation channels, for reports.
pub const CHANNELS: [&str; 3] = ["throttle", "brake", "steer"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_is_absolute() {
        let a = Controls { throttle: 0.5, brake: 0.0, steer: -0.2 };
        let b = Controls { throttle: 0.2, brake: 0.1, steer: 0.3 };
        let d = Divergence::between(&a, &b);
        assert!((d.throttle - 0.3).abs() < 1e-12);
        assert!((d.brake - 0.1).abs() < 1e-12);
        assert!((d.steer - 0.5).abs() < 1e-12);
        assert_eq!(Divergence::between(&a, &b), Divergence::between(&b, &a));
    }

    #[test]
    fn channel_indexing() {
        let d = Divergence { throttle: 1.0, brake: 2.0, steer: 3.0 };
        assert_eq!(d.channel(0), 1.0);
        assert_eq!(d.channel(1), 2.0);
        assert_eq!(d.channel(2), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn channel_out_of_range_panics() {
        let _ = Divergence::default().channel(3);
    }

    #[test]
    fn vehstate_from_vehicle_state() {
        let vs = VehicleState {
            speed: 5.0,
            accel: -1.0,
            yaw_rate: 0.2,
            yaw_accel: 0.5,
            ..Default::default()
        };
        let s = VehState::from(&vs);
        assert_eq!(s.v, 5.0);
        assert_eq!(s.a, -1.0);
        assert_eq!(s.w, 0.2);
        assert_eq!(s.alpha, 0.5);
    }
}
