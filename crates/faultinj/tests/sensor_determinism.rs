//! Determinism gate for the sensor-boundary fault models: every
//! [`SensorFault`] realization must be a pure function of its plan seed —
//! bit-identical across `DIVERSEAV_THREADS` settings and across
//! shard/monolithic execution. The seed-purity invariant is what lets
//! sensor campaigns ride the shard partitioner, the golden cache, and
//! the deterministic merge unchanged.

use diverseav::AgentMode;
use diverseav_fabric::Profile;
use diverseav_faultinj::{
    execute_shard, merge_artifacts, parse_artifact, run_campaign_with_traces, Campaign,
    CampaignScale, FaultModelKind, SensorFault, SensorFaultKind, ShardConfig, ShardRun, ShardSpec,
};
use diverseav_runtime::FrameInjector;
use diverseav_simworld::{Image, ScenarioKind, SensorConfig, SensorFrame};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the tests that mutate `DIVERSEAV_THREADS` (process-global).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn tiny_scale() -> CampaignScale {
    CampaignScale {
        n_transient: 4,
        permanent_repeats: 1,
        golden_runs: 2,
        long_route_duration: 20.0,
        training_runs: 1,
    }
}

fn sensor_campaign(class: SensorFaultKind) -> Campaign {
    Campaign {
        scenario: ScenarioKind::LeadSlowdown,
        target: Profile::Gpu,
        kind: FaultModelKind::Sensor(class),
        mode: AgentMode::RoundRobin,
    }
}

/// A synthetic frame with a deterministic pixel pattern, so corruption
/// deltas are visible against non-trivial content.
fn frame_at(step: u64) -> SensorFrame {
    let mut f = SensorFrame::empty();
    f.step = step;
    f.t = step as f64 / 40.0;
    f.speed = 9.0 + (step % 7) as f32 * 0.25;
    f.imu.yaw_rate = 0.01 * (step % 5) as f32;
    f.gps = [step as f32 * 0.4, 1.5];
    let mut img = Image::new(16, 12);
    for y in 0..12 {
        for x in 0..16 {
            let v = ((x * 13 + y * 29 + step as usize) % 251) as u8;
            img.set_pixel(x, y, [v, v.wrapping_mul(3), v.wrapping_add(40)]);
        }
    }
    f.cameras.push(img);
    f.lidar = Some(vec![5.0; 16]);
    f
}

/// Full-frame equality, down to every pixel byte and scalar bit.
fn frames_identical(a: &SensorFrame, b: &SensorFrame) -> bool {
    format!("{a:?}") == format!("{b:?}")
}

proptest! {
    /// For any seed and class, two independent injectors replaying the
    /// same frame stream produce byte-identical corrupted frames — the
    /// realization depends on nothing but `(kind, seed, frame.step)`, so
    /// shard workers and monolithic workers cannot disagree.
    #[test]
    fn realization_is_a_pure_function_of_the_seed(
        seed in any::<u64>(),
        class_ix in 0usize..5,
        ticks in 60u64..120,
    ) {
        let fault = SensorFault { kind: SensorFaultKind::ALL[class_ix], seed };
        let mut a = FrameInjector::new(fault);
        let mut b = FrameInjector::new(fault);
        for step in 0..ticks {
            let mut fa = frame_at(step);
            let mut fb = frame_at(step);
            a.apply(&mut fa);
            b.apply(&mut fb);
            prop_assert!(
                frames_identical(&fa, &fb),
                "{fault} realization diverged at step {step}"
            );
        }
        prop_assert!(a.activated(), "{fault} never corrupted a frame in {ticks} ticks");
        prop_assert_eq!(a.onset_time(), b.onset_time());
    }

    /// Replaying only every other frame (a shard worker that happens to
    /// see a different interleaving of work) still realizes the same
    /// corruption on the frames it does see: no hidden per-injector
    /// stream state.
    #[test]
    fn realization_is_independent_of_interleaving(
        seed in any::<u64>(),
        class_ix in 0usize..5,
    ) {
        let fault = SensorFault { kind: SensorFaultKind::ALL[class_ix], seed };
        let mut dense = FrameInjector::new(fault);
        let mut sparse = FrameInjector::new(fault);
        for step in 0..96u64 {
            let mut fd = frame_at(step);
            dense.apply(&mut fd);
            if step % 2 == 0 {
                let mut fs = frame_at(step);
                sparse.apply(&mut fs);
                prop_assert!(
                    frames_identical(&fd, &fs),
                    "{fault} realization depends on injector history at step {step}"
                );
            }
        }
    }
}

/// Render a campaign's observable payload as shard-run lines (the
/// lossless f64-bit encoding), so comparisons are bit-exact.
fn render_runs(campaign: Campaign) -> Vec<String> {
    let r = run_campaign_with_traces(campaign, &tiny_scale(), None, SensorConfig::default(), false);
    let mut out = Vec::new();
    for (i, g) in r.golden.iter().enumerate() {
        out.push(ShardRun::from_result("golden", i, g).render_line(0));
    }
    for (i, g) in r.injected.iter().enumerate() {
        out.push(ShardRun::from_result("injected", i, g).render_line(0));
    }
    out
}

#[test]
fn sensor_campaigns_are_bit_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    for class in [SensorFaultKind::Dropout, SensorFaultKind::NoiseInflation] {
        std::env::set_var("DIVERSEAV_THREADS", "1");
        let single = render_runs(sensor_campaign(class));
        std::env::set_var("DIVERSEAV_THREADS", "4");
        let multi = render_runs(sensor_campaign(class));
        std::env::remove_var("DIVERSEAV_THREADS");
        assert_eq!(single, multi, "{class} campaign varies with DIVERSEAV_THREADS");
        assert!(
            single.iter().any(|l| l.contains("\"model\": \"sensor\"")),
            "campaign actually injected sensor faults"
        );
    }
}

#[test]
fn sharded_and_monolithic_sensor_campaigns_agree_bit_for_bit() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    std::env::remove_var("DIVERSEAV_THREADS");
    let campaign = sensor_campaign(SensorFaultKind::Oscillation);
    let monolithic = render_runs(campaign);

    let dir = std::env::temp_dir().join(format!("sensor_determinism_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut artifacts = Vec::new();
    for index in 0..3 {
        let cfg = ShardConfig {
            campaign,
            scale: tiny_scale(),
            sensor: SensorConfig::default(),
            spec: ShardSpec { index, count: 3 },
            batch_size: 2,
        };
        let path = dir.join(format!("shard{index}.jsonl"));
        execute_shard(&cfg, &path).expect("shard executes");
        let text = std::fs::read_to_string(&path).expect("artifact readable");
        artifacts.push(parse_artifact(&text).expect("artifact parses"));
    }
    let merged = merge_artifacts(&artifacts).expect("shards merge");
    assert_eq!(merged.len(), 1);
    let mut from_shards = Vec::new();
    for (i, g) in merged[0].golden.iter().enumerate() {
        assert_eq!((g.kind.as_str(), g.index), ("golden", i));
        from_shards.push(g.render_line(0));
    }
    for (i, g) in merged[0].injected.iter().enumerate() {
        assert_eq!((g.kind.as_str(), g.index), ("injected", i));
        from_shards.push(g.render_line(0));
    }
    assert_eq!(monolithic, from_shards, "shard/monolithic sensor runs diverge");
    std::fs::remove_dir_all(&dir).ok();
}
