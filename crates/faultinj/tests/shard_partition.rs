//! Property tests for the shard partitioner, driven by the offline
//! `proptest` shim.
//!
//! The merge gate's exactly-once invariant is only as strong as the
//! partitioner beneath it: every run unit of a campaign must land in
//! exactly one shard, the assignment must be a pure function of
//! `(plan_seed, unit, shard_count)` — never of thread count, shard
//! execution order, or which machine asks — and the per-shard filters
//! must reassemble the full run set with no gaps and no overlaps.

use diverseav_faultinj::{campaign_units, training_units, unit_shard, RunUnit};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Every unit lands in exactly one in-range shard, and that shard is
    /// stable across repeated queries.
    #[test]
    fn assignment_is_total_stable_and_in_range(
        seed in any::<u64>(),
        n_golden in 1usize..40,
        n_injected in 0usize..60,
        n_shards in 1usize..9,
    ) {
        for unit in campaign_units(n_golden, n_injected) {
            let shard = unit_shard(seed, unit, n_shards);
            prop_assert!(shard < n_shards, "{unit:?} assigned out-of-range shard {shard}");
            prop_assert_eq!(shard, unit_shard(seed, unit, n_shards), "unstable for {:?}", unit);
        }
    }

    /// The per-shard filters partition the campaign's run set: summing
    /// the filtered counts reassembles the whole, and no unit appears
    /// under two shard indices.
    #[test]
    fn random_partitions_cover_the_run_set_exactly_once(
        seed in any::<u64>(),
        n_golden in 1usize..40,
        n_injected in 0usize..60,
        n_shards in 1usize..9,
    ) {
        let units = campaign_units(n_golden, n_injected);
        let mut owner: HashMap<RunUnit, usize> = HashMap::new();
        let mut total = 0usize;
        for shard in 0..n_shards {
            for unit in units.iter().filter(|u| unit_shard(seed, **u, n_shards) == shard) {
                prop_assert!(
                    owner.insert(*unit, shard).is_none(),
                    "{unit:?} claimed by shards {} and {shard}", owner[unit]
                );
                total += 1;
            }
        }
        prop_assert_eq!(total, units.len(), "partition misses units");
        prop_assert_eq!(units.len(), n_golden + n_injected);
    }

    /// The same exactly-once property holds for the training-run units
    /// that feed detector calibration.
    #[test]
    fn training_partitions_cover_exactly_once(
        seed in any::<u64>(),
        reps in 1usize..10,
        n_shards in 1usize..9,
    ) {
        let units = training_units(reps);
        prop_assert_eq!(units.len(), 3 * reps, "three routes, `reps` runs each");
        let mut total = 0usize;
        for shard in 0..n_shards {
            total += units.iter().filter(|u| unit_shard(seed, **u, n_shards) == shard).count();
        }
        prop_assert_eq!(total, units.len());
    }

    /// Different campaigns (different plan seeds) shuffle the assignment:
    /// the partition depends on the seed, not just on unit indices.
    /// (With 64 units and 4 shards, two seeds agreeing everywhere by
    /// chance is a ~4^-64 event — the shim's generator never hits it.)
    #[test]
    fn distinct_seeds_produce_distinct_partitions(seed in any::<u64>()) {
        let units = campaign_units(16, 48);
        let a: Vec<usize> = units.iter().map(|u| unit_shard(seed, *u, 4)).collect();
        let b: Vec<usize> = units.iter().map(|u| unit_shard(seed ^ 0x9E37, *u, 4)).collect();
        prop_assert!(a != b, "partition ignored the plan seed");
    }
}
