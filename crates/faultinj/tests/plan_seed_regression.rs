//! Regression pin for the `plan_seed` collision fixed in the parallel
//! engine PR: the original seed derivation (`0xC0FE ^ abbrev().len()`)
//! collapsed GhostCutIn ("GC") and FrontAccident ("FA") onto one seed —
//! their abbreviations share a length — so both scenarios drew the same
//! fault sites, and the target, fault model, and agent mode never
//! entered the seed at all. These tests pin the fix across the whole
//! campaign cross product so the collision cannot quietly return.

use diverseav::AgentMode;
use diverseav_fabric::Profile;
use diverseav_faultinj::{plan_seed, Campaign, FaultModelKind};
use diverseav_simworld::ScenarioKind;
use std::collections::HashMap;

const MODES: [AgentMode; 3] = [AgentMode::Single, AgentMode::RoundRobin, AgentMode::Duplicate];
const TARGETS: [Profile; 2] = [Profile::Gpu, Profile::Cpu];
/// Every campaign kind: register flips plus the five sensor-boundary
/// classes added with the sensor-fault extension.
fn kinds() -> Vec<FaultModelKind> {
    let mut kinds = vec![FaultModelKind::Transient, FaultModelKind::Permanent];
    kinds.extend(FaultModelKind::SENSOR_KINDS);
    kinds
}

#[test]
fn ghost_cut_in_never_shares_a_seed_with_front_accident() {
    for target in TARGETS {
        for kind in kinds() {
            for mode in MODES {
                let gc = Campaign { scenario: ScenarioKind::GhostCutIn, target, kind, mode };
                let fa = Campaign { scenario: ScenarioKind::FrontAccident, ..gc };
                assert_ne!(
                    plan_seed(&gc),
                    plan_seed(&fa),
                    "GC/FA seed collision regressed for {gc} vs {fa}"
                );
            }
        }
    }
}

#[test]
fn every_campaign_cell_has_a_distinct_seed() {
    // 3 scenarios × 2 targets × 7 kinds (transient, permanent, and the
    // five sensor classes) × 3 modes = 126 cells; every one must draw
    // from its own fault-site distribution.
    let mut seen: HashMap<u64, Campaign> = HashMap::new();
    for scenario in ScenarioKind::safety_critical() {
        for target in TARGETS {
            for kind in kinds() {
                for mode in MODES {
                    let c = Campaign { scenario, target, kind, mode };
                    if let Some(prev) = seen.insert(plan_seed(&c), c) {
                        panic!("seed collision between {prev} and {c}");
                    }
                }
            }
        }
    }
    assert_eq!(seen.len(), 126);
}
