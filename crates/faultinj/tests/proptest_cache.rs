//! Property tests for [`GoldenCache`] key hygiene and counter
//! determinism, driven by the offline `proptest` shim.
//!
//! Table-I correctness leans on two cache invariants: a key captures
//! every input that reaches a golden run — two keys differing in any
//! single discriminant must never alias — and the hit/miss counters are
//! a pure function of the request sequence (one miss per distinct key, a
//! hit for every repeat), which is what makes the cache-counter
//! assertions elsewhere in the suite meaningful.

use diverseav::AgentMode;
use diverseav_faultinj::{GoldenCache, GoldenKey, GoldenSet};
use diverseav_simworld::{ScenarioKind, SensorConfig};
use proptest::prelude::*;
use std::collections::HashSet;

fn scenario(code: u8) -> ScenarioKind {
    match code % 4 {
        0 => ScenarioKind::LeadSlowdown,
        1 => ScenarioKind::GhostCutIn,
        2 => ScenarioKind::FrontAccident,
        _ => ScenarioKind::LongRoute(code / 4),
    }
}

fn empty_set() -> GoldenSet {
    GoldenSet { golden: Vec::new(), baseline: Vec::new() }
}

/// A fully-specified key from plain sampled inputs.
fn build_key(
    code: u8,
    duration: f64,
    single: bool,
    pixel_noise: f64,
    golden_runs: usize,
    traces: bool,
) -> GoldenKey {
    let mode = if single { AgentMode::Single } else { AgentMode::RoundRobin };
    let sensor = SensorConfig { pixel_noise, ..SensorConfig::default() };
    GoldenKey::new(scenario(code), duration, mode, &sensor, golden_runs, traces)
}

proptest! {
    /// Mutating any one discriminant of a sampled key must change it.
    #[test]
    fn single_discriminant_mutations_never_collide(
        code in 0u8..16,
        duration in 5.0f64..120.0,
        single in any::<bool>(),
        noise in 0.0f64..1.0,
        golden_runs in 1usize..8,
        traces in any::<bool>(),
    ) {
        let base = build_key(code, duration, single, noise, golden_runs, traces);
        // `code + 1` always lands in a different `scenario` match arm, so
        // every variant differs from the base in exactly one discriminant.
        let variants = [
            build_key((code + 1) % 16, duration, single, noise, golden_runs, traces),
            build_key(code, duration + 0.5, single, noise, golden_runs, traces),
            build_key(code, duration, !single, noise, golden_runs, traces),
            build_key(code, duration, single, noise + 0.25, golden_runs, traces),
            build_key(code, duration, single, noise, golden_runs + 1, traces),
            build_key(code, duration, single, noise, golden_runs, !traces),
        ];
        for (i, v) in variants.iter().enumerate() {
            prop_assert!(&base != v, "variant {i} aliased the base key: {v:?}");
        }
    }

    /// Hit/miss counters match a sequential oracle over any request
    /// sequence: one miss per distinct key, a hit for every repeat, and
    /// one cache entry per distinct key.
    #[test]
    fn counters_match_a_sequential_oracle(
        codes in proptest::collection::vec(0u8..6, 1..40),
    ) {
        // Six pairwise-distinct keys (golden_runs separates them even
        // where the scenario arm repeats).
        let keys: Vec<GoldenKey> = (0u8..6)
            .map(|i| build_key(i % 4, 30.0, false, 0.02, 2 + i as usize, true))
            .collect();
        let cache = GoldenCache::new();
        let mut seen = HashSet::new();
        let (mut oracle_hits, mut oracle_misses) = (0usize, 0usize);
        for &c in &codes {
            let key = keys[c as usize].clone();
            if seen.insert(key.clone()) {
                oracle_misses += 1;
            } else {
                oracle_hits += 1;
            }
            cache.get_or_compute(key, empty_set);
        }
        prop_assert_eq!(cache.misses(), oracle_misses);
        prop_assert_eq!(cache.hits(), oracle_hits);
        prop_assert_eq!(cache.len(), seen.len());
    }
}
