//! Determinism gate for the flight recorder: incident payloads (the
//! drained per-run flight rings) must be pure functions of the campaign
//! seeds — bit-identical across `DIVERSEAV_THREADS` settings and across
//! shard/monolithic execution — so incident artifacts can ride the shard
//! partitioner and the exactly-once merge unchanged. The recorder
//! carries no wall-clock state (lint Gate 4 enforces the absence of time
//! sources at the source level; this test enforces it at the bit level).

use diverseav::{AgentMode, DetectorConfig, DetectorModel};
use diverseav_fabric::Profile;
use diverseav_faultinj::{
    collect_incidents, collect_training_runs, execute_shard, incident_sidecar_path,
    merge_artifacts, parse_artifact, parse_incident_artifact, run_campaign_with_traces, Campaign,
    CampaignScale, FaultModelKind, IncidentRecord, SensorFaultKind, ShardConfig, ShardSpec,
};
use diverseav_simworld::{ScenarioKind, SensorConfig};
use std::sync::Mutex;

/// Serializes the tests that mutate `DIVERSEAV_THREADS` (process-global).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn tiny_scale() -> CampaignScale {
    CampaignScale {
        n_transient: 4,
        permanent_repeats: 1,
        golden_runs: 2,
        long_route_duration: 20.0,
        training_runs: 1,
    }
}

fn sensor_campaign(class: SensorFaultKind) -> Campaign {
    Campaign {
        scenario: ScenarioKind::LeadSlowdown,
        target: Profile::Gpu,
        kind: FaultModelKind::Sensor(class),
        mode: AgentMode::RoundRobin,
    }
}

/// Train the paper's detector on the fault-free runs — detector
/// telemetry is what the recorder packs into every tick, so the
/// incident-payload comparison must exercise it.
fn detector() -> (DetectorModel, DetectorConfig) {
    let tr = collect_training_runs(AgentMode::RoundRobin, &tiny_scale(), SensorConfig::default());
    let cfg = DetectorConfig::default().with_rw(3);
    (DetectorModel::train(&tr, &cfg), cfg)
}

/// Run a detector-equipped campaign and render every incident payload in
/// the lossless bit-hex line encoding, so comparisons are bit-exact
/// (including NaN payloads, which `PartialEq` would mishandle).
fn render_incident_lines(campaign: Campaign) -> Vec<String> {
    let r = run_campaign_with_traces(
        campaign,
        &tiny_scale(),
        Some(detector()),
        SensorConfig::default(),
        false,
    );
    let mut out = Vec::new();
    for (kind, runs) in [("golden", &r.golden), ("injected", &r.injected)] {
        for (i, run) in runs.iter().enumerate() {
            if let Some(rec) = IncidentRecord::from_result(kind, i, run) {
                out.push(rec.render_line(0));
            }
        }
    }
    out
}

#[test]
fn incident_payloads_are_bit_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let campaign = sensor_campaign(SensorFaultKind::Dropout);
    std::env::set_var("DIVERSEAV_THREADS", "1");
    let single = render_incident_lines(campaign);
    std::env::set_var("DIVERSEAV_THREADS", "4");
    let multi = render_incident_lines(campaign);
    std::env::remove_var("DIVERSEAV_THREADS");
    assert!(!single.is_empty(), "campaign produced no incidents — the comparison would be vacuous");
    assert_eq!(single, multi, "flight recordings vary with DIVERSEAV_THREADS");
}

#[test]
fn sharded_and_monolithic_incident_sets_agree_bit_for_bit() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    std::env::remove_var("DIVERSEAV_THREADS");
    let campaign = sensor_campaign(SensorFaultKind::OutlierBurst);
    let dir = std::env::temp_dir().join(format!("flight_determinism_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Collect the campaign's incidents from an n-shard split, for both
    // n=1 (the monolithic layout) and n=3.
    let collect = |count: usize, tag: &str| {
        let mut artifacts = Vec::new();
        let mut sidecars = Vec::new();
        for index in 0..count {
            let cfg = ShardConfig {
                campaign,
                scale: tiny_scale(),
                sensor: SensorConfig::default(),
                spec: ShardSpec { index, count },
                batch_size: 2,
            };
            let path = dir.join(format!("{tag}_shard{index}.jsonl"));
            execute_shard(&cfg, &path).expect("shard executes");
            let text = std::fs::read_to_string(&path).expect("artifact readable");
            artifacts.push(parse_artifact(&text).expect("artifact parses"));
            let side = std::fs::read_to_string(incident_sidecar_path(&path))
                .expect("every shard writes an incident sidecar");
            sidecars.push(parse_incident_artifact(&side).expect("sidecar parses"));
        }
        let merged = merge_artifacts(&artifacts).expect("shards merge");
        assert_eq!(merged.len(), 1);
        let collected = collect_incidents(&merged[0], &sidecars).expect("incident sets collect");
        collected.iter().map(IncidentRecord::render_merged).collect::<Vec<String>>()
    };

    let monolithic = collect(1, "mono");
    let sharded = collect(3, "split");
    assert_eq!(monolithic, sharded, "shard/monolithic incident payloads diverge");
    std::fs::remove_dir_all(&dir).ok();
}
