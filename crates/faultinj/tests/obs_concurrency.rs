//! Concurrency safety of the shared metrics registry under the engine's
//! fan-out: counters, phase accumulators, and histograms recorded from
//! `par_map_with` workers must merge to the same totals at any thread
//! count — the property that lets campaign code record metrics from
//! inside worker closures without perturbing determinism.
//!
//! Uses uniquely named keys (not `metrics::clear`) so it can share a
//! process with other metrics-touching tests.

use diverseav_faultinj::{detected_parallelism, par_map_with};
use diverseav_obs::metrics;

#[test]
fn fanout_metrics_merge_identically_at_any_thread_count() {
    let items: Vec<u64> = (0..97).collect();
    let max_threads = detected_parallelism().max(2);

    let record_all = |variant: &str, threads: usize| {
        let counter = format!("test.obsconc.{variant}.counter");
        let phase = format!("test.obsconc.{variant}.phase");
        let hist_name = format!("test.obsconc.{variant}.hist");
        let hist = metrics::histogram(&hist_name);
        par_map_with(threads, &items, |&i| {
            metrics::counter_add(&counter, i + 1);
            metrics::phase_add(&phase, 0.125);
            hist.record(i * 37 + 5);
            i
        });
        (metrics::counter_get(&counter), metrics::phase_get(&phase), metrics::hist_get(&hist_name))
    };

    let (c_seq, p_seq, h_seq) = record_all("seq", 1);
    let (c_par, p_par, h_par) = record_all("par", max_threads);

    let expect_count: u64 = items.iter().map(|i| i + 1).sum();
    assert_eq!(c_seq, expect_count, "sequential counter total");
    assert_eq!(c_par, expect_count, "parallel counter total identical");

    assert_eq!(p_seq.count, items.len() as u64);
    assert_eq!(p_par.count, p_seq.count);
    assert!((p_seq.wall_secs - p_par.wall_secs).abs() < 1e-9, "exact dyadic accumulation");

    assert_eq!(h_par, h_seq, "histogram snapshots bit-identical");
    assert_eq!(h_seq.count(), items.len() as u64);
    assert_eq!(h_seq.max, 96 * 37 + 5);
}
