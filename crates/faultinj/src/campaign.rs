//! The Campaign Manager (Fig 3): orchestrates golden runs, profiling, plan
//! generation, injection runs, and Table-I summarization.

use crate::cache::{GoldenCache, GoldenKey, GoldenSet};
use crate::exec::{par_map, par_map_indices};
use crate::outcome::{classify, mean_trajectory, OutcomeClass};
use crate::plan::{generate_plan, FaultModelKind, PlanConfig};
use crate::runner::{run_experiment, run_record, RunConfig, RunResult};
use diverseav::{AgentMode, DetectorConfig, DetectorModel, TrainSample};
use diverseav_fabric::Profile;
use diverseav_obs::{journal, metrics, trace};
use diverseav_simworld::{long_route, Scenario, ScenarioKind, SensorConfig, TrajPoint};
use std::fmt;
use std::time::Instant;

/// Seed of golden run `i`: `GOLDEN_SEED_BASE + i`. Shared with the shard
/// executor so sharded and monolithic runs are the same pure functions.
pub const GOLDEN_SEED_BASE: u64 = 1_000;

/// Seed of injected run `i`: `INJECTED_SEED_BASE + i`.
pub const INJECTED_SEED_BASE: u64 = 2_000;

/// Experiment scale: quick (CI-friendly) vs paper-scale counts.
///
/// The paper's campaigns ran for 21 (GPU) + 18.6 (CPU) days; the quick
/// scale reproduces the same campaigns with reduced run counts. Select
/// with `DIVERSEAV_SCALE=paper` in the environment.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CampaignScale {
    /// Transient injections per campaign (paper: 500).
    pub n_transient: usize,
    /// Repeats per opcode in permanent campaigns (paper: 3).
    pub permanent_repeats: usize,
    /// Golden runs per campaign (paper: 50).
    pub golden_runs: usize,
    /// Long-route training-scenario duration in seconds (paper: 600–900).
    pub long_route_duration: f64,
    /// Training runs per long route.
    pub training_runs: usize,
}

impl CampaignScale {
    /// Quick scale for tests and default bench runs.
    pub fn quick() -> Self {
        CampaignScale {
            n_transient: 16,
            permanent_repeats: 1,
            golden_runs: 6,
            long_route_duration: 100.0,
            training_runs: 2,
        }
    }

    /// Paper-scale counts (§IV-D).
    pub fn paper() -> Self {
        CampaignScale {
            n_transient: 500,
            permanent_repeats: 3,
            golden_runs: 50,
            long_route_duration: 600.0,
            training_runs: 3,
        }
    }

    /// Scale selected by the `DIVERSEAV_SCALE` environment variable
    /// (`paper` → paper scale, anything else/absent → quick).
    pub fn from_env() -> Self {
        match std::env::var("DIVERSEAV_SCALE").as_deref() {
            Ok("paper") => Self::paper(),
            _ => Self::quick(),
        }
    }
}

/// One fault-injection campaign: a (target, fault model, scenario, agent
/// mode) cell of Table I.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Campaign {
    /// Driving scenario.
    pub scenario: ScenarioKind,
    /// Injection target.
    pub target: Profile,
    /// Fault model.
    pub kind: FaultModelKind,
    /// Agent deployment mode.
    pub mode: AgentMode,
}

impl fmt::Display for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-{} {} [{}]",
            self.target,
            self.kind.label(),
            self.scenario.abbrev(),
            self.mode
        )
    }
}

/// All results of one campaign.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// The campaign definition.
    pub campaign: Campaign,
    /// Golden (fault-free) runs.
    pub golden: Vec<RunResult>,
    /// Fault-injected runs.
    pub injected: Vec<RunResult>,
    /// Mean golden trajectory (the violation baseline).
    pub baseline: Vec<TrajPoint>,
}

/// A row of Table I.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct TableRow {
    /// Runs in which the fault corrupted at least one register.
    pub active: usize,
    /// Platform-detected hangs and crashes.
    pub hang_crash: usize,
    /// Total fault-injected runs.
    pub total: usize,
    /// Runs ending in an ego collision.
    pub accidents: usize,
    /// Runs with a trajectory violation but no accident.
    pub traj_violations: usize,
}

/// Run one campaign end-to-end.
///
/// `detector` (with its config) is attached to every run so alarm times
/// are recorded; pass `None` to run without detection (fault-propagation
/// characterization only).
pub fn run_campaign(
    campaign: Campaign,
    scale: &CampaignScale,
    detector: Option<(DetectorModel, DetectorConfig)>,
    sensor: SensorConfig,
) -> CampaignResult {
    run_campaign_with_traces(campaign, scale, detector, sensor, false)
}

/// [`run_campaign`] with optional divergence-stream recording on every
/// run, enabling offline (td, rw) detector sweeps over the results.
pub fn run_campaign_with_traces(
    campaign: Campaign,
    scale: &CampaignScale,
    detector: Option<(DetectorModel, DetectorConfig)>,
    sensor: SensorConfig,
    collect_traces: bool,
) -> CampaignResult {
    run_campaign_cached(campaign, scale, detector, sensor, collect_traces, None)
}

/// [`run_campaign_with_traces`] with an optional [`GoldenCache`] shared
/// across campaigns.
///
/// The four campaigns of a (scenario, mode) Table-I cell — {GPU, CPU} ×
/// {transient, permanent} — request identical golden sets; the cache
/// computes each distinct set once. Runs fan out on the deterministic
/// [`par_map`](crate::exec::par_map) engine: every run is seeded
/// explicitly (golden `1000 + i`, injected `2000 + i`), so results are
/// bit-identical to sequential execution for any `DIVERSEAV_THREADS`.
///
/// Detector-attached golden runs carry per-campaign alarm annotations
/// and therefore always bypass the cache.
pub fn run_campaign_cached(
    campaign: Campaign,
    scale: &CampaignScale,
    detector: Option<(DetectorModel, DetectorConfig)>,
    sensor: SensorConfig,
    collect_traces: bool,
    cache: Option<&GoldenCache>,
) -> CampaignResult {
    let scenario = scenario_for(campaign.scenario, scale);

    // Golden runs (also the NVBitFI-style profiling pass).
    let run_golden_set = || {
        let golden = par_map_indices(scale.golden_runs.max(1), |i| {
            let mut cfg =
                RunConfig::new(scenario.clone(), campaign.mode, GOLDEN_SEED_BASE + i as u64);
            cfg.sensor = sensor;
            cfg.detector = detector.clone();
            cfg.collect_training = collect_traces;
            run_experiment(&cfg)
        });
        let trajectories: Vec<&[TrajPoint]> =
            golden.iter().map(|g| g.trajectory.as_slice()).collect();
        let baseline = mean_trajectory(&trajectories);
        GoldenSet { golden, baseline }
    };
    let phase_start = Instant::now();
    let golden_set = match (&detector, cache) {
        // Detector runs are annotated per campaign — never share them.
        (None, Some(cache)) => {
            let key = GoldenKey::new(
                campaign.scenario,
                scenario.duration,
                campaign.mode,
                &sensor,
                scale.golden_runs.max(1),
                collect_traces,
            );
            (*cache.get_or_compute(key, run_golden_set)).clone()
        }
        _ => run_golden_set(),
    };
    let GoldenSet { golden, baseline } = golden_set;
    metrics::phase_add("campaign.golden", phase_start.elapsed().as_secs_f64());
    metrics::counter_add("campaign.golden_runs", golden.len() as u64);

    // Injection plan from the first golden run's profile.
    let phase_start = Instant::now();
    let plan = generate_plan(
        &golden[0],
        &PlanConfig {
            kind: campaign.kind,
            target: campaign.target,
            n_transient: scale.n_transient,
            repeats: scale.permanent_repeats,
            seed: plan_seed(&campaign),
        },
    );
    metrics::phase_add("campaign.plan", phase_start.elapsed().as_secs_f64());

    let phase_start = Instant::now();
    let injected: Vec<RunResult> = par_map_indices(plan.len(), |i| {
        let mut cfg =
            RunConfig::new(scenario.clone(), campaign.mode, INJECTED_SEED_BASE + i as u64);
        cfg.sensor = sensor;
        cfg.fault = Some(plan[i]);
        cfg.detector = detector.clone();
        cfg.collect_training = collect_traces;
        run_experiment(&cfg)
    });
    metrics::phase_add("campaign.injected", phase_start.elapsed().as_secs_f64());
    metrics::counter_add("campaign.injected_runs", injected.len() as u64);
    metrics::counter_add("campaign.cells", 1);
    metrics::counter_add(
        "campaign.alarms",
        injected.iter().chain(golden.iter()).filter(|r| r.alarm_time.is_some()).count() as u64,
    );

    // Journal every run, index-ordered (the engine's slot order), so the
    // JSONL lines for a fixed campaign sequence are bit-identical for
    // any thread count.
    if trace::enabled() {
        let label = campaign.to_string();
        for (i, r) in golden.iter().enumerate() {
            journal::append_record(&run_record(&label, "golden", i, r));
        }
        for (i, r) in injected.iter().enumerate() {
            journal::append_record(&run_record(&label, "injected", i, r));
        }
    }

    CampaignResult { campaign, golden, injected, baseline }
}

/// Injection-plan seed derived from every campaign discriminant.
///
/// The original expression (`0xC0FE ^ abbrev().len()`) collapsed to the
/// same seed for any two scenarios whose abbreviations share a length —
/// GhostCutIn ("GC") and FrontAccident ("FA") collided, and the target,
/// fault model, and agent mode never entered at all. Folding explicit
/// discriminant codes through SplitMix64 gives every campaign cell a
/// well-separated seed.
pub fn plan_seed(campaign: &Campaign) -> u64 {
    let scenario_code: u64 = match campaign.scenario {
        ScenarioKind::LeadSlowdown => 1,
        ScenarioKind::GhostCutIn => 2,
        ScenarioKind::FrontAccident => 3,
        ScenarioKind::LongRoute(i) => 0x100 + i as u64,
    };
    let target_code: u64 = match campaign.target {
        Profile::Cpu => 1,
        Profile::Gpu => 2,
    };
    let kind_code: u64 = match campaign.kind {
        FaultModelKind::Transient => 1,
        FaultModelKind::Permanent => 2,
        // Sensor classes occupy a disjoint code block above the register
        // models so every fault-model axis value stays well separated.
        FaultModelKind::Sensor(class) => 0x10 + class.class_code(),
    };
    let mode_code: u64 = match campaign.mode {
        AgentMode::Single => 1,
        AgentMode::RoundRobin => 2,
        AgentMode::Duplicate => 3,
    };
    let mut seed = 0xC0FE;
    for code in [scenario_code, target_code, kind_code, mode_code] {
        seed = splitmix64(seed ^ code);
    }
    seed
}

/// SplitMix64 finalizer: one bijective, well-mixing step. Shared with
/// the shard partitioner, whose per-unit hashing reuses this mix.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build the scenario for a campaign at the given scale.
pub fn scenario_for(kind: ScenarioKind, scale: &CampaignScale) -> Scenario {
    match kind {
        ScenarioKind::LongRoute(i) => long_route(i, scale.long_route_duration),
        other => Scenario::of_kind(other),
    }
}

/// Summarize a campaign into a Table-I row with trajectory threshold `td`.
///
/// Outcome tallies also feed the process-global `outcome.*` counters in
/// [`diverseav_obs::metrics`]: hang vs crash (split by trap type),
/// accidents, trajectory violations, benign runs, and `outcome.sdc`
/// (silent safety-critical corruptions = accidents + violations).
pub fn summarize(result: &CampaignResult, td: f64) -> TableRow {
    let mut row = TableRow { total: result.injected.len(), ..Default::default() };
    let mut benign = 0u64;
    let mut hangs = 0u64;
    for r in &result.injected {
        if r.fault_activated {
            row.active += 1;
        }
        match classify(r, &result.baseline, td) {
            OutcomeClass::HangCrash => {
                row.hang_crash += 1;
                if r.termination.is_hang() {
                    hangs += 1;
                }
            }
            OutcomeClass::Accident => row.accidents += 1,
            OutcomeClass::TrajViolation => row.traj_violations += 1,
            OutcomeClass::Benign => benign += 1,
        }
    }
    metrics::counter_add("outcome.hang", hangs);
    metrics::counter_add("outcome.crash", row.hang_crash as u64 - hangs);
    metrics::counter_add("outcome.accident", row.accidents as u64);
    metrics::counter_add("outcome.traj_violation", row.traj_violations as u64);
    metrics::counter_add("outcome.benign", benign);
    metrics::counter_add("outcome.sdc", (row.accidents + row.traj_violations) as u64);
    row
}

/// Collect detector training data: fault-free executions of the long
/// training routes in the given agent mode (§III-D "training error
/// detection engine").
pub fn collect_training_runs(
    mode: AgentMode,
    scale: &CampaignScale,
    sensor: SensorConfig,
) -> Vec<Vec<TrainSample>> {
    // Route-major job list, fanned out on the deterministic engine: the
    // output order (and every seed) matches the original nested loop.
    let jobs: Vec<(u8, usize)> =
        (0..3u8).flat_map(|route| (0..scale.training_runs).map(move |rep| (route, rep))).collect();
    metrics::counter_add("campaign.training_runs", jobs.len() as u64);
    par_map(&jobs, |&(route, rep)| {
        let scenario = long_route(route, scale.long_route_duration);
        let mut cfg = RunConfig::new(scenario, mode, 7_000 + route as u64 * 31 + rep as u64);
        cfg.sensor = sensor;
        cfg.collect_training = true;
        run_experiment(&cfg).training
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> CampaignScale {
        CampaignScale {
            n_transient: 3,
            permanent_repeats: 1,
            golden_runs: 2,
            long_route_duration: 8.0,
            training_runs: 1,
        }
    }

    fn tiny_campaign(kind: FaultModelKind, target: Profile) -> Campaign {
        Campaign { scenario: ScenarioKind::LeadSlowdown, target, kind, mode: AgentMode::RoundRobin }
    }

    fn shorten(mut s: Scenario) -> Scenario {
        s.duration = 2.0;
        s
    }

    #[test]
    fn campaign_produces_expected_run_counts() {
        // Use a shortened scenario via a custom path: run the pieces
        // directly to keep the test fast.
        let scale = tiny_scale();
        let scenario = shorten(Scenario::of_kind(ScenarioKind::LeadSlowdown));
        let golden: Vec<RunResult> = (0..2)
            .map(|i| {
                run_experiment(&RunConfig::new(scenario.clone(), AgentMode::RoundRobin, i as u64))
            })
            .collect();
        let plan = generate_plan(
            &golden[0],
            &PlanConfig {
                kind: FaultModelKind::Transient,
                target: Profile::Gpu,
                n_transient: scale.n_transient,
                repeats: 1,
                seed: 1,
            },
        );
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn summarize_counts_outcomes() {
        let scenario = shorten(Scenario::of_kind(ScenarioKind::LeadSlowdown));
        let golden: Vec<RunResult> = (0..2)
            .map(|i| {
                run_experiment(&RunConfig::new(scenario.clone(), AgentMode::RoundRobin, 50 + i))
            })
            .collect();
        let trajs: Vec<&[TrajPoint]> = golden.iter().map(|g| g.trajectory.as_slice()).collect();
        let baseline = mean_trajectory(&trajs);
        let result = CampaignResult {
            campaign: tiny_campaign(FaultModelKind::Transient, Profile::Gpu),
            injected: golden.clone(),
            golden,
            baseline,
        };
        let row = summarize(&result, 2.0);
        assert_eq!(row.total, 2);
        assert_eq!(row.active, 0, "golden runs have no active fault");
        assert_eq!(row.hang_crash + row.accidents + row.traj_violations, 0);
    }

    #[test]
    fn scales_have_sane_ordering() {
        let q = CampaignScale::quick();
        let p = CampaignScale::paper();
        assert!(q.n_transient < p.n_transient);
        assert!(q.golden_runs < p.golden_runs);
        assert_eq!(p.n_transient, 500, "paper's §IV-D transient count");
        assert_eq!(p.permanent_repeats, 3);
        assert_eq!(p.golden_runs, 50);
    }

    #[test]
    fn campaign_display_matches_table_style() {
        let c = tiny_campaign(FaultModelKind::Permanent, Profile::Gpu);
        assert_eq!(c.to_string(), "GPU-permanent LSD [diverseav]");
    }

    #[test]
    fn plan_seeds_separate_all_campaign_discriminants() {
        let base = tiny_campaign(FaultModelKind::Transient, Profile::Gpu);
        // The historical collision: GC and FA abbreviations share a length.
        let gc = Campaign { scenario: ScenarioKind::GhostCutIn, ..base };
        let fa = Campaign { scenario: ScenarioKind::FrontAccident, ..base };
        assert_ne!(plan_seed(&gc), plan_seed(&fa));
        // Every discriminant must reach the seed.
        let variants = [
            Campaign { target: Profile::Cpu, ..base },
            Campaign { kind: FaultModelKind::Permanent, ..base },
            Campaign { mode: AgentMode::Single, ..base },
            Campaign { scenario: ScenarioKind::LongRoute(0), ..base },
        ];
        let mut seeds: Vec<u64> = variants.iter().map(plan_seed).collect();
        seeds.push(plan_seed(&base));
        // The five sensor-fault classes each get their own plan seed too.
        for kind in FaultModelKind::SENSOR_KINDS {
            seeds.push(plan_seed(&Campaign { kind, ..base }));
        }
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10, "all campaign variants must get distinct seeds");
    }

    #[test]
    fn scenario_for_scales_long_routes() {
        let scale = tiny_scale();
        let s = scenario_for(ScenarioKind::LongRoute(1), &scale);
        assert!(s.duration <= 8.0 + 1e-9);
        let lsd = scenario_for(ScenarioKind::LeadSlowdown, &scale);
        assert_eq!(lsd.kind, ScenarioKind::LeadSlowdown);
    }
}
