//! The Campaign Manager (Fig 3): orchestrates golden runs, profiling, plan
//! generation, injection runs, and Table-I summarization.

use crate::outcome::{classify, mean_trajectory, OutcomeClass};
use crate::plan::{generate_plan, FaultModelKind, PlanConfig};
use crate::runner::{run_experiment, RunConfig, RunResult};
use diverseav::{AgentMode, DetectorConfig, DetectorModel, TrainSample};
use diverseav_fabric::Profile;
use diverseav_simworld::{long_route, Scenario, ScenarioKind, SensorConfig, TrajPoint};
use std::fmt;

/// Experiment scale: quick (CI-friendly) vs paper-scale counts.
///
/// The paper's campaigns ran for 21 (GPU) + 18.6 (CPU) days; the quick
/// scale reproduces the same campaigns with reduced run counts. Select
/// with `DIVERSEAV_SCALE=paper` in the environment.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CampaignScale {
    /// Transient injections per campaign (paper: 500).
    pub n_transient: usize,
    /// Repeats per opcode in permanent campaigns (paper: 3).
    pub permanent_repeats: usize,
    /// Golden runs per campaign (paper: 50).
    pub golden_runs: usize,
    /// Long-route training-scenario duration in seconds (paper: 600–900).
    pub long_route_duration: f64,
    /// Training runs per long route.
    pub training_runs: usize,
}

impl CampaignScale {
    /// Quick scale for tests and default bench runs.
    pub fn quick() -> Self {
        CampaignScale {
            n_transient: 16,
            permanent_repeats: 1,
            golden_runs: 6,
            long_route_duration: 100.0,
            training_runs: 2,
        }
    }

    /// Paper-scale counts (§IV-D).
    pub fn paper() -> Self {
        CampaignScale {
            n_transient: 500,
            permanent_repeats: 3,
            golden_runs: 50,
            long_route_duration: 600.0,
            training_runs: 3,
        }
    }

    /// Scale selected by the `DIVERSEAV_SCALE` environment variable
    /// (`paper` → paper scale, anything else/absent → quick).
    pub fn from_env() -> Self {
        match std::env::var("DIVERSEAV_SCALE").as_deref() {
            Ok("paper") => Self::paper(),
            _ => Self::quick(),
        }
    }
}

/// One fault-injection campaign: a (target, fault model, scenario, agent
/// mode) cell of Table I.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Campaign {
    /// Driving scenario.
    pub scenario: ScenarioKind,
    /// Injection target.
    pub target: Profile,
    /// Fault model.
    pub kind: FaultModelKind,
    /// Agent deployment mode.
    pub mode: AgentMode,
}

impl fmt::Display for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-{} {} [{}]",
            self.target,
            self.kind.label(),
            self.scenario.abbrev(),
            self.mode
        )
    }
}

/// All results of one campaign.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// The campaign definition.
    pub campaign: Campaign,
    /// Golden (fault-free) runs.
    pub golden: Vec<RunResult>,
    /// Fault-injected runs.
    pub injected: Vec<RunResult>,
    /// Mean golden trajectory (the violation baseline).
    pub baseline: Vec<TrajPoint>,
}

/// A row of Table I.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct TableRow {
    /// Runs in which the fault corrupted at least one register.
    pub active: usize,
    /// Platform-detected hangs and crashes.
    pub hang_crash: usize,
    /// Total fault-injected runs.
    pub total: usize,
    /// Runs ending in an ego collision.
    pub accidents: usize,
    /// Runs with a trajectory violation but no accident.
    pub traj_violations: usize,
}

/// Run one campaign end-to-end.
///
/// `detector` (with its config) is attached to every run so alarm times
/// are recorded; pass `None` to run without detection (fault-propagation
/// characterization only).
pub fn run_campaign(
    campaign: Campaign,
    scale: &CampaignScale,
    detector: Option<(DetectorModel, DetectorConfig)>,
    sensor: SensorConfig,
) -> CampaignResult {
    run_campaign_with_traces(campaign, scale, detector, sensor, false)
}

/// [`run_campaign`] with optional divergence-stream recording on every
/// run, enabling offline (td, rw) detector sweeps over the results.
pub fn run_campaign_with_traces(
    campaign: Campaign,
    scale: &CampaignScale,
    detector: Option<(DetectorModel, DetectorConfig)>,
    sensor: SensorConfig,
    collect_traces: bool,
) -> CampaignResult {
    let scenario = scenario_for(campaign.scenario, scale);

    // Golden runs (also the NVBitFI-style profiling pass).
    let golden: Vec<RunResult> = (0..scale.golden_runs.max(1))
        .map(|i| {
            let mut cfg = RunConfig::new(scenario.clone(), campaign.mode, 1_000 + i as u64);
            cfg.sensor = sensor;
            cfg.detector = detector.clone();
            cfg.collect_training = collect_traces;
            run_experiment(&cfg)
        })
        .collect();
    let trajectories: Vec<&[TrajPoint]> = golden.iter().map(|g| g.trajectory.as_slice()).collect();
    let baseline = mean_trajectory(&trajectories);

    // Injection plan from the first golden run's profile.
    let plan = generate_plan(
        &golden[0],
        &PlanConfig {
            kind: campaign.kind,
            target: campaign.target,
            n_transient: scale.n_transient,
            repeats: scale.permanent_repeats,
            seed: 0xC0FE ^ campaign.scenario.abbrev().len() as u64,
        },
    );

    let injected: Vec<RunResult> = plan
        .iter()
        .enumerate()
        .map(|(i, &spec)| {
            let mut cfg = RunConfig::new(scenario.clone(), campaign.mode, 2_000 + i as u64);
            cfg.sensor = sensor;
            cfg.fault = Some(spec);
            cfg.detector = detector.clone();
            cfg.collect_training = collect_traces;
            run_experiment(&cfg)
        })
        .collect();

    CampaignResult { campaign, golden, injected, baseline }
}

/// Build the scenario for a campaign at the given scale.
pub fn scenario_for(kind: ScenarioKind, scale: &CampaignScale) -> Scenario {
    match kind {
        ScenarioKind::LongRoute(i) => long_route(i, scale.long_route_duration),
        other => Scenario::of_kind(other),
    }
}

/// Summarize a campaign into a Table-I row with trajectory threshold `td`.
pub fn summarize(result: &CampaignResult, td: f64) -> TableRow {
    let mut row = TableRow { total: result.injected.len(), ..Default::default() };
    for r in &result.injected {
        if r.fault_activated {
            row.active += 1;
        }
        match classify(r, &result.baseline, td) {
            OutcomeClass::HangCrash => row.hang_crash += 1,
            OutcomeClass::Accident => row.accidents += 1,
            OutcomeClass::TrajViolation => row.traj_violations += 1,
            OutcomeClass::Benign => {}
        }
    }
    row
}

/// Collect detector training data: fault-free executions of the long
/// training routes in the given agent mode (§III-D "training error
/// detection engine").
pub fn collect_training_runs(
    mode: AgentMode,
    scale: &CampaignScale,
    sensor: SensorConfig,
) -> Vec<Vec<TrainSample>> {
    let mut runs = Vec::new();
    for route in 0..3u8 {
        let scenario = long_route(route, scale.long_route_duration);
        for rep in 0..scale.training_runs {
            let mut cfg =
                RunConfig::new(scenario.clone(), mode, 7_000 + route as u64 * 31 + rep as u64);
            cfg.sensor = sensor;
            cfg.collect_training = true;
            let result = run_experiment(&cfg);
            runs.push(result.training);
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> CampaignScale {
        CampaignScale {
            n_transient: 3,
            permanent_repeats: 1,
            golden_runs: 2,
            long_route_duration: 8.0,
            training_runs: 1,
        }
    }

    fn tiny_campaign(kind: FaultModelKind, target: Profile) -> Campaign {
        Campaign { scenario: ScenarioKind::LeadSlowdown, target, kind, mode: AgentMode::RoundRobin }
    }

    fn shorten(mut s: Scenario) -> Scenario {
        s.duration = 2.0;
        s
    }

    #[test]
    fn campaign_produces_expected_run_counts() {
        // Use a shortened scenario via a custom path: run the pieces
        // directly to keep the test fast.
        let scale = tiny_scale();
        let scenario = shorten(Scenario::of_kind(ScenarioKind::LeadSlowdown));
        let golden: Vec<RunResult> = (0..2)
            .map(|i| {
                run_experiment(&RunConfig::new(scenario.clone(), AgentMode::RoundRobin, i as u64))
            })
            .collect();
        let plan = generate_plan(
            &golden[0],
            &PlanConfig {
                kind: FaultModelKind::Transient,
                target: Profile::Gpu,
                n_transient: scale.n_transient,
                repeats: 1,
                seed: 1,
            },
        );
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn summarize_counts_outcomes() {
        let scenario = shorten(Scenario::of_kind(ScenarioKind::LeadSlowdown));
        let golden: Vec<RunResult> = (0..2)
            .map(|i| {
                run_experiment(&RunConfig::new(scenario.clone(), AgentMode::RoundRobin, 50 + i))
            })
            .collect();
        let trajs: Vec<&[TrajPoint]> = golden.iter().map(|g| g.trajectory.as_slice()).collect();
        let baseline = mean_trajectory(&trajs);
        let result = CampaignResult {
            campaign: tiny_campaign(FaultModelKind::Transient, Profile::Gpu),
            injected: golden.clone(),
            golden,
            baseline,
        };
        let row = summarize(&result, 2.0);
        assert_eq!(row.total, 2);
        assert_eq!(row.active, 0, "golden runs have no active fault");
        assert_eq!(row.hang_crash + row.accidents + row.traj_violations, 0);
    }

    #[test]
    fn scales_have_sane_ordering() {
        let q = CampaignScale::quick();
        let p = CampaignScale::paper();
        assert!(q.n_transient < p.n_transient);
        assert!(q.golden_runs < p.golden_runs);
        assert_eq!(p.n_transient, 500, "paper's §IV-D transient count");
        assert_eq!(p.permanent_repeats, 3);
        assert_eq!(p.golden_runs, 50);
    }

    #[test]
    fn campaign_display_matches_table_style() {
        let c = tiny_campaign(FaultModelKind::Permanent, Profile::Gpu);
        assert_eq!(c.to_string(), "GPU-permanent LSD [diverseav]");
    }

    #[test]
    fn scenario_for_scales_long_routes() {
        let scale = tiny_scale();
        let s = scenario_for(ScenarioKind::LongRoute(1), &scale);
        assert!(s.duration <= 8.0 + 1e-9);
        let lsd = scenario_for(ScenarioKind::LeadSlowdown, &scale);
        assert_eq!(lsd.kind, ScenarioKind::LeadSlowdown);
    }
}
