//! Sharded, checkpointable campaign execution with a deterministic merge.
//!
//! A campaign's run set — golden runs plus the injection plan — is a pure
//! function of its seeds, so it can be partitioned across machines and
//! reassembled without changing a single bit of the result. This module
//! provides the three pieces:
//!
//! * **Partitioner** — [`unit_shard`] hashes every [`RunUnit`] with the
//!   campaign's [`plan_seed`] through the same SplitMix64 mix the plan
//!   generator uses. The assignment depends only on (plan seed, unit,
//!   shard count): every shard of a campaign computes the identical
//!   partition independently, with no coordination.
//! * **Shard executor** — [`execute_shard`] runs one shard's units in
//!   deterministic batches and appends them to a versioned JSONL artifact.
//!   Each batch commits atomically (runs first, then a batch marker with
//!   cumulative metrics); an interrupted shard resumes at its last
//!   committed batch, and the finished artifact is byte-identical to an
//!   uninterrupted run.
//! * **Merger** — [`merge_artifacts`] validates a set of shard artifacts
//!   (schema version, campaign fingerprint, exactly-once coverage, no
//!   gaps, no overlap) and reassembles the campaign: run results in
//!   engine order, the golden baseline, and metrics folded with the same
//!   commutative operations the monolithic path uses.
//!
//! Every value that reaches an artifact is encoded losslessly (`f64`s as
//! IEEE-754 bit patterns, `u64`s as decimal strings), so a merged
//! campaign is bit-identical to [`run_campaign_cached`] output for any
//! shard count, batch size, thread count, or kill/resume schedule.
//!
//! Runs that end in an *incident* (see
//! [`IncidentKind`](diverseav_runtime::IncidentKind)) additionally flush
//! their flight recording into an **incident sidecar** next to the shard
//! artifact ([`incident_sidecar_path`]): one manifest line plus one
//! [`IncidentRecord`] line per incident, committed at the same batch
//! cadence as the main artifact (sidecar lines land *before* the batch
//! marker, so a kill never commits a batch whose incident payloads are
//! missing). The run line itself carries only the incident label; the
//! merge validates sidecar payloads against those labels exactly-once
//! via [`collect_incidents`].
//!
//! [`run_campaign_cached`]: crate::campaign::run_campaign_cached

use crate::cache::sensor_fingerprint;
use crate::campaign::{
    plan_seed, scenario_for, splitmix64, Campaign, CampaignScale, TableRow, GOLDEN_SEED_BASE,
    INJECTED_SEED_BASE,
};
use crate::exec::{par_map, thread_count};
use crate::outcome::{classify_parts, mean_trajectory, OutcomeClass};
use crate::plan::{generate_plan, PlanConfig};
use crate::runner::{run_experiment, FaultSpec, RunConfig, RunResult};
use diverseav_fabric::FaultModel;
use diverseav_obs::flight::{self, TickRecord};
use diverseav_obs::json::{self, Value};
use diverseav_obs::{metrics, profile, FaultSite, HistSnapshot, TimeSource};
use diverseav_runtime::DeadlineStats;
use diverseav_simworld::{Scenario, SensorConfig, TrajPoint, Vec2};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Version stamped into every shard artifact; bumped whenever the line
/// format changes incompatibly. The merger refuses other versions.
/// v2 added `fault_onset_time` to run lines (sensor-boundary faults).
/// v3 added `incident` to run lines and the incident sidecar.
pub const SHARD_SCHEMA_VERSION: u32 = 3;

/// Everything that can go wrong sharding or merging.
#[derive(Debug)]
pub enum ShardError {
    /// Filesystem failure reading or writing an artifact.
    Io(std::io::Error),
    /// An artifact that is not a shard artifact (bad manifest, wrong
    /// schema version).
    Parse(String),
    /// Valid artifacts that cannot be combined: overlapping or missing
    /// shards, coverage gaps, or mismatched campaign fingerprints.
    Mismatch(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard artifact I/O error: {e}"),
            ShardError::Parse(msg) => write!(f, "shard artifact parse error: {msg}"),
            ShardError::Mismatch(msg) => write!(f, "shard validation error: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// One schedulable run of a campaign.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RunUnit {
    /// Golden (fault-free) run `i`, seed `GOLDEN_SEED_BASE + i`.
    Golden(usize),
    /// Injected run `i` (plan entry `i`), seed `INJECTED_SEED_BASE + i`.
    Injected(usize),
    /// Training run `rep` of long route `route` (partition support for
    /// detector-training campaigns; the campaign executor never
    /// schedules these).
    Training {
        /// Long-route index (0..3).
        route: u8,
        /// Repetition within the route.
        rep: usize,
    },
}

/// Unique 64-bit code of a unit, fed into the partition hash. The tag
/// byte keeps golden/injected/training spaces disjoint.
fn unit_code(unit: RunUnit) -> u64 {
    match unit {
        RunUnit::Golden(i) => (0x47 << 56) | i as u64,
        RunUnit::Injected(i) => (0x49 << 56) | i as u64,
        RunUnit::Training { route, rep } => (0x54 << 56) | ((route as u64) << 32) | rep as u64,
    }
}

/// The shard (`0..shard_count`) that owns `unit` in a campaign with the
/// given plan seed. A pure function — every participant computes the
/// same partition — and statistically balanced via SplitMix64.
pub fn unit_shard(plan_seed: u64, unit: RunUnit, shard_count: usize) -> usize {
    (splitmix64(plan_seed ^ unit_code(unit)) % shard_count.max(1) as u64) as usize
}

/// The full run set of a campaign, in engine order (golden-major).
pub fn campaign_units(golden_runs: usize, injected_runs: usize) -> Vec<RunUnit> {
    (0..golden_runs).map(RunUnit::Golden).chain((0..injected_runs).map(RunUnit::Injected)).collect()
}

/// The run set of a training-collection campaign: 3 long routes ×
/// `training_runs` repetitions, route-major.
pub fn training_units(training_runs: usize) -> Vec<RunUnit> {
    (0..3u8)
        .flat_map(|route| (0..training_runs).map(move |rep| RunUnit::Training { route, rep }))
        .collect()
}

/// Fingerprint of everything that determines a campaign's run set:
/// the plan seed (all campaign discriminants), the scale, the profiling
/// time source, and every sensor-config bit. Shards may only merge when
/// their fingerprints agree — otherwise they were cut from different
/// campaigns and their union is meaningless.
pub fn campaign_fingerprint(
    campaign: &Campaign,
    scale: &CampaignScale,
    sensor: &SensorConfig,
) -> u64 {
    let source_code: u64 = match profile::source() {
        TimeSource::Modeled => 1,
        TimeSource::Wall => 2,
        TimeSource::Off => 3,
    };
    let words = [
        plan_seed(campaign),
        scale.n_transient as u64,
        scale.permanent_repeats as u64,
        scale.golden_runs as u64,
        scale.long_route_duration.to_bits(),
        scale.training_runs as u64,
        source_code,
    ];
    let mut fp = 0xD1CE ^ SHARD_SCHEMA_VERSION as u64;
    for w in words.into_iter().chain(sensor_fingerprint(sensor)) {
        fp = splitmix64(fp ^ w);
    }
    fp
}

/// Label of the active profiling time source, recorded in the manifest.
fn profile_source_label() -> &'static str {
    match profile::source() {
        TimeSource::Modeled => "modeled",
        TimeSource::Wall => "wall",
        TimeSource::Off => "off",
    }
}

/// Which shard of how many.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index (`0..count`).
    pub index: usize,
    /// Total shard count.
    pub count: usize,
}

impl ShardSpec {
    /// Reject impossible specs (`count == 0`, `index >= count`).
    pub fn validate(&self) -> Result<(), ShardError> {
        if self.count == 0 {
            Err(ShardError::Mismatch("shard count must be at least 1".to_string()))
        } else if self.index >= self.count {
            Err(ShardError::Mismatch(format!(
                "shard index {} out of range for {} shards",
                self.index, self.count
            )))
        } else {
            Ok(())
        }
    }
}

/// One shard of one campaign: everything [`execute_shard`] needs.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// The campaign being sharded.
    pub campaign: Campaign,
    /// Experiment scale (must match across all shards).
    pub scale: CampaignScale,
    /// Sensor configuration (must match across all shards).
    pub sensor: SensorConfig,
    /// Which shard this is.
    pub spec: ShardSpec,
    /// Runs per checkpoint batch (clamped to ≥ 1). The checkpoint
    /// granularity only — results are independent of it.
    pub batch_size: usize,
}

/// One run's results, flattened for the shard artifact. Every field a
/// [`RunResult`] contributes to Table I, the journal, or the merged
/// metrics — encoded losslessly so the merge is bit-exact.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardRun {
    /// `"golden"` or `"injected"`.
    pub kind: String,
    /// Engine index within its kind.
    pub index: usize,
    /// The run seed (validated against the engine's seed law on merge).
    pub seed: u64,
    /// `Termination::label()` of the run.
    pub outcome: String,
    /// Simulation time reached.
    pub end_time: f64,
    /// Collision time, if the ego collided.
    pub collision_time: Option<f64>,
    /// Detector alarm time, if raised.
    pub alarm_time: Option<f64>,
    /// Whether the fault corrupted at least one register or frame.
    pub fault_activated: bool,
    /// First corrupted-frame time for sensor faults (`None` otherwise).
    pub fault_onset_time: Option<f64>,
    /// Minimum CVIP distance over the run.
    pub min_cvip: f64,
    /// Red lights crossed against a stop demand.
    pub red_light_violations: u32,
    /// Simulation ticks executed.
    pub ticks: u64,
    /// Ticks over the 25 ms control budget.
    pub deadline_misses: u64,
    /// [`IncidentKind`](diverseav_runtime::IncidentKind) label when the
    /// run flushed its flight recording (`None` for unremarkable runs).
    /// The payload itself lives in the incident sidecar.
    pub incident: Option<String>,
    /// Injection site, if any.
    pub fault: Option<FaultSite>,
    /// Recorded ego trajectory.
    pub trajectory: Vec<TrajPoint>,
}

impl ShardRun {
    /// Flatten a live [`RunResult`] (same fault-site mapping as the
    /// run journal's [`run_record`](crate::runner::run_record)).
    pub fn from_result(kind: &str, index: usize, r: &RunResult) -> Self {
        let fault = r.fault.map(|f| match f {
            FaultSpec::Fabric { unit, profile, model } => {
                let (model, cycle, op, mask) = match model {
                    FaultModel::Transient { instr_index, mask } => {
                        ("transient", Some(instr_index), None, mask)
                    }
                    FaultModel::Permanent { op, mask } => {
                        ("permanent", None, Some(op.to_string()), mask)
                    }
                };
                FaultSite {
                    profile: profile.to_string(),
                    unit,
                    model: model.to_string(),
                    mask,
                    cycle,
                    op,
                }
            }
            // Sensor faults ride shard schema v1 unchanged: realization
            // seed in `cycle`, class label in `op`. Onset time is a pure
            // function of the seed, so the artifact need not carry it.
            FaultSpec::Sensor(sf) => FaultSite {
                profile: "SENSOR".to_string(),
                unit: 0,
                model: "sensor".to_string(),
                mask: 0,
                cycle: Some(sf.seed),
                op: Some(sf.kind.label().to_string()),
            },
        });
        ShardRun {
            kind: kind.to_string(),
            index,
            seed: r.seed,
            outcome: r.termination.label().to_string(),
            end_time: r.end_time,
            collision_time: r.collision_time,
            alarm_time: r.alarm_time,
            fault_activated: r.fault_activated,
            fault_onset_time: r.fault_onset_time,
            min_cvip: r.min_cvip,
            red_light_violations: r.red_light_violations,
            ticks: r.ticks,
            deadline_misses: r.deadline_misses,
            incident: r.incident.map(|k| k.label().to_string()),
            fault,
            trajectory: r.trajectory.clone(),
        }
    }

    /// Render as one artifact line within batch `batch`.
    pub fn render_line(&self, batch: usize) -> String {
        let fault = match &self.fault {
            None => "null".to_string(),
            Some(f) => format!(
                "{{\"profile\": \"{}\", \"unit\": {}, \"model\": \"{}\", \"mask\": {}, \
                 \"cycle\": {}, \"op\": {}}}",
                json::escape(&f.profile),
                f.unit,
                json::escape(&f.model),
                f.mask,
                f.cycle.map(json::u64_str).unwrap_or_else(|| "null".to_string()),
                json::opt_str(f.op.as_deref()),
            ),
        };
        let traj: Vec<String> = self
            .trajectory
            .iter()
            .map(|p| {
                format!(
                    "\"{:016x}:{:016x}:{:016x}\"",
                    p.t.to_bits(),
                    p.pos.x.to_bits(),
                    p.pos.y.to_bits()
                )
            })
            .collect();
        let mut s = String::with_capacity(256 + traj.len() * 56);
        s.push_str(&format!(
            "{{\"type\": \"shard_run\", \"batch\": {batch}, \"kind\": \"{}\", \
             \"index\": {}, \"seed\": {}, \"outcome\": \"{}\", ",
            json::escape(&self.kind),
            self.index,
            self.seed,
            json::escape(&self.outcome),
        ));
        s.push_str(&format!(
            "\"end_time\": {}, \"collision_time\": {}, \"alarm_time\": {}, \
             \"fault_activated\": {}, \"fault_onset_time\": {}, \"min_cvip\": {}, \
             \"red_light_violations\": {}, ",
            json::f64_bits(self.end_time),
            json::opt_f64_bits(self.collision_time),
            json::opt_f64_bits(self.alarm_time),
            self.fault_activated,
            json::opt_f64_bits(self.fault_onset_time),
            json::f64_bits(self.min_cvip),
            self.red_light_violations,
        ));
        s.push_str(&format!(
            "\"ticks\": {}, \"deadline_misses\": {}, \"incident\": {}, \
             \"fault\": {fault}, \"trajectory\": [{}]}}",
            json::u64_str(self.ticks),
            json::u64_str(self.deadline_misses),
            json::opt_str(self.incident.as_deref()),
            traj.join(", "),
        ));
        s
    }

    /// Parse a line rendered by [`render_line`]; returns `(batch, run)`.
    pub fn parse(v: &Value) -> Result<(usize, ShardRun), String> {
        let batch = req_usize(v, "batch")?;
        let fault = match req(v, "fault")? {
            Value::Null => None,
            f => {
                let cycle = match req(f, "cycle")? {
                    Value::Null => None,
                    c => Some(json::parse_u64_str(c)?),
                };
                let op = match req(f, "op")? {
                    Value::Null => None,
                    o => Some(o.as_str().ok_or("fault op must be a string")?.to_string()),
                };
                Some(FaultSite {
                    profile: req_str(f, "profile")?,
                    unit: req_usize(f, "unit")?,
                    model: req_str(f, "model")?,
                    mask: req_usize(f, "mask")? as u32,
                    cycle,
                    op,
                })
            }
        };
        let traj_val = req(v, "trajectory")?.as_arr().ok_or("trajectory must be an array")?;
        let mut trajectory = Vec::with_capacity(traj_val.len());
        for p in traj_val {
            let s = p.as_str().ok_or("trajectory points must be strings")?;
            let mut parts = s.split(':');
            let mut next_bits = || -> Result<f64, String> {
                let part = parts.next().ok_or_else(|| format!("bad trajectory point {s:?}"))?;
                if part.len() != 16 {
                    return Err(format!("bad trajectory point {s:?}"));
                }
                u64::from_str_radix(part, 16)
                    .map(f64::from_bits)
                    .map_err(|e| format!("bad trajectory point {s:?}: {e}"))
            };
            let (t, x, y) = (next_bits()?, next_bits()?, next_bits()?);
            if parts.next().is_some() {
                return Err(format!("bad trajectory point {s:?}"));
            }
            trajectory.push(TrajPoint { t, pos: Vec2 { x, y } });
        }
        Ok((
            batch,
            ShardRun {
                kind: req_str(v, "kind")?,
                index: req_usize(v, "index")?,
                seed: req_usize(v, "seed")? as u64,
                outcome: req_str(v, "outcome")?,
                end_time: req_f64_bits(v, "end_time")?,
                collision_time: opt_f64_bits_member(v, "collision_time")?,
                alarm_time: opt_f64_bits_member(v, "alarm_time")?,
                fault_activated: req_bool(v, "fault_activated")?,
                fault_onset_time: opt_f64_bits_member(v, "fault_onset_time")?,
                min_cvip: req_f64_bits(v, "min_cvip")?,
                red_light_violations: req_usize(v, "red_light_violations")? as u32,
                ticks: req_u64_str(v, "ticks")?,
                deadline_misses: req_u64_str(v, "deadline_misses")?,
                incident: opt_str_member(v, "incident")?,
                fault,
                trajectory,
            },
        ))
    }
}

/// Prefixes of the process-global metrics a shard is accountable for:
/// everything the simulation runs themselves produce. Campaign-level
/// phases and cache counters belong to the orchestrator, not the shard.
const COUNTER_PREFIXES: [&str; 3] = ["runtime.", "deadline.", "runner."];
const GAUGE_PREFIXES: [&str; 1] = ["deadline."];
const HIST_PREFIXES: [&str; 1] = ["tick."];

/// The slice of the process-global metrics registry attributable to one
/// shard's runs. All three maps merge with commutative, associative
/// operations (sum / max / histogram absorb), so folding shard slices in
/// any order reproduces the monolithic registry contents exactly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSlice {
    /// Counter deltas (zero deltas omitted).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values (all shard-scope gauges are running maxima).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram contributions.
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl MetricsSlice {
    /// Snapshot the shard-scope subset of the global registry.
    pub fn capture() -> Self {
        let snap = metrics::snapshot();
        MetricsSlice {
            counters: snap
                .counters
                .into_iter()
                .filter(|(k, _)| COUNTER_PREFIXES.iter().any(|p| k.starts_with(p)))
                .collect(),
            gauges: snap
                .gauges
                .into_iter()
                .filter(|(k, _)| GAUGE_PREFIXES.iter().any(|p| k.starts_with(p)))
                .collect(),
            hists: snap
                .hists
                .into_iter()
                .filter(|(k, _)| HIST_PREFIXES.iter().any(|p| k.starts_with(p)))
                .collect(),
        }
    }

    /// Contribution between `base` (captured earlier) and `self`
    /// (captured later): counters subtract (zero deltas dropped so key
    /// sets match the monolithic render), histogram counts and sums
    /// subtract (empty histograms dropped, the later max kept), gauges
    /// keep the later value — every shard-scope gauge is a running max,
    /// and maxima cannot be subtracted, only re-maxed on merge.
    pub fn delta(&self, base: &MetricsSlice) -> MetricsSlice {
        let mut counters = BTreeMap::new();
        for (k, v) in &self.counters {
            let d = v.saturating_sub(base.counters.get(k).copied().unwrap_or(0));
            if d > 0 {
                counters.insert(k.clone(), d);
            }
        }
        let mut hists = BTreeMap::new();
        for (k, snap) in &self.hists {
            let mut out = snap.clone();
            if let Some(b) = base.hists.get(k) {
                for (i, c) in b.sparse() {
                    if i < out.buckets.len() {
                        out.buckets[i] = out.buckets[i].saturating_sub(c);
                    }
                }
                out.sum = out.sum.saturating_sub(b.sum);
            }
            if out.count() > 0 {
                hists.insert(k.clone(), out);
            }
        }
        MetricsSlice { counters, gauges: self.gauges.clone(), hists }
    }

    /// Fold in another slice: counters add, gauges take the max,
    /// histograms absorb (bucket-wise add, max of maxima).
    pub fn add(&mut self, other: &MetricsSlice) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(*v);
            if *v > *slot {
                *slot = *v;
            }
        }
        for (k, h) in &other.hists {
            match self.hists.get_mut(k) {
                Some(mine) => mine.absorb(h),
                None => {
                    self.hists.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Render the three maps as JSON object members (losslessly: u64s as
    /// decimal strings, f64s as bit patterns, histograms sparse).
    fn render_fields(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\": {}", json::escape(k), json::u64_str(*v)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\": {}", json::escape(k), json::f64_bits(*v)))
            .collect();
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|(k, h)| {
                let pairs: Vec<String> = h
                    .sparse()
                    .iter()
                    .map(|(i, c)| format!("[{}, {}]", i, json::u64_str(*c)))
                    .collect();
                format!(
                    "\"{}\": {{\"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
                    json::escape(k),
                    json::u64_str(h.sum),
                    json::u64_str(h.max),
                    pairs.join(", ")
                )
            })
            .collect();
        format!(
            "\"counters\": {{{}}}, \"gauges\": {{{}}}, \"hists\": {{{}}}",
            counters.join(", "),
            gauges.join(", "),
            hists.join(", ")
        )
    }

    /// Parse the members rendered by [`Self::render_fields`].
    fn parse_fields(v: &Value) -> Result<MetricsSlice, String> {
        let mut out = MetricsSlice::default();
        for (k, val) in req(v, "counters")?.as_obj().ok_or("counters must be an object")? {
            out.counters.insert(k.clone(), json::parse_u64_str(val)?);
        }
        for (k, val) in req(v, "gauges")?.as_obj().ok_or("gauges must be an object")? {
            out.gauges.insert(k.clone(), json::parse_f64_bits(val)?);
        }
        for (k, val) in req(v, "hists")?.as_obj().ok_or("hists must be an object")? {
            let sum = req_u64_str(val, "sum")?;
            let max = req_u64_str(val, "max")?;
            let arr = req(val, "buckets")?.as_arr().ok_or("buckets must be an array")?;
            let mut pairs = Vec::with_capacity(arr.len());
            for p in arr {
                let pair = p.as_arr().filter(|a| a.len() == 2);
                let pair = pair.ok_or("bucket entries must be [index, count] pairs")?;
                let i = pair[0].as_f64().ok_or("bucket index must be a number")?;
                pairs.push((i as usize, json::parse_u64_str(&pair[1])?));
            }
            out.hists.insert(k.clone(), HistSnapshot::from_sparse(&pairs, sum, max)?);
        }
        Ok(out)
    }
}

/// First line of every shard artifact: identity and shape.
///
/// On resume, the executor recomputes this manifest and requires exact
/// equality with the one on disk — a checkpoint can only be continued by
/// the identical configuration that started it.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest {
    /// Artifact format version ([`SHARD_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// [`campaign_fingerprint`] of the campaign.
    pub fingerprint: u64,
    /// The campaign's injection-plan seed.
    pub plan_seed: u64,
    /// Campaign display label (e.g. `"GPU-transient LSD [diverseav]"`).
    pub campaign: String,
    /// Scenario abbreviation (the Table-I "DS" column).
    pub scenario: String,
    /// Full scenario name (the journal's scenario field).
    pub scenario_name: String,
    /// Injection target (`"GPU"` / `"CPU"`).
    pub target: String,
    /// Fault-model kind (`"transient"` / `"permanent"`).
    pub kind: String,
    /// Agent mode label.
    pub mode: String,
    /// Profiling time source active when the shard ran.
    pub profile_source: String,
    /// This shard's index.
    pub shard_index: usize,
    /// Total shard count.
    pub shard_count: usize,
    /// Checkpoint batch size.
    pub batch_size: usize,
    /// Golden runs in the whole campaign.
    pub golden_runs: usize,
    /// Injected runs in the whole campaign (the plan length).
    pub injected_runs: usize,
    /// Units assigned to this shard by the partitioner.
    pub assigned_runs: usize,
}

impl ShardManifest {
    /// Render as the artifact's first line.
    pub fn render(&self) -> String {
        format!(
            "{{\"type\": \"shard_manifest\", \"schema_version\": {}, \
             \"fingerprint\": \"{:016x}\", \"plan_seed\": \"{:016x}\", \
             \"campaign\": \"{}\", \"scenario\": \"{}\", \"scenario_name\": \"{}\", \
             \"target\": \"{}\", \"kind\": \"{}\", \"mode\": \"{}\", \
             \"profile_source\": \"{}\", \"shard_index\": {}, \"shard_count\": {}, \
             \"batch_size\": {}, \"golden_runs\": {}, \"injected_runs\": {}, \
             \"assigned_runs\": {}}}",
            self.schema_version,
            self.fingerprint,
            self.plan_seed,
            json::escape(&self.campaign),
            json::escape(&self.scenario),
            json::escape(&self.scenario_name),
            json::escape(&self.target),
            json::escape(&self.kind),
            json::escape(&self.mode),
            json::escape(&self.profile_source),
            self.shard_index,
            self.shard_count,
            self.batch_size,
            self.golden_runs,
            self.injected_runs,
            self.assigned_runs,
        )
    }

    /// Parse a manifest line; rejects wrong types and schema versions.
    pub fn parse(v: &Value) -> Result<ShardManifest, String> {
        let ty = req_str(v, "type")?;
        if ty != "shard_manifest" {
            return Err(format!("not a shard manifest (type {ty:?})"));
        }
        let schema_version = req_usize(v, "schema_version")? as u32;
        if schema_version != SHARD_SCHEMA_VERSION {
            return Err(format!(
                "unsupported shard schema version {schema_version} \
                 (this build reads version {SHARD_SCHEMA_VERSION})"
            ));
        }
        Ok(ShardManifest {
            schema_version,
            fingerprint: req_hex64(v, "fingerprint")?,
            plan_seed: req_hex64(v, "plan_seed")?,
            campaign: req_str(v, "campaign")?,
            scenario: req_str(v, "scenario")?,
            scenario_name: req_str(v, "scenario_name")?,
            target: req_str(v, "target")?,
            kind: req_str(v, "kind")?,
            mode: req_str(v, "mode")?,
            profile_source: req_str(v, "profile_source")?,
            shard_index: req_usize(v, "shard_index")?,
            shard_count: req_usize(v, "shard_count")?,
            batch_size: req_usize(v, "batch_size")?,
            golden_runs: req_usize(v, "golden_runs")?,
            injected_runs: req_usize(v, "injected_runs")?,
            assigned_runs: req_usize(v, "assigned_runs")?,
        })
    }
}

/// One committed checkpoint batch.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchMark {
    /// Batch index (sequential from 0).
    pub batch: usize,
    /// Wall-clock seconds this batch took (informational; excluded from
    /// all bit-exactness guarantees).
    pub wall_secs: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Cumulative [`MetricsSlice`] of all batches up to and including
    /// this one.
    pub metrics: MetricsSlice,
}

impl BatchMark {
    fn parse(v: &Value) -> Result<BatchMark, String> {
        Ok(BatchMark {
            batch: req_usize(v, "batch")?,
            wall_secs: req(v, "wall_secs")?.as_f64().unwrap_or(0.0),
            threads: req_usize(v, "threads")?,
            metrics: MetricsSlice::parse_fields(v)?,
        })
    }
}

/// A parsed shard artifact: the committed prefix of the file.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardArtifact {
    /// The manifest line.
    pub manifest: ShardManifest,
    /// Runs of committed batches, in file (= engine) order.
    pub runs: Vec<ShardRun>,
    /// Committed batch markers, in order.
    pub batches: Vec<BatchMark>,
    /// Whether the `shard_done` footer was present.
    pub complete: bool,
    /// Lines in the committed prefix (manifest + committed batches),
    /// used by the resume path to truncate a torn tail.
    pub committed_lines: usize,
}

impl ShardArtifact {
    /// Cumulative metrics slice of the last committed batch.
    pub fn metrics(&self) -> MetricsSlice {
        self.batches.last().map(|b| b.metrics.clone()).unwrap_or_default()
    }
}

/// Parse a shard artifact.
///
/// The manifest line must parse and carry the supported schema version;
/// after that, parsing is *lenient at the tail*: the first malformed or
/// out-of-sequence line — a torn write from a killed shard — truncates
/// the artifact at the last committed batch. Run lines not yet sealed by
/// their batch marker are discarded (their batch will re-run on resume).
pub fn parse_artifact(text: &str) -> Result<ShardArtifact, ShardError> {
    let mut lines = text.lines();
    let first = lines.next().ok_or_else(|| ShardError::Parse("empty artifact".to_string()))?;
    let mv = json::parse(first).map_err(|e| ShardError::Parse(format!("manifest line: {e}")))?;
    let manifest = ShardManifest::parse(&mv).map_err(ShardError::Parse)?;
    let mut runs = Vec::new();
    let mut pending: Vec<ShardRun> = Vec::new();
    let mut batches: Vec<BatchMark> = Vec::new();
    let mut complete = false;
    let mut committed_lines = 1usize;
    let mut line_no = 1usize;
    for line in lines {
        line_no += 1;
        let Ok(v) = json::parse(line) else { break };
        let Some(ty) = v.get("type").and_then(Value::as_str) else { break };
        match ty {
            "shard_run" => {
                let Ok((batch, run)) = ShardRun::parse(&v) else { break };
                if batch != batches.len() {
                    break;
                }
                pending.push(run);
            }
            "shard_batch" => {
                let Ok(mark) = BatchMark::parse(&v) else { break };
                if mark.batch != batches.len() {
                    break;
                }
                runs.append(&mut pending);
                batches.push(mark);
                committed_lines = line_no;
            }
            "shard_done" => {
                if pending.is_empty() {
                    complete = true;
                    committed_lines = line_no;
                }
                break;
            }
            _ => break,
        }
    }
    Ok(ShardArtifact { manifest, runs, batches, complete, committed_lines })
}

// -- incident sidecar -------------------------------------------------------

/// Where a shard keeps its incident payloads: `<artifact>.incidents.jsonl`
/// next to the shard artifact (`runs.jsonl` -> `runs.incidents.jsonl`).
pub fn incident_sidecar_path(artifact: &Path) -> PathBuf {
    artifact.with_extension("incidents.jsonl")
}

/// First line of an incident sidecar: which shard of which campaign the
/// payloads belong to, under which record encoding.
#[derive(Clone, Debug, PartialEq)]
pub struct IncidentManifest {
    /// Flight-record encoding version
    /// ([`FLIGHT_SCHEMA_VERSION`](diverseav_obs::flight::FLIGHT_SCHEMA_VERSION)).
    pub flight_schema_version: u32,
    /// Shard artifact version the sidecar rides along with.
    pub shard_schema_version: u32,
    /// [`campaign_fingerprint`] of the campaign.
    pub fingerprint: u64,
    /// The campaign's injection-plan seed.
    pub plan_seed: u64,
    /// This shard's index.
    pub shard_index: usize,
    /// Total shard count.
    pub shard_count: usize,
}

impl IncidentManifest {
    /// The sidecar manifest matching a shard manifest.
    pub fn for_shard(m: &ShardManifest) -> IncidentManifest {
        IncidentManifest {
            flight_schema_version: flight::FLIGHT_SCHEMA_VERSION,
            shard_schema_version: m.schema_version,
            fingerprint: m.fingerprint,
            plan_seed: m.plan_seed,
            shard_index: m.shard_index,
            shard_count: m.shard_count,
        }
    }

    /// Render as the sidecar's first line.
    pub fn render(&self) -> String {
        format!(
            "{{\"type\": \"incident_manifest\", \"flight_schema_version\": {}, \
             \"shard_schema_version\": {}, \"fingerprint\": \"{:016x}\", \
             \"plan_seed\": \"{:016x}\", \"shard_index\": {}, \"shard_count\": {}}}",
            self.flight_schema_version,
            self.shard_schema_version,
            self.fingerprint,
            self.plan_seed,
            self.shard_index,
            self.shard_count,
        )
    }

    /// Parse a sidecar manifest line; rejects wrong types and versions.
    pub fn parse(v: &Value) -> Result<IncidentManifest, String> {
        let ty = req_str(v, "type")?;
        if ty != "incident_manifest" {
            return Err(format!("not an incident manifest (type {ty:?})"));
        }
        let flight_schema_version = req_usize(v, "flight_schema_version")? as u32;
        if flight_schema_version != flight::FLIGHT_SCHEMA_VERSION {
            return Err(format!(
                "unsupported flight schema version {flight_schema_version} \
                 (this build reads version {})",
                flight::FLIGHT_SCHEMA_VERSION
            ));
        }
        let shard_schema_version = req_usize(v, "shard_schema_version")? as u32;
        if shard_schema_version != SHARD_SCHEMA_VERSION {
            return Err(format!(
                "unsupported shard schema version {shard_schema_version} \
                 (this build reads version {SHARD_SCHEMA_VERSION})"
            ));
        }
        Ok(IncidentManifest {
            flight_schema_version,
            shard_schema_version,
            fingerprint: req_hex64(v, "fingerprint")?,
            plan_seed: req_hex64(v, "plan_seed")?,
            shard_index: req_usize(v, "shard_index")?,
            shard_count: req_usize(v, "shard_count")?,
        })
    }
}

/// One incident's flushed flight recording, flattened for the sidecar:
/// enough run identity to join it back to its shard-run line, the
/// detection timeline inputs forensics needs, and the drained ring.
#[derive(Clone, Debug, PartialEq)]
pub struct IncidentRecord {
    /// `"golden"` or `"injected"`.
    pub kind: String,
    /// Engine index within its kind.
    pub index: usize,
    /// The run seed (validated against the engine's seed law on merge).
    pub seed: u64,
    /// [`IncidentKind`](diverseav_runtime::IncidentKind) label.
    pub incident: String,
    /// Fault-class label (sensor class, `"transient"` / `"permanent"`
    /// for fabric faults, `None` for golden runs).
    pub fault_class: Option<String>,
    /// First corrupted-frame/register time, if the fault activated.
    pub fault_onset_time: Option<f64>,
    /// Detector alarm time, if raised.
    pub alarm_time: Option<f64>,
    /// The drained flight ring, oldest record first.
    pub flight: Vec<TickRecord>,
}

impl IncidentRecord {
    /// Flatten a live [`RunResult`]'s incident, if it had one.
    pub fn from_result(kind: &str, index: usize, r: &RunResult) -> Option<IncidentRecord> {
        let incident = r.incident?;
        let fault_class = r.fault.map(|f| match f {
            FaultSpec::Fabric { model: FaultModel::Transient { .. }, .. } => {
                "transient".to_string()
            }
            FaultSpec::Fabric { model: FaultModel::Permanent { .. }, .. } => {
                "permanent".to_string()
            }
            FaultSpec::Sensor(sf) => sf.kind.label().to_string(),
        });
        Some(IncidentRecord {
            kind: kind.to_string(),
            index,
            seed: r.seed,
            incident: incident.label().to_string(),
            fault_class,
            fault_onset_time: r.fault_onset_time,
            alarm_time: r.alarm_time,
            flight: r.flight.clone(),
        })
    }

    fn render_fields(&self) -> String {
        let records: Vec<String> = self.flight.iter().map(flight::render_record).collect();
        format!(
            "\"kind\": \"{}\", \"index\": {}, \"seed\": {}, \"incident\": \"{}\", \
             \"fault_class\": {}, \"fault_onset_time\": {}, \"alarm_time\": {}, \
             \"flight\": [{}]",
            json::escape(&self.kind),
            self.index,
            self.seed,
            json::escape(&self.incident),
            json::opt_str(self.fault_class.as_deref()),
            json::opt_f64_bits(self.fault_onset_time),
            json::opt_f64_bits(self.alarm_time),
            records.join(", "),
        )
    }

    /// Render as one sidecar line within batch `batch`.
    pub fn render_line(&self, batch: usize) -> String {
        format!("{{\"type\": \"incident\", \"batch\": {batch}, {}}}", self.render_fields())
    }

    /// Render without the shard-local batch tag (merged incident sets).
    pub fn render_merged(&self) -> String {
        format!("{{\"type\": \"incident\", {}}}", self.render_fields())
    }

    /// Parse a line rendered by [`Self::render_line`] or
    /// [`Self::render_merged`]; returns `(batch, record)` with batch 0
    /// for merged lines.
    pub fn parse(v: &Value) -> Result<(usize, IncidentRecord), String> {
        let batch = if v.get("batch").is_some() { req_usize(v, "batch")? } else { 0 };
        let arr = req(v, "flight")?.as_arr().ok_or("flight must be an array")?;
        let mut records = Vec::with_capacity(arr.len());
        for rv in arr {
            records.push(flight::parse_record(rv)?);
        }
        Ok((
            batch,
            IncidentRecord {
                kind: req_str(v, "kind")?,
                index: req_usize(v, "index")?,
                seed: req_usize(v, "seed")? as u64,
                incident: req_str(v, "incident")?,
                fault_class: opt_str_member(v, "fault_class")?,
                fault_onset_time: opt_f64_bits_member(v, "fault_onset_time")?,
                alarm_time: opt_f64_bits_member(v, "alarm_time")?,
                flight: records,
            },
        ))
    }
}

/// A parsed incident sidecar.
#[derive(Clone, Debug, PartialEq)]
pub struct IncidentArtifact {
    /// The manifest line.
    pub manifest: IncidentManifest,
    /// `(batch, record)` pairs in file order.
    pub records: Vec<(usize, IncidentRecord)>,
    /// Whether the `incidents_done` footer was present.
    pub complete: bool,
}

/// Parse an incident sidecar. Like [`parse_artifact`], the manifest must
/// parse; after that the first malformed line — a torn write — truncates
/// the file (the resume path drops records of uncommitted batches).
pub fn parse_incident_artifact(text: &str) -> Result<IncidentArtifact, ShardError> {
    let mut lines = text.lines();
    let first =
        lines.next().ok_or_else(|| ShardError::Parse("empty incident sidecar".to_string()))?;
    let mv =
        json::parse(first).map_err(|e| ShardError::Parse(format!("incident manifest: {e}")))?;
    let manifest = IncidentManifest::parse(&mv).map_err(ShardError::Parse)?;
    let mut records = Vec::new();
    let mut complete = false;
    for line in lines {
        let Ok(v) = json::parse(line) else { break };
        match v.get("type").and_then(Value::as_str) {
            Some("incident") => {
                let Ok(pair) = IncidentRecord::parse(&v) else { break };
                records.push(pair);
            }
            Some("incidents_done") => {
                complete = true;
                break;
            }
            _ => break,
        }
    }
    Ok(IncidentArtifact { manifest, records, complete })
}

/// What [`execute_shard`] did.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardStatus {
    /// Total checkpoint batches in this shard.
    pub total_batches: usize,
    /// Batches adopted from an existing checkpoint.
    pub resumed_batches: usize,
    /// Batches executed by this invocation.
    pub executed_batches: usize,
    /// Units the partitioner assigned to this shard.
    pub assigned_runs: usize,
    /// Whether the shard is finished (footer written).
    pub complete: bool,
}

/// Build a run configuration exactly as the monolithic campaign path
/// does (no detector, no trace collection — the sharded path covers
/// fault-propagation campaigns).
fn run_cfg(
    cfg: &ShardConfig,
    scenario: &Scenario,
    seed: u64,
    fault: Option<FaultSpec>,
) -> RunConfig {
    let mut rc = RunConfig::new(scenario.clone(), cfg.campaign.mode, seed);
    rc.sensor = cfg.sensor;
    rc.fault = fault;
    rc
}

fn shard_manifest(
    cfg: &ShardConfig,
    scenario: &Scenario,
    golden_runs: usize,
    injected_runs: usize,
    assigned_runs: usize,
) -> ShardManifest {
    ShardManifest {
        schema_version: SHARD_SCHEMA_VERSION,
        fingerprint: campaign_fingerprint(&cfg.campaign, &cfg.scale, &cfg.sensor),
        plan_seed: plan_seed(&cfg.campaign),
        campaign: cfg.campaign.to_string(),
        scenario: cfg.campaign.scenario.abbrev().to_string(),
        scenario_name: scenario.name.to_string(),
        target: cfg.campaign.target.to_string(),
        kind: cfg.campaign.kind.label().to_string(),
        mode: cfg.campaign.mode.to_string(),
        profile_source: profile_source_label().to_string(),
        shard_index: cfg.spec.index,
        shard_count: cfg.spec.count,
        batch_size: cfg.batch_size.max(1),
        golden_runs,
        injected_runs,
        assigned_runs,
    }
}

/// Execute one shard of a campaign, writing (or resuming) the artifact
/// at `path`. See [`execute_shard_limited`] for the mechanics.
pub fn execute_shard(cfg: &ShardConfig, path: &Path) -> Result<ShardStatus, ShardError> {
    execute_shard_limited(cfg, path, None)
}

/// [`execute_shard`] with an optional cap on newly executed batches —
/// the test hook for interrupting a shard at a checkpoint boundary
/// (`Some(1)` behaves like a kill after the first commit).
///
/// If `path` holds a compatible checkpoint, committed batches are
/// adopted verbatim and execution continues at the first uncommitted
/// batch; a torn tail (killed mid-batch) is truncated. An artifact from
/// a *different* configuration (any manifest field differs) is refused,
/// never overwritten.
pub fn execute_shard_limited(
    cfg: &ShardConfig,
    path: &Path,
    max_new_batches: Option<usize>,
) -> Result<ShardStatus, ShardError> {
    cfg.spec.validate()?;
    let scenario = scenario_for(cfg.campaign.scenario, &cfg.scale);
    let golden_runs = cfg.scale.golden_runs.max(1);
    let seed = plan_seed(&cfg.campaign);

    // The profiling pass is golden run 0, re-run by every shard process
    // because it sizes the injection plan. Its metric contribution is
    // bracketed so it is charged exactly once — by the shard that owns
    // Golden(0), in the batch that commits it.
    let s0 = MetricsSlice::capture();
    let profile_run = run_experiment(&run_cfg(cfg, &scenario, GOLDEN_SEED_BASE, None));
    let s1 = MetricsSlice::capture();
    let profiling_slice = s1.delta(&s0);

    let plan = generate_plan(
        &profile_run,
        &PlanConfig {
            kind: cfg.campaign.kind,
            target: cfg.campaign.target,
            n_transient: cfg.scale.n_transient,
            repeats: cfg.scale.permanent_repeats,
            seed,
        },
    );
    let units: Vec<RunUnit> = campaign_units(golden_runs, plan.len())
        .into_iter()
        .filter(|u| unit_shard(seed, *u, cfg.spec.count) == cfg.spec.index)
        .collect();
    let batch_size = cfg.batch_size.max(1);
    let total_batches = units.len().div_ceil(batch_size);
    let manifest = shard_manifest(cfg, &scenario, golden_runs, plan.len(), units.len());

    // Resume from an existing checkpoint when one is present.
    let mut done_batches = 0usize;
    let mut cumulative = MetricsSlice::default();
    let mut prefix = format!("{}\n", manifest.render());
    if path.exists() {
        let text = fs::read_to_string(path)?;
        if !text.trim().is_empty() {
            let art = parse_artifact(&text)?;
            if art.manifest != manifest {
                return Err(ShardError::Mismatch(format!(
                    "checkpoint at {} was written by a different shard configuration; \
                     refusing to resume over it",
                    path.display()
                )));
            }
            if art.complete {
                return Ok(ShardStatus {
                    total_batches,
                    resumed_batches: art.batches.len(),
                    executed_batches: 0,
                    assigned_runs: units.len(),
                    complete: true,
                });
            }
            done_batches = art.batches.len();
            cumulative = art.metrics();
            prefix = text.lines().take(art.committed_lines).fold(
                String::with_capacity(text.len()),
                |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                },
            );
        }
    }

    // The incident sidecar resumes in lockstep with the main artifact:
    // a committed batch's payloads are retained, anything later (a torn
    // write, or lines from a batch that will re-run) is dropped. A shard
    // with committed batches but no readable, matching sidecar cannot be
    // resumed — its incident payloads are gone.
    let inc_path = incident_sidecar_path(path);
    let inc_manifest = IncidentManifest::for_shard(&manifest);
    let mut inc_prefix = format!("{}\n", inc_manifest.render());
    let mut incident_count = 0usize;
    if done_batches > 0 {
        let text = fs::read_to_string(&inc_path).map_err(|e| {
            ShardError::Mismatch(format!(
                "checkpoint at {} has committed batches but its incident sidecar {} is \
                 unreadable ({e}); delete both to restart the shard",
                path.display(),
                inc_path.display()
            ))
        })?;
        let art = parse_incident_artifact(&text)?;
        if art.manifest != inc_manifest {
            return Err(ShardError::Mismatch(format!(
                "incident sidecar at {} was written by a different shard configuration; \
                 refusing to resume over it",
                inc_path.display()
            )));
        }
        for (b, rec) in &art.records {
            if *b < done_batches {
                inc_prefix.push_str(&rec.render_line(*b));
                inc_prefix.push('\n');
                incident_count += 1;
            }
        }
    }

    let mut file = fs::File::create(path)?;
    file.write_all(prefix.as_bytes())?;
    file.flush()?;
    let mut inc_file = fs::File::create(&inc_path)?;
    inc_file.write_all(inc_prefix.as_bytes())?;
    inc_file.flush()?;

    let threads = thread_count();
    let mut executed = 0usize;
    for (b, chunk) in units.chunks(batch_size).enumerate().skip(done_batches) {
        if let Some(cap) = max_new_batches {
            if executed >= cap {
                return Ok(ShardStatus {
                    total_batches,
                    resumed_batches: done_batches,
                    executed_batches: executed,
                    assigned_runs: units.len(),
                    complete: false,
                });
            }
        }
        let wall = Instant::now();
        let before = MetricsSlice::capture();
        let flatten = |kind: &str, i: usize, r: &RunResult| {
            (ShardRun::from_result(kind, i, r), IncidentRecord::from_result(kind, i, r))
        };
        let results: Vec<(ShardRun, Option<IncidentRecord>)> = par_map(chunk, |unit| match *unit {
            RunUnit::Golden(0) => flatten("golden", 0, &profile_run),
            RunUnit::Golden(i) => {
                let r = run_experiment(&run_cfg(cfg, &scenario, GOLDEN_SEED_BASE + i as u64, None));
                flatten("golden", i, &r)
            }
            RunUnit::Injected(i) => {
                let r = run_experiment(&run_cfg(
                    cfg,
                    &scenario,
                    INJECTED_SEED_BASE + i as u64,
                    Some(plan[i]),
                ));
                flatten("injected", i, &r)
            }
            RunUnit::Training { .. } => {
                panic!("training units are partition support only; campaigns never run them")
            }
        });
        let after = MetricsSlice::capture();
        let mut batch_delta = after.delta(&before);
        if chunk.contains(&RunUnit::Golden(0)) {
            batch_delta.add(&profiling_slice);
        }
        cumulative.add(&batch_delta);

        // Sidecar payloads land before the batch marker: a kill between
        // the two re-runs the batch and truncates the orphaned payloads,
        // never the reverse (a committed batch missing its payloads).
        let mut inc_out = String::new();
        for (_, inc) in &results {
            if let Some(rec) = inc {
                inc_out.push_str(&rec.render_line(b));
                inc_out.push('\n');
                incident_count += 1;
            }
        }
        if !inc_out.is_empty() {
            inc_file.write_all(inc_out.as_bytes())?;
            inc_file.flush()?;
        }
        let mut out = String::new();
        for (r, _) in &results {
            out.push_str(&r.render_line(b));
            out.push('\n');
        }
        out.push_str(&format!(
            "{{\"type\": \"shard_batch\", \"batch\": {}, \"wall_secs\": {}, \
             \"threads\": {}, {}}}\n",
            b,
            json::num(wall.elapsed().as_secs_f64()),
            threads,
            cumulative.render_fields()
        ));
        file.write_all(out.as_bytes())?;
        file.flush()?;
        executed += 1;
    }
    let inc_footer = format!("{{\"type\": \"incidents_done\", \"incidents\": {incident_count}}}\n");
    inc_file.write_all(inc_footer.as_bytes())?;
    inc_file.flush()?;
    let footer = format!(
        "{{\"type\": \"shard_done\", \"batches\": {}, \"runs\": {}}}\n",
        total_batches,
        units.len()
    );
    file.write_all(footer.as_bytes())?;
    file.flush()?;
    Ok(ShardStatus {
        total_batches,
        resumed_batches: done_batches,
        executed_batches: executed,
        assigned_runs: units.len(),
        complete: true,
    })
}

/// Per-shard execution accounting surfaced by the merge (for the merged
/// `BENCH_campaigns.json`; excluded from all bit-exactness guarantees
/// except `runs`, `ticks`, and `deadline_misses`).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardPerf {
    /// Which shard.
    pub shard_index: usize,
    /// Total wall-clock seconds over its batches.
    pub wall_secs: f64,
    /// Worker threads of its last batch.
    pub threads: usize,
    /// Runs it executed.
    pub runs: usize,
    /// Simulation ticks over its runs.
    pub ticks: u64,
    /// Deadline misses over its runs.
    pub deadline_misses: u64,
}

/// One campaign reassembled from its shards.
#[derive(Clone, Debug)]
pub struct MergedCampaign {
    /// Shard 0's manifest. Only campaign-invariant fields are meaningful
    /// here; renderers must not consume `shard_index` / `assigned_runs` /
    /// `batch_size` from it.
    pub manifest: ShardManifest,
    /// Golden runs in engine order.
    pub golden: Vec<ShardRun>,
    /// Injected runs in engine order.
    pub injected: Vec<ShardRun>,
    /// Mean golden trajectory (the violation baseline), recomputed from
    /// the merged golden set — identical to the monolithic baseline.
    pub baseline: Vec<TrajPoint>,
    /// Shard metric slices folded together.
    pub metrics: MetricsSlice,
    /// Deadline accounting folded across shards.
    pub deadline: DeadlineStats,
    /// Per-shard accounting, ordered by shard index.
    pub shards: Vec<ShardPerf>,
}

/// Validate and merge shard artifacts into campaigns.
///
/// Artifacts are grouped by campaign fingerprint; each group must hold
/// exactly shards `0..n-1` of its campaign, each complete, each exactly
/// once. Every run is checked against the partitioner (it must sit in
/// the shard that owns it) and the engine's seed law, and the union must
/// cover every golden and injected index exactly once. Any violation —
/// overlap, gap, missing shard, foreign fingerprint in a group,
/// incomplete shard — is a [`ShardError::Mismatch`].
///
/// Campaigns are returned ordered by display label (then fingerprint),
/// so merged reports are independent of argument order.
pub fn merge_artifacts(artifacts: &[ShardArtifact]) -> Result<Vec<MergedCampaign>, ShardError> {
    let mut groups: BTreeMap<u64, Vec<&ShardArtifact>> = BTreeMap::new();
    for a in artifacts {
        groups.entry(a.manifest.fingerprint).or_default().push(a);
    }
    let mut merged: Vec<MergedCampaign> = Vec::with_capacity(groups.len());
    for group in groups.values() {
        merged.push(merge_group(group)?);
    }
    merged.sort_by(|a, b| {
        (a.manifest.campaign.as_str(), a.manifest.fingerprint)
            .cmp(&(b.manifest.campaign.as_str(), b.manifest.fingerprint))
    });
    Ok(merged)
}

fn merge_group(group: &[&ShardArtifact]) -> Result<MergedCampaign, ShardError> {
    let first = &group[0].manifest;
    for a in group {
        let m = &a.manifest;
        let same = m.schema_version == first.schema_version
            && m.plan_seed == first.plan_seed
            && m.campaign == first.campaign
            && m.scenario == first.scenario
            && m.scenario_name == first.scenario_name
            && m.target == first.target
            && m.kind == first.kind
            && m.mode == first.mode
            && m.profile_source == first.profile_source
            && m.shard_count == first.shard_count
            && m.golden_runs == first.golden_runs
            && m.injected_runs == first.injected_runs;
        if !same {
            return Err(ShardError::Mismatch(format!(
                "campaign {:?}: shard manifests share a fingerprint but disagree on \
                 campaign fields",
                first.campaign
            )));
        }
    }
    let n = first.shard_count;
    let mut seen = vec![false; n];
    for a in group {
        let i = a.manifest.shard_index;
        if i >= n {
            return Err(ShardError::Mismatch(format!(
                "campaign {:?}: shard index {i} out of range for {n} shards",
                first.campaign
            )));
        }
        if seen[i] {
            return Err(ShardError::Mismatch(format!(
                "campaign {:?}: shard {i}/{n} supplied more than once (overlap)",
                first.campaign
            )));
        }
        seen[i] = true;
        if !a.complete {
            return Err(ShardError::Mismatch(format!(
                "campaign {:?}: shard {i}/{n} is incomplete (no shard_done footer); \
                 resume it before merging",
                first.campaign
            )));
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return Err(ShardError::Mismatch(format!(
            "campaign {:?}: shard {missing}/{n} is missing",
            first.campaign
        )));
    }

    let mut golden: Vec<Option<ShardRun>> = vec![None; first.golden_runs];
    let mut injected: Vec<Option<ShardRun>> = vec![None; first.injected_runs];
    for a in group {
        for r in &a.runs {
            let unit = match r.kind.as_str() {
                "golden" => RunUnit::Golden(r.index),
                "injected" => RunUnit::Injected(r.index),
                other => {
                    return Err(ShardError::Mismatch(format!(
                        "campaign {:?}: unknown run kind {other:?}",
                        first.campaign
                    )))
                }
            };
            let home = unit_shard(first.plan_seed, unit, n);
            if home != a.manifest.shard_index {
                return Err(ShardError::Mismatch(format!(
                    "campaign {:?}: {} run {} belongs to shard {home} but appears in \
                     shard {}",
                    first.campaign, r.kind, r.index, a.manifest.shard_index
                )));
            }
            let (slot, base) = match unit {
                RunUnit::Golden(i) => (golden.get_mut(i), GOLDEN_SEED_BASE),
                RunUnit::Injected(i) => (injected.get_mut(i), INJECTED_SEED_BASE),
                RunUnit::Training { .. } => unreachable!("campaign runs only"),
            };
            let Some(slot) = slot else {
                return Err(ShardError::Mismatch(format!(
                    "campaign {:?}: {} run {} exceeds the campaign's declared run count",
                    first.campaign, r.kind, r.index
                )));
            };
            if r.seed != base + r.index as u64 {
                return Err(ShardError::Mismatch(format!(
                    "campaign {:?}: {} run {} carries seed {} (engine law says {})",
                    first.campaign,
                    r.kind,
                    r.index,
                    r.seed,
                    base + r.index as u64
                )));
            }
            if slot.is_some() {
                return Err(ShardError::Mismatch(format!(
                    "campaign {:?}: {} run {} appears twice (overlapping shards)",
                    first.campaign, r.kind, r.index
                )));
            }
            *slot = Some(r.clone());
        }
    }
    let fill = |runs: Vec<Option<ShardRun>>, kind: &str| -> Result<Vec<ShardRun>, ShardError> {
        runs.into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or_else(|| {
                    ShardError::Mismatch(format!(
                        "campaign {:?}: {kind} run {i} is missing (coverage gap)",
                        first.campaign
                    ))
                })
            })
            .collect()
    };
    let golden = fill(golden, "golden")?;
    let injected = fill(injected, "injected")?;

    let trajs: Vec<&[TrajPoint]> = golden.iter().map(|g| g.trajectory.as_slice()).collect();
    let baseline = mean_trajectory(&trajs);

    let mut ordered: Vec<&&ShardArtifact> = group.iter().collect();
    ordered.sort_by_key(|a| a.manifest.shard_index);
    let mut metrics = MetricsSlice::default();
    let mut deadline = DeadlineStats::default();
    let mut shards = Vec::with_capacity(ordered.len());
    for a in ordered {
        let slice = a.metrics();
        deadline.absorb(&DeadlineStats {
            ticks: slice.counters.get("deadline.ticks").copied().unwrap_or(0),
            misses: slice.counters.get("deadline.misses").copied().unwrap_or(0),
            worst_ns: slice.gauges.get("deadline.worst_ns").copied().unwrap_or(0.0) as u64,
        });
        metrics.add(&slice);
        shards.push(ShardPerf {
            shard_index: a.manifest.shard_index,
            wall_secs: a.batches.iter().map(|b| b.wall_secs).sum(),
            threads: a.batches.last().map(|b| b.threads).unwrap_or(0),
            runs: a.runs.len(),
            ticks: a.runs.iter().map(|r| r.ticks).sum(),
            deadline_misses: a.runs.iter().map(|r| r.deadline_misses).sum(),
        });
    }

    Ok(MergedCampaign {
        manifest: group
            .iter()
            .find(|a| a.manifest.shard_index == 0)
            .map(|a| a.manifest.clone())
            .unwrap_or_else(|| first.clone()),
        golden,
        injected,
        baseline,
        metrics,
        deadline,
        shards,
    })
}

/// Summarize a merged campaign into a Table-I row — the shard-side
/// counterpart of [`summarize`](crate::campaign::summarize), classifying
/// from the serialized run parts via
/// [`classify_parts`](crate::outcome::classify_parts). Unlike
/// `summarize` it has *no* metric side effects: merged outcome counters
/// come from the shard slices, not from re-tallying.
pub fn summarize_merged(m: &MergedCampaign, td: f64) -> TableRow {
    let mut row = TableRow { total: m.injected.len(), ..Default::default() };
    for r in &m.injected {
        if r.fault_activated {
            row.active += 1;
        }
        let class =
            classify_parts(&r.outcome, r.collision_time.is_some(), &r.trajectory, &m.baseline, td);
        match class {
            OutcomeClass::HangCrash => row.hang_crash += 1,
            OutcomeClass::Accident => row.accidents += 1,
            OutcomeClass::TrajViolation => row.traj_violations += 1,
            OutcomeClass::Benign => {}
        }
    }
    row
}

/// Validate a merged campaign's incident sidecars and assemble its
/// incident set, in engine order (golden runs by index, then injected).
///
/// The run lines are the source of truth: every merged run whose
/// `incident` label is set must have exactly one sidecar payload with
/// the same label, sitting in the shard that owns the run, under the
/// engine's seed law — and nothing else. Any violation (missing payload,
/// duplicate, label disagreement, payload for an unremarkable run,
/// foreign fingerprint, incomplete or missing sidecar) is a
/// [`ShardError::Mismatch`], so a merged incident set is exactly-once by
/// construction.
pub fn collect_incidents(
    merged: &MergedCampaign,
    sidecars: &[IncidentArtifact],
) -> Result<Vec<IncidentRecord>, ShardError> {
    let m = &merged.manifest;
    let n = m.shard_count;
    let mut seen = vec![false; n];
    for a in sidecars {
        let im = &a.manifest;
        if im.fingerprint != m.fingerprint || im.plan_seed != m.plan_seed {
            return Err(ShardError::Mismatch(format!(
                "campaign {:?}: incident sidecar carries fingerprint {:016x} \
                 (campaign is {:016x})",
                m.campaign, im.fingerprint, m.fingerprint
            )));
        }
        if im.shard_count != n || im.shard_index >= n {
            return Err(ShardError::Mismatch(format!(
                "campaign {:?}: incident sidecar claims shard {}/{} (campaign has {n})",
                m.campaign, im.shard_index, im.shard_count
            )));
        }
        if seen[im.shard_index] {
            return Err(ShardError::Mismatch(format!(
                "campaign {:?}: incident sidecar for shard {} supplied more than once",
                m.campaign, im.shard_index
            )));
        }
        seen[im.shard_index] = true;
        if !a.complete {
            return Err(ShardError::Mismatch(format!(
                "campaign {:?}: incident sidecar for shard {} is incomplete \
                 (no incidents_done footer)",
                m.campaign, im.shard_index
            )));
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return Err(ShardError::Mismatch(format!(
            "campaign {:?}: incident sidecar for shard {missing}/{n} is missing",
            m.campaign
        )));
    }

    // Expected payloads, from the merged run lines. Rank 0 = golden,
    // 1 = injected, so the BTreeMap key order is engine order.
    let mut expected: BTreeMap<(u8, usize), &str> = BTreeMap::new();
    for (rank, runs) in [(0u8, &merged.golden), (1u8, &merged.injected)] {
        for r in runs.iter() {
            if let Some(label) = &r.incident {
                expected.insert((rank, r.index), label.as_str());
            }
        }
    }
    let mut out: BTreeMap<(u8, usize), IncidentRecord> = BTreeMap::new();
    for a in sidecars {
        for (_, rec) in &a.records {
            let (rank, unit, base) = match rec.kind.as_str() {
                "golden" => (0u8, RunUnit::Golden(rec.index), GOLDEN_SEED_BASE),
                "injected" => (1u8, RunUnit::Injected(rec.index), INJECTED_SEED_BASE),
                other => {
                    return Err(ShardError::Mismatch(format!(
                        "campaign {:?}: unknown incident run kind {other:?}",
                        m.campaign
                    )))
                }
            };
            let home = unit_shard(m.plan_seed, unit, n);
            if home != a.manifest.shard_index {
                return Err(ShardError::Mismatch(format!(
                    "campaign {:?}: incident of {} run {} belongs to shard {home} but \
                     appears in shard {}",
                    m.campaign, rec.kind, rec.index, a.manifest.shard_index
                )));
            }
            if rec.seed != base + rec.index as u64 {
                return Err(ShardError::Mismatch(format!(
                    "campaign {:?}: incident of {} run {} carries seed {} \
                     (engine law says {})",
                    m.campaign,
                    rec.kind,
                    rec.index,
                    rec.seed,
                    base + rec.index as u64
                )));
            }
            match expected.remove(&(rank, rec.index)) {
                Some(label) if label == rec.incident => {}
                Some(label) => {
                    return Err(ShardError::Mismatch(format!(
                        "campaign {:?}: {} run {} is a {label:?} incident on its run line \
                         but {:?} in the sidecar",
                        m.campaign, rec.kind, rec.index, rec.incident
                    )))
                }
                None => {
                    return Err(ShardError::Mismatch(format!(
                        "campaign {:?}: sidecar payload for {} run {} has no matching \
                         incident on its run line (duplicate or spurious)",
                        m.campaign, rec.kind, rec.index
                    )))
                }
            }
            out.insert((rank, rec.index), rec.clone());
        }
    }
    if let Some(((rank, index), label)) = expected.into_iter().next() {
        let kind = if rank == 0 { "golden" } else { "injected" };
        return Err(ShardError::Mismatch(format!(
            "campaign {:?}: {kind} run {index} is a {label:?} incident but no sidecar \
             carries its payload",
            m.campaign
        )));
    }
    Ok(out.into_values().collect())
}

// -- line-level parse helpers -----------------------------------------------

fn req<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing member {key:?}"))
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    req(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("member {key:?} must be a string"))
}

fn req_usize(v: &Value, key: &str) -> Result<usize, String> {
    let n = req(v, key)?.as_f64().ok_or_else(|| format!("member {key:?} must be a number"))?;
    if n.is_nan() || n < 0.0 || n.fract() != 0.0 {
        return Err(format!("member {key:?} must be a non-negative integer"));
    }
    Ok(n as usize)
}

fn req_bool(v: &Value, key: &str) -> Result<bool, String> {
    req(v, key)?.as_bool().ok_or_else(|| format!("member {key:?} must be a boolean"))
}

fn req_u64_str(v: &Value, key: &str) -> Result<u64, String> {
    json::parse_u64_str(req(v, key)?).map_err(|e| format!("member {key:?}: {e}"))
}

fn req_f64_bits(v: &Value, key: &str) -> Result<f64, String> {
    json::parse_f64_bits(req(v, key)?).map_err(|e| format!("member {key:?}: {e}"))
}

fn opt_str_member(v: &Value, key: &str) -> Result<Option<String>, String> {
    match req(v, key)? {
        Value::Null => Ok(None),
        other => other
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("member {key:?} must be a string or null")),
    }
}

fn opt_f64_bits_member(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match req(v, key)? {
        Value::Null => Ok(None),
        other => json::parse_f64_bits(other).map(Some).map_err(|e| format!("member {key:?}: {e}")),
    }
}

fn req_hex64(v: &Value, key: &str) -> Result<u64, String> {
    let s = req_str(v, key)?;
    if s.len() != 16 {
        return Err(format!("member {key:?} must be 16 hex digits"));
    }
    u64::from_str_radix(&s, 16).map_err(|e| format!("member {key:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diverseav::AgentMode;
    use diverseav_fabric::Profile;
    use diverseav_simworld::ScenarioKind;

    fn campaign() -> Campaign {
        Campaign {
            scenario: ScenarioKind::LeadSlowdown,
            target: Profile::Gpu,
            kind: crate::plan::FaultModelKind::Transient,
            mode: AgentMode::RoundRobin,
        }
    }

    #[test]
    fn unit_partition_is_deterministic_and_total() {
        let units = campaign_units(4, 10);
        assert_eq!(units.len(), 14);
        for u in &units {
            let s = unit_shard(42, *u, 3);
            assert!(s < 3);
            assert_eq!(s, unit_shard(42, *u, 3), "assignment must be stable");
        }
        let total: usize =
            (0..3).map(|k| units.iter().filter(|u| unit_shard(42, **u, 3) == k).count()).sum();
        assert_eq!(total, units.len(), "shards partition the unit set");
        assert_eq!(unit_shard(42, RunUnit::Golden(1), 1), 0, "1-shard runs own everything");
        assert_eq!(training_units(2).len(), 6, "3 routes x reps");
    }

    #[test]
    fn unit_codes_keep_kinds_disjoint() {
        assert_ne!(unit_code(RunUnit::Golden(5)), unit_code(RunUnit::Injected(5)));
        assert_ne!(
            unit_code(RunUnit::Injected(3)),
            unit_code(RunUnit::Training { route: 0, rep: 3 })
        );
        assert_ne!(
            unit_code(RunUnit::Training { route: 1, rep: 0 }),
            unit_code(RunUnit::Training { route: 0, rep: 1 })
        );
    }

    #[test]
    fn fingerprint_separates_campaign_scale_and_sensor() {
        let scale = CampaignScale::quick();
        let sensor = SensorConfig::default();
        let base = campaign_fingerprint(&campaign(), &scale, &sensor);
        let other_campaign = Campaign { target: Profile::Cpu, ..campaign() };
        assert_ne!(base, campaign_fingerprint(&other_campaign, &scale, &sensor));
        let other_scale = CampaignScale { golden_runs: scale.golden_runs + 1, ..scale };
        assert_ne!(base, campaign_fingerprint(&campaign(), &other_scale, &sensor));
        let noisy = SensorConfig { pixel_noise: sensor.pixel_noise + 0.25, ..sensor };
        assert_ne!(base, campaign_fingerprint(&campaign(), &scale, &noisy));
        assert_eq!(base, campaign_fingerprint(&campaign(), &scale, &sensor), "stable");
    }

    fn sample_run() -> ShardRun {
        ShardRun {
            kind: "injected".to_string(),
            index: 3,
            seed: INJECTED_SEED_BASE + 3,
            outcome: "crash".to_string(),
            end_time: 1.25,
            collision_time: None,
            alarm_time: Some(0.875),
            fault_activated: true,
            fault_onset_time: None,
            min_cvip: f64::INFINITY,
            red_light_violations: 1,
            ticks: 51,
            deadline_misses: 2,
            incident: Some("crash".to_string()),
            fault: Some(FaultSite {
                profile: "GPU".to_string(),
                unit: 0,
                model: "transient".to_string(),
                mask: 1 << 7,
                cycle: Some(123_456),
                op: None,
            }),
            trajectory: vec![
                TrajPoint { t: 0.0, pos: Vec2 { x: -0.0, y: 1.5 } },
                TrajPoint { t: 0.025, pos: Vec2 { x: 0.3, y: 1.625 } },
            ],
        }
    }

    #[test]
    fn shard_run_round_trips_bit_exactly() {
        let run = sample_run();
        let line = run.render_line(7);
        let v = json::parse(&line).expect("run line parses");
        let (batch, back) = ShardRun::parse(&v).expect("run reconstructs");
        assert_eq!(batch, 7);
        assert_eq!(back, run);
        // -0.0 must survive (bit pattern, not value, equality).
        assert_eq!(back.trajectory[0].pos.x.to_bits(), (-0.0f64).to_bits());
        assert!(back.min_cvip.is_infinite());
    }

    #[test]
    fn manifest_round_trips_and_rejects_other_versions() {
        let m = ShardManifest {
            schema_version: SHARD_SCHEMA_VERSION,
            fingerprint: 0x0123_4567_89ab_cdef,
            plan_seed: 0xfedc_ba98_7654_3210,
            campaign: "GPU-transient LSD [diverseav]".to_string(),
            scenario: "LSD".to_string(),
            scenario_name: "lead_slowdown".to_string(),
            target: "GPU".to_string(),
            kind: "transient".to_string(),
            mode: "diverseav".to_string(),
            profile_source: "modeled".to_string(),
            shard_index: 1,
            shard_count: 4,
            batch_size: 8,
            golden_runs: 6,
            injected_runs: 16,
            assigned_runs: 5,
        };
        let v = json::parse(&m.render()).expect("manifest renders as JSON");
        assert_eq!(ShardManifest::parse(&v).expect("manifest reconstructs"), m);
        let bumped = m.render().replace(
            &format!("\"schema_version\": {SHARD_SCHEMA_VERSION}"),
            &format!("\"schema_version\": {}", SHARD_SCHEMA_VERSION + 1),
        );
        let v = json::parse(&bumped).expect("still JSON");
        assert!(ShardManifest::parse(&v).is_err(), "future versions must be refused");
    }

    #[test]
    fn metrics_slice_delta_add_and_encoding_round_trip() {
        let mut before = MetricsSlice::default();
        before.counters.insert("runtime.ticks".to_string(), 100);
        let mut after = MetricsSlice::default();
        after.counters.insert("runtime.ticks".to_string(), 151);
        after.counters.insert("runner.experiments".to_string(), 2);
        after.gauges.insert("deadline.worst_ns".to_string(), 1.5e6);
        let mut h =
            HistSnapshot { buckets: vec![0; diverseav_obs::hist::N_BUCKETS], sum: 40, max: 12 };
        h.buckets[3] = 4;
        after.hists.insert("tick.total".to_string(), h);
        let d = after.delta(&before);
        assert_eq!(d.counters.get("runtime.ticks"), Some(&51));
        assert_eq!(d.counters.get("runner.experiments"), Some(&2));

        let line = format!("{{{}}}", d.render_fields());
        let v = json::parse(&line).expect("fields parse");
        let back = MetricsSlice::parse_fields(&v).expect("fields reconstruct");
        assert_eq!(back, d);

        let mut folded = MetricsSlice::default();
        folded.add(&d);
        folded.add(&d);
        assert_eq!(folded.counters.get("runtime.ticks"), Some(&102));
        assert_eq!(folded.gauges.get("deadline.worst_ns"), Some(&1.5e6));
        assert_eq!(folded.hists.get("tick.total").map(|h| h.count()), Some(8));
    }

    fn synthetic_artifacts(n: usize) -> Vec<ShardArtifact> {
        let plan_seed = 0x1234_5678;
        let (golden_runs, injected_runs) = (2, 2);
        let manifest = |i: usize, assigned: usize| ShardManifest {
            schema_version: SHARD_SCHEMA_VERSION,
            fingerprint: 0xFACE,
            plan_seed,
            campaign: "GPU-transient LSD [diverseav]".to_string(),
            scenario: "LSD".to_string(),
            scenario_name: "lead_slowdown".to_string(),
            target: "GPU".to_string(),
            kind: "transient".to_string(),
            mode: "diverseav".to_string(),
            profile_source: "modeled".to_string(),
            shard_index: i,
            shard_count: n,
            batch_size: 4,
            golden_runs,
            injected_runs,
            assigned_runs: assigned,
        };
        let run = |kind: &str, index: usize, base: u64| ShardRun {
            kind: kind.to_string(),
            index,
            seed: base + index as u64,
            outcome: "completed".to_string(),
            end_time: 2.0,
            collision_time: None,
            alarm_time: None,
            fault_activated: false,
            fault_onset_time: None,
            min_cvip: 5.0,
            red_light_violations: 0,
            ticks: 10,
            deadline_misses: 0,
            incident: None,
            fault: None,
            trajectory: vec![TrajPoint { t: 0.0, pos: Vec2 { x: 0.0, y: 0.0 } }],
        };
        let mut shards: Vec<Vec<ShardRun>> = vec![Vec::new(); n];
        for u in campaign_units(golden_runs, injected_runs) {
            let (kind, index, base) = match u {
                RunUnit::Golden(i) => ("golden", i, GOLDEN_SEED_BASE),
                RunUnit::Injected(i) => ("injected", i, INJECTED_SEED_BASE),
                RunUnit::Training { .. } => unreachable!(),
            };
            shards[unit_shard(plan_seed, u, n)].push(run(kind, index, base));
        }
        shards
            .into_iter()
            .enumerate()
            .map(|(i, runs)| ShardArtifact {
                manifest: manifest(i, runs.len()),
                batches: vec![BatchMark {
                    batch: 0,
                    wall_secs: 0.0,
                    threads: 1,
                    metrics: MetricsSlice::default(),
                }],
                complete: true,
                committed_lines: 2 + runs.len(),
                runs,
            })
            .collect()
    }

    fn sample_incident(kind: &str, index: usize, seed: u64, label: &str) -> IncidentRecord {
        IncidentRecord {
            kind: kind.to_string(),
            index,
            seed,
            incident: label.to_string(),
            fault_class: Some("dropout".to_string()),
            fault_onset_time: Some(0.425),
            alarm_time: None,
            flight: vec![TickRecord {
                tick: 17,
                flags: flight::FLAG_FAULT_ACTIVE | flight::FLAG_DETECTOR_OBSERVED,
                score: 0.75,
                slope: -0.0,
                margin: 0.25,
                phase_ns: [1, 2, 3, 4],
                deadline_margin_ns: -1_024,
                d_throttle: f64::INFINITY,
                d_brake: 0.0,
                d_steer: f64::from_bits(0x7FF8_0000_0000_0001),
            }],
        }
    }

    #[test]
    fn incident_record_round_trips_bit_exactly() {
        let rec = sample_incident("injected", 3, INJECTED_SEED_BASE + 3, "silent-divergence");
        let v = json::parse(&rec.render_line(5)).expect("incident line parses");
        let (batch, back) = IncidentRecord::parse(&v).expect("incident reconstructs");
        assert_eq!(batch, 5);
        // NaN in d_steer: compare bit images, then the PartialEq-safe rest.
        assert_eq!(back.flight[0].d_steer.to_bits(), rec.flight[0].d_steer.to_bits());
        assert_eq!(back.flight[0].slope.to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.flight[0].deadline_margin_ns, -1_024);
        assert_eq!((back.kind.as_str(), back.index, back.seed), ("injected", 3, rec.seed));
        assert_eq!(back.incident, rec.incident);
        assert_eq!(back.fault_class, rec.fault_class);

        // Merged lines have no batch tag and parse as batch 0.
        let v = json::parse(&rec.render_merged()).expect("merged line parses");
        let (batch, _) = IncidentRecord::parse(&v).expect("merged line reconstructs");
        assert_eq!(batch, 0);
    }

    #[test]
    fn incident_sidecar_parses_and_rejects_other_versions() {
        let m = IncidentManifest {
            flight_schema_version: flight::FLIGHT_SCHEMA_VERSION,
            shard_schema_version: SHARD_SCHEMA_VERSION,
            fingerprint: 0xFACE,
            plan_seed: 0x1234_5678,
            shard_index: 1,
            shard_count: 2,
        };
        let rec = sample_incident("golden", 0, GOLDEN_SEED_BASE, "hang");
        let text = format!(
            "{}\n{}\n{{\"type\": \"incidents_done\", \"incidents\": 1}}\n",
            m.render(),
            rec.render_line(0)
        );
        let art = parse_incident_artifact(&text).expect("sidecar parses");
        assert_eq!(art.manifest, m);
        assert_eq!(art.records.len(), 1);
        assert!(art.complete);

        // A torn tail truncates, the committed prefix survives.
        let torn = format!("{}\n{}\n{{\"type\": \"inci", m.render(), rec.render_line(0));
        let art = parse_incident_artifact(&torn).expect("torn sidecar parses");
        assert_eq!(art.records.len(), 1);
        assert!(!art.complete);

        let bumped = text.replace(
            &format!("\"flight_schema_version\": {}", flight::FLIGHT_SCHEMA_VERSION),
            &format!("\"flight_schema_version\": {}", flight::FLIGHT_SCHEMA_VERSION + 1),
        );
        assert!(parse_incident_artifact(&bumped).is_err(), "future versions must be refused");
    }

    #[test]
    fn collect_incidents_is_exactly_once() {
        let mut arts = synthetic_artifacts(2);
        // Declare one incident on a run line and find who owns the run.
        let plan_seed = arts[0].manifest.plan_seed;
        let home = unit_shard(plan_seed, RunUnit::Injected(1), 2);
        let victim = arts
            .iter_mut()
            .flat_map(|a| a.runs.iter_mut())
            .find(|r| r.kind == "injected" && r.index == 1)
            .expect("injected run 1 exists");
        victim.incident = Some("deadline-burst".to_string());
        let merged = merge_artifacts(&arts).expect("clean shards merge");
        let payload = sample_incident("injected", 1, INJECTED_SEED_BASE + 1, "deadline-burst");
        let sidecar = |i: usize, records: Vec<(usize, IncidentRecord)>| IncidentArtifact {
            manifest: IncidentManifest::for_shard(&arts[i].manifest),
            records,
            complete: true,
        };
        let sidecars = vec![
            sidecar(0, if home == 0 { vec![(0, payload.clone())] } else { Vec::new() }),
            sidecar(1, if home == 1 { vec![(0, payload.clone())] } else { Vec::new() }),
        ];

        let got = collect_incidents(&merged[0], &sidecars).expect("valid incident set");
        assert_eq!(got.len(), 1);
        // NaN payload: compare rendered bytes, not PartialEq.
        assert_eq!(got[0].render_merged(), payload.render_merged());

        // Missing payload.
        let empty = vec![sidecar(0, Vec::new()), sidecar(1, Vec::new())];
        let err = collect_incidents(&merged[0], &empty).expect_err("missing payload");
        assert!(err.to_string().contains("no sidecar"), "{err}");

        // Payload without a matching run-line label.
        let spurious_rec = sample_incident("golden", 0, GOLDEN_SEED_BASE, "hang");
        let g_home = unit_shard(plan_seed, RunUnit::Golden(0), 2);
        let mut spurious = sidecars.clone();
        spurious[g_home].records.push((0, spurious_rec));
        let err = collect_incidents(&merged[0], &spurious).expect_err("spurious payload");
        assert!(err.to_string().contains("no matching"), "{err}");

        // Label disagreement.
        let mut wrong = sidecars.clone();
        wrong[home].records[0].1.incident = "hang".to_string();
        let err = collect_incidents(&merged[0], &wrong).expect_err("label mismatch");
        assert!(err.to_string().contains("sidecar"), "{err}");

        // Payload in the wrong shard.
        let mut misplaced = sidecars.clone();
        let rec = misplaced[home].records.remove(0);
        misplaced[1 - home].records.push(rec);
        let err = collect_incidents(&merged[0], &misplaced).expect_err("wrong shard");
        assert!(err.to_string().contains("belongs to shard"), "{err}");

        // Incomplete sidecar.
        let mut torn = sidecars.clone();
        torn[0].complete = false;
        let err = collect_incidents(&merged[0], &torn).expect_err("incomplete sidecar");
        assert!(err.to_string().contains("incomplete"), "{err}");

        // Missing sidecar entirely.
        let err = collect_incidents(&merged[0], &sidecars[..1]).expect_err("missing sidecar");
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn merge_validates_overlap_gaps_and_order_independence() {
        let arts = synthetic_artifacts(2);
        let merged = merge_artifacts(&arts).expect("clean shards merge");
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].golden.len(), 2);
        assert_eq!(merged[0].injected.len(), 2);
        assert_eq!(merged[0].golden[0].seed, GOLDEN_SEED_BASE);
        assert_eq!(merged[0].injected[1].seed, INJECTED_SEED_BASE + 1);

        let reversed: Vec<ShardArtifact> = arts.iter().rev().cloned().collect();
        let remerged = merge_artifacts(&reversed).expect("order must not matter");
        assert_eq!(remerged[0].golden, merged[0].golden);
        assert_eq!(remerged[0].injected, merged[0].injected);

        let mut dup = arts.clone();
        dup.push(arts[0].clone());
        let err = merge_artifacts(&dup).expect_err("duplicated shard must fail");
        assert!(err.to_string().contains("overlap"), "{err}");

        let err = merge_artifacts(&arts[..1]).expect_err("missing shard must fail");
        assert!(err.to_string().contains("missing"), "{err}");

        let mut torn = arts.clone();
        torn[1].complete = false;
        let err = merge_artifacts(&torn).expect_err("incomplete shard must fail");
        assert!(err.to_string().contains("incomplete"), "{err}");

        let mut wrong_seed = arts.clone();
        let victim =
            wrong_seed.iter_mut().find(|a| !a.runs.is_empty()).expect("some shard has runs");
        victim.runs[0].seed += 1;
        let err = merge_artifacts(&wrong_seed).expect_err("seed-law violation must fail");
        assert!(err.to_string().contains("seed"), "{err}");
    }

    #[test]
    fn parse_artifact_truncates_torn_tails() {
        let arts = synthetic_artifacts(1);
        let a = &arts[0];
        let mut text = format!("{}\n", a.manifest.render());
        for r in &a.runs {
            text.push_str(&r.render_line(0));
            text.push('\n');
        }
        text.push_str(&format!(
            "{{\"type\": \"shard_batch\", \"batch\": 0, \"wall_secs\": 0.000000, \
             \"threads\": 1, {}}}\n",
            MetricsSlice::default().render_fields()
        ));
        let committed = parse_artifact(&text).expect("committed prefix parses");
        assert_eq!(committed.runs.len(), a.runs.len());
        assert_eq!(committed.batches.len(), 1);
        assert!(!committed.complete, "no footer yet");

        // A torn tail: one uncommitted run line, then a half-written line.
        let mut torn = text.clone();
        torn.push_str(&a.runs[0].render_line(1));
        torn.push('\n');
        torn.push_str("{\"type\": \"shard_ru");
        let parsed = parse_artifact(&torn).expect("torn artifact still parses");
        assert_eq!(parsed.runs.len(), a.runs.len(), "uncommitted run discarded");
        assert_eq!(parsed.batches.len(), 1);
        assert_eq!(
            torn.lines().take(parsed.committed_lines).count(),
            parsed.committed_lines,
            "committed prefix stays within the file"
        );

        // Completed artifact round-trips.
        let mut done = text.clone();
        done.push_str("{\"type\": \"shard_done\", \"batches\": 1, \"runs\": 4}\n");
        let parsed = parse_artifact(&done).expect("completed artifact parses");
        assert!(parsed.complete);
    }
}
