//! Deterministic parallel execution engine for campaign fan-out.
//!
//! Every run in a campaign derives from an explicit per-run seed, so runs
//! are independent pure functions of their index. [`par_map`] exploits
//! that: a `std::thread::scope` worker pool pulls indices from a shared
//! atomic counter (work stealing — long runs never convoy short ones) and
//! writes each result into its index-order slot. Scheduling therefore
//! affects only *when* a result is computed, never *which* result lands
//! in which slot: output is bit-identical to the sequential path for any
//! thread count.
//!
//! Thread-count selection (`DIVERSEAV_THREADS`):
//! * unset/unparsable → `std::thread::available_parallelism()`
//! * `1` → the plain sequential loop (no threads spawned)
//! * `n > 1` → at most `n` scoped worker threads
//!
//! No dependencies beyond `std`; panics in workers propagate to the
//! caller when the scope joins.
//!
//! Observability: when `DIVERSEAV_TRACE` is on, each fan-out
//! pre-allocates an index-ordered [`SlotJournal`] and workers write
//! span begin/end plus a worker-id counter into the slot of the index
//! they claimed — lock-free, because the atomic index counter already
//! guarantees slot exclusivity. The journal is drained into the global
//! JSONL sink in index order after the scope joins, so recording never
//! adds hot-path synchronization and cannot perturb determinism (run
//! content stays a pure function of index; only timestamps and worker
//! ids vary between invocations).

use diverseav_obs::{journal, metrics, trace, SlotJournal};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The thread count selected by `DIVERSEAV_THREADS` (see module docs).
pub fn thread_count() -> usize {
    match std::env::var("DIVERSEAV_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => detected_parallelism(),
        },
        Err(_) => detected_parallelism(),
    }
}

/// Cores visible to this process (1 if detection fails).
pub fn detected_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Map `f` over `items` with the environment-selected thread count,
/// preserving input order exactly (see module docs for the determinism
/// argument).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit thread count (1 → sequential loop).
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    metrics::counter_add("exec.fan_outs", 1);
    metrics::counter_add("exec.items", n as u64);
    let journal = trace::enabled().then(|| SlotJournal::with_slots(n));
    if threads == 1 {
        let out = items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                if let Some(j) = &journal {
                    let w = j.writer(i);
                    w.span_begin("exec.item");
                    w.counter("worker", 0);
                    let r = f(item);
                    w.span_end("exec.item");
                    r
                } else {
                    f(item)
                }
            })
            .collect();
        drain_journal(journal);
        return out;
    }

    // Index-order result slots: workers race for *indices* (the atomic
    // counter), never for slots, so each slot mutex is uncontended.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (next, slots, f, journal) = (&next, &slots, &f, journal.as_ref());
        for worker in 0..threads {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let writer = journal.map(|j| {
                    let w = j.writer(i);
                    w.span_begin("exec.item");
                    w.counter("worker", worker as u64);
                    w
                });
                let result = f(&items[i]);
                if let Some(w) = writer {
                    w.span_end("exec.item");
                }
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    drain_journal(journal);
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("every index was claimed")
        })
        .collect()
}

/// Append a fan-out's slot events to the global JSONL sink, index-ordered.
fn drain_journal(journal: Option<SlotJournal>) {
    if let Some(j) = journal {
        for (i, events) in j.drain().into_iter().enumerate() {
            journal::append_slot_events("exec.par_map", i, &events);
        }
    }
}

/// Map `f` over `0..n` in parallel, preserving index order (convenience
/// for seeded-loop fan-out).
pub fn par_map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8, 33, 200] {
            let got = par_map_with(threads, &items, |&x| x * x + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn preserves_order_under_uneven_work() {
        // Later indices finish first; slots must still be index-ordered.
        let items: Vec<usize> = (0..16).collect();
        let got = par_map_with(4, &items, |&i| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i
        });
        assert_eq!(got, items);
    }

    #[test]
    fn index_helper_matches_slice_form() {
        assert_eq!(par_map_indices(10, |i| i * 3), (0..10).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_clamps_to_items() {
        // 200 threads over 3 items must not panic or drop results.
        assert_eq!(par_map_with(200, &[1, 2, 3], |&x| x), vec![1, 2, 3]);
    }

    #[test]
    fn tracing_journals_every_item_without_changing_results() {
        let items: Vec<u64> = (0..9).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x + 10).collect();
        std::env::set_var("DIVERSEAV_TRACE", "1");
        let before = journal::len();
        let traced_seq = par_map_with(1, &items, |&x| x + 10);
        let traced_par = par_map_with(3, &items, |&x| x + 10);
        std::env::remove_var("DIVERSEAV_TRACE");
        assert_eq!(traced_seq, expected);
        assert_eq!(traced_par, expected);
        let new_lines: Vec<String> = journal::snapshot()
            .split_off(before)
            .into_iter()
            .filter(|l| l.contains("exec.par_map"))
            .collect();
        assert!(new_lines.len() >= 2 * items.len(), "one span line per traced item");
        assert!(new_lines[0].contains("\"span_begin\""));
    }
}
