//! The Driver (Fig 3): executes one experiment — scenario + agent mode +
//! optional fault — and records everything the evaluation needs.

use diverseav::{Ads, AdsConfig, AgentMode, DetectorConfig, DetectorModel, TrainSample};
use diverseav_agent::AgentConfig;
use diverseav_fabric::{FaultModel, Op, Profile};
use diverseav_obs::flight::TickRecord;
use diverseav_runtime::{
    FlightRecorder, FrameInjector, IncidentKind, LoopObserver, PerfObserver, ProfilingObserver,
    SensorFault, SimLoop, TrainingCollector,
};
use diverseav_simworld::{Scenario, SensorConfig, TrajPoint, World, TICK_HZ};
use std::fmt;

pub use diverseav_runtime::Termination;

/// A fault to inject into one experiment: a register flip inside the
/// compute fabric (the paper's §II-B model) or a sensor-boundary fault
/// applied to the frame before the driver sees it (ROADMAP item 5).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// An architectural fault in the compute fabric.
    Fabric {
        /// Processor unit index (0 except for FD's second processor).
        unit: usize,
        /// Target fabric (the paper's CPU-vs-GPU injection axis).
        profile: Profile,
        /// The architectural fault model.
        model: FaultModel,
    },
    /// A sensor-boundary fault injected between `World::sense_into` and
    /// the driver.
    Sensor(SensorFault),
}

impl FaultSpec {
    /// The sensor fault, if this spec targets the sensor boundary.
    pub fn as_sensor(&self) -> Option<SensorFault> {
        match self {
            FaultSpec::Sensor(sf) => Some(*sf),
            FaultSpec::Fabric { .. } => None,
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::Fabric { unit, profile, model } => {
                write!(f, "{profile}[unit{unit}] {model}")
            }
            FaultSpec::Sensor(sf) => write!(f, "{sf}"),
        }
    }
}

/// Configuration of one experimental run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The scenario to drive.
    pub scenario: Scenario,
    /// Agent deployment mode.
    pub mode: AgentMode,
    /// Fault to inject, if any (golden runs pass `None`).
    pub fault: Option<FaultSpec>,
    /// Per-run nondeterminism seed (world noise + agent jitter).
    pub seed: u64,
    /// Sensor configuration (must match the agent's camera geometry).
    pub sensor: SensorConfig,
    /// Agent parameters.
    pub agent: AgentConfig,
    /// Trained detector to run online, if any.
    pub detector: Option<(DetectorModel, DetectorConfig)>,
    /// Whether to record the divergence stream (for detector training and
    /// offline parameter sweeps) and the actuation/CVIP trace (Fig 2).
    pub collect_training: bool,
    /// Round-robin partial-overlap period (paper footnote 5); `None` =
    /// pure round-robin.
    pub overlap_period: Option<u32>,
}

impl RunConfig {
    /// A run with default sensor/agent parameters.
    pub fn new(scenario: Scenario, mode: AgentMode, seed: u64) -> Self {
        RunConfig {
            scenario,
            mode,
            fault: None,
            seed,
            sensor: SensorConfig::default(),
            agent: AgentConfig::default(),
            detector: None,
            collect_training: false,
            overlap_period: None,
        }
    }
}

/// Everything recorded from one experimental run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Scenario name (interned; scenario names come from the runtime
    /// registry or `'static` constructors, never per-run strings).
    pub scenario: &'static str,
    /// Agent mode.
    pub mode: AgentMode,
    /// The injected fault, if any.
    pub fault: Option<FaultSpec>,
    /// The run seed.
    pub seed: u64,
    /// How the run ended.
    pub termination: Termination,
    /// Simulation time reached.
    pub end_time: f64,
    /// Collision time, if the ego collided.
    pub collision_time: Option<f64>,
    /// Detector alarm time, if raised.
    pub alarm_time: Option<f64>,
    /// Whether the armed fault corrupted at least one register (fabric
    /// faults) or frame (sensor faults).
    pub fault_activated: bool,
    /// Simulation time of the first corrupted frame for sensor faults
    /// (`None` for golden runs and fabric faults) — the reference point
    /// for detection-latency accounting.
    pub fault_onset_time: Option<f64>,
    /// Minimum CVIP distance over the run.
    pub min_cvip: f64,
    /// Red lights crossed against a stop demand.
    pub red_light_violations: u32,
    /// Simulation ticks executed — this run's share of the
    /// `runtime.ticks` counter, carried per run so shard artifacts can
    /// account work without re-deriving it from the shared registry.
    pub ticks: u64,
    /// Ticks whose modeled latency exceeded the 25 ms control budget
    /// (0 when profiling is off; see `DIVERSEAV_PROFILE`).
    pub deadline_misses: u64,
    /// Why this run's flight recording was flushed (`None` for
    /// unremarkable runs; see
    /// [`IncidentKind`](diverseav_runtime::IncidentKind)).
    pub incident: Option<IncidentKind>,
    /// The drained flight recording — the last
    /// [`DEFAULT_RING_CAPACITY`](diverseav_obs::flight::DEFAULT_RING_CAPACITY)
    /// ticks, oldest first. Empty unless `incident` is set.
    pub flight: Vec<TickRecord>,
    /// Recorded ego trajectory.
    pub trajectory: Vec<TrajPoint>,
    /// Recorded divergence stream (if requested): training data for golden
    /// runs, replay data for parameter sweeps on injected runs.
    pub training: Vec<TrainSample>,
    /// Actuation + CVIP trace (if requested): `(t, controls, cvip)`.
    pub actuation: Vec<(f64, diverseav_simworld::Controls, f64)>,
    /// Dynamic GPU instructions executed (unit 0).
    pub gpu_dyn_instr: u64,
    /// Dynamic CPU instructions executed (unit 0).
    pub cpu_dyn_instr: u64,
    /// GPU opcodes observed with counts (unit 0) — the permanent-fault
    /// campaign space.
    pub gpu_ops: Vec<(Op, u64)>,
    /// CPU opcodes observed with counts (unit 0).
    pub cpu_ops: Vec<(Op, u64)>,
}

impl RunResult {
    /// Whether the run ended in an accident.
    pub fn has_accident(&self) -> bool {
        self.collision_time.is_some()
    }

    /// Peak raw divergence per channel `[throttle, brake, steer]` over
    /// the recorded stream (zeros when no stream was collected).
    pub fn divergence_peak(&self) -> [f64; 3] {
        self.training.iter().fold([0.0; 3], |acc, s| {
            [acc[0].max(s.div.throttle), acc[1].max(s.div.brake), acc[2].max(s.div.steer)]
        })
    }
}

/// Flatten one run into a journal [`RunRecord`](diverseav_obs::RunRecord)
/// for the `DIVERSEAV_TRACE` JSONL artifact.
///
/// Every field is a pure function of the run's inputs, so for a fixed
/// campaign sequence the rendered lines are bit-identical across thread
/// counts and across traced/untraced re-runs.
pub fn run_record(
    campaign: &str,
    kind: &'static str,
    index: usize,
    r: &RunResult,
) -> diverseav_obs::RunRecord {
    let fault = r.fault.map(|f| match f {
        FaultSpec::Fabric { unit, profile, model } => {
            let (model, cycle, op, mask) = match model {
                FaultModel::Transient { instr_index, mask } => {
                    ("transient", Some(instr_index), None, mask)
                }
                FaultModel::Permanent { op, mask } => {
                    ("permanent", None, Some(op.to_string()), mask)
                }
            };
            diverseav_obs::FaultSite {
                profile: profile.to_string(),
                unit,
                model: model.to_string(),
                mask,
                cycle,
                op,
            }
        }
        // Sensor faults ride the same site schema: the realization seed
        // in `cycle`, the class label in `op`.
        FaultSpec::Sensor(sf) => diverseav_obs::FaultSite {
            profile: "SENSOR".to_string(),
            unit: 0,
            model: "sensor".to_string(),
            mask: 0,
            cycle: Some(sf.seed),
            op: Some(sf.kind.label().to_string()),
        },
    });
    diverseav_obs::RunRecord {
        campaign: campaign.to_string(),
        kind,
        index,
        seed: r.seed,
        scenario: r.scenario.to_string(),
        outcome: r.termination.label().to_string(),
        end_time: r.end_time,
        collision_time: r.collision_time,
        alarm_time: r.alarm_time,
        fault_activated: r.fault_activated,
        fault_onset_time: r.fault_onset_time,
        min_cvip: r.min_cvip,
        div_peak: r.divergence_peak(),
        fault,
    }
}

/// Execute one experiment.
///
/// The detector alarm does *not* interrupt the run: as in the paper, the
/// run continues so that lead detection time (alarm → collision) can be
/// measured; the fail-back system is assumed, not simulated.
pub fn run_experiment(cfg: &RunConfig) -> RunResult {
    run_experiment_observed(cfg, &mut [])
}

/// [`run_experiment`] with caller-supplied [`LoopObserver`]s attached to
/// the [`SimLoop`] alongside the built-in training collector (allocation
/// probes, extra telemetry, ...). Observers see every tick but cannot
/// change the run, so results stay bit-identical to [`run_experiment`].
pub fn run_experiment_observed(cfg: &RunConfig, extra: &mut [&mut dyn LoopObserver]) -> RunResult {
    diverseav_obs::metrics::counter_add("runner.experiments", 1);
    let world = World::new(cfg.scenario.clone(), cfg.sensor, cfg.seed);
    let mut ads = Ads::new(AdsConfig {
        mode: cfg.mode,
        agent: cfg.agent,
        fusion: Default::default(),
        seed: cfg.seed ^ 0x5EED,
        overlap_period: cfg.overlap_period,
    });
    if let Some((model, det_cfg)) = &cfg.detector {
        ads.attach_detector(model.clone(), *det_cfg);
    }
    let mut sensor_fault: Option<SensorFault> = None;
    match cfg.fault {
        Some(FaultSpec::Fabric { unit, profile, model }) => {
            ads.inject_fault(unit, profile, model);
        }
        Some(FaultSpec::Sensor(sf)) => sensor_fault = Some(sf),
        None => {}
    }

    let capacity = (cfg.scenario.duration * TICK_HZ) as usize + 2;
    let mut collector = TrainingCollector::new(cfg.collect_training, capacity);
    let mut perf = PerfObserver::new();
    let mut profiling = ProfilingObserver::new(cfg.scenario.name);
    let mut flight = FlightRecorder::new();
    let mut sim = SimLoop::new(world, ads);
    if let Some(sf) = sensor_fault {
        sim.set_injector(FrameInjector::new(sf));
    }
    let termination = {
        let mut observers: Vec<&mut dyn LoopObserver> = Vec::with_capacity(4 + extra.len());
        observers.push(&mut collector);
        observers.push(&mut perf);
        if profiling.enabled() {
            observers.push(&mut profiling);
        }
        observers.push(&mut flight);
        for obs in extra.iter_mut() {
            observers.push(&mut **obs);
        }
        sim.run_observed(&mut observers)
    };
    let (injector_activated, fault_onset_time) =
        sim.injector().map_or((false, None), |inj| (inj.activated(), inj.onset_time()));
    let (world, ads) = sim.into_parts();

    let stats = |p: Profile| ads.unit_stats(p, 0).expect("unit 0 exists in every mode");
    let gpu_stats = stats(Profile::Gpu);
    let cpu_stats = stats(Profile::Cpu);
    let fault_activated = ads.fault_activated() || injector_activated;
    // The black-box rule: unremarkable runs drop their recording, runs
    // that ended badly keep the drained window for the incident artifact.
    let incident = flight.classify(&termination, fault_activated);
    let flight = if incident.is_some() { flight.drain() } else { Vec::new() };
    RunResult {
        scenario: cfg.scenario.name,
        mode: cfg.mode,
        fault: cfg.fault,
        seed: cfg.seed,
        termination,
        end_time: world.time(),
        collision_time: world.collision_time(),
        alarm_time: ads.alarm_time(),
        fault_activated,
        fault_onset_time,
        min_cvip: world.min_cvip(),
        red_light_violations: world.red_light_violations(),
        ticks: perf.ticks(),
        deadline_misses: profiling.stats().misses,
        incident,
        flight,
        trajectory: world.trajectory().to_vec(),
        training: collector.training,
        actuation: collector.actuation,
        gpu_dyn_instr: gpu_stats.total(),
        cpu_dyn_instr: cpu_stats.total(),
        gpu_ops: gpu_stats.used_ops(),
        cpu_ops: cpu_stats.used_ops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diverseav_agent::AgentError;
    use diverseav_fabric::Trap;
    use diverseav_simworld::lead_slowdown;

    fn short_scenario() -> Scenario {
        let mut s = lead_slowdown();
        s.duration = 2.0;
        s
    }

    #[test]
    fn golden_run_completes_cleanly() {
        let cfg = RunConfig::new(short_scenario(), AgentMode::RoundRobin, 1);
        let r = run_experiment(&cfg);
        assert_eq!(r.termination, Termination::Completed);
        assert!(!r.fault_activated);
        assert!(r.alarm_time.is_none());
        assert!(r.trajectory.len() > 70);
        assert!(r.ticks > 70, "per-run tick count recorded ({})", r.ticks);
        assert_eq!(r.deadline_misses, 0, "round-robin ticks hold the 25 ms budget");
        assert!(r.gpu_dyn_instr > 100_000);
        assert!(!r.gpu_ops.is_empty());
        assert!(!r.cpu_ops.is_empty());
    }

    #[test]
    fn training_collection_gathers_samples() {
        let mut cfg = RunConfig::new(short_scenario(), AgentMode::RoundRobin, 2);
        cfg.collect_training = true;
        let r = run_experiment(&cfg);
        // One divergence pair per tick after the first.
        assert!(r.training.len() >= 70, "{} samples", r.training.len());
    }

    #[test]
    fn cpu_hang_fault_is_platform_detected() {
        let mut cfg = RunConfig::new(short_scenario(), AgentMode::RoundRobin, 3);
        cfg.fault = Some(FaultSpec::Fabric {
            unit: 0,
            profile: Profile::Cpu,
            model: FaultModel::Permanent { op: Op::IAdd, mask: 1 },
        });
        let r = run_experiment(&cfg);
        assert!(r.termination.is_hang_or_crash());
        assert!(r.fault_activated);
        assert!(r.end_time < 1.0, "trap happens on the first control step");
    }

    #[test]
    fn inert_transient_fault_is_masked() {
        // Target an index far beyond the run's instruction count.
        let mut cfg = RunConfig::new(short_scenario(), AgentMode::RoundRobin, 4);
        cfg.fault = Some(FaultSpec::Fabric {
            unit: 0,
            profile: Profile::Gpu,
            model: FaultModel::Transient { instr_index: u64::MAX, mask: 1 },
        });
        let r = run_experiment(&cfg);
        assert_eq!(r.termination, Termination::Completed);
        assert!(!r.fault_activated);
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        let cfg = RunConfig::new(short_scenario(), AgentMode::RoundRobin, 5);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.gpu_dyn_instr, b.gpu_dyn_instr);
    }

    #[test]
    fn termination_labels_are_stable() {
        assert_eq!(Termination::Completed.label(), "completed");
        assert_eq!(Termination::Collision.label(), "collision");
        let hang = Termination::Trap(AgentError { fabric: Profile::Cpu, trap: Trap::Watchdog });
        assert_eq!(hang.label(), "hang");
        let crash = Termination::Trap(AgentError {
            fabric: Profile::Cpu,
            trap: Trap::OutOfBounds { addr: 7 },
        });
        assert_eq!(crash.label(), "crash");
    }

    #[test]
    fn run_record_flattens_fault_site() {
        let mut cfg = RunConfig::new(short_scenario(), AgentMode::RoundRobin, 8);
        cfg.fault = Some(FaultSpec::Fabric {
            unit: 0,
            profile: Profile::Gpu,
            model: FaultModel::Transient { instr_index: 42, mask: 7 },
        });
        cfg.collect_training = true;
        let r = run_experiment(&cfg);
        let rec = run_record("GPU-transient LSD [diverseav]", "injected", 3, &r);
        assert_eq!((rec.kind, rec.index, rec.seed), ("injected", 3, 8));
        assert_eq!(rec.outcome, r.termination.label());
        assert!(rec.render().contains("\"type\": \"run\""));
        let site = rec.fault.expect("fault site recorded");
        assert_eq!((site.cycle, site.mask, site.op), (Some(42), 7, None));
        assert!(r.divergence_peak().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn different_seeds_vary_trajectories() {
        let a = run_experiment(&RunConfig::new(short_scenario(), AgentMode::RoundRobin, 6));
        let b = run_experiment(&RunConfig::new(short_scenario(), AgentMode::RoundRobin, 7));
        assert_ne!(a.trajectory, b.trajectory, "nondeterminism model active");
    }

    #[test]
    fn sensor_fault_activates_and_records_onset() {
        use diverseav_runtime::SensorFaultKind;
        let mut cfg = RunConfig::new(short_scenario(), AgentMode::RoundRobin, 9);
        let sf = SensorFault { kind: SensorFaultKind::Dropout, seed: 0xD50 };
        cfg.fault = Some(FaultSpec::Sensor(sf));
        cfg.collect_training = true;
        let r = run_experiment(&cfg);
        assert!(r.fault_activated, "dropout must corrupt frames");
        let onset = r.fault_onset_time.expect("onset time recorded");
        assert!((onset - sf.onset_step() as f64 / TICK_HZ).abs() < 1e-9, "onset {onset}");
        // The corrupted stream must diverge from the same seed's golden run.
        let golden = run_experiment(&RunConfig::new(short_scenario(), AgentMode::RoundRobin, 9));
        assert_ne!(r.trajectory, golden.trajectory, "sensor fault reached the control loop");
    }

    #[test]
    fn sensor_fault_run_record_carries_class_and_onset() {
        use diverseav_runtime::SensorFaultKind;
        let mut cfg = RunConfig::new(short_scenario(), AgentMode::RoundRobin, 10);
        cfg.fault =
            Some(FaultSpec::Sensor(SensorFault { kind: SensorFaultKind::Oscillation, seed: 3 }));
        let r = run_experiment(&cfg);
        let rec = run_record("SENSOR-oscillation LSD [diverseav]", "injected", 0, &r);
        let site = rec.fault.as_ref().expect("fault site recorded");
        assert_eq!(site.profile, "SENSOR");
        assert_eq!(site.model, "sensor");
        assert_eq!(site.op.as_deref(), Some("oscillation"));
        assert_eq!(site.cycle, Some(3));
        assert_eq!(rec.fault_onset_time, r.fault_onset_time);
        assert!(rec.render().contains("\"fault_onset_time\""));
    }

    #[test]
    fn golden_runs_leave_onset_unset() {
        let r = run_experiment(&RunConfig::new(short_scenario(), AgentMode::RoundRobin, 11));
        assert_eq!(r.fault_onset_time, None);
    }
}
