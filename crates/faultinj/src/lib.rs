//! # diverseav-faultinj
//!
//! Fault-injection campaign tooling for the DiverseAV reproduction: the
//! assessment platform of the paper's Fig 3 — Campaign Manager, Injection
//! Plan Generator, Driver, and run classification.
//!
//! A campaign targets one cell of Table I: `{GPU, CPU} × {transient,
//! permanent} × {LeadSlowdown, GhostCutIn, FrontAccident}`, plus the
//! sensor-boundary extension `sensor-<class>` campaigns (five
//! [`diverseav_runtime::SensorFaultKind`] classes injected between
//! `World::sense_into` and the driver). Golden runs double as the
//! NVBitFI-style profiling pass that sizes the transient fault-site
//! space and enumerates the opcodes for permanent campaigns.
//!
//! ## Example
//!
//! ```no_run
//! use diverseav::AgentMode;
//! use diverseav_fabric::Profile;
//! use diverseav_faultinj::{
//!     run_campaign, summarize, Campaign, CampaignScale, FaultModelKind,
//! };
//! use diverseav_simworld::{ScenarioKind, SensorConfig};
//!
//! let campaign = Campaign {
//!     scenario: ScenarioKind::LeadSlowdown,
//!     target: Profile::Gpu,
//!     kind: FaultModelKind::Transient,
//!     mode: AgentMode::RoundRobin,
//! };
//! let result = run_campaign(campaign, &CampaignScale::quick(), None, SensorConfig::default());
//! let row = summarize(&result, 2.0);
//! println!("{campaign}: {} active, {} hang/crash", row.active, row.hang_crash);
//! ```

pub mod cache;
pub mod campaign;
pub mod exec;
pub mod export;
pub mod outcome;
pub mod plan;
pub mod runner;
pub mod shard;

pub use cache::{sensor_fingerprint, GoldenCache, GoldenKey, GoldenSet};
pub use campaign::{
    collect_training_runs, plan_seed, run_campaign, run_campaign_cached, run_campaign_with_traces,
    scenario_for, summarize, Campaign, CampaignResult, CampaignScale, TableRow, GOLDEN_SEED_BASE,
    INJECTED_SEED_BASE,
};
pub use exec::{detected_parallelism, par_map, par_map_indices, par_map_with, thread_count};
pub use export::{
    write_actuation_csv, write_divergence_csv, write_summary_csv, write_trajectory_csv,
};
pub use outcome::{
    classify, classify_parts, evaluate_detector, first_violation_time, lead_detection_time,
    max_traj_divergence, mean_trajectory, missed_hazard_probability, DetectionEval, OutcomeClass,
};
pub use plan::{generate_plan, FaultModelKind, PlanConfig};
// Sensor-fault realizations live in the runtime crate (the injector is a
// `SimLoop` hook); re-exported here so campaign code has one import root.
pub use diverseav_runtime::{IncidentKind, SensorFault, SensorFaultKind};
pub use runner::{
    run_experiment, run_experiment_observed, run_record, FaultSpec, RunConfig, RunResult,
    Termination,
};
pub use shard::{
    campaign_fingerprint, campaign_units, collect_incidents, execute_shard, execute_shard_limited,
    incident_sidecar_path, merge_artifacts, parse_artifact, parse_incident_artifact,
    summarize_merged, training_units, unit_shard, BatchMark, IncidentArtifact, IncidentManifest,
    IncidentRecord, MergedCampaign, MetricsSlice, RunUnit, ShardArtifact, ShardConfig, ShardError,
    ShardManifest, ShardPerf, ShardRun, ShardSpec, ShardStatus, SHARD_SCHEMA_VERSION,
};
