//! The Injection Plan Generator (Fig 3): samples transient fault sites
//! from a profiling run and enumerates opcodes for permanent campaigns,
//! mirroring the NVBitFI/PinFI methodology of §IV-D. The sensor-boundary
//! extension (ROADMAP item 5) adds per-class [`SensorFaultKind`] plan
//! dimensions alongside the register-flip campaigns.

use crate::runner::{FaultSpec, RunResult};
use diverseav_fabric::{FaultModel, Op, Profile};
use diverseav_runtime::{SensorFault, SensorFaultKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fault-model axis of a campaign: register flips (transient /
/// permanent, §II-B) or one sensor-boundary fault class.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultModelKind {
    /// One corrupted dynamic instruction per run.
    Transient,
    /// Every dynamic instance of one opcode corrupted, per run.
    Permanent,
    /// One sensor-boundary fault of the given class per run, injected
    /// between `World::sense_into` and the driver.
    Sensor(SensorFaultKind),
}

impl FaultModelKind {
    /// Every sensor-fault campaign kind, in stable enumeration order.
    pub const SENSOR_KINDS: [FaultModelKind; 5] = [
        FaultModelKind::Sensor(SensorFaultKind::Dropout),
        FaultModelKind::Sensor(SensorFaultKind::BiasDrift),
        FaultModelKind::Sensor(SensorFaultKind::OutlierBurst),
        FaultModelKind::Sensor(SensorFaultKind::NoiseInflation),
        FaultModelKind::Sensor(SensorFaultKind::Oscillation),
    ];

    /// Short label used in reports and shard manifests ("transient",
    /// "permanent", "sensor-<class>").
    pub fn label(self) -> &'static str {
        match self {
            FaultModelKind::Transient => "transient",
            FaultModelKind::Permanent => "permanent",
            FaultModelKind::Sensor(class) => match class {
                SensorFaultKind::Dropout => "sensor-dropout",
                SensorFaultKind::BiasDrift => "sensor-bias-drift",
                SensorFaultKind::OutlierBurst => "sensor-outlier-burst",
                SensorFaultKind::NoiseInflation => "sensor-noise-inflation",
                SensorFaultKind::Oscillation => "sensor-oscillation",
            },
        }
    }

    /// Parse a label produced by [`label`](Self::label) (the shard CLI's
    /// `--kind` axis).
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "transient" => Some(FaultModelKind::Transient),
            "permanent" => Some(FaultModelKind::Permanent),
            _ => {
                let class = s.strip_prefix("sensor-")?;
                SensorFaultKind::from_label(class).map(FaultModelKind::Sensor)
            }
        }
    }
}

/// Plan-generation parameters.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PlanConfig {
    /// Campaign kind.
    pub kind: FaultModelKind,
    /// Target fabric.
    pub target: Profile,
    /// Number of transient injections to sample.
    pub n_transient: usize,
    /// Repeats per opcode for permanent campaigns (the paper uses 3 to
    /// capture nondeterministic effects).
    pub repeats: usize,
    /// Sampling seed.
    pub seed: u64,
}

/// Generate the injection plan for one campaign from a profiling run.
///
/// Transient sites are drawn uniformly over the profiled dynamic
/// instruction stream; permanent faults enumerate every opcode the
/// profiling run actually executed on the target fabric (the paper's "171
/// GPU opcodes / 131 Intel opcodes" enumeration). Masks are single random
/// bit flips of the 32-bit destination register. Sensor plans draw
/// `n_transient` per-run realization seeds — each realized fault (onset,
/// magnitudes, per-frame noise) is then a pure function of its seed, so
/// sharding and caching work exactly as for register campaigns.
pub fn generate_plan(profile_run: &RunResult, cfg: &PlanConfig) -> Vec<FaultSpec> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF417);
    let mut specs = Vec::new();
    match cfg.kind {
        FaultModelKind::Transient => {
            let space = match cfg.target {
                Profile::Gpu => profile_run.gpu_dyn_instr,
                Profile::Cpu => profile_run.cpu_dyn_instr,
            };
            assert!(space > 0, "profiling run executed no instructions on {}", cfg.target);
            for _ in 0..cfg.n_transient {
                let instr_index = rng.gen_range(0..space);
                let mask = 1u32 << rng.gen_range(0..32);
                specs.push(FaultSpec::Fabric {
                    unit: 0,
                    profile: cfg.target,
                    model: FaultModel::Transient { instr_index, mask },
                });
            }
        }
        FaultModelKind::Permanent => {
            let ops: Vec<Op> = match cfg.target {
                Profile::Gpu => profile_run.gpu_ops.iter().map(|&(op, _)| op).collect(),
                Profile::Cpu => profile_run.cpu_ops.iter().map(|&(op, _)| op).collect(),
            };
            assert!(!ops.is_empty(), "profiling run used no opcodes on {}", cfg.target);
            for op in ops {
                for _ in 0..cfg.repeats {
                    let mask = 1u32 << rng.gen_range(0..32);
                    specs.push(FaultSpec::Fabric {
                        unit: 0,
                        profile: cfg.target,
                        model: FaultModel::Permanent { op, mask },
                    });
                }
            }
        }
        FaultModelKind::Sensor(class) => {
            for _ in 0..cfg.n_transient {
                let seed: u64 = rng.gen();
                specs.push(FaultSpec::Sensor(SensorFault { kind: class, seed }));
            }
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Termination;
    use diverseav::AgentMode;

    fn fake_profile() -> RunResult {
        RunResult {
            scenario: "test",
            mode: AgentMode::RoundRobin,
            fault: None,
            seed: 0,
            termination: Termination::Completed,
            end_time: 1.0,
            collision_time: None,
            alarm_time: None,
            fault_activated: false,
            fault_onset_time: None,
            min_cvip: 10.0,
            red_light_violations: 0,
            ticks: 0,
            deadline_misses: 0,
            incident: None,
            flight: Vec::new(),
            trajectory: Vec::new(),
            training: Vec::new(),
            actuation: Vec::new(),
            gpu_dyn_instr: 1_000_000,
            cpu_dyn_instr: 10_000,
            gpu_ops: vec![(Op::FAdd, 500), (Op::FMul, 300), (Op::Ld, 200)],
            cpu_ops: vec![(Op::IAdd, 100), (Op::FSub, 50)],
        }
    }

    #[test]
    fn transient_plan_samples_within_space() {
        let cfg = PlanConfig {
            kind: FaultModelKind::Transient,
            target: Profile::Gpu,
            n_transient: 50,
            repeats: 3,
            seed: 1,
        };
        let plan = generate_plan(&fake_profile(), &cfg);
        assert_eq!(plan.len(), 50);
        for spec in &plan {
            match spec {
                FaultSpec::Fabric {
                    profile,
                    model: FaultModel::Transient { instr_index, mask },
                    ..
                } => {
                    assert_eq!(*profile, Profile::Gpu);
                    assert!(*instr_index < 1_000_000);
                    assert_eq!(mask.count_ones(), 1, "single-bit masks");
                }
                other => panic!("expected transient fabric fault, got {other:?}"),
            }
        }
    }

    #[test]
    fn permanent_plan_enumerates_used_opcodes() {
        let cfg = PlanConfig {
            kind: FaultModelKind::Permanent,
            target: Profile::Cpu,
            n_transient: 0,
            repeats: 3,
            seed: 2,
        };
        let plan = generate_plan(&fake_profile(), &cfg);
        assert_eq!(plan.len(), 2 * 3, "2 used CPU opcodes × 3 repeats");
        assert!(plan.iter().all(|s| matches!(
            s,
            FaultSpec::Fabric { model: FaultModel::Permanent { op, .. }, .. }
                if *op == Op::IAdd || *op == Op::FSub
        )));
    }

    #[test]
    fn sensor_plan_draws_seed_pure_realizations() {
        for class in SensorFaultKind::ALL {
            let cfg = PlanConfig {
                kind: FaultModelKind::Sensor(class),
                target: Profile::Gpu,
                n_transient: 12,
                repeats: 3,
                seed: 9,
            };
            let plan = generate_plan(&fake_profile(), &cfg);
            assert_eq!(plan.len(), 12, "sensor plans size like transient plans");
            let mut seeds: Vec<u64> = plan
                .iter()
                .map(|s| match s {
                    FaultSpec::Sensor(sf) => {
                        assert_eq!(sf.kind, class);
                        sf.seed
                    }
                    other => panic!("expected sensor fault, got {other:?}"),
                })
                .collect();
            assert_eq!(plan, generate_plan(&fake_profile(), &cfg), "seed-pure");
            seeds.sort_unstable();
            seeds.dedup();
            assert!(seeds.len() > 10, "realization seeds are well spread");
        }
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let cfg = PlanConfig {
            kind: FaultModelKind::Transient,
            target: Profile::Gpu,
            n_transient: 10,
            repeats: 1,
            seed: 3,
        };
        assert_eq!(generate_plan(&fake_profile(), &cfg), generate_plan(&fake_profile(), &cfg));
        let other = PlanConfig { seed: 4, ..cfg };
        assert_ne!(generate_plan(&fake_profile(), &cfg), generate_plan(&fake_profile(), &other));
    }

    #[test]
    fn labels() {
        assert_eq!(FaultModelKind::Transient.label(), "transient");
        assert_eq!(FaultModelKind::Permanent.label(), "permanent");
        assert_eq!(FaultModelKind::Sensor(SensorFaultKind::BiasDrift).label(), "sensor-bias-drift");
        let all: Vec<&str> = FaultModelKind::SENSOR_KINDS.iter().map(|k| k.label()).collect();
        assert_eq!(
            all,
            [
                "sensor-dropout",
                "sensor-bias-drift",
                "sensor-outlier-burst",
                "sensor-noise-inflation",
                "sensor-oscillation"
            ]
        );
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        let kinds = [FaultModelKind::Transient, FaultModelKind::Permanent]
            .into_iter()
            .chain(FaultModelKind::SENSOR_KINDS);
        for kind in kinds {
            assert_eq!(FaultModelKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FaultModelKind::from_label("sensor-bogus"), None);
        assert_eq!(FaultModelKind::from_label("bogus"), None);
    }
}
