//! The Injection Plan Generator (Fig 3): samples transient fault sites
//! from a profiling run and enumerates opcodes for permanent campaigns,
//! mirroring the NVBitFI/PinFI methodology of §IV-D.

use crate::runner::{FaultSpec, RunResult};
use diverseav_fabric::{FaultModel, Op, Profile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Transient vs permanent campaign.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultModelKind {
    /// One corrupted dynamic instruction per run.
    Transient,
    /// Every dynamic instance of one opcode corrupted, per run.
    Permanent,
}

impl FaultModelKind {
    /// Short label used in reports ("transient"/"permanent").
    pub fn label(self) -> &'static str {
        match self {
            FaultModelKind::Transient => "transient",
            FaultModelKind::Permanent => "permanent",
        }
    }
}

/// Plan-generation parameters.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PlanConfig {
    /// Campaign kind.
    pub kind: FaultModelKind,
    /// Target fabric.
    pub target: Profile,
    /// Number of transient injections to sample.
    pub n_transient: usize,
    /// Repeats per opcode for permanent campaigns (the paper uses 3 to
    /// capture nondeterministic effects).
    pub repeats: usize,
    /// Sampling seed.
    pub seed: u64,
}

/// Generate the injection plan for one campaign from a profiling run.
///
/// Transient sites are drawn uniformly over the profiled dynamic
/// instruction stream; permanent faults enumerate every opcode the
/// profiling run actually executed on the target fabric (the paper's "171
/// GPU opcodes / 131 Intel opcodes" enumeration). Masks are single random
/// bit flips of the 32-bit destination register.
pub fn generate_plan(profile_run: &RunResult, cfg: &PlanConfig) -> Vec<FaultSpec> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF417);
    let mut specs = Vec::new();
    match cfg.kind {
        FaultModelKind::Transient => {
            let space = match cfg.target {
                Profile::Gpu => profile_run.gpu_dyn_instr,
                Profile::Cpu => profile_run.cpu_dyn_instr,
            };
            assert!(space > 0, "profiling run executed no instructions on {}", cfg.target);
            for _ in 0..cfg.n_transient {
                let instr_index = rng.gen_range(0..space);
                let mask = 1u32 << rng.gen_range(0..32);
                specs.push(FaultSpec {
                    unit: 0,
                    profile: cfg.target,
                    model: FaultModel::Transient { instr_index, mask },
                });
            }
        }
        FaultModelKind::Permanent => {
            let ops: Vec<Op> = match cfg.target {
                Profile::Gpu => profile_run.gpu_ops.iter().map(|&(op, _)| op).collect(),
                Profile::Cpu => profile_run.cpu_ops.iter().map(|&(op, _)| op).collect(),
            };
            assert!(!ops.is_empty(), "profiling run used no opcodes on {}", cfg.target);
            for op in ops {
                for _ in 0..cfg.repeats {
                    let mask = 1u32 << rng.gen_range(0..32);
                    specs.push(FaultSpec {
                        unit: 0,
                        profile: cfg.target,
                        model: FaultModel::Permanent { op, mask },
                    });
                }
            }
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Termination;
    use diverseav::AgentMode;

    fn fake_profile() -> RunResult {
        RunResult {
            scenario: "test",
            mode: AgentMode::RoundRobin,
            fault: None,
            seed: 0,
            termination: Termination::Completed,
            end_time: 1.0,
            collision_time: None,
            alarm_time: None,
            fault_activated: false,
            min_cvip: 10.0,
            red_light_violations: 0,
            ticks: 0,
            deadline_misses: 0,
            trajectory: Vec::new(),
            training: Vec::new(),
            actuation: Vec::new(),
            gpu_dyn_instr: 1_000_000,
            cpu_dyn_instr: 10_000,
            gpu_ops: vec![(Op::FAdd, 500), (Op::FMul, 300), (Op::Ld, 200)],
            cpu_ops: vec![(Op::IAdd, 100), (Op::FSub, 50)],
        }
    }

    #[test]
    fn transient_plan_samples_within_space() {
        let cfg = PlanConfig {
            kind: FaultModelKind::Transient,
            target: Profile::Gpu,
            n_transient: 50,
            repeats: 3,
            seed: 1,
        };
        let plan = generate_plan(&fake_profile(), &cfg);
        assert_eq!(plan.len(), 50);
        for spec in &plan {
            assert_eq!(spec.profile, Profile::Gpu);
            match spec.model {
                FaultModel::Transient { instr_index, mask } => {
                    assert!(instr_index < 1_000_000);
                    assert_eq!(mask.count_ones(), 1, "single-bit masks");
                }
                _ => panic!("expected transient"),
            }
        }
    }

    #[test]
    fn permanent_plan_enumerates_used_opcodes() {
        let cfg = PlanConfig {
            kind: FaultModelKind::Permanent,
            target: Profile::Cpu,
            n_transient: 0,
            repeats: 3,
            seed: 2,
        };
        let plan = generate_plan(&fake_profile(), &cfg);
        assert_eq!(plan.len(), 2 * 3, "2 used CPU opcodes × 3 repeats");
        assert!(plan.iter().all(|s| matches!(
            s.model,
            FaultModel::Permanent { op, .. } if op == Op::IAdd || op == Op::FSub
        )));
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let cfg = PlanConfig {
            kind: FaultModelKind::Transient,
            target: Profile::Gpu,
            n_transient: 10,
            repeats: 1,
            seed: 3,
        };
        assert_eq!(generate_plan(&fake_profile(), &cfg), generate_plan(&fake_profile(), &cfg));
        let other = PlanConfig { seed: 4, ..cfg };
        assert_ne!(generate_plan(&fake_profile(), &cfg), generate_plan(&fake_profile(), &other));
    }

    #[test]
    fn labels() {
        assert_eq!(FaultModelKind::Transient.label(), "transient");
        assert_eq!(FaultModelKind::Permanent.label(), "permanent");
    }
}
