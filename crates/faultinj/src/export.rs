//! CSV export of experiment records, for external plotting and archival.
//!
//! Everything the bench harness prints as text tables can also be dumped
//! as machine-readable CSV via these writers.

use crate::runner::RunResult;
use std::io::{self, Write};

/// Write the ego trajectory of a run as `t,x,y` rows.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trajectory_csv<W: Write>(mut w: W, result: &RunResult) -> io::Result<()> {
    writeln!(w, "t,x,y")?;
    for p in &result.trajectory {
        writeln!(w, "{:.4},{:.4},{:.4}", p.t, p.pos.x, p.pos.y)?;
    }
    Ok(())
}

/// Write the recorded divergence stream as
/// `t,v,a,w,alpha,d_throttle,d_brake,d_steer` rows.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_divergence_csv<W: Write>(mut w: W, result: &RunResult) -> io::Result<()> {
    writeln!(w, "t,v,a,w,alpha,d_throttle,d_brake,d_steer")?;
    for s in &result.training {
        writeln!(
            w,
            "{:.4},{:.4},{:.4},{:.5},{:.5},{:.6},{:.6},{:.6}",
            s.t,
            s.state.v,
            s.state.a,
            s.state.w,
            s.state.alpha,
            s.div.throttle,
            s.div.brake,
            s.div.steer
        )?;
    }
    Ok(())
}

/// Write the actuation/CVIP trace as `t,throttle,brake,steer,cvip` rows
/// (CVIP is empty when no vehicle is in path).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_actuation_csv<W: Write>(mut w: W, result: &RunResult) -> io::Result<()> {
    writeln!(w, "t,throttle,brake,steer,cvip")?;
    for (t, c, cvip) in &result.actuation {
        let cvip_s = if cvip.is_finite() { format!("{cvip:.3}") } else { String::new() };
        writeln!(w, "{:.4},{:.4},{:.4},{:.4},{}", t, c.throttle, c.brake, c.steer, cvip_s)?;
    }
    Ok(())
}

/// Write a one-line-per-run summary of a result set:
/// `scenario,mode,fault,seed,termination,end_time,collision_t,alarm_t,activated,min_cvip`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_summary_csv<W: Write>(mut w: W, results: &[RunResult]) -> io::Result<()> {
    writeln!(
        w,
        "scenario,mode,fault,seed,termination,end_time,collision_t,alarm_t,activated,min_cvip"
    )?;
    for r in results {
        let fault = r.fault.map(|f| f.to_string()).unwrap_or_else(|| "golden".to_string());
        let opt = |o: Option<f64>| o.map(|v| format!("{v:.3}")).unwrap_or_default();
        writeln!(
            w,
            "{},{},\"{}\",{},{:?},{:.3},{},{},{},{:.3}",
            r.scenario,
            r.mode,
            fault,
            r.seed,
            r.termination,
            r.end_time,
            opt(r.collision_time),
            opt(r.alarm_time),
            r.fault_activated,
            if r.min_cvip.is_finite() { r.min_cvip } else { -1.0 },
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_experiment, RunConfig};
    use diverseav::AgentMode;
    use diverseav_simworld::lead_slowdown;

    fn sample_result() -> RunResult {
        let mut scenario = lead_slowdown();
        scenario.duration = 1.0;
        let mut cfg = RunConfig::new(scenario, AgentMode::RoundRobin, 1);
        cfg.collect_training = true;
        run_experiment(&cfg)
    }

    #[test]
    fn trajectory_csv_has_header_and_rows() {
        let r = sample_result();
        let mut buf = Vec::new();
        write_trajectory_csv(&mut buf, &r).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("t,x,y\n"));
        assert_eq!(text.lines().count(), r.trajectory.len() + 1);
    }

    #[test]
    fn divergence_csv_matches_stream_length() {
        let r = sample_result();
        let mut buf = Vec::new();
        write_divergence_csv(&mut buf, &r).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), r.training.len() + 1);
        assert!(text.lines().nth(1).expect("data row").split(',').count() == 8);
    }

    #[test]
    fn actuation_csv_encodes_infinite_cvip_as_empty() {
        let r = sample_result();
        let mut buf = Vec::new();
        write_actuation_csv(&mut buf, &r).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("t,throttle,brake,steer,cvip\n"));
    }

    #[test]
    fn summary_csv_one_row_per_run() {
        let r = sample_result();
        let mut buf = Vec::new();
        write_summary_csv(&mut buf, std::slice::from_ref(&r)).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("golden"));
    }
}
