//! Golden-run cache shared across the campaigns of one experiment.
//!
//! Table I runs four campaigns per (scenario, mode) cell — {GPU, CPU} ×
//! {transient, permanent} — and every campaign starts from the same
//! fault-free golden set: identical scenario, duration, agent mode,
//! sensor config, run count, and seeds (`1000 + i`). The injection
//! target and fault model only affect the *injected* runs, so the golden
//! work is 4× redundant. [`GoldenCache`] computes each distinct golden
//! set exactly once and shares it; concurrent requesters for the same
//! key block on a `OnceLock` instead of duplicating the simulation.
//!
//! The cache must never alias two campaigns whose golden runs could
//! differ: the key captures every [`RunConfig`](crate::RunConfig) input
//! that reaches a golden run (float fields as raw bit patterns, so key
//! equality is exactly run-input equality). Detector-attached runs are
//! *not* cached — the detector annotates alarm times into the results,
//! and models differ per campaign — callers bypass the cache whenever a
//! detector is present.

use crate::runner::RunResult;
use diverseav::AgentMode;
use diverseav_simworld::{ScenarioKind, SensorConfig, TrajPoint};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: every input that determines a campaign's golden runs.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GoldenKey {
    /// Driving scenario.
    pub scenario: ScenarioKind,
    /// Scenario duration (bit pattern of the `f64` seconds).
    pub duration_bits: u64,
    /// Agent deployment mode.
    pub mode: AgentMode,
    /// Sensor configuration fingerprint (all fields, floats as bits).
    pub sensor: [u64; 14],
    /// Golden runs requested.
    pub golden_runs: usize,
    /// Whether divergence traces are recorded.
    pub collect_traces: bool,
}

impl GoldenKey {
    /// Key for one campaign's golden set.
    pub fn new(
        scenario: ScenarioKind,
        duration: f64,
        mode: AgentMode,
        sensor: &SensorConfig,
        golden_runs: usize,
        collect_traces: bool,
    ) -> Self {
        GoldenKey {
            scenario,
            duration_bits: duration.to_bits(),
            mode,
            sensor: sensor_fingerprint(sensor),
            golden_runs,
            collect_traces,
        }
    }
}

/// Exact bit-level fingerprint of every [`SensorConfig`] field. Also
/// folded into the shard-artifact campaign fingerprint
/// ([`crate::shard::campaign_fingerprint`]), so shards produced under
/// different sensor configurations can never merge.
pub fn sensor_fingerprint(s: &SensorConfig) -> [u64; 14] {
    [
        s.width as u64,
        s.height as u64,
        s.hfov_deg.to_bits(),
        s.cam_height.to_bits(),
        s.cam_yaws[0].to_bits(),
        s.cam_yaws[1].to_bits(),
        s.cam_yaws[2].to_bits(),
        s.pixel_noise.to_bits(),
        s.texture_amp.to_bits(),
        s.gps_noise.to_bits(),
        s.speed_noise.to_bits(),
        s.imu_noise.to_bits(),
        s.enable_lidar as u64,
        (s.lidar_rays as u64) ^ ((s.lidar_range.to_bits()).rotate_left(17)),
    ]
}

/// A campaign's golden runs plus the derived violation baseline.
#[derive(Clone, Debug)]
pub struct GoldenSet {
    /// Golden (fault-free) runs.
    pub golden: Vec<RunResult>,
    /// Mean golden trajectory (the violation baseline).
    pub baseline: Vec<TrajPoint>,
}

/// Compute-once cache of golden sets, keyed on [`GoldenKey`].
///
/// Thread-safe: campaigns running in parallel share one cache. Each
/// key's `OnceLock` guarantees the golden set is computed exactly once
/// even under concurrent first requests (later arrivals block until the
/// initializer finishes), so hit/miss counts are deterministic: one miss
/// per distinct key, hits for every other request. Every request also
/// feeds the process-global `cache.hits` / `cache.misses` counters in
/// [`diverseav_obs::metrics`] for the `METRICS_campaigns.json` artifact.
#[derive(Default)]
pub struct GoldenCache {
    entries: Mutex<HashMap<GoldenKey, Arc<OnceLock<Arc<GoldenSet>>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl GoldenCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The golden set for `key`, computing it with `compute` on first
    /// request and returning the shared copy afterwards.
    pub fn get_or_compute<F>(&self, key: GoldenKey, compute: F) -> Arc<GoldenSet>
    where
        F: FnOnce() -> GoldenSet,
    {
        let cell = {
            let mut entries = self.entries.lock().expect("golden cache poisoned");
            Arc::clone(entries.entry(key).or_default())
        };
        // Count exactly one miss per key: only the closure that actually
        // runs increments `misses`; every other path is a hit.
        let mut computed = false;
        let set = cell.get_or_init(|| {
            computed = true;
            Arc::new(compute())
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            diverseav_obs::metrics::counter_add("cache.misses", 1);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            diverseav_obs::metrics::counter_add("cache.hits", 1);
        }
        Arc::clone(set)
    }

    /// Requests served from an already-computed entry.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to compute their entry.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct keys currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("golden cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_with_marker(seed: u64) -> GoldenSet {
        let marker = TrajPoint { t: seed as f64, pos: diverseav_simworld::Vec2 { x: 0.0, y: 0.0 } };
        GoldenSet { golden: Vec::new(), baseline: vec![marker] }
    }

    fn key(scenario: ScenarioKind, duration: f64) -> GoldenKey {
        GoldenKey::new(scenario, duration, AgentMode::RoundRobin, &SensorConfig::default(), 4, true)
    }

    #[test]
    fn second_request_hits_and_shares() {
        let cache = GoldenCache::new();
        let k = key(ScenarioKind::LeadSlowdown, 30.0);
        let a = cache.get_or_compute(k.clone(), || set_with_marker(1));
        let b = cache.get_or_compute(k, || set_with_marker(2));
        assert_eq!(b.baseline[0].t, 1.0, "second compute must not run");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
    }

    #[test]
    fn differing_inputs_do_not_alias() {
        let base = key(ScenarioKind::LeadSlowdown, 30.0);
        let noisy = SensorConfig {
            pixel_noise: SensorConfig::default().pixel_noise + 0.5,
            ..Default::default()
        };
        let variants = [
            key(ScenarioKind::GhostCutIn, 30.0),
            key(ScenarioKind::LeadSlowdown, 31.0),
            GoldenKey::new(
                ScenarioKind::LeadSlowdown,
                30.0,
                AgentMode::Single,
                &SensorConfig::default(),
                4,
                true,
            ),
            GoldenKey::new(
                ScenarioKind::LeadSlowdown,
                30.0,
                AgentMode::RoundRobin,
                &noisy,
                4,
                true,
            ),
            GoldenKey::new(
                ScenarioKind::LeadSlowdown,
                30.0,
                AgentMode::RoundRobin,
                &SensorConfig::default(),
                5,
                true,
            ),
            GoldenKey::new(
                ScenarioKind::LeadSlowdown,
                30.0,
                AgentMode::RoundRobin,
                &SensorConfig::default(),
                4,
                false,
            ),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(&base, v, "variant {i} must not alias the base key");
        }
    }

    #[test]
    fn concurrent_first_requests_compute_once() {
        let cache = GoldenCache::new();
        let k = key(ScenarioKind::FrontAccident, 20.0);
        let computes = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_compute(k.clone(), || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        set_with_marker(9)
                    });
                });
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
        assert_eq!(cache.len(), 1);
    }
}
