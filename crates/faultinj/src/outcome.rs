//! Run classification and detection-quality metrics: trajectory
//! violations, Table-I outcome classes, precision/recall, and lead
//! detection time.

use crate::runner::RunResult;
use diverseav_simworld::TrajPoint;

/// Outcome class of one fault-injected run (Table I categories).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OutcomeClass {
    /// Platform-detected hang or crash.
    HangCrash,
    /// The ego vehicle collided.
    Accident,
    /// No accident, but the trajectory diverged ≥ `td` from the baseline.
    TrajViolation,
    /// No observable safety impact.
    Benign,
}

/// Mean trajectory of a set of golden runs (per-index mean over the runs
/// that reached that index) — the paper's baseline trajectory.
pub fn mean_trajectory(runs: &[&[TrajPoint]]) -> Vec<TrajPoint> {
    let max_len = runs.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut out = Vec::with_capacity(max_len);
    for i in 0..max_len {
        let pts: Vec<&TrajPoint> = runs.iter().filter_map(|r| r.get(i)).collect();
        if pts.is_empty() {
            break;
        }
        let n = pts.len() as f64;
        let (sx, sy, st) = pts
            .iter()
            .fold((0.0, 0.0, 0.0), |acc, p| (acc.0 + p.pos.x, acc.1 + p.pos.y, acc.2 + p.t));
        out.push(TrajPoint { t: st / n, pos: diverseav_simworld::Vec2::new(sx / n, sy / n) });
    }
    out
}

/// Maximum positional divergence `δ_pos^{E,B}` between a run's trajectory
/// and the baseline, compared index-aligned over their overlap (§V-B).
pub fn max_traj_divergence(traj: &[TrajPoint], baseline: &[TrajPoint]) -> f64 {
    traj.iter().zip(baseline.iter()).map(|(a, b)| a.pos.dist(b.pos)).fold(0.0, f64::max)
}

/// Time at which the trajectory first diverges ≥ `td` from the baseline.
pub fn first_violation_time(traj: &[TrajPoint], baseline: &[TrajPoint], td: f64) -> Option<f64> {
    traj.iter().zip(baseline.iter()).find(|(a, b)| a.pos.dist(b.pos) >= td).map(|(a, _)| a.t)
}

/// Classify one run against a baseline trajectory with threshold `td`.
pub fn classify(result: &RunResult, baseline: &[TrajPoint], td: f64) -> OutcomeClass {
    classify_parts(
        result.termination.label(),
        result.has_accident(),
        &result.trajectory,
        baseline,
        td,
    )
}

/// [`classify`] from a run's serialized parts — outcome label
/// (`"completed"` / `"collision"` / `"hang"` / `"crash"`), collision
/// flag, and trajectory — for callers reading runs back from a shard
/// artifact instead of holding a live [`RunResult`]. The label set is
/// exactly `Termination::label()`, so this classifies identically to
/// [`classify`] on the original run.
pub fn classify_parts(
    outcome: &str,
    collision: bool,
    traj: &[TrajPoint],
    baseline: &[TrajPoint],
    td: f64,
) -> OutcomeClass {
    if matches!(outcome, "hang" | "crash") {
        OutcomeClass::HangCrash
    } else if collision {
        OutcomeClass::Accident
    } else if max_traj_divergence(traj, baseline) >= td {
        OutcomeClass::TrajViolation
    } else {
        OutcomeClass::Benign
    }
}

/// Confusion counts of the error detector over a set of runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct DetectionEval {
    /// Safety violation, alarm raised.
    pub tp: usize,
    /// No safety violation, alarm raised.
    pub fp: usize,
    /// Safety violation, no alarm.
    pub fn_: usize,
    /// No safety violation, no alarm.
    pub tn: usize,
}

impl DetectionEval {
    /// Precision = TP / (TP + FP); 1.0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when nothing was positive.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 = harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Evaluate the detector over fault-injected runs (§V-D).
///
/// Hang/crash runs are excluded: the platform detects those directly and
/// triggers the fail-back system, so they never reach the statistical
/// detector. Ground-truth positive = accident or trajectory violation.
pub fn evaluate_detector(results: &[RunResult], baseline: &[TrajPoint], td: f64) -> DetectionEval {
    let mut eval = DetectionEval::default();
    for r in results {
        if r.termination.is_hang_or_crash() {
            continue;
        }
        let positive = matches!(
            classify(r, baseline, td),
            OutcomeClass::Accident | OutcomeClass::TrajViolation
        );
        let alarmed = r.alarm_time.is_some();
        match (positive, alarmed) {
            (true, true) => eval.tp += 1,
            (false, true) => eval.fp += 1,
            (true, false) => eval.fn_ += 1,
            (false, false) => eval.tn += 1,
        }
    }
    eval
}

/// Lead detection time for one run: violation time (collision, or first
/// trajectory-threshold crossing) minus alarm time (Fig 8). `None` when
/// the run has no alarm or no violation, or the alarm came after.
pub fn lead_detection_time(result: &RunResult, baseline: &[TrajPoint], td: f64) -> Option<f64> {
    let alarm = result.alarm_time?;
    let violation =
        result.collision_time.or_else(|| first_violation_time(&result.trajectory, baseline, td))?;
    (violation > alarm).then_some(violation - alarm)
}

/// Probability that a fault evades detection *and* causes a safety hazard
/// (§VI-A: missed safety hazards / total fault injections).
pub fn missed_hazard_probability(results: &[RunResult], baseline: &[TrajPoint], td: f64) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    let missed = results
        .iter()
        .filter(|r| {
            !r.termination.is_hang_or_crash()
                && r.alarm_time.is_none()
                && matches!(
                    classify(r, baseline, td),
                    OutcomeClass::Accident | OutcomeClass::TrajViolation
                )
        })
        .count();
    missed as f64 / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Termination;
    use diverseav::AgentMode;
    use diverseav_simworld::Vec2;

    fn traj(points: &[(f64, f64, f64)]) -> Vec<TrajPoint> {
        points.iter().map(|&(t, x, y)| TrajPoint { t, pos: Vec2::new(x, y) }).collect()
    }

    fn result(traj_pts: Vec<TrajPoint>, collision: Option<f64>, alarm: Option<f64>) -> RunResult {
        RunResult {
            scenario: "t",
            mode: AgentMode::RoundRobin,
            fault: None,
            seed: 0,
            termination: if collision.is_some() {
                Termination::Collision
            } else {
                Termination::Completed
            },
            end_time: traj_pts.last().map(|p| p.t).unwrap_or(0.0),
            collision_time: collision,
            alarm_time: alarm,
            fault_activated: true,
            fault_onset_time: None,
            min_cvip: 5.0,
            red_light_violations: 0,
            ticks: 0,
            deadline_misses: 0,
            incident: None,
            flight: Vec::new(),
            trajectory: traj_pts,
            training: Vec::new(),
            actuation: Vec::new(),
            gpu_dyn_instr: 0,
            cpu_dyn_instr: 0,
            gpu_ops: Vec::new(),
            cpu_ops: Vec::new(),
        }
    }

    #[test]
    fn mean_trajectory_averages() {
        let a = traj(&[(0.0, 0.0, 0.0), (1.0, 2.0, 0.0)]);
        let b = traj(&[(0.0, 0.0, 2.0), (1.0, 4.0, 2.0)]);
        let m = mean_trajectory(&[&a, &b]);
        assert_eq!(m.len(), 2);
        assert!((m[1].pos.x - 3.0).abs() < 1e-12);
        assert!((m[1].pos.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_trajectory_handles_uneven_lengths() {
        let a = traj(&[(0.0, 0.0, 0.0), (1.0, 2.0, 0.0), (2.0, 4.0, 0.0)]);
        let b = traj(&[(0.0, 0.0, 2.0)]);
        let m = mean_trajectory(&[&a, &b]);
        assert_eq!(m.len(), 3);
        assert_eq!(m[2].pos.x, 4.0, "tail averages the surviving run only");
    }

    #[test]
    fn divergence_and_violation_time() {
        let base = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0), (2.0, 2.0, 0.0)]);
        let run = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 1.5), (2.0, 2.0, 3.0)]);
        assert!((max_traj_divergence(&run, &base) - 3.0).abs() < 1e-12);
        assert_eq!(first_violation_time(&run, &base, 1.0), Some(1.0));
        assert_eq!(first_violation_time(&run, &base, 10.0), None);
    }

    #[test]
    fn classification_priorities() {
        let base = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]);
        let benign = result(base.clone(), None, None);
        assert_eq!(classify(&benign, &base, 2.0), OutcomeClass::Benign);
        let crash = RunResult {
            termination: Termination::Trap(diverseav_agent::AgentError {
                fabric: diverseav_fabric::Profile::Cpu,
                trap: diverseav_fabric::Trap::Watchdog,
            }),
            ..result(base.clone(), None, None)
        };
        assert_eq!(classify(&crash, &base, 2.0), OutcomeClass::HangCrash);
        let accident = result(base.clone(), Some(0.5), None);
        assert_eq!(classify(&accident, &base, 2.0), OutcomeClass::Accident);
        let viol = result(traj(&[(0.0, 0.0, 5.0), (1.0, 1.0, 5.0)]), None, None);
        assert_eq!(classify(&viol, &base, 2.0), OutcomeClass::TrajViolation);
    }

    #[test]
    fn classify_parts_agrees_with_classify() {
        let base = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]);
        let cases = [
            result(base.clone(), None, None),
            result(base.clone(), Some(0.5), None),
            result(traj(&[(0.0, 0.0, 5.0), (1.0, 1.0, 5.0)]), None, None),
            RunResult {
                termination: Termination::Trap(diverseav_agent::AgentError {
                    fabric: diverseav_fabric::Profile::Gpu,
                    trap: diverseav_fabric::Trap::Watchdog,
                }),
                ..result(base.clone(), None, None)
            },
        ];
        for r in &cases {
            assert_eq!(
                classify_parts(r.termination.label(), r.has_accident(), &r.trajectory, &base, 2.0),
                classify(r, &base, 2.0),
                "parts-based classification must match, outcome {}",
                r.termination.label()
            );
        }
    }

    #[test]
    fn detector_eval_counts_and_scores() {
        let base = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]);
        let results = vec![
            result(traj(&[(0.0, 0.0, 9.0)]), Some(0.5), Some(0.2)), // TP
            result(base.clone(), None, Some(0.2)),                  // FP
            result(traj(&[(0.0, 0.0, 9.0)]), Some(0.5), None),      // FN
            result(base.clone(), None, None),                       // TN
        ];
        let eval = evaluate_detector(&results, &base, 2.0);
        assert_eq!((eval.tp, eval.fp, eval.fn_, eval.tn), (1, 1, 1, 1));
        assert!((eval.precision() - 0.5).abs() < 1e-12);
        assert!((eval.recall() - 0.5).abs() < 1e-12);
        assert!((eval.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_eval_is_perfect() {
        let e = DetectionEval::default();
        assert_eq!(e.precision(), 1.0);
        assert_eq!(e.recall(), 1.0);
        assert_eq!(e.f1(), 1.0);
    }

    #[test]
    fn lead_time_requires_alarm_before_violation() {
        let base = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]);
        let r = result(base.clone(), Some(3.0), Some(1.2));
        assert!((lead_detection_time(&r, &base, 2.0).expect("lead") - 1.8).abs() < 1e-12);
        let late = result(base.clone(), Some(1.0), Some(2.0));
        assert_eq!(lead_detection_time(&late, &base, 2.0), None);
        let no_alarm = result(base.clone(), Some(1.0), None);
        assert_eq!(lead_detection_time(&no_alarm, &base, 2.0), None);
    }

    #[test]
    fn missed_hazard_probability_counts_undetected_hazards() {
        let base = traj(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]);
        let results = vec![
            result(base.clone(), Some(0.5), None), // missed hazard
            result(base.clone(), Some(0.5), Some(0.1)),
            result(base.clone(), None, None),
            result(base.clone(), None, None),
        ];
        assert!((missed_hazard_probability(&results, &base, 2.0) - 0.25).abs() < 1e-12);
        assert_eq!(missed_hazard_probability(&[], &base, 2.0), 0.0);
    }
}
