//! End-to-end gate: `tracecheck` must consume the journal a *real*
//! traced campaign writes — not just the synthetic fixtures of the unit
//! tests — and produce the per-cell summary, the latency distributions,
//! a valid Chrome trace export, and the profiling summary.

use diverseav::AgentMode;
use diverseav_bench::tracecheck::{
    cell_summary, chrome_trace, latency_report, metrics_summary, parse_trace,
};
use diverseav_fabric::Profile;
use diverseav_faultinj::{run_campaign_with_traces, Campaign, CampaignScale, FaultModelKind};
use diverseav_obs::json::{self, Value};
use diverseav_obs::{journal, metrics};
use diverseav_simworld::{ScenarioKind, SensorConfig};

#[test]
fn tracecheck_consumes_a_real_traced_campaign() {
    // Enable journaling (`trace::enabled` reads the environment on
    // every call) before the campaign fans out.
    std::env::set_var("DIVERSEAV_TRACE", "1");
    journal::clear();
    metrics::clear();

    let scale = CampaignScale {
        n_transient: 6,
        permanent_repeats: 1,
        golden_runs: 2,
        long_route_duration: 10.0,
        training_runs: 1,
    };
    let campaign = Campaign {
        scenario: ScenarioKind::LeadSlowdown,
        target: Profile::Gpu,
        kind: FaultModelKind::Transient,
        mode: AgentMode::RoundRobin,
    };
    let result = run_campaign_with_traces(campaign, &scale, None, SensorConfig::default(), true);
    std::env::remove_var("DIVERSEAV_TRACE");
    assert_eq!(result.golden.len(), 2);
    assert_eq!(result.injected.len(), 6);

    // The journal the pipeline actually wrote parses cleanly.
    let text = journal::snapshot().join("\n");
    let trace = parse_trace(&text).expect("the real journal parses without errors");
    assert_eq!(trace.runs.len(), 8, "2 golden + 6 injected run lines");
    assert!(!trace.spans.is_empty(), "engine slot spans were journaled");

    // Per-cell summary: one [golden] row and one injected row for the
    // campaign label.
    let label = campaign.to_string();
    let summary = cell_summary(&trace.runs);
    assert!(summary.contains(&label), "summary lists the campaign cell:\n{summary}");
    assert!(summary.contains("[golden]"), "golden runs get their own row:\n{summary}");

    // Distribution report renders (whether or not any injected run both
    // alarmed and collided at this tiny scale).
    let report = latency_report(&trace.runs);
    assert!(report.contains("peak divergence"), "divergence block present:\n{report}");

    // Chrome export: valid JSON, complete ("X") events from the real
    // slot spans, one metadata record per worker.
    let chrome = chrome_trace(&trace);
    let doc = json::parse(&chrome).expect("chrome export is valid JSON");
    let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
    assert!(
        events.iter().any(|e| e.get("ph").and_then(Value::as_str) == Some("X")),
        "at least one complete span event"
    );
    assert!(
        events.iter().any(|e| e.get("ph").and_then(Value::as_str) == Some("M")),
        "worker thread_name metadata"
    );

    // Profiling summary over the metrics the same campaign recorded.
    let snap = json::parse(&metrics::render_json(&metrics::snapshot())).expect("metrics JSON");
    let prof = metrics_summary(&snap);
    assert!(prof.contains("tick.total"), "per-phase histograms surfaced:\n{prof}");
    assert!(prof.contains("deadline"), "deadline tallies surfaced:\n{prof}");
}
