//! End-to-end shard equivalence: a campaign cut into shards — one of
//! them killed mid-flight and resumed — must merge bit-identically to
//! the monolithic `run_campaign_cached` path.
//!
//! This is deliberately the ONLY test in this binary: shard execution
//! reads deltas out of the process-global metrics registry, and a
//! concurrently running campaign in the same process would land its
//! counters inside those deltas. (Per-batch deltas make the *committed*
//! payload immune, but keeping the binary single-test removes the
//! hazard entirely.)

use diverseav::AgentMode;
use diverseav_bench::merge;
use diverseav_fabric::Profile;
use diverseav_faultinj::{
    execute_shard, execute_shard_limited, merge_artifacts, parse_artifact, run_campaign_cached,
    summarize, summarize_merged, unit_shard, Campaign, CampaignScale, FaultModelKind, ShardConfig,
    ShardRun, ShardSpec, SHARD_SCHEMA_VERSION,
};
use diverseav_simworld::{ScenarioKind, SensorConfig};
use std::fs;
use std::path::PathBuf;

const TD: f64 = 2.0;

fn tiny_scale() -> CampaignScale {
    CampaignScale {
        n_transient: 4,
        permanent_repeats: 1,
        golden_runs: 2,
        long_route_duration: 8.0,
        training_runs: 1,
    }
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("diverseav-shard-merge-{}-{name}", std::process::id()))
}

#[test]
fn killed_and_resumed_shards_merge_bit_identical_to_monolithic() {
    let campaign = Campaign {
        scenario: ScenarioKind::LeadSlowdown,
        target: Profile::Gpu,
        kind: FaultModelKind::Transient,
        mode: AgentMode::RoundRobin,
    };
    let scale = tiny_scale();
    let sensor = SensorConfig::default();
    let cfg = |spec: ShardSpec| ShardConfig { campaign, scale, sensor, spec, batch_size: 1 };

    // Pick the kill victim: with 6 units over 2 shards, at least one
    // shard holds >= 2 batches (batch_size 1), so interrupting after the
    // first batch leaves real work for the resume to prove itself on.
    let seed = diverseav_faultinj::plan_seed(&campaign);
    let units = diverseav_faultinj::campaign_units(scale.golden_runs, scale.n_transient);
    let per_shard = |s: usize| units.iter().filter(|u| unit_shard(seed, **u, 2) == s).count();
    let victim = if per_shard(0) >= 2 { 0 } else { 1 };
    let other = 1 - victim;
    assert!(per_shard(victim) >= 2, "pigeonhole: some shard holds >= 2 of 6 units");

    let victim_path = scratch("victim.jsonl");
    let other_path = scratch("other.jsonl");
    let mono_path = scratch("mono.jsonl");
    for p in [&victim_path, &other_path, &mono_path] {
        let _ = fs::remove_file(p);
    }

    // Kill the victim shard at its first checkpoint, then resume it.
    let interrupted =
        execute_shard_limited(&cfg(ShardSpec { index: victim, count: 2 }), &victim_path, Some(1))
            .expect("interrupted shard executes");
    assert!(!interrupted.complete, "--max-batches 1 must stop short");
    assert_eq!(interrupted.executed_batches, 1);
    let resumed = execute_shard(&cfg(ShardSpec { index: victim, count: 2 }), &victim_path)
        .expect("victim shard resumes");
    assert!(resumed.complete);
    assert!(resumed.resumed_batches >= 1, "resume must adopt the checkpointed batch");

    let _ = execute_shard(&cfg(ShardSpec { index: other, count: 2 }), &other_path)
        .expect("other shard executes");
    let mono_status = execute_shard(&cfg(ShardSpec { index: 0, count: 1 }), &mono_path)
        .expect("monolithic single-shard executes");
    assert!(mono_status.complete);

    let load = |p: &PathBuf| {
        parse_artifact(&fs::read_to_string(p).expect("artifact readable")).expect("artifact parses")
    };
    let (victim_art, other_art, mono_art) =
        (load(&victim_path), load(&other_path), load(&mono_path));

    // Merge both ways; shard order on the command line must not matter.
    let sharded =
        merge_artifacts(&[other_art.clone(), victim_art.clone()]).expect("sharded set merges");
    let mono = merge_artifacts(&[mono_art]).expect("monolithic set merges");
    assert_eq!(sharded.len(), 1);
    assert_eq!(mono.len(), 1);

    // Gate 1: the merged run payloads are bit-identical (ShardRun
    // equality covers every f64 via its exact bits).
    assert_eq!(sharded[0].golden, mono[0].golden);
    assert_eq!(sharded[0].injected, mono[0].injected);
    assert_eq!(sharded[0].baseline, mono[0].baseline);
    assert_eq!(sharded[0].metrics.counters, mono[0].metrics.counters);
    assert_eq!(sharded[0].metrics.hists, mono[0].metrics.hists);
    assert_eq!(sharded[0].deadline.ticks, mono[0].deadline.ticks);
    assert_eq!(sharded[0].deadline.misses, mono[0].deadline.misses);

    // Gate 2: both merges agree with the in-process monolithic path.
    let live = run_campaign_cached(campaign, &scale, None, sensor, false, None);
    let live_golden: Vec<ShardRun> = live
        .golden
        .iter()
        .enumerate()
        .map(|(i, r)| ShardRun::from_result("golden", i, r))
        .collect();
    let live_injected: Vec<ShardRun> = live
        .injected
        .iter()
        .enumerate()
        .map(|(i, r)| ShardRun::from_result("injected", i, r))
        .collect();
    assert_eq!(sharded[0].golden, live_golden);
    assert_eq!(sharded[0].injected, live_injected);
    assert_eq!(summarize_merged(&sharded[0], TD), summarize(&live, TD));

    // Gate 3: every rendered report diffs clean between the two merges.
    assert_eq!(merge::table_text(&sharded, TD), merge::table_text(&mono, TD));
    assert_eq!(merge::deterministic_doc(&sharded, TD), merge::deterministic_doc(&mono, TD));
    assert_eq!(merge::metrics_doc(&sharded), merge::metrics_doc(&mono));
    assert_eq!(merge::journal_doc(&sharded), merge::journal_doc(&mono));

    // Gate 4: the validator refuses bad shard sets loudly.
    let dup = merge_artifacts(&[victim_art.clone(), victim_art.clone(), other_art.clone()]);
    let msg = dup.expect_err("duplicate shard must not merge").to_string();
    assert!(msg.contains("overlap"), "duplicate error should name the overlap: {msg}");
    let partial = merge_artifacts(std::slice::from_ref(&victim_art));
    let msg = partial.expect_err("missing shard must not merge").to_string();
    assert!(msg.contains("missing"), "gap error should name the missing shard: {msg}");
    let mut tampered = fs::read_to_string(&victim_path).expect("artifact readable");
    tampered = tampered.replacen(
        &format!("\"schema_version\": {SHARD_SCHEMA_VERSION}"),
        &format!("\"schema_version\": {}", SHARD_SCHEMA_VERSION + 1),
        1,
    );
    assert!(
        parse_artifact(&tampered).is_err(),
        "future schema versions must be rejected, not misread"
    );

    for p in [&victim_path, &other_path, &mono_path] {
        let _ = fs::remove_file(p);
    }
}
