//! End-to-end gate for the flight-recorder forensics: a *real* traced
//! campaign per sensor fault class must produce incident payloads whose
//! merged JSONL document round-trips through [`parse_incidents`] and
//! whose [`forensics_report`] decomposes every class into the
//! onset → detectable → alarm timeline. The incident document this test
//! writes (under `CARGO_TARGET_TMPDIR`) doubles as the CI input for the
//! `diverseav-tracecheck --forensics` command-line run.

use diverseav::{AgentMode, DetectorConfig, DetectorModel};
use diverseav_bench::experiments::BEST_RW;
use diverseav_bench::tracecheck::{forensics_report, parse_incidents};
use diverseav_fabric::Profile;
use diverseav_faultinj::{
    collect_training_runs, run_campaign, Campaign, CampaignScale, FaultModelKind, IncidentRecord,
    SensorFaultKind,
};
use diverseav_obs::flight::FLIGHT_SCHEMA_VERSION;
use diverseav_simworld::{ScenarioKind, SensorConfig};
use std::path::Path;
use std::sync::OnceLock;

fn tiny_scale() -> CampaignScale {
    CampaignScale {
        n_transient: 4,
        permanent_repeats: 1,
        golden_runs: 2,
        long_route_duration: 20.0,
        training_runs: 1,
    }
}

/// The detector is trained once (fault-free runs only) and shared by
/// every per-class campaign — the paper's workflow.
fn detector() -> &'static (DetectorModel, DetectorConfig) {
    static DET: OnceLock<(DetectorModel, DetectorConfig)> = OnceLock::new();
    DET.get_or_init(|| {
        let tr =
            collect_training_runs(AgentMode::RoundRobin, &tiny_scale(), SensorConfig::default());
        let cfg = DetectorConfig::default().with_rw(BEST_RW);
        (DetectorModel::train(&tr, &cfg), cfg)
    })
}

#[test]
fn forensics_decomposes_every_sensor_fault_class_on_a_real_campaign() {
    let mut incidents: Vec<IncidentRecord> = Vec::new();
    for class in SensorFaultKind::ALL {
        let campaign = Campaign {
            scenario: ScenarioKind::LeadSlowdown,
            target: Profile::Gpu,
            kind: FaultModelKind::Sensor(class),
            mode: AgentMode::RoundRobin,
        };
        let r = run_campaign(
            campaign,
            &tiny_scale(),
            Some(detector().clone()),
            SensorConfig::default(),
        );
        let before = incidents.len();
        for (kind, runs) in [("golden", &r.golden), ("injected", &r.injected)] {
            for (i, run) in runs.iter().enumerate() {
                incidents.extend(IncidentRecord::from_result(kind, i, run));
            }
        }
        assert!(
            incidents.len() > before,
            "{} campaign produced no incidents — its class row would be missing",
            class.label()
        );
    }

    // Write the merged-incident document the way `diverseav-merge
    // --incidents` frames it, then round-trip it through the forensics
    // parser — this file is also the CI input for the CLI run.
    let mut doc = format!(
        concat!(
            "{{\"type\": \"merged_incidents\", \"flight_schema_version\": {}, ",
            "\"campaign\": \"sensor suite [forensics gate]\", ",
            "\"fingerprint\": \"0000000000000000\", \"incidents\": {}}}\n",
        ),
        FLIGHT_SCHEMA_VERSION,
        incidents.len(),
    );
    for rec in &incidents {
        doc.push_str(&rec.render_merged());
        doc.push('\n');
    }
    let path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("INCIDENTS_forensics.jsonl");
    std::fs::write(&path, &doc).expect("incident document writes");

    let parsed = parse_incidents(&doc).expect("the real incident document parses");
    assert_eq!(parsed.len(), incidents.len());

    let report = forensics_report(&parsed);
    assert!(
        report.contains("time-to-detectability vs time-to-alarm"),
        "decomposition table present:\n{report}"
    );
    for class in SensorFaultKind::ALL {
        assert!(
            report.contains(class.label()),
            "class {} missing from the forensics report:\n{report}",
            class.label()
        );
    }
    // Every incident renders a sparkline (flight rings are never empty
    // on the incident path) and the timeline markers are explained.
    assert!(report.contains("o onset, ! alarm"), "sparkline marker legend:\n{report}");
    // At least one alarmed incident decomposes into the full
    // onset -> detectable -> alarm chain at this scale.
    assert!(
        report.contains("-> alarm +"),
        "no alarmed incident decomposed on a detector-equipped campaign:\n{report}"
    );
}
