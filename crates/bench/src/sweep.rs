//! Offline detector parameter sweeps (Fig 7): train one model per
//! rolling-window size, replay every recorded divergence stream, and
//! score precision/recall per (td, rw) cell.
//!
//! Replaying recorded streams (rather than re-running campaigns per
//! parameter point) is what makes the 13×5 sweep of the paper tractable;
//! the online detector is deterministic given the stream, so replay is
//! exact.

use diverseav::{DetectorConfig, DetectorModel, OnlineDetector, TrainSample};
use diverseav_faultinj::{
    classify, first_violation_time, CampaignResult, DetectionEval, OutcomeClass, RunResult,
};

/// Alarm decisions for one campaign's injected runs under one detector.
#[derive(Clone, Debug, Default)]
pub struct ReplayedCampaign {
    /// Per injected run: replayed alarm time (index-aligned).
    pub alarms: Vec<Option<f64>>,
    /// Number of golden runs that (wrongly) alarmed.
    pub golden_alarms: usize,
}

/// Replay one campaign under a trained detector.
pub fn replay_campaign(
    model: &DetectorModel,
    cfg: DetectorConfig,
    campaign: &CampaignResult,
) -> ReplayedCampaign {
    let alarms =
        campaign.injected.iter().map(|r| OnlineDetector::replay(model, cfg, &r.training)).collect();
    let golden_alarms = campaign
        .golden
        .iter()
        .filter(|g| OnlineDetector::replay(model, cfg, &g.training).is_some())
        .count();
    ReplayedCampaign { alarms, golden_alarms }
}

/// Scored evaluation of a (td, rw) cell over a set of campaigns.
#[derive(Clone, Debug, Default)]
pub struct CellEval {
    /// Detector confusion counts (hang/crash runs excluded).
    pub eval: DetectionEval,
    /// Golden runs that alarmed (should be 0).
    pub golden_alarms: usize,
    /// Lead detection times of true positives (violation − alarm, s).
    pub lead_times: Vec<f64>,
    /// Hazardous runs missed by the detector (§VI-A numerator).
    pub missed_hazards: usize,
    /// Total injected runs considered (§VI-A denominator).
    pub total_injected: usize,
}

impl CellEval {
    /// §VI-A missed-hazard probability.
    pub fn missed_hazard_probability(&self) -> f64 {
        if self.total_injected == 0 {
            0.0
        } else {
            self.missed_hazards as f64 / self.total_injected as f64
        }
    }
}

/// Evaluate one (model, cfg, td) combination over campaigns with recorded
/// divergence streams.
pub fn evaluate_cell(
    model: &DetectorModel,
    cfg: DetectorConfig,
    campaigns: &[CampaignResult],
    td: f64,
) -> CellEval {
    let mut cell = CellEval::default();
    for c in campaigns {
        let replayed = replay_campaign(model, cfg, c);
        cell.golden_alarms += replayed.golden_alarms;
        cell.total_injected += c.injected.len();
        for (run, alarm) in c.injected.iter().zip(replayed.alarms.iter()) {
            if run.termination.is_hang_or_crash() {
                continue;
            }
            let positive = matches!(
                classify(run, &c.baseline, td),
                OutcomeClass::Accident | OutcomeClass::TrajViolation
            );
            match (positive, alarm.is_some()) {
                (true, true) => {
                    cell.eval.tp += 1;
                    if let Some(lead) = lead_time(run, &c.baseline, td, alarm.expect("alarmed")) {
                        cell.lead_times.push(lead);
                    }
                }
                (false, true) => cell.eval.fp += 1,
                (true, false) => {
                    cell.eval.fn_ += 1;
                    cell.missed_hazards += 1;
                }
                (false, false) => cell.eval.tn += 1,
            }
        }
    }
    cell
}

fn lead_time(
    run: &RunResult,
    baseline: &[diverseav_simworld::TrajPoint],
    td: f64,
    alarm: f64,
) -> Option<f64> {
    let violation =
        run.collision_time.or_else(|| first_violation_time(&run.trajectory, baseline, td))?;
    (violation > alarm).then_some(violation - alarm)
}

/// Full Fig-7 sweep result.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Rolling-window sizes (rows).
    pub rws: Vec<usize>,
    /// Trajectory thresholds in meters (columns).
    pub tds: Vec<f64>,
    /// Precision per (rw, td).
    pub precision: Vec<Vec<f64>>,
    /// Recall per (rw, td).
    pub recall: Vec<Vec<f64>>,
    /// F1 per (rw, td).
    pub f1: Vec<Vec<f64>>,
    /// Best cell (rw, td) by F1.
    pub best: (usize, f64),
}

/// Sweep detector parameters over recorded campaigns.
///
/// One model is trained per `rw` from the fault-free training streams;
/// every cell replays all recorded runs. Rows fan out on the
/// deterministic parallel engine (`DIVERSEAV_THREADS`); best-cell
/// selection stays a sequential fold in (rw, td) iteration order, so the
/// tie-breaking is identical to the original nested loop for any thread
/// count.
pub fn sweep(
    training: &[Vec<TrainSample>],
    campaigns: &[CampaignResult],
    rws: &[usize],
    tds: &[f64],
    base_cfg: DetectorConfig,
) -> SweepResult {
    struct SweepRow {
        precision: Vec<f64>,
        recall: Vec<f64>,
        f1: Vec<f64>,
        scores: Vec<f64>,
    }
    let rows = diverseav_faultinj::par_map(rws, |&rw| {
        let cfg = base_cfg.with_rw(rw);
        let model = DetectorModel::train(training, &cfg);
        let mut row = SweepRow {
            precision: Vec::new(),
            recall: Vec::new(),
            f1: Vec::new(),
            scores: Vec::new(),
        };
        for &td in tds {
            let cell = evaluate_cell(&model, cfg, campaigns, td);
            row.precision.push(cell.eval.precision());
            row.recall.push(cell.eval.recall());
            row.f1.push(cell.eval.f1());
            // Prefer cells with no golden-run false alarms, as the paper
            // requires; break F1 ties toward smaller windows (faster
            // detection → longer lead time).
            row.scores.push(if cell.golden_alarms == 0 {
                cell.eval.f1()
            } else {
                cell.eval.f1() - 1.0
            });
        }
        row
    });

    let mut precision = Vec::new();
    let mut recall = Vec::new();
    let mut f1 = Vec::new();
    let mut best = (rws[0], tds[0]);
    let mut best_f1 = -1.0;
    for (&rw, row) in rws.iter().zip(rows) {
        for (&td, &score) in tds.iter().zip(&row.scores) {
            if score > best_f1 + 1e-12 {
                best_f1 = score;
                best = (rw, td);
            }
        }
        precision.push(row.precision);
        recall.push(row.recall);
        f1.push(row.f1);
    }
    SweepResult { rws: rws.to_vec(), tds: tds.to_vec(), precision, recall, f1, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diverseav::{Divergence, VehState};

    fn stream(levels: &[f64]) -> Vec<TrainSample> {
        levels
            .iter()
            .enumerate()
            .map(|(i, &d)| TrainSample {
                t: i as f64 * 0.025,
                state: VehState { v: 5.0, a: 0.0, w: 0.0, alpha: 0.0 },
                div: Divergence { throttle: d, brake: 0.0, steer: 0.0 },
            })
            .collect()
    }

    #[test]
    fn replay_detects_recorded_spike() {
        let cfg = DetectorConfig::default().with_rw(2);
        let model = DetectorModel::train(&[stream(&[0.01, 0.02, 0.015, 0.01])], &cfg);
        let quiet = OnlineDetector::replay(&model, cfg, &stream(&[0.01, 0.015, 0.01]));
        assert_eq!(quiet, None);
        let spiky = OnlineDetector::replay(&model, cfg, &stream(&[0.01, 0.5, 0.6, 0.7]));
        assert!(spiky.is_some());
    }

    #[test]
    fn cell_eval_missed_hazard_probability_empty() {
        let cell = CellEval::default();
        assert_eq!(cell.missed_hazard_probability(), 0.0);
    }
}
