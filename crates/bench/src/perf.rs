//! Wall-clock accounting for campaign execution, emitted as the
//! machine-readable `BENCH_campaigns.json` artifact.
//!
//! Experiment pipelines record one entry per campaign (or training
//! collection) into a process-global registry; harness binaries flush
//! the registry to JSON so sequential-vs-parallel timings are
//! comparable across runs without scraping stderr. The JSON writer is
//! hand-rolled (no serde in the dependency closure).
//!
//! Every [`record`] also accumulates its phase wall-clock into the
//! [`diverseav_obs::metrics`] registry, so `METRICS_campaigns.json`
//! (flushed with [`flush_metrics_json`]) carries per-phase totals next
//! to the per-entry timings in `BENCH_campaigns.json`.

use diverseav_faultinj::{detected_parallelism, thread_count};
use diverseav_obs::json::escape as escape_json;
use diverseav_obs::metrics;
use std::sync::Mutex;
use std::time::Instant;

/// One timed unit of campaign work.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignTiming {
    /// Human-readable label (campaign display string, pipeline stage).
    pub label: String,
    /// Coarse grouping: `"campaign"`, `"training"`, `"sweep"`, ...
    pub phase: String,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Simulation runs covered by this entry.
    pub runs: usize,
    /// Simulation ticks executed during this entry (from the
    /// `runtime.ticks` counter that `PerfObserver` feeds).
    pub ticks: u64,
    /// Ticks that exceeded the 25 ms control budget during this entry
    /// (from the `deadline.misses` counter that `ProfilingObserver`
    /// feeds; 0 when profiling is off).
    pub deadline_misses: u64,
    /// Worker threads the engine was configured with at record time.
    pub threads: usize,
}

impl CampaignTiming {
    /// Runs per wall-clock second (0 for an empty or instant entry).
    pub fn runs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.runs as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Simulation ticks per wall-clock second (0 for an instant entry).
    pub fn ticks_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.ticks as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

static REGISTRY: Mutex<Vec<CampaignTiming>> = Mutex::new(Vec::new());

/// Record one timing entry (and accumulate it under the phase's metrics
/// wall-clock).
pub fn record(
    label: impl Into<String>,
    phase: impl Into<String>,
    wall_secs: f64,
    runs: usize,
    ticks: u64,
    deadline_misses: u64,
) {
    let entry = CampaignTiming {
        label: label.into(),
        phase: phase.into(),
        wall_secs,
        runs,
        ticks,
        deadline_misses,
        threads: thread_count(),
    };
    metrics::phase_add(&entry.phase, wall_secs);
    REGISTRY.lock().expect("perf registry poisoned").push(entry);
}

/// Time `f`, record the entry (with `runs` derived from the result and
/// `ticks` / `deadline_misses` sampled from the `runtime.ticks` and
/// `deadline.misses` counters around the timed section), and return the
/// result.
pub fn timed<R>(
    label: impl Into<String>,
    phase: impl Into<String>,
    runs_of: impl FnOnce(&R) -> usize,
    f: impl FnOnce() -> R,
) -> R {
    let ticks_before = metrics::counter_get("runtime.ticks");
    let misses_before = metrics::counter_get("deadline.misses");
    let start = Instant::now();
    let result = f();
    let wall_secs = start.elapsed().as_secs_f64();
    let ticks = metrics::counter_get("runtime.ticks") - ticks_before;
    let misses = metrics::counter_get("deadline.misses") - misses_before;
    record(label, phase, wall_secs, runs_of(&result), ticks, misses);
    result
}

/// Copy of all recorded entries, in record order.
pub fn snapshot() -> Vec<CampaignTiming> {
    REGISTRY.lock().expect("perf registry poisoned").clone()
}

/// Drop all recorded entries (harness binaries isolate measurement
/// sections with this).
pub fn clear() {
    REGISTRY.lock().expect("perf registry poisoned").clear();
}

/// Write every recorded entry as JSON to `path`.
pub fn flush_json(path: &str) -> std::io::Result<()> {
    std::fs::write(path, render_json(&snapshot()))
}

/// Flush the observability metrics registry (counters, gauges, phase
/// wall-clocks) as the `METRICS_campaigns.json` artifact.
pub fn flush_metrics_json(path: &str) -> std::io::Result<()> {
    metrics::gauge_set("engine.detected_cores", detected_parallelism() as f64);
    metrics::gauge_set("engine.threads", thread_count() as f64);
    metrics::flush_json(path)
}

/// Render timing entries as the `BENCH_campaigns.json` document.
pub fn render_json(entries: &[CampaignTiming]) -> String {
    render_json_with(detected_parallelism(), thread_count(), entries)
}

/// [`render_json`] with explicit header values — used by
/// `diverseav-merge` to re-render a bench document whose `detected_cores`
/// / `threads` belong to the machine that *produced* the entries, not the
/// machine doing the merging.
pub fn render_json_with(
    detected_cores: usize,
    threads: usize,
    entries: &[CampaignTiming],
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"detected_cores\": {detected_cores},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"phase\": \"{}\", \"wall_secs\": {:.6}, \
             \"runs\": {}, \"runs_per_sec\": {:.3}, \"ticks\": {}, \
             \"ticks_per_sec\": {:.1}, \"deadline_misses\": {}, \"threads\": {}}}{sep}\n",
            escape_json(&e.label),
            escape_json(&e.phase),
            e.wall_secs,
            e.runs,
            e.runs_per_sec(),
            e.ticks,
            e.ticks_per_sec(),
            e.deadline_misses,
            e.threads,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_per_sec_handles_zero_time() {
        let t = CampaignTiming {
            label: "x".into(),
            phase: "campaign".into(),
            wall_secs: 0.0,
            runs: 5,
            ticks: 200,
            deadline_misses: 0,
            threads: 1,
        };
        assert_eq!(t.runs_per_sec(), 0.0);
        assert_eq!(t.ticks_per_sec(), 0.0);
    }

    #[test]
    fn json_escapes_and_structures() {
        let entries = vec![CampaignTiming {
            label: "GPU-transient \"LSD\"\n".into(),
            phase: "campaign".into(),
            wall_secs: 2.0,
            runs: 10,
            ticks: 4000,
            deadline_misses: 3,
            threads: 4,
        }];
        let json = render_json(&entries);
        assert!(json.contains("\\\"LSD\\\"\\n"));
        assert!(json.contains("\"runs_per_sec\": 5.000"));
        assert!(json.contains("\"ticks\": 4000"));
        assert!(json.contains("\"ticks_per_sec\": 2000.0"));
        assert!(json.contains("\"deadline_misses\": 3"));
        assert!(json.contains("\"detected_cores\""));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn record_feeds_phase_metrics() {
        record("m", "test.perf.phase_unique", 0.5, 1, 20, 0);
        let stat = metrics::phase_get("test.perf.phase_unique");
        assert_eq!(stat.count, 1);
        assert!((stat.wall_secs - 0.5).abs() < 1e-12);
    }

    #[test]
    fn timed_records_an_entry() {
        clear();
        let v = timed("unit", "test", |v: &Vec<u8>| v.len(), || vec![1, 2, 3]);
        assert_eq!(v.len(), 3);
        let snap = snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].runs, 3);
        assert_eq!(snap[0].label, "unit");
        clear();
    }
}
