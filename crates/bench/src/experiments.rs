//! Experiment pipelines: one entry point per table/figure of the paper.
//!
//! Every function returns a rendered plain-text report whose rows mirror
//! the corresponding artifact in the paper. DESIGN.md maps each
//! experiment id (E1..E12) to these functions; EXPERIMENTS.md records
//! paper-vs-measured values.

use crate::sweep::{evaluate_cell, sweep};
use diverseav::{AgentMode, DetectorConfig, DetectorModel, TrainSample};
use diverseav_analysis::{
    ascii_cdf, cdf_points, estimate_fit, float_bit_diffs, generate_sequence, ground_truth_controls,
    heatmap, matched_shifts, percentile, pixel_bit_diffs, Boxplot, DiversityStats,
    FaultOutcomeRates, SynthConfig, Table,
};
use diverseav_fabric::{FaultModel, Op, Profile};
use diverseav_faultinj::{
    collect_training_runs, max_traj_divergence, mean_trajectory, par_map, run_campaign_cached,
    run_experiment, scenario_for, summarize, Campaign, CampaignResult, CampaignScale,
    FaultModelKind, FaultSpec, GoldenCache, RunConfig,
};
use diverseav_runtime::{LoopObserver, PolicyDriver, SimLoop, TickContext};
use diverseav_simworld::{Scenario, ScenarioKind, SensorConfig, TrajPoint, World};
use std::fmt::Write as _;

/// Rolling-window sizes swept in Fig 7 (paper: 3..40).
pub const SWEEP_RWS: [usize; 7] = [3, 5, 8, 12, 20, 30, 40];
/// Trajectory thresholds swept in Fig 7 (paper: 1..5 m).
pub const SWEEP_TDS: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
/// The paper's best-performing operating point (td = 2 m, rw = 3).
pub const BEST_TD: f64 = 2.0;
/// The paper's best-performing rolling window.
pub const BEST_RW: usize = 3;

/// GPU-fabric capacity (dynamic instructions per second) of the modeled
/// processor. Calibrated so the single-agent baseline lands at the paper's
/// Table-II utilization (~14% GPU); see DESIGN.md.
pub const GPU_CAPACITY: f64 = 27.5e6;
/// CPU-fabric capacity, calibrated to the paper's ~4% single-agent load.
pub const CPU_CAPACITY: f64 = 150.0e3;

/// The experiment scale selected by `DIVERSEAV_SCALE`.
pub fn scale() -> CampaignScale {
    CampaignScale::from_env()
}

/// The six GPU campaigns ({transient, permanent} × 3 scenarios) in a mode,
/// with divergence streams recorded for offline sweeps.
pub fn gpu_campaigns(mode: AgentMode, scale: &CampaignScale) -> Vec<CampaignResult> {
    let cache = GoldenCache::new();
    campaigns_for(Profile::Gpu, mode, scale, Some(&cache))
}

/// The six CPU campaigns in a mode.
pub fn cpu_campaigns(mode: AgentMode, scale: &CampaignScale) -> Vec<CampaignResult> {
    let cache = GoldenCache::new();
    campaigns_for(Profile::Cpu, mode, scale, Some(&cache))
}

/// The six campaigns ({transient, permanent} × 3 scenarios) of one
/// injection target in a mode, with divergence streams recorded.
///
/// Campaign cells fan out on the deterministic parallel engine
/// (`DIVERSEAV_THREADS`); a shared [`GoldenCache`] collapses the golden
/// sets the cells have in common (per scenario: transient + permanent —
/// and across targets when the caller shares one cache over the GPU and
/// CPU calls, the full 4× of a Table-I (scenario, mode) cell). Each
/// campaign's wall clock is recorded in the [`perf`](crate::perf)
/// registry.
pub fn campaigns_for(
    target: Profile,
    mode: AgentMode,
    scale: &CampaignScale,
    cache: Option<&GoldenCache>,
) -> Vec<CampaignResult> {
    let cells: Vec<Campaign> = [FaultModelKind::Transient, FaultModelKind::Permanent]
        .into_iter()
        .flat_map(|kind| {
            ScenarioKind::safety_critical().into_iter().map(move |scenario| Campaign {
                scenario,
                target,
                kind,
                mode,
            })
        })
        .collect();
    par_map(&cells, |&campaign| {
        eprintln!("  running campaign {campaign} ...");
        crate::perf::timed(
            campaign.to_string(),
            "campaign",
            |r: &CampaignResult| r.golden.len() + r.injected.len(),
            || run_campaign_cached(campaign, scale, None, SensorConfig::default(), true, cache),
        )
    })
}

/// The fifteen sensor-boundary campaigns (5 fault classes × 3 safety-
/// critical scenarios) in a mode, with divergence streams recorded.
///
/// Sensor faults corrupt frames between `World::sense_into` and the
/// driver, so the fabric-target axis is vacuous; the cells are pinned to
/// `Profile::Gpu` purely to satisfy the campaign key (the injector never
/// touches the fabric). Sharing `cache` with the register campaigns
/// collapses the golden sets they have in common.
pub fn sensor_campaigns(
    mode: AgentMode,
    scale: &CampaignScale,
    cache: Option<&GoldenCache>,
) -> Vec<CampaignResult> {
    let cells: Vec<Campaign> = FaultModelKind::SENSOR_KINDS
        .into_iter()
        .flat_map(|kind| {
            ScenarioKind::safety_critical().into_iter().map(move |scenario| Campaign {
                scenario,
                target: Profile::Gpu,
                kind,
                mode,
            })
        })
        .collect();
    par_map(&cells, |&campaign| {
        eprintln!("  running campaign {campaign} ...");
        crate::perf::timed(
            campaign.to_string(),
            "campaign",
            |r: &CampaignResult| r.golden.len() + r.injected.len(),
            || run_campaign_cached(campaign, scale, None, SensorConfig::default(), true, cache),
        )
    })
}

/// Fault-free training streams for a mode (long routes, §III-D).
pub fn training(mode: AgentMode, scale: &CampaignScale) -> Vec<Vec<TrainSample>> {
    eprintln!("  collecting {mode} training runs ...");
    crate::perf::timed(
        format!("training [{mode}]"),
        "training",
        |runs: &Vec<Vec<TrainSample>>| runs.len(),
        || collect_training_runs(mode, scale, SensorConfig::default()),
    )
}

// ---------------------------------------------------------------------
// E1–E3: Fig 5 + §V-A — sensor data diversity and semantic consistency
// ---------------------------------------------------------------------

/// Fig 5 + §V-A: bit diversity of real-world-like (synthetic KITTI) and
/// simulator sensor streams, plus semantic-consistency statistics.
pub fn fig5_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 5 / §V-A: sensor data diversity & semantic consistency ==\n");

    // --- Fig 5a: real-world-like 10 Hz sequence (KITTI substitute) ---
    let synth = generate_sequence(&SynthConfig::default());
    let mut cam_diffs = Vec::new();
    let mut imu_diffs = Vec::new();
    let mut lidar_diffs = Vec::new();
    let mut px_shifts = Vec::new();
    let mut world_shifts = Vec::new();
    for w in synth.windows(2) {
        cam_diffs.extend(pixel_bit_diffs(&w[0].camera, &w[1].camera));
        imu_diffs.extend(float_bit_diffs(&w[0].imu_gps, &w[1].imu_gps));
        lidar_diffs.extend(float_bit_diffs(&w[0].lidar, &w[1].lidar));
        px_shifts.extend(matched_shifts(&w[0].objects_px, &w[1].objects_px));
        world_shifts.extend(matched_shifts(&w[0].objects_ego, &w[1].objects_ego));
    }
    let cam = DiversityStats::of(&cam_diffs);
    let imu = DiversityStats::of(&imu_diffs);
    let lidar = DiversityStats::of(&lidar_diffs);
    let mut t = Table::new(vec!["stream (10 Hz, real-world-like)", "bits", "p50", "p90"]);
    t.row(vec![
        "camera (per 24-bit pixel)".to_string(),
        "24".to_string(),
        format!("{:.1}", cam.p50),
        format!("{:.1}", cam.p90),
    ]);
    t.row(vec![
        "IMU+GPS (per 32-bit float)".to_string(),
        "32".to_string(),
        format!("{:.1}", imu.p50),
        format!("{:.1}", imu.p90),
    ]);
    t.row(vec![
        "LiDAR (per 32-bit float)".to_string(),
        "32".to_string(),
        format!("{:.1}", lidar.p50),
        format!("{:.1}", lidar.p90),
    ]);
    out.push_str(&t.render());
    let _ = writeln!(out, "paper (KITTI): camera 8 / 13 bits; IMU+GPS 11 / 15; LiDAR 14 / 18\n");

    if !px_shifts.is_empty() {
        let diag = ((synth[0].camera.width() as f64).powi(2)
            + (synth[0].camera.height() as f64).powi(2))
        .sqrt();
        let _ = writeln!(
            out,
            "semantic consistency: object-center pixel shift p50 = {:.1} px, p90 = {:.1} px \
             (frame diagonal {diag:.0} px; paper: 5 / 22 px of 1296)",
            percentile(&px_shifts, 50.0),
            percentile(&px_shifts, 90.0),
        );
    }
    if !world_shifts.is_empty() {
        let _ = writeln!(
            out,
            "semantic consistency: object position shift p50 = {:.2} m, p90 = {:.2} m \
             (paper LiDAR: 0.48 / 1.26 m)\n",
            percentile(&world_shifts, 50.0),
            percentile(&world_shifts, 90.0),
        );
    }

    // --- Fig 5b: simulator cameras at 40 Hz on the test scenarios ---
    /// Accumulates bit diffs between consecutive frames of all 3 cameras.
    #[derive(Default)]
    struct CameraDiffs {
        prev: Option<Vec<diverseav_simworld::Image>>,
        diffs: Vec<u32>,
    }
    impl LoopObserver for CameraDiffs {
        fn on_tick(&mut self, ctx: &TickContext<'_>) {
            if let Some(prev) = &self.prev {
                for (p, cur) in prev.iter().zip(&ctx.frame.cameras) {
                    self.diffs.extend(pixel_bit_diffs(p, cur));
                }
            }
            self.prev = Some(ctx.frame.cameras.clone());
        }
    }
    let mut camera_diffs = CameraDiffs::default();
    for kind in ScenarioKind::safety_critical() {
        let scenario = Scenario::of_kind(kind);
        let world = World::new(scenario, SensorConfig::default(), 0xF16);
        let mut sim = SimLoop::new(world, PolicyDriver(ground_truth_controls));
        camera_diffs.prev = None;
        sim.run_for(121, &mut [&mut camera_diffs]);
    }
    let sim_diffs = camera_diffs.diffs;
    let sim = DiversityStats::of(&sim_diffs);
    let _ = writeln!(
        out,
        "Fig 5b — simulator camera (40 Hz, 3 cameras, test scenarios): \
         p50 = {:.1} bits, p90 = {:.1} bits of 24 (paper: 5 / 9)",
        sim.p50, sim.p90
    );

    // --- Fig 2(2) example: the paper's 95 → 96 illustration ---
    let _ = writeln!(
        out,
        "\nFig 2(2) example: RGB (95,95,95) → (96,96,96) flips {} of 24 bits (paper: 18)",
        (95u8 ^ 96u8).count_ones() * 3
    );
    out
}

// ---------------------------------------------------------------------
// E4: Fig 6 — impact of DiverseAV on safety (trajectory divergence)
// ---------------------------------------------------------------------

/// Fig 6 + §V-B: trajectory divergence of the original single-agent ADS
/// and the DiverseAV-enabled ADS across golden runs.
pub fn fig6_report() -> String {
    let scale = scale();
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 6 / §V-B: trajectory divergence of golden runs ==\n");
    let mut t = Table::new(vec!["scenario", "system", "min", "q1", "median", "q3", "max (m)"]);
    let mut overall_max: f64 = 0.0;
    let mut any_collision = false;
    for kind in ScenarioKind::safety_critical() {
        let scenario = Scenario::of_kind(kind);
        let golden = |mode: AgentMode, seed0: u64| -> Vec<diverseav_faultinj::RunResult> {
            (0..scale.golden_runs)
                .map(|i| run_experiment(&RunConfig::new(scenario.clone(), mode, seed0 + i as u64)))
                .collect()
        };
        eprintln!("  fig6: golden runs for {} ...", kind.abbrev());
        let orig = golden(AgentMode::Single, 100);
        let ours = golden(AgentMode::RoundRobin, 300);
        any_collision |= orig.iter().chain(ours.iter()).any(|r| r.has_accident());
        let orig_trajs: Vec<&[TrajPoint]> = orig.iter().map(|r| r.trajectory.as_slice()).collect();
        let baseline = mean_trajectory(&orig_trajs);
        for (label, runs) in [("orig", &orig), ("ours", &ours)] {
            let divs: Vec<f64> =
                runs.iter().map(|r| max_traj_divergence(&r.trajectory, &baseline)).collect();
            let b = Boxplot::of(&divs);
            overall_max = overall_max.max(b.max);
            t.row(vec![
                kind.abbrev().to_string(),
                label.to_string(),
                format!("{:.3}", b.min),
                format!("{:.3}", b.q1),
                format!("{:.3}", b.median),
                format!("{:.3}", b.q3),
                format!("{:.3}", b.max),
            ]);
        }
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nmax divergence across all scenarios: {overall_max:.3} m (paper: < 0.5 m); \
         collisions in golden runs: {any_collision} (paper: none)"
    );
    out
}

// ---------------------------------------------------------------------
// E5 + E9: Table I — fault-propagation summary + missed-hazard rate
// ---------------------------------------------------------------------

/// Table I + §VI-A: the twelve fault-injection campaigns in DUAL
/// (DiverseAV) agent mode, with the missed-hazard probability.
pub fn table1_report() -> String {
    let scale = scale();
    let mut out = String::new();
    let _ = writeln!(out, "== Table I / §V-C: fault-injection campaign summary (DUAL mode) ==\n");
    // One golden cache across all twelve campaigns: the four campaigns of
    // each (scenario, mode) cell — {GPU, CPU} × {transient, permanent} —
    // share a single golden set (~4× cut in golden work).
    let cache = GoldenCache::new();
    let gpu = campaigns_for(Profile::Gpu, AgentMode::RoundRobin, &scale, Some(&cache));
    let cpu = campaigns_for(Profile::Cpu, AgentMode::RoundRobin, &scale, Some(&cache));
    let sensor = sensor_campaigns(AgentMode::RoundRobin, &scale, Some(&cache));
    eprintln!("  golden cache: {} misses, {} hits", cache.misses(), cache.hits());
    diverseav_obs::metrics::gauge_set("cache.entries", cache.len() as f64);
    let mut t = Table::new(vec![
        "FI target",
        "DS",
        "#Active",
        "Hang/Crash",
        "Total FI",
        "#Acc",
        "#TrajViol",
    ]);
    for c in gpu.iter().chain(cpu.iter()).chain(sensor.iter()) {
        let row = summarize(c, BEST_TD);
        // Sensor-fault rows are target-agnostic (the fault lands on the
        // frame, not a fabric): label them by the class alone.
        let fi_target = match c.campaign.kind {
            FaultModelKind::Sensor(_) => c.campaign.kind.label().to_string(),
            _ => format!("{}-{}", c.campaign.target, c.campaign.kind.label()),
        };
        t.row(vec![
            fi_target,
            c.campaign.scenario.abbrev().to_string(),
            row.active.to_string(),
            row.hang_crash.to_string(),
            row.total.to_string(),
            row.accidents.to_string(),
            row.traj_violations.to_string(),
        ]);
    }
    out.push_str(&t.render());

    // §VI-A: missed-hazard probability under the best detector params.
    let training = training(AgentMode::RoundRobin, &scale);
    let cfg = DetectorConfig::default().with_rw(BEST_RW);
    let model = DetectorModel::train(&training, &cfg);
    let all: Vec<CampaignResult> = gpu.into_iter().chain(cpu).collect();
    let cell = evaluate_cell(&model, cfg, &all, BEST_TD);
    let _ = writeln!(
        out,
        "\n§VI-A missed-hazard probability (undetected fault AND safety hazard): \
         {:.4} = {}/{} (paper: ~0.001 = 4/3189)",
        cell.missed_hazard_probability(),
        cell.missed_hazards,
        cell.total_injected
    );

    // ISO 26262 framing (paper intro): residual SDC FIT of the GPU
    // element under DiverseAV, assuming a nominal 1000-FIT raw rate.
    let mut total = 0usize;
    let mut hc = 0usize;
    let mut safety = 0usize;
    for c in &all {
        if c.campaign.target != Profile::Gpu {
            continue;
        }
        let row = summarize(c, BEST_TD);
        total += row.total;
        hc += row.hang_crash;
        safety += row.accidents + row.traj_violations;
    }
    if total > 0 {
        let rates = FaultOutcomeRates::from_counts(total, hc, safety);
        let est = estimate_fit(1000.0, &rates, cell.eval.recall());
        let _ = writeln!(
            out,
            "ISO 26262 framing: a 1000-FIT GPU element → {:.1} FIT of safety-critical \
             SDCs unprotected, {:.1} FIT residual under DiverseAV (recall {:.2}); \
             ASIL-D target: < 10 FIT.",
            est.unprotected_sdc_fit,
            est.residual_sdc_fit,
            cell.eval.recall()
        );
    }
    out
}

// ---------------------------------------------------------------------
// E6: Fig 7 — precision/recall heat maps over (td, rw)
// ---------------------------------------------------------------------

/// Shared pipeline for Fig 7/Fig 8: DiverseAV GPU campaigns + training.
pub fn detector_pipeline(scale: &CampaignScale) -> (Vec<Vec<TrainSample>>, Vec<CampaignResult>) {
    let training = training(AgentMode::RoundRobin, scale);
    let campaigns = gpu_campaigns(AgentMode::RoundRobin, scale);
    (training, campaigns)
}

/// Fig 7a/7b: precision and recall heat maps of the DiverseAV detector
/// across trajectory thresholds (td) and rolling-window sizes (rw).
pub fn fig7_report() -> String {
    let scale = scale();
    let (training, campaigns) = detector_pipeline(&scale);
    let result = sweep(&training, &campaigns, &SWEEP_RWS, &SWEEP_TDS, DetectorConfig::default());
    let row_keys: Vec<String> = result.rws.iter().map(|r| r.to_string()).collect();
    let col_keys: Vec<String> = result.tds.iter().map(|t| format!("{t:.0}m")).collect();
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 7 / §V-D: detector precision & recall over (td, rw) ==\n");
    out.push_str(&heatmap(
        "Fig 7a — precision",
        "rw",
        &row_keys,
        "td",
        &col_keys,
        &result.precision,
    ));
    out.push('\n');
    out.push_str(&heatmap("Fig 7b — recall", "rw", &row_keys, "td", &col_keys, &result.recall));
    out.push('\n');
    out.push_str(&heatmap("F1 (selection metric)", "rw", &row_keys, "td", &col_keys, &result.f1));
    let (brw, btd) = result.best;
    let cfg = DetectorConfig::default().with_rw(brw);
    let model = DetectorModel::train(&training, &cfg);
    let cell = evaluate_cell(&model, cfg, &campaigns, btd);
    let _ = writeln!(
        out,
        "\nbest cell: td = {btd:.0} m, rw = {brw} → precision {:.2}, recall {:.2} \
         (paper: td = 2, rw = 3 → 0.87 / 0.87); golden-run false alarms: {}",
        cell.eval.precision(),
        cell.eval.recall(),
        cell.golden_alarms
    );
    out
}

// ---------------------------------------------------------------------
// E7: Fig 8 — lead detection time CDF
// ---------------------------------------------------------------------

/// Fig 8: CDF of lead detection time at the best operating point.
pub fn fig8_report() -> String {
    let scale = scale();
    let (training, campaigns) = detector_pipeline(&scale);
    let cfg = DetectorConfig::default().with_rw(BEST_RW);
    let model = DetectorModel::train(&training, &cfg);
    let cell = evaluate_cell(&model, cfg, &campaigns, BEST_TD);
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 8 / §V-D: lead detection time (td = 2 m, rw = 3) ==\n");
    if cell.lead_times.is_empty() {
        let _ = writeln!(out, "(no true positives at this scale)");
        return out;
    }
    let pts = cdf_points(&cell.lead_times);
    out.push_str(&ascii_cdf("lead detection time CDF (seconds)", &pts, 56, 12));
    let below_1s = cell.lead_times.iter().filter(|&&l| l < 1.0).count();
    let _ = writeln!(
        out,
        "\n{} detected safety-critical runs; min lead {:.2} s, median {:.2} s; \
         {} below 1.0 s (paper: lead times significantly above 1.0 s, human/AV \
         braking reaction ≈ 0.82–0.85 s)",
        cell.lead_times.len(),
        percentile(&cell.lead_times, 0.0),
        percentile(&cell.lead_times, 50.0),
        below_1s
    );
    out
}

// ---------------------------------------------------------------------
// E8: Table II — resource overhead
// ---------------------------------------------------------------------

/// Table II: compute utilization and memory of single-agent, DiverseAV,
/// and fully-duplicated deployments.
pub fn table2_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table II / §V-E: average system resources ==\n");
    let scenario = Scenario::of_kind(ScenarioKind::LeadSlowdown);
    let mut t = Table::new(vec!["system", "CPU", "GPU", "RAM", "VRAM", "processors"]);
    let mut single_mem = (0usize, 0usize);
    for (label, mode) in [
        ("Single Agent", AgentMode::Single),
        ("DiverseAV", AgentMode::RoundRobin),
        ("FD*", AgentMode::Duplicate),
    ] {
        eprintln!("  table2: measuring {label} ...");
        let mut cfg = RunConfig::new(scenario.clone(), mode, 0x7AB2);
        cfg.scenario.duration = 10.0;
        let r = run_experiment(&cfg);
        let sim_secs = r.end_time.max(1e-9);
        // Per-processor utilization (unit 0; FD's unit 1 is symmetric).
        let gpu_util = r.gpu_dyn_instr as f64 / sim_secs / GPU_CAPACITY * 100.0;
        let cpu_util = r.cpu_dyn_instr as f64 / sim_secs / CPU_CAPACITY * 100.0;
        // Memory across *all* agent instances.
        let ads = diverseav::Ads::new(diverseav::AdsConfig::for_mode(mode, 1));
        let (vram, ram) = ads.memory_bytes();
        if mode == AgentMode::Single {
            single_mem = (vram, ram);
        }
        t.row(vec![
            label.to_string(),
            format!("{cpu_util:.0}%"),
            format!("{gpu_util:.0}%"),
            format!("{} B ({}x)", ram, ram / single_mem.1.max(1)),
            format!("{} KB ({}x)", vram / 1024, vram / single_mem.0.max(1)),
            mode.n_units().to_string(),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\n*: FD utilization is per processor; FD needs double the processors.\n\
         paper: Single 4%/14%/431MB/198MB; DiverseAV 5%/15%/862MB/396MB; FD 4%/14%/862MB/396MB.\n\
         Shape to reproduce: DiverseAV ≈ single-agent compute on ONE processor with 2x memory;\n\
         FD matches per-processor compute but doubles processors and memory."
    );
    out
}

// ---------------------------------------------------------------------
// E10 + E11: §VI-B / §VI-C — baseline comparison
// ---------------------------------------------------------------------

/// §VI-B/§VI-C: DiverseAV vs fully-duplicated ADS vs single-agent
/// temporal-outlier detection, on GPU fault campaigns.
pub fn compare_report() -> String {
    let scale = scale();
    // Full quick scale per system (the paper used 500 runs per scenario
    // per system).
    let cmp_scale = scale;
    let mut out = String::new();
    let _ = writeln!(out, "== §VI-B/§VI-C: detector comparison on GPU faults ==\n");
    let mut t = Table::new(vec!["system", "precision", "recall", "F1", "golden false alarms"]);
    for (label, mode, paper) in [
        ("DiverseAV", AgentMode::RoundRobin, "0.87 / 0.87"),
        ("FD-ADS", AgentMode::Duplicate, "0.18 / 0.84"),
        ("Single-agent", AgentMode::Single, "0.17 / 0.52"),
    ] {
        let training = training(mode, &cmp_scale);
        let campaigns = gpu_campaigns(mode, &cmp_scale);
        let cfg = DetectorConfig::default().with_rw(BEST_RW);
        let model = DetectorModel::train(&training, &cfg);
        let cell = evaluate_cell(&model, cfg, &campaigns, BEST_TD);
        t.row(vec![
            format!("{label} (paper {paper})"),
            format!("{:.2}", cell.eval.precision()),
            format!("{:.2}", cell.eval.recall()),
            format!("{:.2}", cell.eval.f1()),
            cell.golden_alarms.to_string(),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nPaper shape: DiverseAV dominates on precision (0.87 vs 0.18/0.17) with recall\n\
         comparable to FD. Known deviation at quick scale (EXPERIMENTS.md, DESIGN.md §7):\n\
         our discretized pipeline masks most benign corruptions completely, so FD's\n\
         false-positive *count* stays low even though its FP *rate* on benign runs\n\
         matches the paper's; the ordering tightens at DIVERSEAV_SCALE=paper where\n\
         benign transients dominate the run mix."
    );
    out
}

// ---------------------------------------------------------------------
// E12: Fig 2(3)(4) — actuation & CVIP traces
// ---------------------------------------------------------------------

/// Fig 2(3)(4): throttle and CVIP traces for the lead-slowdown scenario,
/// fault-free and under a permanent GPU fault, original vs DiverseAV.
pub fn fig2_report() -> String {
    let scenario = Scenario::of_kind(ScenarioKind::LeadSlowdown);
    let run = |mode: AgentMode, fault: Option<FaultSpec>, seed: u64| {
        let mut cfg = RunConfig::new(scenario.clone(), mode, seed);
        cfg.fault = fault;
        cfg.collect_training = true;
        run_experiment(&cfg)
    };
    let fault = Some(FaultSpec::Fabric {
        unit: 0,
        profile: Profile::Gpu,
        model: FaultModel::Permanent { op: Op::FMax, mask: 1 << 21 },
    });
    eprintln!("  fig2: tracing fault-free and faulty runs ...");
    let orig_ok = run(AgentMode::Single, None, 0xF260);
    let ours_ok = run(AgentMode::RoundRobin, None, 0xF260);
    let orig_bad = run(AgentMode::Single, fault, 0xF261);
    let ours_bad = run(AgentMode::RoundRobin, fault, 0xF261);

    let mut out = String::new();
    let _ = writeln!(out, "== Fig 2(3)(4): lead-slowdown traces, orig vs DiverseAV ==\n");
    for (title, orig, ours) in [
        ("fault-free (Fig 2(3))", &orig_ok, &ours_ok),
        ("permanent GPU fault (Fig 2(4))", &orig_bad, &ours_bad),
    ] {
        let _ = writeln!(out, "--- {title} ---");
        let mut t = Table::new(vec![
            "t (s)",
            "thr orig",
            "cvip orig",
            "thr ours",
            "cvip ours",
            "|div| ours (rw=3)",
        ]);
        let sample_every = 40; // 1 Hz rows from the 40 Hz trace
        let mut window = [0.0f64; 3];
        for (i, (ti, c, cvip)) in ours.actuation.iter().enumerate() {
            let div = ours
                .training
                .get(i.saturating_sub(1))
                .map(|s| s.div.throttle.max(s.div.brake).max(s.div.steer))
                .unwrap_or(0.0);
            window[i % 3] = div;
            if i % sample_every == 0 {
                let o = orig.actuation.get(i);
                t.row(vec![
                    format!("{ti:.1}"),
                    o.map(|(_, oc, _)| format!("{:.2}", oc.throttle)).unwrap_or_else(|| "-".into()),
                    o.map(|(_, _, ocv)| fmt_cvip(*ocv)).unwrap_or_else(|| "-".into()),
                    format!("{:.2}", c.throttle),
                    fmt_cvip(*cvip),
                    format!("{:.3}", window.iter().sum::<f64>() / 3.0),
                ]);
            }
        }
        out.push_str(&t.render());
        let _ = writeln!(
            out,
            "orig ended: {:?} (collision: {:?}); ours ended: {:?} (collision: {:?})\n",
            orig.termination, orig.collision_time, ours.termination, ours.collision_time
        );
    }
    out.push_str(
        "Shape to reproduce: fault-free traces of orig and ours nearly coincide; under the\n\
         permanent fault, the single-agent throttle stays plausible-looking while the\n\
         DiverseAV inter-agent divergence becomes large and detectable.\n",
    );
    out
}

fn fmt_cvip(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "-".to_string()
    }
}

/// Run a scenario with the ground-truth driver to a finished world (used
/// by diversity studies and tests).
pub fn drive_ground_truth(kind: ScenarioKind, seed: u64) -> World {
    let scale = scale();
    let scenario = scenario_for(kind, &scale);
    let world = World::new(scenario, SensorConfig::default(), seed);
    let mut sim = SimLoop::new(world, PolicyDriver(ground_truth_controls));
    sim.run();
    sim.into_parts().0
}
