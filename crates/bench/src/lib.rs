//! # diverseav-bench
//!
//! Experiment harness for the DiverseAV reproduction: shared pipelines
//! behind the per-table/per-figure bench targets (`benches/`), the
//! detector parameter-sweep machinery, and the report generators.
//!
//! Scale selection: set `DIVERSEAV_SCALE=paper` for paper-scale counts;
//! the default (`quick`) shrinks run counts so a full `cargo bench`
//! completes in minutes rather than the paper's 40 days.

pub mod experiments;
pub mod merge;
pub mod perf;
pub mod sweep;
pub mod tracecheck;

pub use merge::{deterministic_doc, journal_doc, metrics_doc, stamp_wall, table_text};
pub use perf::{flush_json, flush_metrics_json, CampaignTiming};
pub use sweep::{evaluate_cell, replay_campaign, sweep, CellEval, ReplayedCampaign, SweepResult};
