//! Merge shard artifacts into the monolithic campaign reports — or
//! stamp a CI wall-clock entry into a bench document.
//!
//! ```text
//! # validate + merge shards into the Table-I / bench / metrics outputs
//! diverseav-merge [--td 2.0] [--table PATH] [--bench PATH] \
//!                 [--deterministic PATH] [--metrics PATH] \
//!                 [--journal PATH] [--incidents PATH] SHARD.jsonl...
//!
//! # append a wall-clock-only entry to a rendered bench document
//! diverseav-merge --stamp-wall BENCH_campaigns.json \
//!                 --label "ci checks threads=4" --secs 123 [--phase ci]
//! ```
//!
//! The merge refuses to produce output from an inconsistent shard set:
//! duplicate or missing shard indices, incomplete shards, coverage gaps,
//! or artifacts whose campaign fingerprints disagree all fail hard.
//! With no output flags, the Table-I text goes to stdout.
//!
//! `--incidents PATH` additionally collects the per-shard flight-recorder
//! sidecars (`SHARD.incidents.jsonl`, written next to each shard
//! artifact) into one exactly-once merged incident document: every shard
//! must present a complete sidecar, every incident label on a run line
//! must have exactly one payload in the shard that owns the run, and any
//! violation is the same exit-2 validation failure as a bad shard set.
//!
//! Exit codes: 0 merged clean, 1 unreadable/unparsable inputs or I/O
//! failure, 2 shard-set validation failure (overlap / gap / fingerprint
//! mismatch / incomplete shard).

use diverseav_bench::merge;
use diverseav_faultinj::{
    collect_incidents, incident_sidecar_path, merge_artifacts, parse_artifact,
    parse_incident_artifact, IncidentArtifact, ShardArtifact, ShardError,
};
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write(path: &str, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut td = 2.0f64;
    let mut table_path = None;
    let mut bench_path = None;
    let mut det_path = None;
    let mut metrics_path = None;
    let mut journal_path = None;
    let mut incidents_path = None;
    let mut stamp = None;
    let mut label = None;
    let mut phase = "ci".to_string();
    let mut secs = None;
    let mut shards: Vec<String> = Vec::new();
    let mut i = 0;
    let next = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs an argument"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--td" => {
                td = next(&mut i, "--td")?.parse::<f64>().map_err(|e| format!("--td: {e}"))?;
            }
            "--table" => table_path = Some(next(&mut i, "--table")?),
            "--bench" => bench_path = Some(next(&mut i, "--bench")?),
            "--deterministic" => det_path = Some(next(&mut i, "--deterministic")?),
            "--metrics" => metrics_path = Some(next(&mut i, "--metrics")?),
            "--journal" => journal_path = Some(next(&mut i, "--journal")?),
            "--incidents" => incidents_path = Some(next(&mut i, "--incidents")?),
            "--stamp-wall" => stamp = Some(next(&mut i, "--stamp-wall")?),
            "--label" => label = Some(next(&mut i, "--label")?),
            "--phase" => phase = next(&mut i, "--phase")?,
            "--secs" => {
                secs = Some(
                    next(&mut i, "--secs")?.parse::<f64>().map_err(|e| format!("--secs: {e}"))?,
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown argument: {other} (see the crate docs)"));
            }
            path => shards.push(path.to_string()),
        }
        i += 1;
    }

    if let Some(bench_doc) = stamp {
        if !shards.is_empty() {
            return Err("--stamp-wall takes no shard arguments".into());
        }
        let label = label.ok_or("--stamp-wall needs --label")?;
        let secs = secs.ok_or("--stamp-wall needs --secs")?;
        let stamped = merge::stamp_wall(&read(&bench_doc)?, &label, &phase, secs)?;
        write(&bench_doc, &stamped)?;
        eprintln!("stamped {label:?} ({secs} s, phase {phase:?}) into {bench_doc}");
        return Ok(ExitCode::SUCCESS);
    }

    if shards.is_empty() {
        return Err("no shard artifacts given (pass one or more SHARD.jsonl paths)".into());
    }
    let mut artifacts: Vec<ShardArtifact> = Vec::with_capacity(shards.len());
    // Sidecars grouped by campaign fingerprint, in shard-argument order.
    let mut sidecars: BTreeMap<u64, Vec<IncidentArtifact>> = BTreeMap::new();
    for path in &shards {
        let text = read(path)?;
        artifacts.push(parse_artifact(&text).map_err(|e| format!("{path}: {e}"))?);
        if incidents_path.is_some() {
            let side = incident_sidecar_path(Path::new(path));
            let side_str = side.display().to_string();
            let side_text = read(&side_str)?;
            let parsed =
                parse_incident_artifact(&side_text).map_err(|e| format!("{side_str}: {e}"))?;
            sidecars.entry(parsed.manifest.fingerprint).or_default().push(parsed);
        }
    }
    let merged = match merge_artifacts(&artifacts) {
        Ok(m) => m,
        Err(e @ ShardError::Mismatch(_)) => {
            eprintln!("diverseav-merge: {e}");
            return Ok(ExitCode::from(2));
        }
        Err(e) => return Err(e.to_string()),
    };

    for m in &merged {
        eprintln!(
            "merged {}: {} shard(s), {} golden + {} injected run(s)",
            m.manifest.campaign,
            m.shards.len(),
            m.golden.len(),
            m.injected.len(),
        );
    }

    let table = merge::table_text(&merged, td);
    match &table_path {
        Some(path) => write(path, &table)?,
        None => print!("{table}"),
    }
    if let Some(path) = &bench_path {
        let threads = diverseav_faultinj::thread_count();
        let cores = diverseav_faultinj::detected_parallelism();
        write(path, &merge::bench_doc(&merged, cores, threads))?;
    }
    if let Some(path) = &det_path {
        write(path, &merge::deterministic_doc(&merged, td))?;
    }
    if let Some(path) = &metrics_path {
        write(path, &merge::metrics_doc(&merged))?;
    }
    if let Some(path) = &journal_path {
        write(path, &merge::journal_doc(&merged))?;
    }
    if let Some(path) = &incidents_path {
        let mut doc = String::new();
        let mut total = 0usize;
        for m in &merged {
            let empty = Vec::new();
            let side = sidecars.get(&m.manifest.fingerprint).unwrap_or(&empty);
            let collected = match collect_incidents(m, side) {
                Ok(c) => c,
                Err(e @ ShardError::Mismatch(_)) => {
                    eprintln!("diverseav-merge: {e}");
                    return Ok(ExitCode::from(2));
                }
                Err(e) => return Err(e.to_string()),
            };
            total += collected.len();
            doc.push_str(&merge::incidents_doc(m, &collected));
        }
        write(path, &doc)?;
        eprintln!("collected {total} incident(s) into {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("diverseav-merge: {e}");
            ExitCode::FAILURE
        }
    }
}
