//! Trace-analysis CLI over the `DIVERSEAV_TRACE` journal, the metrics
//! snapshot, and the bench timings.
//!
//! ```text
//! # analyze a traced run (summary + distributions, optional exports)
//! diverseav-tracecheck --trace trace.jsonl [--metrics METRICS_campaigns.json]
//!                      [--chrome trace_chrome.json]
//!
//! # flight-recorder forensics over an incident artifact (a shard
//! # sidecar or a merged incident set); combines with --trace or alone
//! diverseav-tracecheck --forensics INCIDENTS.jsonl
//!
//! # bench-regression check: flag >20 % ticks_per_sec drops
//! diverseav-tracecheck --baseline BENCH_baseline.json \
//!                      --bench-diff BENCH_campaigns.json [--bench-diff-pct 20]
//!
//! # legacy two-positional form (baseline first)
//! diverseav-tracecheck --bench-diff BENCH_baseline.json BENCH_campaigns.json
//! ```
//!
//! `--bench-diff-pct N` sets the regression threshold in percent
//! (default 20; `--threshold 0.20` is the equivalent fractional form).
//!
//! Exit codes: 0 clean, 1 on unreadable/malformed/empty inputs —
//! including a missing or unparsable baseline, which is a hard failure,
//! never a silent pass — 2 when the bench diff found regressions (so CI
//! can treat it as a warning gate distinct from hard failure).

use diverseav_bench::tracecheck;
use diverseav_obs::json;
use std::process::ExitCode;

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path = None;
    let mut metrics_path = None;
    let mut chrome_path = None;
    let mut baseline_path: Option<String> = None;
    let mut bench_diff = None;
    let mut forensics_path = None;
    let mut threshold = 0.20;
    let mut i = 0;
    let next = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs an argument"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => trace_path = Some(next(&mut i, "--trace")?),
            "--metrics" => metrics_path = Some(next(&mut i, "--metrics")?),
            "--chrome" => chrome_path = Some(next(&mut i, "--chrome")?),
            "--baseline" => baseline_path = Some(next(&mut i, "--baseline")?),
            "--bench-diff" => {
                let first = next(&mut i, "--bench-diff")?;
                // Legacy form passes baseline and fresh as two
                // positionals; the explicit form passes the fresh doc
                // only and names the baseline via --baseline.
                let second = args.get(i + 1).filter(|a| !a.starts_with("--")).cloned();
                if second.is_some() {
                    i += 1;
                }
                bench_diff = Some((first, second));
            }
            "--threshold" => {
                threshold = next(&mut i, "--threshold")?
                    .parse::<f64>()
                    .map_err(|e| format!("--threshold: {e}"))?;
            }
            "--bench-diff-pct" => {
                threshold = next(&mut i, "--bench-diff-pct")?
                    .parse::<f64>()
                    .map_err(|e| format!("--bench-diff-pct: {e}"))?
                    / 100.0;
            }
            "--forensics" => forensics_path = Some(next(&mut i, "--forensics")?),
            other => return Err(format!("unknown argument: {other} (see the crate docs)")),
        }
        i += 1;
    }

    if let Some((first, second)) = bench_diff {
        let (old_path, new_path) = match (baseline_path, second) {
            (Some(_), Some(_)) => {
                return Err("pass the baseline once: either --baseline PATH --bench-diff FRESH \
                     or --bench-diff BASELINE FRESH"
                    .into());
            }
            (Some(baseline), None) => (baseline, first),
            (None, Some(fresh)) => (first, fresh),
            (None, None) => {
                return Err("--bench-diff needs a baseline: --baseline PATH --bench-diff FRESH \
                     (or the legacy --bench-diff BASELINE FRESH form)"
                    .into());
            }
        };
        let parse = |path: &str| -> Result<json::Value, String> {
            json::parse(&read(path)?).map_err(|e| format!("{path}: {e}"))
        };
        let warnings = tracecheck::bench_diff_checked(
            &parse(&old_path).map_err(|e| format!("baseline: {e}"))?,
            &parse(&new_path)?,
            threshold,
        )?;
        if warnings.is_empty() {
            println!(
                "bench diff: no entry dropped more than {:.0} % ticks_per_sec",
                threshold * 100.0
            );
            return Ok(ExitCode::SUCCESS);
        }
        println!("bench diff: {} regression(s) beyond {:.0} %:", warnings.len(), threshold * 100.0);
        for w in &warnings {
            println!("  {w}");
        }
        return Ok(ExitCode::from(2));
    }
    if baseline_path.is_some() {
        return Err("--baseline only makes sense together with --bench-diff".into());
    }

    if let Some(forensics_path) = &forensics_path {
        let incidents = tracecheck::parse_incidents(&read(forensics_path)?).map_err(|errs| {
            format!("{} parse error(s) in {forensics_path}:\n  {}", errs.len(), errs.join("\n  "))
        })?;
        print!("{}", tracecheck::forensics_report(&incidents));
        if trace_path.is_none() {
            return Ok(ExitCode::SUCCESS);
        }
        println!();
    }

    let Some(trace_path) = trace_path else {
        return Err(
            "nothing to do: pass --trace PATH, --forensics PATH, or --bench-diff OLD NEW".into()
        );
    };
    let trace = tracecheck::parse_trace(&read(&trace_path)?).map_err(|errs| {
        format!("{} parse error(s) in {trace_path}:\n  {}", errs.len(), errs.join("\n  "))
    })?;
    if trace.runs.is_empty() {
        return Err(format!("{trace_path}: no run lines — empty report"));
    }

    println!("== per-cell summary ({} runs) ==\n", trace.runs.len());
    print!("{}", tracecheck::cell_summary(&trace.runs));
    println!("\n== distributions ==\n");
    print!("{}", tracecheck::latency_report(&trace.runs));
    println!("\n== sensor-fault detection latency (onset -> alarm) ==\n");
    print!("{}", tracecheck::sensor_latency_report(&trace.runs));

    if let Some(metrics_path) = metrics_path {
        let metrics =
            json::parse(&read(&metrics_path)?).map_err(|e| format!("{metrics_path}: {e}"))?;
        println!("\n== profiling ({metrics_path}) ==\n");
        print!("{}", tracecheck::metrics_summary(&metrics));
    }

    if let Some(chrome_path) = chrome_path {
        std::fs::write(&chrome_path, tracecheck::chrome_trace(&trace))
            .map_err(|e| format!("cannot write {chrome_path}: {e}"))?;
        println!(
            "\nwrote {chrome_path} ({} span groups) — open in chrome://tracing or Perfetto",
            trace.spans.len()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("diverseav-tracecheck: {e}");
            ExitCode::FAILURE
        }
    }
}
