//! Execute one shard of a fault-injection campaign, writing (or
//! resuming) a checkpointable shard artifact.
//!
//! ```text
//! diverseav-shard --scenario LSD --target GPU --kind transient \
//!                 --mode diverseav --shard 2/4 --out shard2.jsonl \
//!                 [--batch 8] [--scale quick|paper] [--max-batches N]
//! ```
//!
//! `--kind` accepts `transient`, `permanent`, or any sensor-boundary
//! class label (`sensor-dropout`, `sensor-bias-drift`,
//! `sensor-outlier-burst`, `sensor-noise-inflation`,
//! `sensor-oscillation`).
//!
//! `DIVERSEAV_THREADS` controls intra-shard parallelism exactly like the
//! monolithic path; the artifact's run payload is bit-identical for any
//! setting. `--max-batches` caps how many *new* batches this invocation
//! commits — CI uses it to simulate a kill at a checkpoint boundary,
//! then re-invokes without the cap to resume.
//!
//! Exit codes: 0 shard complete, 3 shard checkpointed but incomplete
//! (`--max-batches` hit), 1 usage or execution error.

use diverseav::AgentMode;
use diverseav_fabric::Profile;
use diverseav_faultinj::{Campaign, CampaignScale, FaultModelKind, ShardConfig, ShardSpec};
use diverseav_simworld::{ScenarioKind, SensorConfig};
use std::path::Path;
use std::process::ExitCode;

fn parse_shard(s: &str) -> Result<ShardSpec, String> {
    let (idx, count) = s.split_once('/').ok_or_else(|| format!("--shard wants K/N, got {s:?}"))?;
    let index = idx.trim().parse::<usize>().map_err(|e| format!("--shard index: {e}"))?;
    let count = count.trim().parse::<usize>().map_err(|e| format!("--shard count: {e}"))?;
    Ok(ShardSpec { index, count })
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario = None;
    let mut target = None;
    let mut kind = None;
    let mut mode = AgentMode::RoundRobin;
    let mut spec = None;
    let mut out = None;
    let mut batch_size = 8usize;
    let mut scale = CampaignScale::from_env();
    let mut max_batches = None;
    let mut i = 0;
    let next = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs an argument"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scenario" => {
                scenario = Some(match next(&mut i, "--scenario")?.as_str() {
                    "LSD" | "lsd" => ScenarioKind::LeadSlowdown,
                    "GC" | "gc" => ScenarioKind::GhostCutIn,
                    "FA" | "fa" => ScenarioKind::FrontAccident,
                    other => return Err(format!("--scenario: want LSD|GC|FA, got {other:?}")),
                });
            }
            "--target" => {
                target = Some(match next(&mut i, "--target")?.as_str() {
                    "GPU" | "gpu" => Profile::Gpu,
                    "CPU" | "cpu" => Profile::Cpu,
                    other => return Err(format!("--target: want GPU|CPU, got {other:?}")),
                });
            }
            "--kind" => {
                let raw = next(&mut i, "--kind")?;
                kind = Some(FaultModelKind::from_label(&raw).ok_or_else(|| {
                    format!("--kind: want transient|permanent|sensor-<class>, got {raw:?}")
                })?);
            }
            "--mode" => {
                mode = match next(&mut i, "--mode")?.as_str() {
                    "single" => AgentMode::Single,
                    "diverseav" => AgentMode::RoundRobin,
                    "fd" => AgentMode::Duplicate,
                    other => {
                        return Err(format!("--mode: want single|diverseav|fd, got {other:?}"))
                    }
                };
            }
            "--shard" => spec = Some(parse_shard(&next(&mut i, "--shard")?)?),
            "--out" => out = Some(next(&mut i, "--out")?),
            "--batch" => {
                batch_size = next(&mut i, "--batch")?
                    .parse::<usize>()
                    .map_err(|e| format!("--batch: {e}"))?;
            }
            "--scale" => {
                scale = match next(&mut i, "--scale")?.as_str() {
                    "quick" => CampaignScale::quick(),
                    "paper" => CampaignScale::paper(),
                    other => return Err(format!("--scale: want quick|paper, got {other:?}")),
                };
            }
            "--max-batches" => {
                max_batches = Some(
                    next(&mut i, "--max-batches")?
                        .parse::<usize>()
                        .map_err(|e| format!("--max-batches: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument: {other} (see the crate docs)")),
        }
        i += 1;
    }

    let scenario = scenario.ok_or("--scenario is required (LSD|GC|FA)")?;
    let target = target.ok_or("--target is required (GPU|CPU)")?;
    let kind = kind.ok_or("--kind is required (transient|permanent|sensor-<class>)")?;
    let spec = spec.ok_or("--shard K/N is required")?;
    let out = out.ok_or("--out PATH is required")?;

    let cfg = ShardConfig {
        campaign: Campaign { scenario, target, kind, mode },
        scale,
        sensor: SensorConfig::default(),
        spec,
        batch_size,
    };
    let status = diverseav_faultinj::execute_shard_limited(&cfg, Path::new(&out), max_batches)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "shard {}/{}: {} assigned run(s), {} batch(es) ({} resumed, {} executed){}",
        spec.index,
        spec.count,
        status.assigned_runs,
        status.total_batches,
        status.resumed_batches,
        status.executed_batches,
        if status.complete { ", complete" } else { ", INCOMPLETE (checkpointed)" },
    );
    Ok(if status.complete { ExitCode::SUCCESS } else { ExitCode::from(3) })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("diverseav-shard: {e}");
            ExitCode::FAILURE
        }
    }
}
