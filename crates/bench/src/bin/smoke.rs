//! End-to-end smoke run: a miniature version of the detector evaluation
//! pipeline, for fast sanity checks during development.
//!
//! ```text
//! cargo run --release -p diverseav-bench --bin smoke
//! ```

use diverseav::{AgentMode, DetectorConfig, DetectorModel};
use diverseav_bench::evaluate_cell;
use diverseav_bench::experiments::{gpu_campaigns, training, BEST_RW, BEST_TD};
use diverseav_faultinj::{summarize, CampaignScale};

fn main() {
    let scale = CampaignScale {
        n_transient: 10,
        permanent_repeats: 1,
        golden_runs: 4,
        long_route_duration: 100.0,
        training_runs: 2,
    };
    let tr = training(AgentMode::RoundRobin, &scale);
    let campaigns = gpu_campaigns(AgentMode::RoundRobin, &scale);
    for c in &campaigns {
        let row = summarize(c, BEST_TD);
        println!(
            "{}: active={} hang/crash={} accidents={} traj-violations={} total={}",
            c.campaign, row.active, row.hang_crash, row.accidents, row.traj_violations, row.total
        );
    }
    let cfg = DetectorConfig::default().with_rw(BEST_RW);
    let model = DetectorModel::train(&tr, &cfg);
    let cell = evaluate_cell(&model, cfg, &campaigns, BEST_TD);
    println!(
        "\ndetector @ td={BEST_TD} rw={BEST_RW}: precision={:.2} recall={:.2} \
         golden-false-alarms={} missed-hazard-p={:.4}",
        cell.eval.precision(),
        cell.eval.recall(),
        cell.golden_alarms,
        cell.missed_hazard_probability()
    );
    assert_eq!(cell.golden_alarms, 0, "golden runs must not alarm");
}
