//! End-to-end smoke run: a miniature version of the detector evaluation
//! pipeline, for fast sanity checks during development — plus a
//! sequential-vs-parallel timing comparison of one quick campaign,
//! flushed to `BENCH_campaigns.json`.
//!
//! ```text
//! cargo run --release -p diverseav-bench --bin smoke
//! ```

use diverseav::{AgentMode, DetectorConfig, DetectorModel};
use diverseav_bench::evaluate_cell;
use diverseav_bench::experiments::{gpu_campaigns, training, BEST_RW, BEST_TD};
use diverseav_bench::perf;
use diverseav_fabric::Profile;
use diverseav_faultinj::{
    detected_parallelism, par_map_indices, run_campaign_with_traces, summarize, thread_count,
    Campaign, CampaignScale, FaultModelKind,
};
use diverseav_obs::{journal, metrics};
use diverseav_simworld::{ScenarioKind, SensorConfig};
use std::time::Instant;

fn main() {
    let scale = CampaignScale {
        n_transient: 10,
        permanent_repeats: 1,
        golden_runs: 4,
        long_route_duration: 100.0,
        training_runs: 2,
    };

    let cores = detected_parallelism();
    let threads = thread_count();
    println!("detected cores: {cores}; engine threads (DIVERSEAV_THREADS): {threads}\n");

    let tr = training(AgentMode::RoundRobin, &scale);
    let campaigns = gpu_campaigns(AgentMode::RoundRobin, &scale);
    for c in &campaigns {
        let row = summarize(c, BEST_TD);
        println!(
            "{}: active={} hang/crash={} accidents={} traj-violations={} total={}",
            c.campaign, row.active, row.hang_crash, row.accidents, row.traj_violations, row.total
        );
    }
    let cfg = DetectorConfig::default().with_rw(BEST_RW);
    let model = DetectorModel::train(&tr, &cfg);
    let cell = evaluate_cell(&model, cfg, &campaigns, BEST_TD);
    println!(
        "\ndetector @ td={BEST_TD} rw={BEST_RW}: precision={:.2} recall={:.2} \
         golden-false-alarms={} missed-hazard-p={:.4}",
        cell.eval.precision(),
        cell.eval.recall(),
        cell.golden_alarms,
        cell.missed_hazard_probability()
    );
    assert_eq!(cell.golden_alarms, 0, "golden runs must not alarm");

    // Sequential-vs-parallel wall clock on one quick campaign. The
    // engine honors an explicit thread count through par_map_with, but
    // campaign fan-out reads DIVERSEAV_THREADS at call time, so drive
    // the comparison by timing the same campaign under both settings
    // via explicit thread counts on a run batch plus the full campaign
    // at the ambient setting.
    let campaign = Campaign {
        scenario: ScenarioKind::LeadSlowdown,
        target: Profile::Gpu,
        kind: FaultModelKind::Transient,
        mode: AgentMode::RoundRobin,
    };
    println!("\ntiming one quick campaign ({campaign}) sequential vs parallel ...");
    let time_with = |label: &str, threads: usize| -> f64 {
        std::env::set_var("DIVERSEAV_THREADS", threads.to_string());
        let ticks_before = metrics::counter_get("runtime.ticks");
        let misses_before = metrics::counter_get("deadline.misses");
        let start = Instant::now();
        let result =
            run_campaign_with_traces(campaign, &scale, None, SensorConfig::default(), true);
        let secs = start.elapsed().as_secs_f64();
        let ticks = metrics::counter_get("runtime.ticks") - ticks_before;
        let misses = metrics::counter_get("deadline.misses") - misses_before;
        let runs = result.golden.len() + result.injected.len();
        perf::record(format!("smoke {campaign} [{label}]"), "smoke", secs, runs, ticks, misses);
        println!(
            "  {label:<28} {secs:>8.3} s  ({runs} runs, {:.1} runs/s, {:.0} ticks/s)",
            runs as f64 / secs,
            ticks as f64 / secs
        );
        secs
    };
    let plural = |n: usize| if n == 1 { "thread" } else { "threads" };
    let seq = time_with(&format!("sequential (1 {})", plural(1)), 1);
    let par = time_with(&format!("parallel ({cores} {})", plural(cores)), cores);
    std::env::remove_var("DIVERSEAV_THREADS");
    println!("  speedup: {:.2}x on {cores} core(s)", seq / par);

    // Determinism spot check alongside the timing: identical slot order
    // from the engine regardless of thread count.
    let a = par_map_indices(32, |i| i * 7 + 1);
    let b: Vec<usize> = (0..32).map(|i| i * 7 + 1).collect();
    assert_eq!(a, b, "engine must be order-identical to sequential");

    let deadline_ticks = metrics::counter_get("deadline.ticks");
    if deadline_ticks > 0 {
        let total = metrics::hist_get("tick.total");
        println!(
            "\n40 Hz deadline: {} / {deadline_ticks} ticks over 25 ms \
             (tick total p50 {:.2} ms, p99 {:.2} ms, worst {:.2} ms)",
            metrics::counter_get("deadline.misses"),
            total.p50() as f64 / 1e6,
            total.p99() as f64 / 1e6,
            metrics::gauge_get("deadline.worst_ns").unwrap_or(0.0) / 1e6,
        );
    }

    perf::flush_json("BENCH_campaigns.json").expect("write BENCH_campaigns.json");
    println!("\nwrote BENCH_campaigns.json ({} entries)", perf::snapshot().len());

    diverseav_bench::flush_metrics_json("METRICS_campaigns.json")
        .expect("write METRICS_campaigns.json");
    println!(
        "wrote METRICS_campaigns.json (cache {} hits / {} misses; {} alarms; {} sdc outcomes)",
        metrics::counter_get("cache.hits"),
        metrics::counter_get("cache.misses"),
        metrics::counter_get("detector.alarms"),
        metrics::counter_get("outcome.sdc"),
    );
    if let Some(path) = journal::flush_if_enabled().expect("write trace journal") {
        println!("wrote {path} ({} journal lines)", journal::len());
    }
}
