//! Quick check of the CPU-permanent outcome profile after the BIST.
use diverseav::AgentMode;
use diverseav_fabric::Profile;
use diverseav_faultinj::{
    run_campaign_with_traces, summarize, Campaign, CampaignScale, FaultModelKind,
};
use diverseav_obs::{journal, metrics};
use diverseav_simworld::{ScenarioKind, SensorConfig};

fn main() {
    let scale = CampaignScale {
        n_transient: 24,
        permanent_repeats: 1,
        golden_runs: 3,
        long_route_duration: 40.0,
        training_runs: 1,
    };
    for kind in [FaultModelKind::Permanent, FaultModelKind::Transient] {
        let c = Campaign {
            scenario: ScenarioKind::LeadSlowdown,
            target: Profile::Cpu,
            kind,
            mode: AgentMode::RoundRobin,
        };
        let r = run_campaign_with_traces(c, &scale, None, SensorConfig::default(), false);
        let row = summarize(&r, 2.0);
        println!(
            "CPU {} LSD: total={} hang/crash={} acc={} viol={} benign={}",
            kind.label(),
            row.total,
            row.hang_crash,
            row.accidents,
            row.traj_violations,
            row.total - row.hang_crash - row.accidents - row.traj_violations
        );
    }
    metrics::flush_json("METRICS_campaigns.json").expect("write METRICS_campaigns.json");
    if let Some(path) = journal::flush_if_enabled().expect("write trace journal") {
        println!("wrote {path} ({} journal lines)", journal::len());
    }
    println!(
        "wrote METRICS_campaigns.json (hang={} crash={} sdc={})",
        metrics::counter_get("outcome.hang"),
        metrics::counter_get("outcome.crash"),
        metrics::counter_get("outcome.sdc"),
    );
}
