//! Quick check of the CPU-permanent outcome profile after the BIST.
use diverseav::AgentMode;
use diverseav_fabric::Profile;
use diverseav_faultinj::{
    classify, run_campaign_with_traces, Campaign, CampaignScale, FaultModelKind, OutcomeClass,
};
use diverseav_simworld::{ScenarioKind, SensorConfig};

fn main() {
    let scale = CampaignScale {
        n_transient: 24,
        permanent_repeats: 1,
        golden_runs: 3,
        long_route_duration: 40.0,
        training_runs: 1,
    };
    for kind in [FaultModelKind::Permanent, FaultModelKind::Transient] {
        let c = Campaign {
            scenario: ScenarioKind::LeadSlowdown,
            target: Profile::Cpu,
            kind,
            mode: AgentMode::RoundRobin,
        };
        let r = run_campaign_with_traces(c, &scale, None, SensorConfig::default(), false);
        let mut counts = [0usize; 4];
        for run in &r.injected {
            let i = match classify(run, &r.baseline, 2.0) {
                OutcomeClass::HangCrash => 0,
                OutcomeClass::Accident => 1,
                OutcomeClass::TrajViolation => 2,
                OutcomeClass::Benign => 3,
            };
            counts[i] += 1;
        }
        println!(
            "CPU {} LSD: total={} hang/crash={} acc={} viol={} benign={}",
            kind.label(),
            r.injected.len(),
            counts[0],
            counts[1],
            counts[2],
            counts[3]
        );
    }
}
