//! Report generation for merged shard artifacts — the library half of
//! the `diverseav-merge` binary.
//!
//! A merged campaign must produce the *same* Table-I text, metrics
//! document, and journal lines the monolithic path produces, regardless
//! of how many shards it was cut into or on how many machines they ran.
//! Everything here therefore consumes only campaign-invariant manifest
//! fields plus the merged run set — never shard counts, batch sizes, or
//! wall-clocks — except for the explicitly non-deterministic
//! `BENCH_campaigns.json` timing view.

use crate::perf::{render_json_with, CampaignTiming};
use diverseav_analysis::Table;
use diverseav_faultinj::shard::{IncidentRecord, MergedCampaign};
use diverseav_faultinj::summarize_merged;
use diverseav_obs::json::{self, Value};
use diverseav_obs::{metrics, MetricsSnapshot, RunRecord};
use std::collections::BTreeMap;

/// Render merged campaigns as the Table-I summary text.
///
/// Byte-identical to the monolithic `table1_report` table for the same
/// campaigns (same headers, same row format, same column alignment);
/// deliberately free of any shard-count or timing information so a
/// 4-shard merge and a 1-shard merge diff clean.
pub fn table_text(merged: &[MergedCampaign], td: f64) -> String {
    let mut out = String::from("== Table I (merged): fault-injection campaign summary ==\n\n");
    let mut t = Table::new(vec![
        "FI target",
        "DS",
        "#Active",
        "Hang/Crash",
        "Total FI",
        "#Acc",
        "#TrajViol",
    ]);
    for m in merged {
        let row = summarize_merged(m, td);
        t.row(vec![
            format!("{}-{}", m.manifest.target, m.manifest.kind),
            m.manifest.scenario.clone(),
            row.active.to_string(),
            row.hang_crash.to_string(),
            row.total.to_string(),
            row.accidents.to_string(),
            row.traj_violations.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Render the deterministic summary document — the artifact CI diffs
/// bit-for-bit between a sharded and a monolithic execution. Every field
/// is a pure function of the campaign's seeds: Table-I tallies, per-run
/// tick totals, and the modeled deadline accounting. No wall-clocks, no
/// thread counts, no shard shapes.
pub fn deterministic_doc(merged: &[MergedCampaign], td: f64) -> String {
    let mut out = String::from("{\n  \"campaigns\": [\n");
    for (i, m) in merged.iter().enumerate() {
        let row = summarize_merged(m, td);
        let runs = m.golden.iter().chain(m.injected.iter());
        let ticks: u64 = runs.clone().map(|r| r.ticks).sum();
        let misses: u64 = runs.map(|r| r.deadline_misses).sum();
        let sep = if i + 1 == merged.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"campaign\": \"{}\", \"fingerprint\": \"{:016x}\", \
             \"scenario\": \"{}\", \"target\": \"{}\", \"kind\": \"{}\", \"mode\": \"{}\", \
             \"golden_runs\": {}, \"injected_runs\": {}, \
             \"ticks\": {}, \"deadline_misses\": {}, \"deadline_worst_ns\": {}, \
             \"active\": {}, \"hang_crash\": {}, \"total\": {}, \"accidents\": {}, \
             \"traj_violations\": {}}}{sep}\n",
            json::escape(&m.manifest.campaign),
            m.manifest.fingerprint,
            json::escape(&m.manifest.scenario),
            json::escape(&m.manifest.target),
            json::escape(&m.manifest.kind),
            json::escape(&m.manifest.mode),
            m.golden.len(),
            m.injected.len(),
            json::u64_str(ticks),
            json::u64_str(misses),
            json::u64_str(m.deadline.worst_ns),
            row.active,
            row.hang_crash,
            row.total,
            row.accidents,
            row.traj_violations,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the merged `METRICS_campaigns.json`: the per-campaign metric
/// slices folded into one registry snapshot (phases are wall-clock and
/// therefore per-machine — a merge has none).
pub fn metrics_doc(merged: &[MergedCampaign]) -> String {
    let mut counters = BTreeMap::new();
    let mut gauges = BTreeMap::new();
    let mut hists = BTreeMap::new();
    for m in merged {
        for (k, v) in &m.metrics.counters {
            *counters.entry(k.clone()).or_insert(0u64) += v;
        }
        for (k, v) in &m.metrics.gauges {
            let slot = gauges.entry(k.clone()).or_insert(*v);
            if *v > *slot {
                *slot = *v;
            }
        }
        for (k, h) in &m.metrics.hists {
            match hists.get_mut(k) {
                None => {
                    hists.insert(k.clone(), h.clone());
                }
                Some(mine) => {
                    use diverseav_obs::HistSnapshot;
                    let mine: &mut HistSnapshot = mine;
                    mine.absorb(h);
                }
            }
        }
    }
    let snap = MetricsSnapshot { counters, gauges, phases: BTreeMap::new(), hists };
    metrics::render_json(&snap)
}

/// Render a merged incident document for one campaign: a
/// `merged_incidents` header carrying the campaign identity and count,
/// then one [`IncidentRecord`] line per incident in engine order
/// (golden before injected, index-ascending — the order
/// [`diverseav_faultinj::collect_incidents`] returns). Batch numbers are
/// a shard-resume detail and are not re-rendered here; the document is a
/// pure function of the campaign seeds.
pub fn incidents_doc(m: &MergedCampaign, incidents: &[IncidentRecord]) -> String {
    let mut out = format!(
        concat!(
            "{{\"type\": \"merged_incidents\", \"flight_schema_version\": {}, ",
            "\"campaign\": \"{}\", \"fingerprint\": \"{:016x}\", \"incidents\": {}}}\n",
        ),
        diverseav_obs::flight::FLIGHT_SCHEMA_VERSION,
        diverseav_obs::json::escape(&m.manifest.campaign),
        m.manifest.fingerprint,
        incidents.len(),
    );
    for rec in incidents {
        out.push_str(&rec.render_merged());
        out.push('\n');
    }
    out
}

/// Render the merged run journal (`DIVERSEAV_TRACE`-format JSONL):
/// golden then injected runs per campaign, index-ordered — the same
/// canonical order the traced monolithic path writes.
pub fn journal_doc(merged: &[MergedCampaign]) -> String {
    let mut out = String::new();
    for m in merged {
        for (kind, runs) in [("golden", &m.golden), ("injected", &m.injected)] {
            for r in runs.iter() {
                let rec = RunRecord {
                    campaign: m.manifest.campaign.clone(),
                    kind,
                    index: r.index,
                    seed: r.seed,
                    scenario: m.manifest.scenario_name.clone(),
                    outcome: r.outcome.clone(),
                    end_time: r.end_time,
                    collision_time: r.collision_time,
                    alarm_time: r.alarm_time,
                    fault_activated: r.fault_activated,
                    fault_onset_time: r.fault_onset_time,
                    min_cvip: r.min_cvip,
                    div_peak: [0.0; 3],
                    fault: r.fault.clone(),
                };
                out.push_str(&rec.render());
                out.push('\n');
            }
        }
    }
    out
}

/// Render the merged `BENCH_campaigns.json`: one entry per shard (phase
/// `"shard"`) plus one summed entry per campaign (phase `"campaign"`).
/// Wall-clocks and thread counts come from wherever the shards ran, so
/// this document is *not* part of the bit-identical merge gate.
pub fn bench_doc(merged: &[MergedCampaign], detected_cores: usize, threads: usize) -> String {
    let mut entries = Vec::new();
    for m in merged {
        let mut wall = 0.0;
        let mut runs = 0usize;
        let mut ticks = 0u64;
        let mut misses = 0u64;
        for s in &m.shards {
            entries.push(CampaignTiming {
                label: format!(
                    "{} shard {}/{}",
                    m.manifest.campaign,
                    s.shard_index,
                    m.shards.len()
                ),
                phase: "shard".to_string(),
                wall_secs: s.wall_secs,
                runs: s.runs,
                ticks: s.ticks,
                deadline_misses: s.deadline_misses,
                threads: s.threads,
            });
            wall += s.wall_secs;
            runs += s.runs;
            ticks += s.ticks;
            misses += s.deadline_misses;
        }
        entries.push(CampaignTiming {
            label: m.manifest.campaign.clone(),
            phase: "campaign".to_string(),
            wall_secs: wall,
            runs,
            ticks,
            deadline_misses: misses,
            threads,
        });
    }
    render_json_with(detected_cores, threads, &entries)
}

/// Parse a `BENCH_campaigns.json` document back into its header values
/// and timing entries (the inverse of [`crate::perf::render_json`], up
/// to the renderer's 6-decimal rounding of `wall_secs`).
pub fn parse_bench(doc: &Value) -> Result<(usize, usize, Vec<CampaignTiming>), String> {
    let int = |v: &Value, key: &str| -> Result<usize, String> {
        v.get(key)
            .and_then(Value::as_f64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("bench document missing numeric {key:?}"))
    };
    let cores = int(doc, "detected_cores")?;
    let threads = int(doc, "threads")?;
    let arr = doc
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("bench document has no \"entries\" array")?;
    let mut entries = Vec::with_capacity(arr.len());
    for e in arr {
        let s = |key: &str| -> Result<String, String> {
            e.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("bench entry missing string {key:?}"))
        };
        let f = |key: &str| e.get(key).and_then(Value::as_f64).unwrap_or(0.0);
        entries.push(CampaignTiming {
            label: s("label")?,
            phase: s("phase")?,
            wall_secs: f("wall_secs"),
            runs: f("runs") as usize,
            ticks: f("ticks") as u64,
            deadline_misses: f("deadline_misses") as u64,
            threads: f("threads") as usize,
        });
    }
    Ok((cores, threads, entries))
}

/// Append a pure wall-clock entry (runs/ticks 0) to a rendered
/// `BENCH_campaigns.json` document — how CI stamps its job wall-clock
/// into the uploaded artifact so `--bench-diff` can flag CI-time
/// regressions alongside engine-throughput ones.
pub fn stamp_wall(doc_text: &str, label: &str, phase: &str, secs: f64) -> Result<String, String> {
    let doc = json::parse(doc_text).map_err(|e| format!("bench document: {e}"))?;
    let (cores, threads, mut entries) = parse_bench(&doc)?;
    entries.push(CampaignTiming {
        label: label.to_string(),
        phase: phase.to_string(),
        wall_secs: secs,
        runs: 0,
        ticks: 0,
        deadline_misses: 0,
        threads,
    });
    Ok(render_json_with(cores, threads, &entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diverseav_faultinj::shard::{MetricsSlice, ShardManifest, ShardPerf, ShardRun};
    use diverseav_faultinj::{GOLDEN_SEED_BASE, INJECTED_SEED_BASE, SHARD_SCHEMA_VERSION};
    use diverseav_runtime::DeadlineStats;
    use diverseav_simworld::{TrajPoint, Vec2};

    fn merged_fixture() -> MergedCampaign {
        let manifest = ShardManifest {
            schema_version: SHARD_SCHEMA_VERSION,
            fingerprint: 0xBEEF,
            plan_seed: 7,
            campaign: "GPU-transient LSD [diverseav]".to_string(),
            scenario: "LSD".to_string(),
            scenario_name: "lead_slowdown".to_string(),
            target: "GPU".to_string(),
            kind: "transient".to_string(),
            mode: "diverseav".to_string(),
            profile_source: "modeled".to_string(),
            shard_index: 0,
            shard_count: 2,
            batch_size: 4,
            golden_runs: 1,
            injected_runs: 1,
            assigned_runs: 1,
        };
        let run = |kind: &str, index: usize, base: u64, collision: Option<f64>| ShardRun {
            kind: kind.to_string(),
            index,
            seed: base + index as u64,
            outcome: if collision.is_some() { "collision" } else { "completed" }.to_string(),
            end_time: 2.0,
            collision_time: collision,
            alarm_time: None,
            fault_activated: collision.is_some(),
            fault_onset_time: None,
            min_cvip: 4.0,
            red_light_violations: 0,
            ticks: 80,
            deadline_misses: 1,
            incident: None,
            fault: None,
            trajectory: vec![TrajPoint { t: 0.0, pos: Vec2 { x: 0.0, y: 0.0 } }],
        };
        let golden = vec![run("golden", 0, GOLDEN_SEED_BASE, None)];
        let baseline = golden[0].trajectory.clone();
        MergedCampaign {
            manifest,
            injected: vec![run("injected", 0, INJECTED_SEED_BASE, Some(1.5))],
            golden,
            baseline,
            metrics: MetricsSlice::default(),
            deadline: DeadlineStats { ticks: 160, misses: 2, worst_ns: 26_000_000 },
            shards: vec![
                ShardPerf {
                    shard_index: 0,
                    wall_secs: 1.0,
                    threads: 2,
                    runs: 1,
                    ticks: 80,
                    deadline_misses: 1,
                },
                ShardPerf {
                    shard_index: 1,
                    wall_secs: 2.0,
                    threads: 4,
                    runs: 1,
                    ticks: 80,
                    deadline_misses: 1,
                },
            ],
        }
    }

    #[test]
    fn table_text_matches_monolithic_row_format() {
        let text = table_text(&[merged_fixture()], 2.0);
        assert!(text.contains("FI target"), "{text}");
        assert!(text.contains("GPU-transient"), "{text}");
        assert!(text.contains("LSD"), "{text}");
        assert!(!text.contains("shard"), "table must carry no shard info: {text}");
    }

    #[test]
    fn deterministic_doc_is_free_of_timing_and_lossless() {
        let doc = deterministic_doc(&[merged_fixture()], 2.0);
        assert!(doc.contains("\"ticks\": \"160\""), "{doc}");
        assert!(doc.contains("\"deadline_worst_ns\": \"26000000\""), "{doc}");
        assert!(doc.contains("\"accidents\": 1"), "{doc}");
        assert!(!doc.contains("wall"), "no wall-clocks in the gate doc: {doc}");
        json::parse(&doc).expect("valid JSON");
    }

    #[test]
    fn journal_doc_writes_canonical_run_lines() {
        let doc = journal_doc(&[merged_fixture()]);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\": \"golden\""), "{}", lines[0]);
        assert!(lines[1].contains("\"kind\": \"injected\""), "{}", lines[1]);
        assert!(lines[1].contains("\"outcome\": \"collision\""), "{}", lines[1]);
    }

    #[test]
    fn incidents_doc_frames_records_in_engine_order() {
        let m = merged_fixture();
        let rec = |kind: &str, index: usize, seed: u64| IncidentRecord {
            kind: kind.to_string(),
            index,
            seed,
            incident: "crash".to_string(),
            fault_class: None,
            fault_onset_time: None,
            alarm_time: None,
            flight: Vec::new(),
        };
        let incidents =
            vec![rec("golden", 0, GOLDEN_SEED_BASE), rec("injected", 0, INJECTED_SEED_BASE)];
        let doc = incidents_doc(&m, &incidents);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\": \"merged_incidents\""), "{}", lines[0]);
        assert!(lines[0].contains("\"fingerprint\": \"000000000000beef\""), "{}", lines[0]);
        assert!(lines[0].contains("\"incidents\": 2"), "{}", lines[0]);
        assert!(lines[1].contains("\"kind\": \"golden\""), "{}", lines[1]);
        assert!(lines[2].contains("\"kind\": \"injected\""), "{}", lines[2]);
        assert!(!doc.contains("\"batch\""), "merged docs carry no shard-resume state: {doc}");
        for line in &lines {
            json::parse(line).expect("every incident-doc line is valid JSON");
        }
    }

    #[test]
    fn bench_doc_round_trips_and_stamps() {
        let doc = bench_doc(&[merged_fixture()], 8, 4);
        let v = json::parse(&doc).expect("bench doc parses");
        let (cores, threads, entries) = parse_bench(&v).expect("bench doc reconstructs");
        assert_eq!((cores, threads), (8, 4));
        assert_eq!(entries.len(), 3, "2 shard entries + 1 campaign entry");
        assert_eq!(entries[2].runs, 2);
        assert_eq!(entries[2].ticks, 160);

        let stamped = stamp_wall(&doc, "ci linux threads=4", "ci", 123.5).expect("stamps");
        let v = json::parse(&stamped).expect("stamped doc parses");
        let (_, _, entries) = parse_bench(&v).expect("stamped doc reconstructs");
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[3].label, "ci linux threads=4");
        assert!((entries[3].wall_secs - 123.5).abs() < 1e-6);
        assert_eq!(entries[3].ticks, 0);
    }
}
