//! Offline analysis of the `DIVERSEAV_TRACE` journal and the metrics
//! snapshot — the library behind the `diverseav-tracecheck` binary.
//!
//! Three consumers of one artifact set:
//!
//! * [`cell_summary`] — a Table-I-style per-campaign-cell outcome /
//!   alarm breakdown from the journal's `"type": "run"` lines.
//! * [`latency_report`] — detection-latency (alarm → collision) and
//!   peak-divergence distributions (Fig 9 flavor) with exact quantiles
//!   and ASCII histograms.
//! * [`chrome_trace`] — the journal's `"type": "span_events"` lines
//!   re-emitted as a Chrome trace-event JSON document (`chrome://tracing`
//!   / Perfetto `"traceEvents"` format, complete `"X"` events, one track
//!   per engine worker).
//!
//! Plus two cross-cutting checks:
//!
//! * [`bench_diff`] — the bench-regression check: diff a fresh
//!   `BENCH_campaigns.json` against a committed baseline and flag
//!   entries whose `ticks_per_sec` dropped by more than a threshold
//!   (CLI: `--bench-diff-pct`, default 20 %).
//! * [`forensics_report`] — the flight-recorder post-mortem over an
//!   incident artifact (a shard sidecar or a merged incident set):
//!   per-incident score-vs-threshold sparklines with onset and alarm
//!   markers, a per-fault-class onset → detectable → alarm latency
//!   decomposition, and never-alarmed incidents ranked by how close the
//!   detector came to the threshold.
//!
//! # Binary exit codes
//!
//! The `diverseav-tracecheck` binary maps this library onto three exit
//! codes, stable for CI consumption:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | all requested reports rendered, no regressions found |
//! | 1    | unreadable / malformed / empty inputs — including a missing
//! |      | or unparsable `--baseline`, which is a hard failure, never a
//! |      | silent pass — or unknown arguments |
//! | 2    | `--bench-diff` found regressions beyond the threshold (a
//! |      | warning gate CI can treat separately from hard failure) |
//!
//! Everything parses through [`diverseav_obs::json`] (no serde in the
//! dependency closure) and is pure string → string, so the binary is a
//! thin argument-parsing shell over testable functions.

use diverseav_faultinj::IncidentRecord;
use diverseav_obs::flight::{FLAG_ALARM, FLAG_DETECTOR_OBSERVED, FLAG_FAULT_ACTIVE};
use diverseav_obs::json::{self, Value};
use diverseav_runtime::SILENT_SCORE_FLOOR;
use std::collections::BTreeMap;

/// One `"type": "run"` journal line, narrowed to the fields the reports
/// consume.
#[derive(Clone, Debug, PartialEq)]
pub struct RunLine {
    /// Campaign display label (the cell key).
    pub campaign: String,
    /// `"golden"` or `"injected"`.
    pub kind: String,
    /// Scenario name.
    pub scenario: String,
    /// Outcome label (`completed` / `collision` / `hang` / `crash`).
    pub outcome: String,
    /// Detector alarm time, if raised.
    pub alarm_time: Option<f64>,
    /// Collision time, if the ego collided.
    pub collision_time: Option<f64>,
    /// Whether the armed fault corrupted at least one register.
    pub fault_activated: bool,
    /// Simulation time of the first corrupted frame (sensor faults only).
    pub fault_onset_time: Option<f64>,
    /// Sensor-fault class label (`dropout`, `bias-drift`, …) from the
    /// fault site's `op` field when `model == "sensor"`; `None` for
    /// register faults and golden runs.
    pub fault_class: Option<String>,
    /// Peak rolling divergence per channel.
    pub div_peak: [f64; 3],
}

/// One event inside a `"type": "span_events"` journal line.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// `span_begin` / `span_end` / `counter` / `gauge`.
    pub event: String,
    /// Event name (span name or counter/gauge key).
    pub name: String,
    /// `t_ns` for spans, `value` for counters/gauges.
    pub value: f64,
}

/// One fan-out slot's worth of span events.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanGroup {
    /// Fan-out label (e.g. the campaign phase).
    pub label: String,
    /// Slot index within the fan-out.
    pub index: u64,
    /// The slot's events, in recording order.
    pub events: Vec<SpanEvent>,
}

/// A parsed trace journal.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// All run lines, in journal order.
    pub runs: Vec<RunLine>,
    /// All span-event groups, in journal order.
    pub spans: Vec<SpanGroup>,
}

fn f64_field(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn str_field(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_string)
}

/// Parse a JSONL trace journal. Returns the trace, or per-line parse
/// errors (`line N: <reason>`) if any line is malformed.
pub fn parse_trace(text: &str) -> Result<Trace, Vec<String>> {
    let mut trace = Trace::default();
    let mut errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("line {}: {e}", i + 1));
                continue;
            }
        };
        match v.get("type").and_then(Value::as_str) {
            Some("run") => {
                let div_peak = v
                    .get("div_peak")
                    .and_then(Value::as_arr)
                    .map(|a| {
                        let mut out = [0.0; 3];
                        for (slot, item) in out.iter_mut().zip(a) {
                            *slot = item.as_f64().unwrap_or(0.0);
                        }
                        out
                    })
                    .unwrap_or([0.0; 3]);
                let fault_class = v.get("fault").and_then(|f| {
                    if str_field(f, "model").as_deref() == Some("sensor") {
                        str_field(f, "op")
                    } else {
                        None
                    }
                });
                trace.runs.push(RunLine {
                    campaign: str_field(&v, "campaign").unwrap_or_default(),
                    kind: str_field(&v, "kind").unwrap_or_default(),
                    scenario: str_field(&v, "scenario").unwrap_or_default(),
                    outcome: str_field(&v, "outcome").unwrap_or_default(),
                    alarm_time: f64_field(&v, "alarm_time"),
                    collision_time: f64_field(&v, "collision_time"),
                    fault_activated: v
                        .get("fault_activated")
                        .and_then(Value::as_bool)
                        .unwrap_or(false),
                    fault_onset_time: f64_field(&v, "fault_onset_time"),
                    fault_class,
                    div_peak,
                });
            }
            Some("span_events") => {
                let events = v
                    .get("events")
                    .and_then(Value::as_arr)
                    .map(|a| {
                        a.iter()
                            .map(|e| SpanEvent {
                                event: str_field(e, "event").unwrap_or_default(),
                                name: str_field(e, "name").unwrap_or_default(),
                                value: f64_field(e, "t_ns")
                                    .or_else(|| f64_field(e, "value"))
                                    .unwrap_or(0.0),
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                trace.spans.push(SpanGroup {
                    label: str_field(&v, "label").unwrap_or_default(),
                    index: f64_field(&v, "index").unwrap_or(0.0) as u64,
                    events,
                });
            }
            Some(_) | None => {
                errors.push(format!("line {}: missing or unknown \"type\"", i + 1));
            }
        }
    }
    if errors.is_empty() {
        Ok(trace)
    } else {
        Err(errors)
    }
}

#[derive(Clone, Debug, Default)]
struct CellStats {
    total: u64,
    completed: u64,
    collision: u64,
    hang_crash: u64,
    activated: u64,
    alarms: u64,
    detected_accidents: u64,
    accidents: u64,
}

/// Render the Table-I-style per-campaign-cell summary: outcome counts,
/// fault activation, and alarm coverage of accidents. Cells are sorted
/// by label; golden runs are reported as their own `[golden]` row per
/// campaign.
pub fn cell_summary(runs: &[RunLine]) -> String {
    let mut cells: BTreeMap<String, CellStats> = BTreeMap::new();
    for r in runs {
        let key = if r.kind == "golden" {
            format!("{} [golden]", r.campaign)
        } else {
            r.campaign.clone()
        };
        let c = cells.entry(key).or_default();
        c.total += 1;
        match r.outcome.as_str() {
            "completed" => c.completed += 1,
            "collision" => c.collision += 1,
            _ => c.hang_crash += 1,
        }
        if r.fault_activated {
            c.activated += 1;
        }
        if r.alarm_time.is_some() {
            c.alarms += 1;
        }
        if r.collision_time.is_some() {
            c.accidents += 1;
            if r.alarm_time.is_some() {
                c.detected_accidents += 1;
            }
        }
    }
    let mut out = String::from(
        "campaign cell                                      runs  compl  coll  h/c  activ  alarm  det/acc\n",
    );
    for (label, c) in &cells {
        out.push_str(&format!(
            "{label:<48} {:>5} {:>6} {:>5} {:>4} {:>6} {:>6} {:>5}/{}\n",
            c.total,
            c.completed,
            c.collision,
            c.hang_crash,
            c.activated,
            c.alarms,
            c.detected_accidents,
            c.accidents,
        ));
    }
    out
}

/// Exact quantile of an ascending-sorted sample (nearest-rank).
fn sorted_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A fixed-width ASCII histogram of a sample over `bins` equal bins.
fn ascii_histogram(values: &[f64], bins: usize, unit: &str) -> String {
    if values.is_empty() {
        return String::from("  (no samples)\n");
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / bins as f64).max(f64::EPSILON);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = (((v - lo) / width) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (b, &n) in counts.iter().enumerate() {
        let bar = "#".repeat(n * 40 / peak);
        out.push_str(&format!(
            "  [{:>9.3}, {:>9.3}) {unit} |{bar:<40}| {n}\n",
            lo + b as f64 * width,
            lo + (b + 1) as f64 * width,
        ));
    }
    out
}

fn distribution_block(title: &str, unit: &str, mut values: Vec<f64>) -> String {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mut out = format!("{title} ({} samples)\n", values.len());
    if values.is_empty() {
        out.push_str("  (no samples)\n");
        return out;
    }
    out.push_str(&format!(
        "  p50 {:.3} {unit}, p90 {:.3} {unit}, p99 {:.3} {unit}, max {:.3} {unit}\n",
        sorted_quantile(&values, 0.50),
        sorted_quantile(&values, 0.90),
        sorted_quantile(&values, 0.99),
        values[values.len() - 1],
    ));
    out.push_str(&ascii_histogram(&values, 8, unit));
    out
}

/// Render the Fig-9-style distributions: detection latency (alarm →
/// collision lead time over runs that had both) and per-run peak
/// divergence (max across channels, injected runs only).
pub fn latency_report(runs: &[RunLine]) -> String {
    let lead: Vec<f64> = runs
        .iter()
        .filter_map(|r| match (r.alarm_time, r.collision_time) {
            (Some(a), Some(c)) if c >= a => Some(c - a),
            _ => None,
        })
        .collect();
    let peaks: Vec<f64> = runs
        .iter()
        .filter(|r| r.kind == "injected")
        .map(|r| r.div_peak.iter().copied().fold(0.0, f64::max))
        .filter(|p| p.is_finite())
        .collect();
    let mut out = distribution_block("detection latency: alarm -> collision lead time", "s", lead);
    out.push('\n');
    out.push_str(&distribution_block("peak divergence per injected run", "", peaks));
    out
}

/// Render per-fault-class detection-latency distributions for
/// sensor-boundary campaigns: `alarm_time − fault_onset_time` over runs
/// that carry both (i.e. the fault corrupted at least one frame and the
/// detector alarmed), grouped by the sensor fault class. Runs whose fault
/// activated but never alarmed are tallied as missed — a silent
/// divergence the histogram cannot hide. Returns an explanatory stub
/// when the journal holds no sensor-fault runs.
pub fn sensor_latency_report(runs: &[RunLine]) -> String {
    let mut by_class: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let mut missed: BTreeMap<&str, u64> = BTreeMap::new();
    for r in runs {
        let Some(class) = r.fault_class.as_deref() else { continue };
        match (r.alarm_time, r.fault_onset_time) {
            (Some(a), Some(o)) if a >= o => by_class.entry(class).or_default().push(a - o),
            (None, Some(_)) => *missed.entry(class).or_default() += 1,
            _ => {}
        }
    }
    if by_class.is_empty() && missed.is_empty() {
        return String::from("(no sensor-fault runs in this journal)\n");
    }
    let classes: std::collections::BTreeSet<&str> =
        by_class.keys().chain(missed.keys()).copied().collect();
    let mut out = String::new();
    for class in classes {
        out.push_str(&distribution_block(
            &format!("sensor fault [{class}]: onset -> alarm latency"),
            "s",
            by_class.remove(class).unwrap_or_default(),
        ));
        if let Some(&n) = missed.get(class) {
            out.push_str(&format!("  WARNING: {n} activated run(s) never alarmed\n"));
        }
        out.push('\n');
    }
    out
}

/// Re-emit the journal's span events as a Chrome trace-event JSON
/// document (viewable in `chrome://tracing` or Perfetto).
///
/// Each slot's `span_begin`/`span_end` pairs become complete (`"X"`)
/// events; the slot's `worker` counter (recorded by the engine when
/// tracing is on) selects the `tid`, so the timeline shows one track per
/// engine worker. Slot label and index ride along as event args.
pub fn chrome_trace(trace: &Trace) -> String {
    let mut events = Vec::new();
    let mut workers = std::collections::BTreeSet::new();
    for group in &trace.spans {
        let tid = group
            .events
            .iter()
            .find(|e| e.event == "counter" && e.name == "worker")
            .map(|e| e.value as u64)
            .unwrap_or(0);
        workers.insert(tid);
        let mut open: Vec<(&str, f64)> = Vec::new();
        for e in &group.events {
            match e.event.as_str() {
                "span_begin" => open.push((e.name.as_str(), e.value)),
                "span_end" => {
                    if let Some(pos) = open.iter().rposition(|(n, _)| *n == e.name) {
                        let (name, begin_ns) = open.remove(pos);
                        let ts_us = begin_ns / 1_000.0;
                        let dur_us = (e.value - begin_ns).max(0.0) / 1_000.0;
                        events.push(format!(
                            "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {tid}, \
                             \"ts\": {ts_us:.3}, \"dur\": {dur_us:.3}, \
                             \"args\": {{\"label\": \"{}\", \"slot\": {}}}}}",
                            json::escape(name),
                            json::escape(&group.label),
                            group.index,
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    for tid in workers {
        events.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"name\": \"worker {tid}\"}}}}",
        ));
    }
    format!("{{\"traceEvents\": [{}], \"displayTimeUnit\": \"ms\"}}\n", events.join(", "))
}

/// Render the profiling section of a parsed `METRICS_campaigns.json`
/// document: per-phase tick-latency quantiles and the deadline tallies.
pub fn metrics_summary(metrics: &Value) -> String {
    let mut out = String::new();
    if let Some(hists) = metrics.get("histograms").and_then(Value::as_obj) {
        out.push_str("tick-phase latency histograms:\n");
        let mut any = false;
        for (name, h) in hists {
            if !name.starts_with("tick.") {
                continue;
            }
            any = true;
            let ms = |key: &str| f64_field(h, key).unwrap_or(0.0) / 1e6;
            out.push_str(&format!(
                "  {name:<14} count {:>8}  p50 {:>8.3} ms  p90 {:>8.3} ms  p99 {:>8.3} ms  \
                 max {:>8.3} ms\n",
                f64_field(h, "count").unwrap_or(0.0),
                ms("p50"),
                ms("p90"),
                ms("p99"),
                ms("max"),
            ));
        }
        if !any {
            out.push_str("  (no tick.* histograms — profiling was off)\n");
        }
    }
    if let Some(counters) = metrics.get("counters").and_then(Value::as_obj) {
        let get = |k: &str| {
            counters.iter().find(|(name, _)| name == k).and_then(|(_, v)| v.as_f64()).unwrap_or(0.0)
        };
        let dropped = get("journal.dropped");
        if dropped > 0.0 {
            out.push_str(&format!(
                "\nWARNING: the run journal dropped {dropped} line(s) at its cap — the trace \
                 this snapshot rode along with is TRUNCATED and every journal-derived report \
                 is missing runs; raise DIVERSEAV_TRACE_CAP and re-run\n",
            ));
        }
        let ticks = get("deadline.ticks");
        if ticks > 0.0 {
            out.push_str(&format!(
                "\n40 Hz deadline (25 ms budget): {} / {} ticks over budget\n",
                get("deadline.misses"),
                ticks,
            ));
            for (name, v) in counters {
                if let Some(scenario) =
                    name.strip_prefix("deadline.").and_then(|s| s.strip_suffix(".misses"))
                {
                    let per = format!("deadline.{scenario}.ticks");
                    out.push_str(&format!(
                        "  {scenario:<24} {} / {} ticks missed\n",
                        v.as_f64().unwrap_or(0.0),
                        get(&per),
                    ));
                }
            }
        }
    }
    out
}

/// The timing entries of a parsed `BENCH_campaigns.json` document,
/// keyed on label: `(ticks_per_sec, wall_secs)` per entry.
///
/// A document without a non-empty `entries` array is an error, not an
/// empty map — a truncated or wrong-file baseline must fail the diff
/// loudly instead of silently comparing nothing.
pub fn bench_entries(doc: &Value) -> Result<BTreeMap<String, (f64, f64)>, String> {
    let arr = doc
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("bench document has no \"entries\" array — wrong or truncated file?")?;
    if arr.is_empty() {
        return Err("bench document has an empty \"entries\" array".to_string());
    }
    let mut out = BTreeMap::new();
    for e in arr {
        let label = str_field(e, "label").ok_or("bench entry without a \"label\"")?;
        let tps = f64_field(e, "ticks_per_sec").unwrap_or(0.0);
        let wall = f64_field(e, "wall_secs").unwrap_or(0.0);
        out.insert(label, (tps, wall));
    }
    Ok(out)
}

/// Compare two parsed `BENCH_campaigns.json` documents entry-by-entry
/// (matched on `label`): one warning per entry whose `ticks_per_sec`
/// dropped by more than `threshold` (0.20 = 20 %), and — for pure
/// wall-clock entries (both sides `ticks_per_sec` 0, e.g. the CI
/// job-time stamp `diverseav-merge --stamp-wall` appends) — per entry
/// whose `wall_secs` *grew* by more than `threshold`. Entries present on
/// only one side are ignored — labels carry thread counts and scale
/// settings, so disjoint runs are expected; but zero overlapping labels
/// is an error (the documents are not comparable at all).
pub fn bench_diff_checked(
    baseline: &Value,
    fresh: &Value,
    threshold: f64,
) -> Result<Vec<String>, String> {
    let old = bench_entries(baseline).map_err(|e| format!("baseline: {e}"))?;
    let new = bench_entries(fresh).map_err(|e| format!("fresh: {e}"))?;
    let mut warnings = Vec::new();
    let mut overlap = 0usize;
    for (label, &(was, was_wall)) in &old {
        let Some(&(now, now_wall)) = new.get(label) else { continue };
        overlap += 1;
        if was > 0.0 && now < was * (1.0 - threshold) {
            warnings.push(format!(
                "{label}: ticks_per_sec dropped {:.1} -> {:.1} ({:+.1} %)",
                was,
                now,
                (now / was - 1.0) * 100.0,
            ));
        }
        if was == 0.0 && now == 0.0 && was_wall > 0.0 && now_wall > was_wall * (1.0 + threshold) {
            warnings.push(format!(
                "{label}: wall_secs grew {:.1} -> {:.1} ({:+.1} %)",
                was_wall,
                now_wall,
                (now_wall / was_wall - 1.0) * 100.0,
            ));
        }
    }
    if overlap == 0 {
        return Err(
            "no overlapping entry labels between baseline and fresh bench documents".to_string()
        );
    }
    Ok(warnings)
}

/// [`bench_diff_checked`] flattened for callers that treat unreadable
/// documents as "nothing to report". New callers should prefer the
/// checked variant so baseline problems fail loudly.
pub fn bench_diff(baseline: &Value, fresh: &Value, threshold: f64) -> Vec<String> {
    bench_diff_checked(baseline, fresh, threshold).unwrap_or_default()
}

// -- flight-recorder forensics ----------------------------------------------

/// Simulation tick rate — flight-record tick indices convert to seconds
/// at this rate (the engine's fixed 40 Hz control loop).
const TICK_HZ: f64 = 40.0;

/// Sparkline width (ticks are bucketed into this many columns, keeping
/// the per-bucket maximum score).
const SPARK_WIDTH: usize = 64;

/// Score-to-glyph ramp: index `round(score * 8)` clamped to the ramp, so
/// the alarm threshold (score 1.0) renders as `%` and anything above it
/// as `@`.
const SPARK_RAMP: &[u8] = b" .:-=+*#%@";

/// Parse an incidents JSONL document — a shard incident sidecar or a
/// merged incident set. Manifest and footer lines are skipped; every
/// `"type": "incident"` line must reconstruct. Returns per-line errors
/// (`line N: <reason>`) like [`parse_trace`].
pub fn parse_incidents(text: &str) -> Result<Vec<IncidentRecord>, Vec<String>> {
    let mut out = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("line {}: {e}", i + 1));
                continue;
            }
        };
        match v.get("type").and_then(Value::as_str) {
            Some("incident") => match IncidentRecord::parse(&v) {
                Ok((_, rec)) => out.push(rec),
                Err(e) => errors.push(format!("line {}: {e}", i + 1)),
            },
            Some("incident_manifest") | Some("merged_incidents") | Some("incidents_done") => {}
            Some(other) => errors.push(format!("line {}: unknown type {other:?}", i + 1)),
            None => errors.push(format!("line {}: missing \"type\"", i + 1)),
        }
    }
    if errors.is_empty() {
        Ok(out)
    } else {
        Err(errors)
    }
}

/// One incident's detection timeline, extracted from its flight records.
struct IncidentView {
    first_tick: u64,
    last_tick: u64,
    peak: f64,
    /// Fault onset, in ticks (from `fault_onset_time`, else the first
    /// record whose fault-active flag is set).
    onset_tick: Option<u64>,
    /// First recorded tick with score at or past the detectability
    /// floor ([`SILENT_SCORE_FLOOR`]) on an observed detector.
    detect_tick: Option<u64>,
    /// Alarm tick (first record with the alarm flag, else `alarm_time`).
    alarm_tick: Option<u64>,
}

fn incident_view(rec: &IncidentRecord) -> IncidentView {
    let first_tick = rec.flight.first().map(|r| r.tick).unwrap_or(0);
    let last_tick = rec.flight.last().map(|r| r.tick).unwrap_or(first_tick);
    let peak = rec.flight.iter().map(|r| r.score).filter(|s| s.is_finite()).fold(0.0f64, f64::max);
    let onset_tick = rec
        .fault_onset_time
        .map(|t| (t * TICK_HZ).round() as u64)
        .or_else(|| rec.flight.iter().find(|r| r.flags & FLAG_FAULT_ACTIVE != 0).map(|r| r.tick));
    let detect_tick = rec
        .flight
        .iter()
        .find(|r| r.flags & FLAG_DETECTOR_OBSERVED != 0 && r.score >= SILENT_SCORE_FLOOR)
        .map(|r| r.tick);
    let alarm_tick = rec
        .flight
        .iter()
        .find(|r| r.flags & FLAG_ALARM != 0)
        .map(|r| r.tick)
        .or_else(|| rec.alarm_time.map(|t| (t * TICK_HZ).round() as u64));
    // The ring holds only the last `capacity` ticks; a floor crossing
    // that happened before the retained window would otherwise report
    // the window start as the detection point. An alarm implies the
    // score was at or above the floor, so detection is never later than
    // the alarm.
    let detect_tick = match (detect_tick, alarm_tick) {
        (Some(d), Some(a)) => Some(d.min(a)),
        (None, Some(a)) => Some(a),
        (d, None) => d,
    };
    IncidentView { first_tick, last_tick, peak, onset_tick, detect_tick, alarm_tick }
}

/// The score sparkline and its marker row (`o` onset, `!` alarm), both
/// the same width.
fn spark_rows(rec: &IncidentRecord, v: &IncidentView) -> (String, String) {
    let span = (v.last_tick - v.first_tick + 1).max(1);
    let width = SPARK_WIDTH.min(span as usize).max(1);
    let bucket = |tick: u64| {
        (((tick.saturating_sub(v.first_tick)) as u128 * width as u128 / span as u128) as usize)
            .min(width - 1)
    };
    let mut levels = vec![0.0f64; width];
    for r in &rec.flight {
        let b = bucket(r.tick);
        if r.score.is_finite() && r.score > levels[b] {
            levels[b] = r.score;
        }
    }
    let ramp_top = SPARK_RAMP.len() - 1;
    let line: String = levels
        .iter()
        .map(|s| SPARK_RAMP[((s * 8.0).round() as usize).min(ramp_top)] as char)
        .collect();
    let mut marks = vec![b' '; width];
    if let Some(t) = v.onset_tick {
        if t >= v.first_tick && t <= v.last_tick {
            marks[bucket(t)] = b'o';
        }
    }
    if let Some(t) = v.alarm_tick {
        if t >= v.first_tick && t <= v.last_tick {
            marks[bucket(t)] = b'!';
        }
    }
    (line, String::from_utf8(marks).expect("ascii markers"))
}

fn secs(tick: u64) -> f64 {
    tick as f64 / TICK_HZ
}

/// Latency from `from` to `to` in seconds, clamped at 0 (a detector can
/// cross the floor a tick before the onset record lands in the ring).
fn lat(from: u64, to: u64) -> f64 {
    secs(to.saturating_sub(from))
}

/// Render the flight-recorder post-mortem over a parsed incident set:
///
/// 1. Per incident: a score-vs-threshold sparkline over the recorded
///    window with onset (`o`) and alarm (`!`) markers, plus the
///    onset → detectable → alarm breakdown.
/// 2. Per fault class: median time-to-detectability (onset until the
///    score first reaches the [`SILENT_SCORE_FLOOR`] detectability
///    floor) vs median time-to-alarm, and the gap between them — how
///    long evidence sat above the floor before the trend logic
///    committed.
/// 3. Never-alarmed incidents ranked by closest approach: peak score and
///    remaining margin to the threshold, nearest miss first.
pub fn forensics_report(incidents: &[IncidentRecord]) -> String {
    if incidents.is_empty() {
        return String::from("(no incidents — nothing was flushed from any flight ring)\n");
    }
    let mut out = format!("== flight-recorder forensics ({} incident(s)) ==\n\n", incidents.len());

    #[derive(Default)]
    struct ClassStats {
        incidents: u64,
        detect: Vec<f64>,
        alarm: Vec<f64>,
        never_alarmed: u64,
    }
    let mut classes: BTreeMap<String, ClassStats> = BTreeMap::new();
    let mut never: Vec<(f64, String)> = Vec::new();

    for (i, rec) in incidents.iter().enumerate() {
        let v = incident_view(rec);
        let class = rec.fault_class.clone().unwrap_or_else(|| "(no fault)".to_string());
        out.push_str(&format!(
            "[{}] {} run {} — {} [{class}]\n",
            i + 1,
            rec.kind,
            rec.index,
            rec.incident,
        ));
        out.push_str(&format!(
            "  ticks {}..{} ({:.3} s..{:.3} s), {} record(s), peak score {:.3}\n",
            v.first_tick,
            v.last_tick,
            secs(v.first_tick),
            secs(v.last_tick),
            rec.flight.len(),
            v.peak,
        ));
        if !rec.flight.is_empty() {
            let (line, marks) = spark_rows(rec, &v);
            out.push_str(&format!("  score |{line}| 1.0 (threshold) = '%'\n"));
            out.push_str(&format!("  mark  |{marks}| o onset, ! alarm\n"));
        }
        let c = classes.entry(class).or_default();
        c.incidents += 1;
        match (v.onset_tick, v.detect_tick, v.alarm_tick) {
            (Some(o), d, Some(a)) => {
                let ttd = d.map(|d| lat(o, d));
                let tta = lat(o, a);
                c.alarm.push(tta);
                if let Some(ttd) = ttd {
                    c.detect.push(ttd);
                }
                out.push_str(&format!(
                    "  onset {:.3} s -> detectable {} -> alarm +{tta:.3} s\n",
                    secs(o),
                    ttd.map(|t| format!("+{t:.3} s")).unwrap_or_else(|| "never".to_string()),
                ));
            }
            (Some(o), d, None) => {
                c.never_alarmed += 1;
                never.push((
                    1.0 - v.peak,
                    format!("{} run {} ({})", rec.kind, rec.index, rec.incident),
                ));
                out.push_str(&format!(
                    "  onset {:.3} s -> detectable {} -> NEVER ALARMED (margin {:.3})\n",
                    secs(o),
                    d.map(|d| format!("+{:.3} s", lat(o, d)))
                        .unwrap_or_else(|| "never".to_string()),
                    1.0 - v.peak,
                ));
            }
            (None, _, Some(a)) => {
                c.alarm.push(0.0);
                out.push_str(&format!("  no fault onset; alarm at {:.3} s\n", secs(a)));
            }
            (None, _, None) => {
                c.never_alarmed += 1;
                never.push((
                    1.0 - v.peak,
                    format!("{} run {} ({})", rec.kind, rec.index, rec.incident),
                ));
                out.push_str(&format!(
                    "  no fault onset; NEVER ALARMED (margin {:.3})\n",
                    1.0 - v.peak,
                ));
            }
        }
        out.push('\n');
    }

    out.push_str("== per-class decomposition: time-to-detectability vs time-to-alarm ==\n\n");
    out.push_str(&format!(
        "{:<20} {:>9} {:>12} {:>11} {:>8} {:>6}\n",
        "fault class", "incidents", "med detect", "med alarm", "gap", "missed",
    ));
    for (class, c) in &mut classes {
        c.detect.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        c.alarm.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let med_d = sorted_quantile(&c.detect, 0.50);
        let med_a = sorted_quantile(&c.alarm, 0.50);
        let (d_str, gap_str) = if c.detect.is_empty() {
            ("-".to_string(), "-".to_string())
        } else {
            (format!("{med_d:.3} s"), format!("{:.3} s", (med_a - med_d).max(0.0)))
        };
        let a_str = if c.alarm.is_empty() { "-".to_string() } else { format!("{med_a:.3} s") };
        out.push_str(&format!(
            "{class:<20} {:>9} {d_str:>12} {a_str:>11} {gap_str:>8} {:>6}\n",
            c.incidents, c.never_alarmed,
        ));
    }

    out.push_str("\n== never-alarmed incidents by closest approach to the threshold ==\n\n");
    if never.is_empty() {
        out.push_str("(every incident alarmed)\n");
    } else {
        never.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("finite margins").then_with(|| a.1.cmp(&b.1))
        });
        out.push_str(&format!("{:<5} {:<40} {:>8} {:>8}\n", "rank", "run", "peak", "margin"));
        for (rank, (margin, who)) in never.iter().enumerate() {
            out.push_str(&format!(
                "{:<5} {who:<40} {:>8.3} {margin:>8.3}\n",
                rank + 1,
                1.0 - margin,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"type\": \"run\", \"campaign\": \"GPU-transient LSD\", \"kind\": \"golden\", ",
        "\"index\": 0, \"seed\": 1, \"scenario\": \"lead_slowdown\", \"outcome\": \"completed\", ",
        "\"end_time\": 36.0, \"collision_time\": null, \"alarm_time\": null, ",
        "\"fault_activated\": false, \"min_cvip\": 8.0, \"div_peak\": [0.01, 0.0, 0.0], ",
        "\"fault\": null}\n",
        "{\"type\": \"run\", \"campaign\": \"GPU-transient LSD\", \"kind\": \"injected\", ",
        "\"index\": 1, \"seed\": 2, \"scenario\": \"lead_slowdown\", \"outcome\": \"collision\", ",
        "\"end_time\": 12.0, \"collision_time\": 12.0, \"alarm_time\": 9.5, ",
        "\"fault_activated\": true, \"min_cvip\": 0.0, \"div_peak\": [0.5, 0.2, 0.1], ",
        "\"fault\": {\"profile\": \"GPU\", \"unit\": 0, \"model\": \"transient\", ",
        "\"mask\": 4, \"cycle\": 100, \"op\": null}}\n",
        "{\"type\": \"run\", \"campaign\": \"GPU-sensor-dropout LSD\", \"kind\": \"injected\", ",
        "\"index\": 2, \"seed\": 3, \"scenario\": \"lead_slowdown\", \"outcome\": \"completed\", ",
        "\"end_time\": 36.0, \"collision_time\": null, \"alarm_time\": 1.25, ",
        "\"fault_activated\": true, \"fault_onset_time\": 0.5, \"min_cvip\": 6.0, ",
        "\"div_peak\": [0.4, 0.1, 0.0], ",
        "\"fault\": {\"profile\": \"SENSOR\", \"unit\": 0, \"model\": \"sensor\", ",
        "\"mask\": 0, \"cycle\": 77, \"op\": \"dropout\"}}\n",
        "{\"type\": \"run\", \"campaign\": \"GPU-sensor-bias-drift LSD\", \"kind\": \"injected\", ",
        "\"index\": 3, \"seed\": 4, \"scenario\": \"lead_slowdown\", \"outcome\": \"completed\", ",
        "\"end_time\": 36.0, \"collision_time\": null, \"alarm_time\": null, ",
        "\"fault_activated\": true, \"fault_onset_time\": 0.75, \"min_cvip\": 6.0, ",
        "\"div_peak\": [0.1, 0.0, 0.0], ",
        "\"fault\": {\"profile\": \"SENSOR\", \"unit\": 0, \"model\": \"sensor\", ",
        "\"mask\": 0, \"cycle\": 78, \"op\": \"bias-drift\"}}\n",
        "{\"type\": \"span_events\", \"label\": \"campaign\", \"index\": 0, \"events\": [",
        "{\"event\": \"span_begin\", \"name\": \"item\", \"t_ns\": 1000}, ",
        "{\"event\": \"counter\", \"name\": \"worker\", \"value\": 2}, ",
        "{\"event\": \"span_end\", \"name\": \"item\", \"t_ns\": 51000}]}\n",
    );

    #[test]
    fn parses_runs_and_spans() {
        let trace = parse_trace(SAMPLE).expect("sample parses");
        assert_eq!(trace.runs.len(), 4);
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.runs[1].alarm_time, Some(9.5));
        assert_eq!(trace.runs[1].outcome, "collision");
        assert_eq!(trace.spans[0].events.len(), 3);
    }

    #[test]
    fn parses_sensor_fault_fields() {
        let trace = parse_trace(SAMPLE).unwrap();
        // Register fault: no class, no onset.
        assert_eq!(trace.runs[1].fault_class, None);
        assert_eq!(trace.runs[1].fault_onset_time, None);
        // Sensor fault: class from the site's op, onset carried through.
        assert_eq!(trace.runs[2].fault_class.as_deref(), Some("dropout"));
        assert_eq!(trace.runs[2].fault_onset_time, Some(0.5));
    }

    #[test]
    fn sensor_latency_report_groups_by_class_and_flags_misses() {
        let trace = parse_trace(SAMPLE).unwrap();
        let report = sensor_latency_report(&trace.runs);
        assert!(report.contains("sensor fault [dropout]"), "{report}");
        assert!(report.contains("p50 0.750 s"), "1.25 - 0.5 latency: {report}");
        assert!(report.contains("sensor fault [bias-drift]"), "{report}");
        assert!(
            report.contains("WARNING: 1 activated run(s) never alarmed"),
            "silent divergence flagged: {report}"
        );
        // Register-only journals get the stub, not an empty string.
        let stub = sensor_latency_report(&trace.runs[..2]);
        assert!(stub.contains("no sensor-fault runs"), "{stub}");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let errs = parse_trace("{\"type\": \"run\"}\nnot json\n").unwrap_err();
        assert_eq!(errs.len(), 1, "first line is a (sparse) run: {errs:?}");
        assert!(errs[0].starts_with("line 2:"), "{errs:?}");
    }

    #[test]
    fn cell_summary_counts_outcomes_and_alarms() {
        let trace = parse_trace(SAMPLE).unwrap();
        let summary = cell_summary(&trace.runs);
        assert!(summary.contains("GPU-transient LSD [golden]"));
        let injected_row = summary
            .lines()
            .find(|l| l.starts_with("GPU-transient LSD ") && !l.contains("[golden]"))
            .expect("injected row");
        assert!(injected_row.contains("1/1"), "accident detected: {injected_row}");
    }

    #[test]
    fn latency_report_measures_lead_time() {
        let trace = parse_trace(SAMPLE).unwrap();
        let report = latency_report(&trace.runs);
        assert!(report.contains("detection latency"));
        assert!(report.contains("p50 2.500 s"), "12.0 - 9.5 lead time: {report}");
        assert!(report.contains("peak divergence"));
        assert!(report.contains("(3 samples)"), "only injected runs counted: {report}");
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let trace = parse_trace(SAMPLE).unwrap();
        let doc = chrome_trace(&trace);
        let parsed = json::parse(&doc).expect("chrome trace is valid JSON");
        let events = parsed.get("traceEvents").and_then(Value::as_arr).expect("traceEvents");
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("one complete event");
        assert_eq!(span.get("tid").and_then(Value::as_f64), Some(2.0));
        assert_eq!(span.get("ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(span.get("dur").and_then(Value::as_f64), Some(50.0));
        assert!(
            events.iter().any(|e| e.get("ph").and_then(Value::as_str) == Some("M")),
            "thread_name metadata"
        );
    }

    #[test]
    fn metrics_summary_reads_histograms_and_deadlines() {
        let doc = json::parse(concat!(
            "{\"counters\": {\"deadline.ticks\": 80, \"deadline.misses\": 3, ",
            "\"deadline.lead_slowdown.ticks\": 80, \"deadline.lead_slowdown.misses\": 3}, ",
            "\"histograms\": {\"tick.total\": {\"count\": 80, \"sum\": 10, ",
            "\"p50\": 16000000, \"p90\": 17000000, \"p99\": 26000000, \"max\": 26500000, ",
            "\"buckets\": []}}}",
        ))
        .unwrap();
        let summary = metrics_summary(&doc);
        assert!(summary.contains("tick.total"));
        assert!(summary.contains("p50   16.000 ms"));
        assert!(summary.contains("3 / 80 ticks over budget"));
        assert!(summary.contains("lead_slowdown"));
    }

    #[test]
    fn bench_diff_flags_large_drops_only() {
        let old = json::parse(
            "{\"entries\": [{\"label\": \"a\", \"ticks_per_sec\": 100.0}, \
             {\"label\": \"b\", \"ticks_per_sec\": 100.0}, \
             {\"label\": \"gone\", \"ticks_per_sec\": 50.0}]}",
        )
        .unwrap();
        let new = json::parse(
            "{\"entries\": [{\"label\": \"a\", \"ticks_per_sec\": 75.0}, \
             {\"label\": \"b\", \"ticks_per_sec\": 85.0}]}",
        )
        .unwrap();
        let warnings = bench_diff(&old, &new, 0.20);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].starts_with("a:"), "{warnings:?}");
        assert!(warnings[0].contains("-25.0 %"), "{warnings:?}");
    }

    #[test]
    fn bench_diff_checked_rejects_unusable_documents() {
        let good =
            json::parse("{\"entries\": [{\"label\": \"a\", \"ticks_per_sec\": 100.0}]}").unwrap();
        let no_entries = json::parse("{\"threads\": 4}").unwrap();
        let empty = json::parse("{\"entries\": []}").unwrap();
        let disjoint =
            json::parse("{\"entries\": [{\"label\": \"z\", \"ticks_per_sec\": 1.0}]}").unwrap();
        let err = bench_diff_checked(&no_entries, &good, 0.2).unwrap_err();
        assert!(err.starts_with("baseline:"), "{err}");
        let err = bench_diff_checked(&good, &empty, 0.2).unwrap_err();
        assert!(err.starts_with("fresh:"), "{err}");
        let err = bench_diff_checked(&good, &disjoint, 0.2).unwrap_err();
        assert!(err.contains("no overlapping"), "{err}");
        assert!(bench_diff_checked(&good, &good, 0.2).unwrap().is_empty());
    }

    #[test]
    fn bench_diff_checked_flags_wall_clock_growth() {
        let old = json::parse(
            "{\"entries\": [{\"label\": \"ci\", \"wall_secs\": 100.0, \
             \"ticks_per_sec\": 0.0}]}",
        )
        .unwrap();
        let slower = json::parse(
            "{\"entries\": [{\"label\": \"ci\", \"wall_secs\": 130.0, \
             \"ticks_per_sec\": 0.0}]}",
        )
        .unwrap();
        let warnings = bench_diff_checked(&old, &slower, 0.20).unwrap();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("wall_secs grew"), "{warnings:?}");
        // Within threshold: no warning.
        assert!(bench_diff_checked(&old, &old, 0.20).unwrap().is_empty());
    }

    fn spark_record(tick: u64, flags: u8, score: f64) -> diverseav_obs::flight::TickRecord {
        diverseav_obs::flight::TickRecord {
            tick,
            flags,
            score,
            slope: 0.0,
            margin: 1.0 - score,
            phase_ns: [0; 4],
            deadline_margin_ns: 0,
            d_throttle: 0.0,
            d_brake: 0.0,
            d_steer: 0.0,
        }
    }

    fn synthetic_incident(
        index: usize,
        class: &str,
        onset_tick: u64,
        alarms: bool,
    ) -> IncidentRecord {
        let mut flight = Vec::new();
        for t in 0..=60u64 {
            let mut flags = FLAG_DETECTOR_OBSERVED;
            let mut score = 0.05;
            if t >= onset_tick {
                flags |= FLAG_FAULT_ACTIVE;
                // Ramp: crosses the detectability floor 10 ticks after
                // onset, the threshold 20 ticks after (if it alarms).
                let ramp = (t - onset_tick) as f64 / 20.0;
                score = if alarms { ramp.min(1.2) } else { ramp.min(0.8) };
            }
            if alarms && t >= onset_tick + 20 {
                flags |= FLAG_ALARM;
            }
            flight.push(spark_record(t, flags, score));
        }
        IncidentRecord {
            kind: "injected".to_string(),
            index,
            seed: 9_000 + index as u64,
            incident: if alarms { "alarm" } else { "silent-divergence" }.to_string(),
            fault_class: Some(class.to_string()),
            fault_onset_time: Some(onset_tick as f64 / 40.0),
            alarm_time: alarms.then(|| (onset_tick + 20) as f64 / 40.0),
            flight,
        }
    }

    #[test]
    fn parse_incidents_skips_framing_and_flags_garbage() {
        let rec = synthetic_incident(0, "dropout", 8, true);
        let doc = format!(
            "{}\n{}\n{}\n",
            "{\"type\": \"merged_incidents\", \"incidents\": 1}",
            rec.render_merged(),
            "{\"type\": \"incidents_done\", \"incidents\": 1}",
        );
        let parsed = parse_incidents(&doc).expect("framing lines are skipped");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].render_merged(), rec.render_merged());

        let errs = parse_incidents("{\"type\": \"mystery\"}\nnot json\n").unwrap_err();
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs[0].starts_with("line 1:"), "{errs:?}");
    }

    #[test]
    fn forensics_decomposes_onset_to_detect_to_alarm() {
        let incidents = vec![
            synthetic_incident(0, "dropout", 8, true),
            synthetic_incident(1, "dropout", 12, true),
            synthetic_incident(2, "noise", 10, false),
        ];
        let report = forensics_report(&incidents);
        // Onset at tick 8 = 0.2 s; floor crossed 10 ticks (0.25 s) later;
        // alarm 20 ticks (0.5 s) later.
        assert!(
            report.contains("onset 0.200 s -> detectable +0.250 s -> alarm +0.500 s"),
            "{report}"
        );
        // Per-class table: dropout has two alarmed incidents, noise none.
        assert!(report.contains("time-to-detectability vs time-to-alarm"), "{report}");
        assert!(report.contains("dropout"), "{report}");
        assert!(report.contains("NEVER ALARMED"), "{report}");
        // The never-alarmed ranking names the noise run with its margin
        // to the threshold (peak 0.8 -> margin 0.2).
        assert!(report.contains("closest approach"), "{report}");
        assert!(report.contains("injected run 2"), "{report}");
        assert!(report.contains("0.200"), "{report}");
        // Sparkline rows carry both markers.
        assert!(report.contains("o onset, ! alarm"), "{report}");
        let marks = report
            .lines()
            .find(|l| l.trim_start().starts_with("mark") && l.contains('!'))
            .expect("an alarmed incident renders an alarm marker");
        assert!(marks.contains('o'), "{marks}");
    }

    #[test]
    fn forensics_handles_empty_sets() {
        assert!(forensics_report(&[]).contains("no incidents"));
    }

    #[test]
    fn journal_drop_warning_is_loud() {
        let dropped = json::parse(
            "{\"type\": \"metrics\", \"counters\": {\"journal.dropped\": 2, \"deadline.ticks\": 0}}",
        )
        .unwrap();
        let out = metrics_summary(&dropped);
        assert!(out.contains("WARNING"), "{out}");
        assert!(out.contains("dropped 2 line(s)"), "{out}");
        assert!(out.contains("DIVERSEAV_TRACE_CAP"), "{out}");

        let clean =
            json::parse("{\"type\": \"metrics\", \"counters\": {\"journal.dropped\": 0}}").unwrap();
        assert!(!metrics_summary(&clean).contains("WARNING"));
    }

    /// End-to-end: force real drops through the journal's line cap and
    /// feed the registry snapshot — the document the binary consumes —
    /// through the summary.
    #[test]
    fn journal_drop_warning_fires_on_a_real_forced_drop() {
        use diverseav_obs::{journal, metrics};
        let base = journal::len();
        journal::set_capacity(base + 1);
        for i in 0..3 {
            journal::append_line(format!("{{\"type\": \"cap_probe\", \"i\": {i}}}"));
        }
        journal::set_capacity(1 << 20);
        let snap = json::parse(&metrics::render_json(&metrics::snapshot()))
            .expect("registry snapshot renders valid JSON");
        let out = metrics_summary(&snap);
        assert!(out.contains("WARNING"), "forced drops must surface loudly:\n{out}");
        assert!(out.contains("TRUNCATED"), "{out}");
    }
}
