//! Experiment E4 (Fig 6, §V-B) — regenerates the paper artifact.
//!
//! Scale: quick by default; `DIVERSEAV_SCALE=paper` for paper-scale runs.

fn main() {
    let started = std::time::Instant::now();
    let report = diverseav_bench::experiments::fig6_report();
    println!("{report}");
    eprintln!("[fig6_trajectory completed in {:.1} s]", started.elapsed().as_secs_f64());
}
