//! Experiment E1-E3 (Fig 5, §V-A) — regenerates the paper artifact.
//!
//! Scale: quick by default; `DIVERSEAV_SCALE=paper` for paper-scale runs.

fn main() {
    let started = std::time::Instant::now();
    let report = diverseav_bench::experiments::fig5_report();
    println!("{report}");
    eprintln!("[fig5_bit_diversity completed in {:.1} s]", started.elapsed().as_secs_f64());
}
