//! Ablation studies of the DiverseAV design choices DESIGN.md calls out:
//! state-binned thresholds, neighborhood smoothing, the rolling window,
//! the safety margin — and the footnote-5 partial-overlap distribution
//! (detection quality vs compute cost).

use diverseav::TrainSample;
use diverseav::{AgentMode, DetectorConfig, DetectorModel};
use diverseav_bench::evaluate_cell;
use diverseav_bench::experiments::{BEST_RW, BEST_TD};
use diverseav_fabric::Profile;
use diverseav_faultinj::{
    collect_training_runs, generate_plan, mean_trajectory, run_experiment, scenario_for,
    CampaignScale, FaultModelKind, PlanConfig, RunConfig,
};
use diverseav_faultinj::{Campaign, CampaignResult};
use diverseav_simworld::long_route;
use diverseav_simworld::{ScenarioKind, SensorConfig, TrajPoint};

fn ablation_scale() -> CampaignScale {
    CampaignScale {
        n_transient: 8,
        permanent_repeats: 1,
        golden_runs: 3,
        long_route_duration: 60.0,
        training_runs: 1,
    }
}

/// Run the GPU campaigns for one overlap setting, recording streams.
fn campaigns_with_overlap(
    overlap: Option<u32>,
    scale: &CampaignScale,
) -> (Vec<CampaignResult>, f64) {
    let mut out = Vec::new();
    let mut gpu_instr_per_run = Vec::new();
    for kind in [FaultModelKind::Transient, FaultModelKind::Permanent] {
        for scenario_kind in [ScenarioKind::LeadSlowdown, ScenarioKind::GhostCutIn] {
            let scenario = scenario_for(scenario_kind, scale);
            let golden: Vec<_> = (0..scale.golden_runs)
                .map(|i| {
                    let mut cfg =
                        RunConfig::new(scenario.clone(), AgentMode::RoundRobin, 1_000 + i as u64);
                    cfg.collect_training = true;
                    cfg.overlap_period = overlap;
                    run_experiment(&cfg)
                })
                .collect();
            gpu_instr_per_run.extend(golden.iter().map(|g| g.gpu_dyn_instr as f64));
            let trajs: Vec<&[TrajPoint]> = golden.iter().map(|g| g.trajectory.as_slice()).collect();
            let baseline = mean_trajectory(&trajs);
            let plan = generate_plan(
                &golden[0],
                &PlanConfig {
                    kind,
                    target: Profile::Gpu,
                    n_transient: scale.n_transient,
                    repeats: scale.permanent_repeats,
                    seed: 0xAB1,
                },
            );
            let injected: Vec<_> = plan
                .iter()
                .enumerate()
                .map(|(i, &spec)| {
                    let mut cfg =
                        RunConfig::new(scenario.clone(), AgentMode::RoundRobin, 2_000 + i as u64);
                    cfg.fault = Some(spec);
                    cfg.collect_training = true;
                    cfg.overlap_period = overlap;
                    run_experiment(&cfg)
                })
                .collect();
            out.push(CampaignResult {
                campaign: Campaign {
                    scenario: scenario_kind,
                    target: Profile::Gpu,
                    kind,
                    mode: AgentMode::RoundRobin,
                },
                golden,
                injected,
                baseline,
            });
        }
    }
    let mean_instr = gpu_instr_per_run.iter().sum::<f64>() / gpu_instr_per_run.len() as f64;
    (out, mean_instr)
}

/// Fault-free training streams collected *with* the same overlap setting
/// the campaigns use — detector training and deployment must match.
fn training_with_overlap(overlap: Option<u32>, scale: &CampaignScale) -> Vec<Vec<TrainSample>> {
    let mut runs = Vec::new();
    for route in 0..3u8 {
        let scenario = long_route(route, scale.long_route_duration);
        let mut cfg = RunConfig::new(scenario, AgentMode::RoundRobin, 7_100 + route as u64);
        cfg.collect_training = true;
        cfg.overlap_period = overlap;
        runs.push(run_experiment(&cfg).training);
    }
    runs
}

fn main() {
    let scale = ablation_scale();
    eprintln!("collecting training runs ...");
    let training = collect_training_runs(AgentMode::RoundRobin, &scale, SensorConfig::default());

    // ---------------- detector design ablations ----------------
    eprintln!("running baseline campaigns ...");
    let (campaigns, base_instr) = campaigns_with_overlap(None, &scale);
    println!("== Ablation A: error-detector design choices (td = {BEST_TD} m) ==\n");
    println!(
        "{:<34} {:>9} {:>7} {:>7} {:>14}",
        "variant", "precision", "recall", "F1", "golden alarms"
    );
    let variants: Vec<(&str, DetectorConfig)> = vec![
        ("full detector (paper design)", DetectorConfig::default().with_rw(BEST_RW)),
        ("no rolling window (rw = 1)", DetectorConfig::default().with_rw(1)),
        ("large window (rw = 12)", DetectorConfig::default().with_rw(12)),
        ("no state binning (global max)", {
            let mut c = DetectorConfig::default().with_rw(BEST_RW);
            c.v_bin = 1e6;
            c.a_bin = 1e6;
            c.w_bin = 1e6;
            c.alpha_bin = 1e6;
            c
        }),
        ("no neighborhood smoothing", {
            let mut c = DetectorConfig::default().with_rw(BEST_RW);
            c.neighborhood = false;
            c
        }),
        ("no safety margin (margin = 1.0)", {
            let mut c = DetectorConfig::default().with_rw(BEST_RW);
            c.margin = 1.0;
            c
        }),
    ];
    for (name, cfg) in variants {
        let model = DetectorModel::train(&training, &cfg);
        let cell = evaluate_cell(&model, cfg, &campaigns, BEST_TD);
        println!(
            "{:<34} {:>9.2} {:>7.2} {:>7.2} {:>14}",
            name,
            cell.eval.precision(),
            cell.eval.recall(),
            cell.eval.f1(),
            cell.golden_alarms
        );
    }

    // ---------------- partial-overlap distribution ----------------
    println!("\n== Ablation B: partial-overlap distribution (paper footnote 5) ==\n");
    println!(
        "{:<22} {:>9} {:>7} {:>14} {:>16}",
        "overlap", "precision", "recall", "golden alarms", "GPU compute"
    );
    for (label, overlap) in
        [("none (pure RR)", None), ("every 4th frame", Some(4u32)), ("every 2nd frame", Some(2))]
    {
        let (c, instr) = if overlap.is_none() {
            (campaigns.clone(), base_instr)
        } else {
            eprintln!("running overlap={overlap:?} campaigns ...");
            campaigns_with_overlap(overlap, &scale)
        };
        // Train with the SAME overlap setting the deployment uses: overlap
        // frames contribute same-frame (near-zero) divergence samples that
        // the thresholds must reflect.
        let cfg = DetectorConfig::default().with_rw(BEST_RW);
        let otraining = training_with_overlap(overlap, &scale);
        let model = DetectorModel::train(&otraining, &cfg);
        let cell = evaluate_cell(&model, cfg, &c, BEST_TD);
        println!(
            "{:<22} {:>9.2} {:>7.2} {:>14} {:>15.0}%",
            label,
            cell.eval.precision(),
            cell.eval.recall(),
            cell.golden_alarms,
            instr / base_instr * 100.0
        );
    }
    println!(
        "\nShape: overlap trades extra compute for a same-frame (FD-like) reference on\n\
         overlap frames; pure round-robin keeps compute at the single-agent budget."
    );
}
