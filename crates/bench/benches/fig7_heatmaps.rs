//! Experiment E6 (Fig 7, §V-D) — regenerates the paper artifact.
//!
//! Scale: quick by default; `DIVERSEAV_SCALE=paper` for paper-scale runs.

fn main() {
    let started = std::time::Instant::now();
    let report = diverseav_bench::experiments::fig7_report();
    println!("{report}");
    eprintln!("[fig7_heatmaps completed in {:.1} s]", started.elapsed().as_secs_f64());
}
