//! Experiment E8 (Table II, §V-E) — regenerates the paper artifact.
//!
//! Scale: quick by default; `DIVERSEAV_SCALE=paper` for paper-scale runs.

fn main() {
    let started = std::time::Instant::now();
    let report = diverseav_bench::experiments::table2_report();
    println!("{report}");
    eprintln!("[table2_resources completed in {:.1} s]", started.elapsed().as_secs_f64());
}
