//! Experiment E12 (Fig 2(3)(4)) — regenerates the paper artifact.
//!
//! Scale: quick by default; `DIVERSEAV_SCALE=paper` for paper-scale runs.

fn main() {
    let started = std::time::Instant::now();
    let report = diverseav_bench::experiments::fig2_report();
    println!("{report}");
    eprintln!("[fig2_traces completed in {:.1} s]", started.elapsed().as_secs_f64());
}
