//! Criterion micro-benchmarks of the performance-critical components:
//! fabric interpreter throughput, camera rasterization, full agent
//! inference, world stepping, and detector updates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use diverseav::{
    Ads, AdsConfig, AgentMode, DetectorConfig, DetectorModel, Divergence, OnlineDetector,
    TrainSample, VehState,
};
use diverseav_agent::{AgentConfig, SensorimotorAgent};
use diverseav_fabric::{Fabric, Profile, ProgramBuilder, Reg};
use diverseav_runtime::{PolicyDriver, SimLoop};
use diverseav_simworld::{
    lead_slowdown, lidar_scan_into, render_camera, Controls, RenderScene, SensorConfig, World,
};

/// Straight-line float pipeline for raw interpreter throughput.
fn interpreter_throughput(c: &mut Criterion) {
    let mut b = ProgramBuilder::new();
    b.ldimm_f(Reg(0), 1.0001);
    b.ldimm_f(Reg(1), 0.5);
    for _ in 0..200 {
        b.ffma(Reg(2), Reg(0), Reg(1), Reg(2));
        b.fmul(Reg(3), Reg(2), Reg(0));
        b.fadd(Reg(4), Reg(3), Reg(1));
        b.fmax(Reg(5), Reg(4), Reg(2));
        b.fsub(Reg(2), Reg(5), Reg(1));
    }
    b.halt();
    let prog = b.build();
    let n_instr = prog.len() as u64;
    let mut group = c.benchmark_group("fabric");
    group.throughput(Throughput::Elements(n_instr));
    group.bench_function("scalar_interpreter", |bench| {
        let mut fabric = Fabric::new(Profile::Gpu);
        let mut ctx = fabric.new_context(16);
        bench.iter(|| fabric.run_scalar(&prog, &mut ctx, 1 << 20).expect("runs"));
    });
    group.finish();
}

/// Data-parallel kernel launch (the agent's dominant cost shape), through
/// both engines: the lockstep path `run_kernel` dispatches to, and the
/// thread-major reference interpreter it must stay bit-identical to. The
/// pair is the standing measurement of the lockstep speedup.
fn kernel_launch(c: &mut Criterion) {
    let mut b = ProgramBuilder::new();
    b.tid(Reg(0));
    b.ld(Reg(1), Reg(0), 0);
    b.ldimm_f(Reg(2), 1.5);
    b.fmul(Reg(1), Reg(1), Reg(2));
    b.st(Reg(0), Reg(1), 4096);
    b.halt();
    let prog = b.build();
    let mut group = c.benchmark_group("fabric");
    group.throughput(Throughput::Elements(3072 * prog.len() as u64));
    group.bench_function("kernel_3072_threads", |bench| {
        let mut fabric = Fabric::new(Profile::Gpu);
        let mut ctx = fabric.new_context(8192);
        bench.iter(|| fabric.run_kernel(&prog, &mut ctx, 3072, &[], 100).expect("runs"));
    });
    group.bench_function("kernel_3072_threads_scalar_reference", |bench| {
        let mut fabric = Fabric::new(Profile::Gpu);
        let mut ctx = fabric.new_context(8192);
        bench.iter(|| fabric.run_kernel_reference(&prog, &mut ctx, 3072, &[], 100).expect("runs"));
    });
    group.finish();
}

/// One camera render of a populated scene.
fn camera_render(c: &mut Criterion) {
    let world = World::new(lead_slowdown(), SensorConfig::default(), 7);
    let cfg = SensorConfig::default();
    c.bench_function("sensors/render_camera_64x48", |bench| {
        bench.iter(|| {
            let scene = RenderScene {
                track: &world.scenario().track,
                ego: world.ego_state().pose,
                ego_s: world.ego_s(),
                npcs: world.npcs(),
                frame_seed: 1234,
            };
            render_camera(&cfg, &scene, 1)
        });
    });
}

/// One LiDAR sweep of a populated scene into a reused range buffer (the
/// allocation-free form the campaign hot path uses when LiDAR is enabled).
fn lidar_sweep(c: &mut Criterion) {
    let world = World::new(lead_slowdown(), SensorConfig::default(), 7);
    let cfg = SensorConfig::default();
    c.bench_function("sensors/lidar_scan_180_beams", |bench| {
        let mut ranges = Vec::new();
        bench.iter(|| {
            let scene = RenderScene {
                track: &world.scenario().track,
                ego: world.ego_state().pose,
                ego_s: world.ego_s(),
                npcs: world.npcs(),
                frame_seed: 1234,
            };
            lidar_scan_into(&cfg, &scene, &mut ranges);
            ranges.len()
        });
    });
}

/// Full agent inference (GPU perception + CPU control on the fabric).
fn agent_inference(c: &mut Criterion) {
    let mut world = World::new(lead_slowdown(), SensorConfig::default(), 8);
    let frame = world.sense();
    let hint = world.route_hint();
    c.bench_function("agent/full_inference_step", |bench| {
        let mut agent = SensorimotorAgent::new(AgentConfig::default(), 1);
        let mut gpu = Fabric::new(Profile::Gpu);
        let mut cpu = Fabric::new(Profile::Cpu);
        bench.iter(|| agent.step(&frame, hint, 0.025, &mut gpu, &mut cpu).expect("fault-free"));
    });
}

/// One ADS tick in DiverseAV mode (sense excluded).
fn ads_tick(c: &mut Criterion) {
    let mut world = World::new(lead_slowdown(), SensorConfig::default(), 9);
    let frame = world.sense();
    let hint = world.route_hint();
    let state = VehState::from(world.ego_state());
    c.bench_function("ads/diverseav_tick", |bench| {
        let mut ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 2));
        bench.iter(|| ads.tick(&frame, hint, state, 0.1).expect("fault-free"));
    });
}

/// Full world step including sensing (the simulation inner loop), driven
/// through the canonical `SimLoop` tick.
fn world_step(c: &mut Criterion) {
    c.bench_function("world/sense_plus_step", |bench| {
        bench.iter_batched(
            || {
                SimLoop::new(
                    World::new(lead_slowdown(), SensorConfig::default(), 10),
                    PolicyDriver(|_: &World| Controls::default()),
                )
            },
            |mut sim| {
                sim.run_for(1, &mut []);
                sim
            },
            BatchSize::SmallInput,
        );
    });
}

/// Online detector observation (the runtime monitoring cost).
fn detector_observe(c: &mut Criterion) {
    let training: Vec<Vec<TrainSample>> = vec![(0..2000)
        .map(|i| TrainSample {
            t: i as f64 * 0.025,
            state: VehState { v: (i % 9) as f64, a: 0.0, w: 0.0, alpha: 0.0 },
            div: Divergence { throttle: 0.01, brake: 0.01, steer: 0.002 },
        })
        .collect()];
    let cfg = DetectorConfig::default();
    let model = DetectorModel::train(&training, &cfg);
    c.bench_function("detector/observe", |bench| {
        let mut det = OnlineDetector::new(model.clone(), cfg);
        let state = VehState { v: 5.0, a: 0.2, w: 0.01, alpha: 0.0 };
        let div = Divergence { throttle: 0.005, brake: 0.0, steer: 0.001 };
        let mut t = 0.0;
        bench.iter(|| {
            t += 0.025;
            det.observe(&state, div, t)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = interpreter_throughput, kernel_launch, camera_render, lidar_sweep, agent_inference, ads_tick, world_step, detector_observe
}
criterion_main!(benches);
