//! Experiment E5+E9 (Table I, §V-C, §VI-A) — regenerates the paper artifact.
//!
//! Scale: quick by default; `DIVERSEAV_SCALE=paper` for paper-scale runs.

fn main() {
    let started = std::time::Instant::now();
    let report = diverseav_bench::experiments::table1_report();
    println!("{report}");
    diverseav_bench::perf::flush_json("BENCH_campaigns.json").expect("write BENCH_campaigns.json");
    diverseav_bench::flush_metrics_json("METRICS_campaigns.json")
        .expect("write METRICS_campaigns.json");
    if let Some(path) = diverseav_obs::journal::flush_if_enabled().expect("write trace journal") {
        eprintln!("[run journal written to {path}]");
    }
    eprintln!(
        "[table1_campaigns completed in {:.1} s; per-campaign timings in BENCH_campaigns.json, \
         campaign counters in METRICS_campaigns.json]",
        started.elapsed().as_secs_f64()
    );
}
