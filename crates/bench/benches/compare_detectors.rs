//! Experiment E10+E11 (§VI-B, §VI-C) — regenerates the paper artifact.
//!
//! Scale: quick by default; `DIVERSEAV_SCALE=paper` for paper-scale runs.

fn main() {
    let started = std::time::Instant::now();
    let report = diverseav_bench::experiments::compare_report();
    println!("{report}");
    eprintln!("[compare_detectors completed in {:.1} s]", started.elapsed().as_secs_f64());
}
