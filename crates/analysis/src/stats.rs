//! Elementary statistics used across the evaluation: percentiles, boxplot
//! summaries, and CDFs.

/// Percentile of a sample (linear interpolation between order statistics).
///
/// # Panics
///
/// Panics if `data` is empty or `p` is outside `[0, 100]`.
pub fn percentile(data: &[f64], p: f64) -> f64 {
    assert!(!data.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn mean(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "mean of empty sample");
    data.iter().sum::<f64>() / data.len() as f64
}

/// Sample standard deviation (n − 1 denominator; 0 for n < 2).
pub fn std_dev(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    (data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (data.len() - 1) as f64).sqrt()
}

/// Five-number summary for boxplots (Fig 6).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Boxplot {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Boxplot {
    /// Compute the five-number summary.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn of(data: &[f64]) -> Boxplot {
        Boxplot {
            min: percentile(data, 0.0),
            q1: percentile(data, 25.0),
            median: percentile(data, 50.0),
            q3: percentile(data, 75.0),
            max: percentile(data, 100.0),
        }
    }
}

/// Fixed-width histogram of a sample: returns `(bin_lower_edge, count)`
/// pairs covering `[lo, hi)` with `bins` equal bins; samples outside the
/// range are clamped into the edge bins.
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
pub fn histogram(data: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<(f64, usize)> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "empty histogram range");
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    for &x in data {
        let b = ((x - lo) / width).floor();
        let idx = (b.max(0.0) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    counts.into_iter().enumerate().map(|(i, c)| (lo + i as f64 * width, c)).collect()
}

/// Empirical CDF points `(x, F(x))` of a sample, one per observation.
pub fn cdf_points(data: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = sorted.len() as f64;
    sorted.iter().enumerate().map(|(i, &x)| (x, (i + 1) as f64 / n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 50.0), 3.0);
        assert_eq!(percentile(&data, 100.0), 5.0);
        assert_eq!(percentile(&data, 25.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [0.0, 10.0];
        assert!((percentile(&data, 75.0) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let data = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&data, 50.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn mean_and_std() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data) - 5.0).abs() < 1e-12);
        assert!((std_dev(&data) - 2.138).abs() < 0.01);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn boxplot_five_numbers() {
        let data: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        let b = Boxplot::of(&data);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 5.0);
        assert_eq!(b.max, 9.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let data = [0.1, 0.2, 0.55, 0.9, -5.0, 5.0];
        let h = histogram(&data, 0.0, 1.0, 4);
        assert_eq!(h.len(), 4);
        assert_eq!(h[0], (0.0, 3), "two in-range + one clamped low");
        assert_eq!(h[2].1, 1);
        assert_eq!(h[3].1, 2, "one in-range + one clamped high");
        assert_eq!(h.iter().map(|&(_, c)| c).sum::<usize>(), data.len());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = histogram(&[1.0], 0.0, 1.0, 0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let data = [3.0, 1.0, 2.0];
        let cdf = cdf_points(&data);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (3.0, 1.0));
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }
}
