//! Temporal data-diversity and semantic-consistency metrics (§V-A,
//! Fig 5): per-pixel bit differences between consecutive camera frames,
//! bit diversity of float sensor payloads, and object-center shifts.

use crate::stats::percentile;
use diverseav_simworld::Image;

/// Per-pixel bit differences between two images: the number of differing
/// bits out of the 24-bit RGB value at each pixel location.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn pixel_bit_diffs(a: &Image, b: &Image) -> Vec<u32> {
    assert_eq!(a.width(), b.width(), "image widths differ");
    assert_eq!(a.height(), b.height(), "image heights differ");
    let mut out = Vec::with_capacity(a.width() * a.height());
    for (pa, pb) in a.data().chunks_exact(3).zip(b.data().chunks_exact(3)) {
        let bits: u32 = pa.iter().zip(pb.iter()).map(|(&x, &y)| (x ^ y).count_ones()).sum();
        out.push(bits);
    }
    out
}

/// Per-element bit differences between two `f32` payload slices (IMU/GPS/
/// LiDAR diversity), out of 32 bits per value.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn float_bit_diffs(a: &[f32], b: &[f32]) -> Vec<u32> {
    assert_eq!(a.len(), b.len(), "payload lengths differ");
    a.iter().zip(b.iter()).map(|(&x, &y)| (x.to_bits() ^ y.to_bits()).count_ones()).collect()
}

/// Summary of a diversity distribution: the percentiles the paper reports.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DiversityStats {
    /// 50th percentile.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Mean.
    pub mean: f64,
}

impl DiversityStats {
    /// Summarize a bit-difference sample.
    ///
    /// # Panics
    ///
    /// Panics if `diffs` is empty.
    pub fn of(diffs: &[u32]) -> DiversityStats {
        let data: Vec<f64> = diffs.iter().map(|&d| d as f64).collect();
        DiversityStats {
            p50: percentile(&data, 50.0),
            p90: percentile(&data, 90.0),
            mean: crate::stats::mean(&data),
        }
    }
}

/// Shift distances between matched points of consecutive frames (object
/// centers in pixels, or world positions in meters).
pub fn matched_shifts(prev: &[(usize, f64, f64)], next: &[(usize, f64, f64)]) -> Vec<f64> {
    let mut shifts = Vec::new();
    for &(id, x0, y0) in prev {
        if let Some(&(_, x1, y1)) = next.iter().find(|&&(i, _, _)| i == id) {
            shifts.push(((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt());
        }
    }
    shifts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_zero_diversity() {
        let img = Image::new(4, 4);
        let diffs = pixel_bit_diffs(&img, &img);
        assert_eq!(diffs.len(), 16);
        assert!(diffs.iter().all(|&d| d == 0));
    }

    #[test]
    fn single_channel_lsb_flip_counts_one_bit() {
        let a = Image::new(2, 2);
        let mut b = Image::new(2, 2);
        b.set_pixel(1, 1, [1, 0, 0]);
        let diffs = pixel_bit_diffs(&a, &b);
        assert_eq!(diffs.iter().sum::<u32>(), 1);
        assert_eq!(diffs[3], 1);
    }

    #[test]
    fn paper_example_95_to_96_is_18_bits() {
        // §III-D: a 24-bit RGB value changing from 95 per channel to 96
        // per channel flips 18 bits (6 per channel: 0101_1111 → 0110_0000).
        let mut a = Image::new(1, 1);
        let mut b = Image::new(1, 1);
        a.set_pixel(0, 0, [95, 95, 95]);
        b.set_pixel(0, 0, [96, 96, 96]);
        assert_eq!(pixel_bit_diffs(&a, &b)[0], 18);
    }

    #[test]
    fn float_bit_diffs_count_xor_bits() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 2.5, 3.0];
        let d = float_bit_diffs(&a, &b);
        assert_eq!(d[0], 0);
        assert!(d[1] > 0);
        assert_eq!(d[2], 0);
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_images_panic() {
        let _ = pixel_bit_diffs(&Image::new(2, 2), &Image::new(3, 2));
    }

    #[test]
    fn diversity_stats_percentiles() {
        let diffs: Vec<u32> = (0..=10).collect();
        let s = DiversityStats::of(&diffs);
        assert_eq!(s.p50, 5.0);
        assert_eq!(s.p90, 9.0);
        assert_eq!(s.mean, 5.0);
    }

    #[test]
    fn matched_shifts_pairs_by_id() {
        let prev = [(0usize, 0.0, 0.0), (1, 10.0, 10.0)];
        let next = [(1usize, 13.0, 14.0), (2, 0.0, 0.0)];
        let shifts = matched_shifts(&prev, &next);
        assert_eq!(shifts.len(), 1, "only object 1 appears in both frames");
        assert!((shifts[0] - 5.0).abs() < 1e-12);
    }
}
