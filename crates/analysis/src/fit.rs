//! FIT-rate estimation: translate fault-injection statistics into the
//! ISO 26262 language of the paper's introduction.
//!
//! ISO 26262 requires the *residual* FIT rate (failures per 10⁹ device
//! hours that are neither masked, nor platform-detected, nor caught by a
//! safety mechanism) of an ASIL-D SoC to stay below 10 FIT. Following the
//! methodology the paper cites (fault-injection-derived SDC probabilities,
//! validated against beam tests in the paper's reference \[31\]), the residual rate factors as
//!
//! ```text
//! residual = raw_fit · P(safety-SDC | fault) · (1 − detector coverage)
//! ```

/// Outcome probabilities of a fault-injection campaign.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultOutcomeRates {
    /// P(fault is masked / benign).
    pub p_benign: f64,
    /// P(fault hangs or crashes the stack) — platform-detected.
    pub p_hang_crash: f64,
    /// P(fault silently corrupts data *and* causes a safety violation).
    pub p_safety_sdc: f64,
}

impl FaultOutcomeRates {
    /// Derive rates from campaign counts.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or the categories exceed it.
    pub fn from_counts(total: usize, hang_crash: usize, safety_sdc: usize) -> Self {
        assert!(total > 0, "empty campaign");
        assert!(hang_crash + safety_sdc <= total, "categories exceed total");
        FaultOutcomeRates {
            p_benign: (total - hang_crash - safety_sdc) as f64 / total as f64,
            p_hang_crash: hang_crash as f64 / total as f64,
            p_safety_sdc: safety_sdc as f64 / total as f64,
        }
    }

    /// The probabilities must form a distribution.
    pub fn is_consistent(&self) -> bool {
        (self.p_benign + self.p_hang_crash + self.p_safety_sdc - 1.0).abs() < 1e-9
            && self.p_benign >= 0.0
            && self.p_hang_crash >= 0.0
            && self.p_safety_sdc >= 0.0
    }
}

/// A FIT-rate estimate for one compute element under a detector.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FitEstimate {
    /// Raw hardware fault rate of the element (FIT).
    pub raw_fit: f64,
    /// FIT rate of safety-critical SDCs without any detector.
    pub unprotected_sdc_fit: f64,
    /// Residual FIT rate with the detector deployed.
    pub residual_sdc_fit: f64,
    /// FIT rate converted into platform-detected events (availability
    /// cost, not a safety risk).
    pub detected_fit: f64,
}

/// Estimate FIT rates for a compute element.
///
/// * `raw_fit` — the element's raw fault rate (e.g., ~1000 FIT for a
///   large GPU die at sea level).
/// * `rates` — campaign-derived outcome probabilities.
/// * `detector_recall` — fraction of safety-critical SDCs the deployed
///   detector catches (DiverseAV's recall).
pub fn estimate_fit(raw_fit: f64, rates: &FaultOutcomeRates, detector_recall: f64) -> FitEstimate {
    assert!((0.0..=1.0).contains(&detector_recall), "recall out of range");
    assert!(rates.is_consistent(), "inconsistent outcome rates");
    let unprotected = raw_fit * rates.p_safety_sdc;
    FitEstimate {
        raw_fit,
        unprotected_sdc_fit: unprotected,
        residual_sdc_fit: unprotected * (1.0 - detector_recall),
        detected_fit: raw_fit * rates.p_hang_crash + unprotected * detector_recall,
    }
}

/// Detector recall required to push the residual SDC FIT under a target
/// (ISO 26262 ASIL-D: 10 FIT). Returns `None` when even perfect recall
/// cannot reach the target (i.e., the target is non-positive) and `0.0`
/// when no detector is needed.
pub fn required_recall(raw_fit: f64, rates: &FaultOutcomeRates, target_fit: f64) -> Option<f64> {
    if target_fit <= 0.0 {
        return None;
    }
    let unprotected = raw_fit * rates.p_safety_sdc;
    if unprotected <= target_fit {
        return Some(0.0);
    }
    Some(1.0 - target_fit / unprotected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> FaultOutcomeRates {
        // 1000 faults: 160 hang/crash, 10 safety SDCs, rest benign.
        FaultOutcomeRates::from_counts(1000, 160, 10)
    }

    #[test]
    fn rates_form_a_distribution() {
        let r = rates();
        assert!(r.is_consistent());
        assert!((r.p_benign - 0.83).abs() < 1e-12);
        assert!((r.p_hang_crash - 0.16).abs() < 1e-12);
        assert!((r.p_safety_sdc - 0.01).abs() < 1e-12);
    }

    #[test]
    fn estimate_scales_with_recall() {
        let e0 = estimate_fit(1000.0, &rates(), 0.0);
        assert!((e0.unprotected_sdc_fit - 10.0).abs() < 1e-9);
        assert_eq!(e0.residual_sdc_fit, e0.unprotected_sdc_fit);
        let e87 = estimate_fit(1000.0, &rates(), 0.87);
        assert!((e87.residual_sdc_fit - 1.3).abs() < 1e-9);
        assert!(e87.detected_fit > e0.detected_fit);
    }

    #[test]
    fn perfect_recall_zeroes_residual() {
        let e = estimate_fit(1000.0, &rates(), 1.0);
        assert_eq!(e.residual_sdc_fit, 0.0);
    }

    #[test]
    fn required_recall_for_iso_target() {
        // Unprotected SDC FIT = 10·5 = 50 with a 5000-FIT element; to get
        // below 10 FIT we need recall ≥ 0.8.
        let needed = required_recall(5000.0, &rates(), 10.0).expect("achievable");
        assert!((needed - 0.8).abs() < 1e-9);
        // Already under target → no detector needed.
        assert_eq!(required_recall(100.0, &rates(), 10.0), Some(0.0));
        // Nonsensical target.
        assert_eq!(required_recall(100.0, &rates(), 0.0), None);
    }

    #[test]
    #[should_panic(expected = "empty campaign")]
    fn zero_total_panics() {
        let _ = FaultOutcomeRates::from_counts(0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "categories exceed total")]
    fn overflowing_counts_panic() {
        let _ = FaultOutcomeRates::from_counts(5, 4, 2);
    }

    #[test]
    #[should_panic(expected = "recall out of range")]
    fn bad_recall_panics() {
        let _ = estimate_fit(100.0, &rates(), 1.5);
    }
}
