//! # diverseav-analysis
//!
//! Statistics, temporal-data-diversity metrics, the synthetic-KITTI
//! generator, and plain-text report rendering for the DiverseAV
//! reproduction's evaluation (§V of the paper).
//!
//! ## Example
//!
//! ```
//! use diverseav_analysis::{pixel_bit_diffs, DiversityStats};
//! use diverseav_simworld::Image;
//!
//! let mut a = Image::new(2, 2);
//! let mut b = Image::new(2, 2);
//! a.set_pixel(0, 0, [95, 95, 95]);
//! b.set_pixel(0, 0, [96, 96, 96]);
//! let stats = DiversityStats::of(&pixel_bit_diffs(&a, &b));
//! assert!(stats.mean > 0.0);
//! ```

pub mod diversity;
pub mod fit;
pub mod kitti_synth;
pub mod report;
pub mod stats;

pub use diversity::{float_bit_diffs, matched_shifts, pixel_bit_diffs, DiversityStats};
pub use fit::{estimate_fit, required_recall, FaultOutcomeRates, FitEstimate};
pub use kitti_synth::{generate_sequence, ground_truth_controls, SynthConfig, SynthFrame};
pub use report::{ascii_cdf, heatmap, Table};
pub use stats::{cdf_points, histogram, mean, percentile, std_dev, Boxplot};
