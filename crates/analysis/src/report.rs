//! Plain-text rendering of evaluation artifacts: aligned tables, heat
//! maps (Fig 7), and CDF plots (Fig 8).

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for i in 0..ncols {
                let _ = write!(out, "{:<width$}", cells[i], width = widths[i] + 2);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Render a heat map as a labeled grid of numeric cells (Fig 7 style).
pub fn heatmap(
    title: &str,
    row_label: &str,
    row_keys: &[String],
    col_label: &str,
    col_keys: &[String],
    values: &[Vec<f64>],
) -> String {
    let mut out = format!("{title}\n");
    let _ = writeln!(out, "rows: {row_label}, cols: {col_label}");
    let _ = write!(out, "{:>8}", "");
    for ck in col_keys {
        let _ = write!(out, "{ck:>7}");
    }
    out.push('\n');
    for (rk, row) in row_keys.iter().zip(values.iter()) {
        let _ = write!(out, "{rk:>8}");
        for v in row {
            let _ = write!(out, "{v:>7.2}");
        }
        out.push('\n');
    }
    out
}

/// Render an ASCII CDF plot (Fig 8 style): y = fraction ≤ x.
pub fn ascii_cdf(title: &str, points: &[(f64, f64)], width: usize, height: usize) -> String {
    let mut out = format!("{title}\n");
    if points.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let xmin = points.first().expect("nonempty").0;
    let xmax = points.last().expect("nonempty").0.max(xmin + 1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in points {
        let col = (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
        let row = ((1.0 - y) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col.min(width - 1)] = '*';
    }
    for (i, line) in grid.iter().enumerate() {
        let y = 1.0 - i as f64 / (height - 1) as f64;
        let _ = writeln!(out, "{y:>5.2} |{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "      +{}", "-".repeat(width));
    let _ = writeln!(out, "       x: {xmin:.2} .. {xmax:.2}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4, "header + rule + 2 rows");
        // The value column starts at the same offset in every data row.
        let off = lines[2].find('1').expect("value present");
        assert_eq!(&lines[3][off..off + 2], "22");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn table_len_and_empty() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn heatmap_renders_grid() {
        let s = heatmap(
            "precision",
            "rw",
            &["3".to_string(), "5".to_string()],
            "td",
            &["1".to_string(), "2".to_string()],
            &[vec![0.5, 0.75], vec![0.25, 1.0]],
        );
        assert!(s.contains("precision"));
        assert!(s.contains("0.75"));
        assert!(s.contains("1.00"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn cdf_plot_contains_marks() {
        let pts = vec![(0.0, 0.25), (1.0, 0.5), (2.0, 0.75), (3.0, 1.0)];
        let s = ascii_cdf("lead time", &pts, 20, 8);
        assert!(s.contains('*'));
        assert!(s.contains("lead time"));
        assert!(s.contains("0.00 .. 3.00"));
    }

    #[test]
    fn cdf_plot_handles_empty() {
        let s = ascii_cdf("empty", &[], 10, 5);
        assert!(s.contains("(no data)"));
    }
}
