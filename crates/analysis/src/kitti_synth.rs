//! Synthetic real-world-like driving sequences — the KITTI-dataset
//! substitute for the §V-A characterization (Fig 5a).
//!
//! KITTI itself is unavailable here; this generator produces what the
//! paper's analysis needs from it: 10 Hz camera/IMU+GPS/LiDAR streams from
//! realistic urban driving with ground-truth object tracks. The camera is
//! rendered at a higher resolution than the agent's (a ~1/5-scale KITTI
//! frame) with richer texture and sensor noise, calibrated so the
//! bit-diversity distribution matches the paper's reported percentiles.
//! The world, vehicle dynamics, and renderer are shared with the
//! simulator, so every measured property arises from actual scene motion
//! rather than ad-hoc randomness.

use diverseav_runtime::{LoopObserver, PolicyDriver, SimLoop, TickContext};
use diverseav_simworld::{long_route, Controls, Image, SensorConfig, Vec2, World};

/// One frame of a synthetic real-world-like sequence.
#[derive(Clone, Debug)]
pub struct SynthFrame {
    /// Time stamp (s).
    pub t: f64,
    /// Camera image (center camera).
    pub camera: Image,
    /// IMU + GPS payload: `[accel, yaw_rate, gps_x, gps_y, speed]` (f32,
    /// as posted on a real sensor bus).
    pub imu_gps: [f32; 5],
    /// LiDAR ranges, one per azimuth bin.
    pub lidar: Vec<f32>,
    /// Visible-object centers in image coordinates: `(object id, x, y)`.
    pub objects_px: Vec<(usize, f64, f64)>,
    /// Object centers in the ego frame (meters): `(object id, fwd, left)`.
    pub objects_ego: Vec<(usize, f64, f64)>,
}

/// Configuration of the generator.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SynthConfig {
    /// Number of 10 Hz frames to produce.
    pub n_frames: usize,
    /// Camera resolution (≈1/5 of KITTI's 1242×375 by default).
    pub width: usize,
    /// Camera height.
    pub height: usize,
    /// Sensor noise (richer than the simulator default, as real imagers
    /// are noisier than game-engine renders).
    pub pixel_noise: f64,
    /// World-texture amplitude.
    pub texture_amp: f64,
    /// World seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_frames: 60,
            width: 248,
            height: 76,
            pixel_noise: 2.2,
            texture_amp: 14.0,
            seed: 0x517,
        }
    }
}

/// Generate a 10 Hz synthetic sequence with ground-truth object tracks.
///
/// The ego vehicle is driven by a ground-truth route follower (no fabric
/// agent — this is a data-collection platform, like the KITTI car).
pub fn generate_sequence(cfg: &SynthConfig) -> Vec<SynthFrame> {
    let sensor = SensorConfig {
        width: cfg.width,
        height: cfg.height,
        pixel_noise: cfg.pixel_noise,
        texture_amp: cfg.texture_amp,
        enable_lidar: true,
        lidar_rays: 360,
        ..Default::default()
    };
    // A long route with background traffic; the sensor stack runs at the
    // world's 40 Hz rate, the dataset keeps every 4th frame (10 Hz).
    let scenario = long_route((cfg.seed % 3) as u8, cfg.n_frames as f64 * 0.1 + 30.0);
    let world = World::new(scenario, sensor, cfg.seed);
    let fx = (cfg.width as f64 / 2.0) / (sensor.hfov_deg.to_radians() / 2.0).tan();
    let (cx, cy) = (cfg.width as f64 / 2.0, cfg.height as f64 / 2.0);

    /// Keeps every 4th streamed frame, annotated with ground-truth tracks.
    struct Capture<'a> {
        cfg: &'a SynthConfig,
        sensor: SensorConfig,
        fx: f64,
        cx: f64,
        cy: f64,
        tick: usize,
        frames: Vec<SynthFrame>,
    }

    impl LoopObserver for Capture<'_> {
        fn on_tick(&mut self, ctx: &TickContext<'_>) {
            let keep = self.tick.is_multiple_of(4) && self.frames.len() < self.cfg.n_frames;
            self.tick += 1;
            if !keep {
                return;
            }
            let (world, frame) = (ctx.world, ctx.frame);
            let ego = *world.ego_state();
            let fwd = Vec2::from_heading(ego.pose.heading);
            let left = fwd.perp();
            let mut objects_px = Vec::new();
            let mut objects_ego = Vec::new();
            for (id, npc) in world.npcs().iter().enumerate() {
                let pos = npc.pose(&world.scenario().track).pos;
                let rel = pos - ego.pose.pos;
                let f = fwd.dot(rel);
                let l = left.dot(rel);
                if (2.0..=90.0).contains(&f) {
                    let px = self.cx - self.fx * l / f;
                    let py_bottom = self.cy + self.fx * self.sensor.cam_height / f;
                    let py = py_bottom - 0.5 * self.fx * 1.45 / f;
                    if (0.0..self.cfg.width as f64).contains(&px) {
                        objects_px.push((id, px, py));
                    }
                    objects_ego.push((id, f, l));
                }
            }
            self.frames.push(SynthFrame {
                t: world.time(),
                camera: frame.cameras[1].clone(),
                imu_gps: [
                    frame.imu.accel,
                    frame.imu.yaw_rate,
                    frame.gps[0],
                    frame.gps[1],
                    frame.speed,
                ],
                lidar: frame.lidar.clone().expect("lidar enabled"),
                objects_px,
                objects_ego,
            });
        }
    }

    let mut capture =
        Capture { cfg, sensor, fx, cx, cy, tick: 0, frames: Vec::with_capacity(cfg.n_frames) };
    let mut sim = SimLoop::new(world, PolicyDriver(ground_truth_controls));
    sim.run_for(cfg.n_frames * 4, &mut [&mut capture]);
    capture.frames
}

/// A ground-truth driving policy used only for data collection: follows
/// the route and keeps distance using perfect state (no perception).
pub fn ground_truth_controls(world: &World) -> Controls {
    let hint = world.route_hint();
    let v = world.ego_state().speed;
    let mut target = hint.speed_limit as f64;
    if let Some(cvip) = world.cvip() {
        target = target.min((0.5 * (cvip - 6.0)).max(0.0));
    }
    let e = target - v;
    let steer = -0.15 * hint.lateral_offset as f64 - 1.2 * hint.heading_err as f64
        + 4.0 * hint.curvature as f64
        - 0.05 * world.ego_state().yaw_rate;
    Controls::clamped(0.5 * e, -0.8 * e, steer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diversity::{matched_shifts, pixel_bit_diffs, DiversityStats};

    fn small_cfg() -> SynthConfig {
        SynthConfig { n_frames: 12, width: 124, height: 48, ..Default::default() }
    }

    #[test]
    fn sequence_has_requested_shape() {
        let frames = generate_sequence(&small_cfg());
        assert_eq!(frames.len(), 12);
        assert_eq!(frames[0].camera.width(), 124);
        assert_eq!(frames[0].lidar.len(), 360);
        assert!(frames.windows(2).all(|w| w[1].t > w[0].t));
    }

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let a = generate_sequence(&small_cfg());
        let b = generate_sequence(&small_cfg());
        assert_eq!(a.len(), b.len());
        assert_eq!(a[3].camera, b[3].camera);
        let other = SynthConfig { seed: 99, ..small_cfg() };
        let c = generate_sequence(&other);
        assert_ne!(a[3].camera, c[3].camera);
    }

    #[test]
    fn consecutive_frames_are_bit_diverse_but_semantically_close() {
        let frames = generate_sequence(&SynthConfig { n_frames: 8, ..Default::default() });
        let mut all_diffs = Vec::new();
        let mut shifts = Vec::new();
        for w in frames.windows(2) {
            all_diffs.extend(pixel_bit_diffs(&w[0].camera, &w[1].camera));
            shifts.extend(matched_shifts(&w[0].objects_px, &w[1].objects_px));
        }
        let stats = DiversityStats::of(&all_diffs);
        assert!(stats.p50 >= 4.0, "median bit diversity {}", stats.p50);
        assert!(stats.p90 <= 24.0);
        if !shifts.is_empty() {
            let p50 = crate::stats::percentile(&shifts, 50.0);
            let diag = ((248.0f64).powi(2) + (76.0f64).powi(2)).sqrt();
            assert!(p50 < diag * 0.1, "objects shift slowly: p50 = {p50}");
        }
    }

    #[test]
    fn ground_truth_driver_is_safe() {
        let frames = generate_sequence(&SynthConfig { n_frames: 40, ..Default::default() });
        assert!(frames.len() >= 35, "driver survives the sequence: {}", frames.len());
    }
}
