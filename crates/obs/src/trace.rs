//! Lock-free per-worker event tracing for the deterministic parallel
//! engine.
//!
//! A fan-out over `n` items pre-allocates a [`SlotJournal`] with `n`
//! index-ordered slots. The engine guarantees each index is claimed by
//! exactly one worker (a shared atomic counter hands out indices); the
//! worker obtains the [`SlotWriter`] for its index and appends events
//! without any cross-worker synchronization — each slot is touched by
//! one thread only, which an atomic claim flag enforces at runtime.
//!
//! Because slots are addressed by *item index*, not completion order,
//! the journal's layout is identical for any thread count; only
//! timestamps and worker ids vary. Recording therefore cannot perturb
//! the engine's determinism contract.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// One trace event, timestamped in nanoseconds since the journal epoch.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A named span opened.
    SpanBegin {
        /// Span name.
        name: &'static str,
        /// Nanoseconds since the journal epoch.
        t_ns: u64,
    },
    /// A named span closed.
    SpanEnd {
        /// Span name.
        name: &'static str,
        /// Nanoseconds since the journal epoch.
        t_ns: u64,
    },
    /// A named integer observation (e.g. the worker id that ran a slot).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Observed value.
        value: u64,
    },
    /// A named float observation.
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// Observed value.
        value: f64,
    },
}

impl Event {
    /// Render the event as the fields of a JSON object (no braces), for
    /// embedding into journal lines.
    pub fn render_fields(&self) -> String {
        match self {
            Event::SpanBegin { name, t_ns } => {
                format!("\"event\": \"span_begin\", \"name\": \"{name}\", \"t_ns\": {t_ns}")
            }
            Event::SpanEnd { name, t_ns } => {
                format!("\"event\": \"span_end\", \"name\": \"{name}\", \"t_ns\": {t_ns}")
            }
            Event::Counter { name, value } => {
                format!("\"event\": \"counter\", \"name\": \"{name}\", \"value\": {value}")
            }
            Event::Gauge { name, value } => {
                format!(
                    "\"event\": \"gauge\", \"name\": \"{name}\", \"value\": {}",
                    crate::json::num(*value)
                )
            }
        }
    }
}

/// A slot: an event buffer owned by whichever worker claims its index.
struct Slot {
    claimed: AtomicBool,
    events: UnsafeCell<Vec<Event>>,
}

/// Pre-allocated, index-ordered event storage for one fan-out.
///
/// See the module docs for the (lock-free) access discipline.
pub struct SlotJournal {
    epoch: Instant,
    slots: Vec<Slot>,
}

// SAFETY: a slot's `events` buffer is only reachable through the
// `SlotWriter` returned by `writer()`, and the atomic `claimed` flag
// guarantees at most one writer ever exists per slot; `drain()` takes
// `self` by value, so no writer can outlive the shared phase.
unsafe impl Sync for SlotJournal {}

impl SlotJournal {
    /// A journal with `n` empty slots; the epoch for timestamps is now.
    pub fn with_slots(n: usize) -> Self {
        SlotJournal {
            epoch: Instant::now(),
            slots: (0..n)
                .map(|_| Slot {
                    claimed: AtomicBool::new(false),
                    events: UnsafeCell::new(Vec::new()),
                })
                .collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the journal has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Claim slot `index` and return its writer.
    ///
    /// Panics if the slot was already claimed: the engine hands each
    /// index to exactly one worker, so a second claim is a bug.
    pub fn writer(&self, index: usize) -> SlotWriter<'_> {
        let slot = &self.slots[index];
        assert!(
            !slot.claimed.swap(true, Ordering::AcqRel),
            "trace slot {index} claimed twice (engine index discipline violated)"
        );
        SlotWriter { journal: self, index }
    }

    /// Consume the journal, returning each slot's events in index order.
    pub fn drain(self) -> Vec<Vec<Event>> {
        self.slots.into_iter().map(|s| s.events.into_inner()).collect()
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// Exclusive event writer for one claimed slot.
pub struct SlotWriter<'a> {
    journal: &'a SlotJournal,
    index: usize,
}

impl SlotWriter<'_> {
    /// The slot index this writer owns.
    pub fn index(&self) -> usize {
        self.index
    }

    fn push(&self, e: Event) {
        // SAFETY: the claim flag in `SlotJournal::writer` guarantees this
        // writer is the only accessor of the slot's buffer.
        unsafe { (*self.journal.slots[self.index].events.get()).push(e) }
    }

    /// Record a span opening now.
    pub fn span_begin(&self, name: &'static str) {
        self.push(Event::SpanBegin { name, t_ns: self.journal.now_ns() });
    }

    /// Record a span closing now.
    pub fn span_end(&self, name: &'static str) {
        self.push(Event::SpanEnd { name, t_ns: self.journal.now_ns() });
    }

    /// Record an integer observation.
    pub fn counter(&self, name: &'static str, value: u64) {
        self.push(Event::Counter { name, value });
    }

    /// Record a float observation.
    pub fn gauge(&self, name: &'static str, value: f64) {
        self.push(Event::Gauge { name, value });
    }
}

/// Whether run-journal tracing is enabled (`DIVERSEAV_TRACE` set to
/// anything other than empty or `0`).
///
/// Read from the environment on every call — tracing toggles are
/// consulted once per fan-out or per run, never per tick, and tests
/// flip the variable at runtime.
pub fn enabled() -> bool {
    match std::env::var("DIVERSEAV_TRACE") {
        Ok(v) => !matches!(v.trim(), "" | "0"),
        Err(_) => false,
    }
}

/// The journal output path selected by `DIVERSEAV_TRACE`: `None` when
/// tracing is off; the default `TRACE_runs.jsonl` for bare switch values
/// (`1`, `true`, `on`); otherwise the variable's value verbatim.
pub fn trace_path() -> Option<String> {
    if !enabled() {
        return None;
    }
    match std::env::var("DIVERSEAV_TRACE").ok()?.trim() {
        "1" | "true" | "on" => Some("TRACE_runs.jsonl".to_string()),
        path => Some(path.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_record_in_index_order_regardless_of_claim_order() {
        let j = SlotJournal::with_slots(3);
        // Claim out of order, as parallel workers would.
        let w2 = j.writer(2);
        let w0 = j.writer(0);
        w2.counter("worker", 7);
        w0.counter("worker", 1);
        w0.span_begin("item");
        let events = j.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].len(), 2);
        assert!(events[1].is_empty(), "unclaimed slot stays empty");
        assert_eq!(events[2], vec![Event::Counter { name: "worker", value: 7 }]);
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn double_claim_panics() {
        let j = SlotJournal::with_slots(1);
        let _a = j.writer(0);
        let _b = j.writer(0);
    }

    #[test]
    fn concurrent_writers_do_not_interfere() {
        let j = SlotJournal::with_slots(64);
        std::thread::scope(|scope| {
            for w in 0..4usize {
                let j = &j;
                scope.spawn(move || {
                    for i in (w..64).step_by(4) {
                        let writer = j.writer(i);
                        writer.span_begin("item");
                        writer.counter("worker", w as u64);
                        writer.span_end("item");
                    }
                });
            }
        });
        for (i, events) in j.drain().into_iter().enumerate() {
            assert_eq!(events.len(), 3, "slot {i}");
            assert!(matches!(events[0], Event::SpanBegin { name: "item", .. }));
        }
    }

    #[test]
    fn span_timestamps_are_monotonic() {
        let j = SlotJournal::with_slots(1);
        let w = j.writer(0);
        w.span_begin("x");
        w.span_end("x");
        let events = j.drain().remove(0);
        match (&events[0], &events[1]) {
            (Event::SpanBegin { t_ns: b, .. }, Event::SpanEnd { t_ns: e, .. }) => {
                assert!(e >= b)
            }
            other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn event_fields_render_as_json_fragments() {
        let e = Event::Gauge { name: "g", value: f64::NAN };
        assert!(e.render_fields().contains("null"));
        let e = Event::SpanBegin { name: "s", t_ns: 5 };
        assert_eq!(e.render_fields(), "\"event\": \"span_begin\", \"name\": \"s\", \"t_ns\": 5");
    }
}
