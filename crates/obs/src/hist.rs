//! Lock-free log-bucketed latency histograms.
//!
//! A [`Histogram`] is a fixed-size array of atomic bucket counters over a
//! log-linear value scale: values below [`LINEAR_MAX`] get exact unit
//! buckets; above that, each power-of-two octave is split into
//! [`SUBBUCKETS`] equal sub-buckets, bounding the relative quantile error
//! at `1 / (2 * SUBBUCKETS)` (≈ 12.5 %). Recording is a single relaxed
//! `fetch_add` plus a `fetch_max`, so histograms can be shared freely
//! across `par_map` worker threads: bucket increments commute, which
//! makes the merged contents independent of scheduling — the property
//! the thread-count determinism gate relies on.
//!
//! Values are dimensionless `u64`s; the profiling layer records
//! nanoseconds. Rendering is deterministic: sparse buckets are emitted
//! in ascending index order and quantiles are computed from fixed bucket
//! representatives (clamped to the exact observed maximum).

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this get exact unit buckets.
pub const LINEAR_MAX: u64 = 16;

/// Sub-buckets per power-of-two octave above [`LINEAR_MAX`].
pub const SUBBUCKETS: usize = 4;

/// Total bucket count: 16 unit buckets + 4 sub-buckets for each octave
/// `2^4 ..= 2^63`.
pub const N_BUCKETS: usize = LINEAR_MAX as usize + (64 - 4) * SUBBUCKETS;

/// Bucket index of a value (log-linear scale; total order preserved).
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (octave - 2)) & 0b11) as usize;
        LINEAR_MAX as usize + (octave - 4) * SUBBUCKETS + sub
    }
}

/// Inclusive `(low, high)` value bounds of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < LINEAR_MAX as usize {
        (index as u64, index as u64)
    } else {
        let octave = 4 + (index - LINEAR_MAX as usize) / SUBBUCKETS;
        let sub = ((index - LINEAR_MAX as usize) % SUBBUCKETS) as u64;
        let width = 1u64 << (octave - 2);
        let lo = (1u64 << octave) + sub * width;
        (lo, lo + (width - 1)) // parenthesized: the top bucket's `lo + width` would overflow
    }
}

/// The fixed representative value quantiles report for a bucket (its
/// midpoint — deterministic, never data-dependent).
fn representative(index: usize) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    lo + (hi - lo) / 2
}

/// A fixed-size, lock-free, mergeable latency histogram.
///
/// All operations use relaxed atomics: the histogram carries independent
/// monotone counters, and readers ([`Histogram::snapshot`]) are expected
/// to run at quiescent points (end of a campaign phase, test
/// assertions), not to observe a consistent cut mid-recording.
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (a single `fetch_add` + `fetch_max`).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Fold another histogram's contents into this one (bucket-wise add,
    /// max of maxima) — e.g. per-slot histograms after a fan-out joins.
    pub fn absorb(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A plain (non-atomic) copy of the current contents.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`], with quantile estimation and
/// deterministic JSON rendering.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts ([`N_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimated quantile `q ∈ [0, 1]`: the representative of the bucket
    /// holding the `ceil(q·count)`-th smallest value, clamped to the
    /// exact maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return representative(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another snapshot's contents into this one (bucket-wise add,
    /// sum add, max of maxima) — the plain-data mirror of
    /// [`Histogram::absorb`], for merging snapshots that were serialized
    /// and read back (shard artifacts). Commutative and associative, so
    /// the merged contents are independent of shard order.
    pub fn absorb(&mut self, other: &HistSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, &theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The sparse `(index, count)` pairs of non-empty buckets, in
    /// ascending index order (the same shape [`render_json`] emits).
    ///
    /// [`render_json`]: HistSnapshot::render_json
    pub fn sparse(&self) -> Vec<(usize, u64)> {
        self.buckets.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect()
    }

    /// Rebuild a full snapshot from sparse pairs plus the exact sum and
    /// max (inverse of [`sparse`](HistSnapshot::sparse)).
    ///
    /// # Errors
    ///
    /// Rejects bucket indices outside the fixed [`N_BUCKETS`] scale.
    pub fn from_sparse(pairs: &[(usize, u64)], sum: u64, max: u64) -> Result<Self, String> {
        let mut buckets = vec![0u64; N_BUCKETS];
        for &(i, c) in pairs {
            let slot =
                buckets.get_mut(i).ok_or_else(|| format!("bucket index {i} >= {N_BUCKETS}"))?;
            *slot += c;
        }
        Ok(HistSnapshot { buckets, sum, max })
    }

    /// Render as a JSON object: summary quantiles plus the sparse bucket
    /// list `[[index, count], ...]` in ascending index order.
    pub fn render_json(&self) -> String {
        let mut buckets = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                if !buckets.is_empty() {
                    buckets.push_str(", ");
                }
                buckets.push_str(&format!("[{i}, {c}]"));
            }
        }
        format!(
            "{{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
             \"max\": {}, \"buckets\": [{}]}}",
            self.count(),
            self.sum,
            self.p50(),
            self.p90(),
            self.p99(),
            self.max,
            buckets,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scale_is_monotone_and_total() {
        let mut prev = 0usize;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx < N_BUCKETS, "index {idx} in range for {v}");
            assert!(idx >= prev, "indices non-decreasing at {v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "{v} within its bucket [{lo}, {hi}]");
            prev = idx;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), LINEAR_MAX);
        for v in 0..LINEAR_MAX as usize {
            assert_eq!(s.buckets[v], 1);
        }
        assert_eq!(s.quantile(0.5), 7);
        assert_eq!(s.max, LINEAR_MAX - 1);
    }

    #[test]
    fn quantiles_track_a_known_uniform_distribution() {
        // 1..=100_000 uniform: quantile q should estimate q * 100_000
        // within the scale's 12.5 % relative-error bound.
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100_000);
        assert_eq!(s.max, 100_000);
        for (q, expect) in [(0.50, 50_000.0), (0.90, 90_000.0), (0.99, 99_000.0)] {
            let got = s.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel <= 0.125, "q{q}: got {got}, expected {expect} (rel err {rel:.3})");
        }
        assert!((s.mean() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn p99_never_exceeds_exact_max() {
        let h = Histogram::new();
        h.record(1_000_003);
        let s = h.snapshot();
        assert_eq!(s.max, 1_000_003);
        let (lo, _) = bucket_bounds(bucket_index(1_000_003));
        for q in [s.p50(), s.p90(), s.p99()] {
            assert!(q <= s.max, "quantile {q} clamped to the exact max");
            assert!(q >= lo, "quantile {q} within the recorded bucket");
        }
        assert_eq!(s.p50(), s.p99(), "one sample: every quantile is that bucket");
    }

    #[test]
    fn absorb_merges_like_a_single_recorder() {
        let all = Histogram::new();
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..10_000u64 {
            all.record(v * 17 + 1);
            if v % 2 == 0 { &a } else { &b }.record(v * 17 + 1);
        }
        a.absorb(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn concurrent_recording_matches_sequential() {
        let seq = Histogram::new();
        for v in 0..40_000u64 {
            seq.record(v % 977);
        }
        let par = Histogram::new();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let par = &par;
                scope.spawn(move || {
                    for v in (w..40_000).step_by(4) {
                        par.record(v % 977);
                    }
                });
            }
        });
        assert_eq!(par.snapshot(), seq.snapshot());
    }

    #[test]
    fn snapshot_absorb_matches_histogram_absorb() {
        let all = Histogram::new();
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..5_000u64 {
            all.record(v * 13 + 7);
            if v % 3 == 0 { &a } else { &b }.record(v * 13 + 7);
        }
        let mut sa = a.snapshot();
        sa.absorb(&b.snapshot());
        assert_eq!(sa, all.snapshot());
        // Absorbing into a default (empty-bucket) snapshot resizes it.
        let mut empty = HistSnapshot::default();
        empty.absorb(&all.snapshot());
        assert_eq!(empty, all.snapshot());
    }

    #[test]
    fn sparse_round_trips_through_from_sparse() {
        let h = Histogram::new();
        for v in [0u64, 3, 3, 200, 1 << 40] {
            h.record(v);
        }
        let snap = h.snapshot();
        let rebuilt = HistSnapshot::from_sparse(&snap.sparse(), snap.sum, snap.max).unwrap();
        assert_eq!(rebuilt, snap);
        assert!(HistSnapshot::from_sparse(&[(N_BUCKETS, 1)], 0, 0).is_err(), "bounds checked");
        assert_eq!(
            HistSnapshot::from_sparse(&[], 0, 0).unwrap().buckets.len(),
            N_BUCKETS,
            "empty sparse set still yields a full-scale snapshot"
        );
    }

    #[test]
    fn empty_histogram_renders_and_quantiles_safely() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(
            s.render_json(),
            "{\"count\": 0, \"sum\": 0, \"p50\": 0, \"p90\": 0, \"p99\": 0, \
             \"max\": 0, \"buckets\": []}"
        );
    }

    #[test]
    fn render_lists_sparse_buckets_in_order() {
        let h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(200);
        let json = h.snapshot().render_json();
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("[3, 2]"));
        let i3 = json.find("[3, 2]").unwrap();
        let i200 = json.find(&format!("[{}, 1]", bucket_index(200))).unwrap();
        assert!(i3 < i200, "ascending bucket order");
    }
}
