//! Process-global metrics registry: named counters, gauges, and
//! per-phase wall-clock accumulators, flushed as `METRICS_campaigns.json`.
//!
//! Counters and phase accumulators are recorded at campaign granularity
//! (once per campaign, fan-out, or cache request — never per simulation
//! tick), so the always-on cost is a handful of mutex-protected map
//! operations per campaign. Harness binaries flush the registry next to
//! `BENCH_campaigns.json`; tests isolate themselves by asserting on
//! uniquely named keys rather than clearing the shared registry.

use crate::hist::{HistSnapshot, Histogram};
use crate::json;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Accumulated wall-clock for one phase label.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct PhaseStat {
    /// Total wall-clock seconds recorded under this phase.
    pub wall_secs: f64,
    /// Number of recordings.
    pub count: u64,
}

static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<String, f64>> = Mutex::new(BTreeMap::new());
static PHASES: Mutex<BTreeMap<String, PhaseStat>> = Mutex::new(BTreeMap::new());
static HISTS: Mutex<BTreeMap<String, Arc<Histogram>>> = Mutex::new(BTreeMap::new());

/// Add `n` to the named counter (creating it at zero).
pub fn counter_add(name: &str, n: u64) {
    let mut counters = COUNTERS.lock().expect("metrics counters poisoned");
    *counters.entry(name.to_string()).or_insert(0) += n;
}

/// Current value of a counter (0 if never touched).
pub fn counter_get(name: &str) -> u64 {
    COUNTERS.lock().expect("metrics counters poisoned").get(name).copied().unwrap_or(0)
}

/// Set the named gauge to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    GAUGES.lock().expect("metrics gauges poisoned").insert(name.to_string(), value);
}

/// Raise the named gauge to `value` if it exceeds the current value
/// (max-aggregation — order-independent, so worst-case accounting stays
/// deterministic across worker scheduling).
pub fn gauge_max(name: &str, value: f64) {
    let mut gauges = GAUGES.lock().expect("metrics gauges poisoned");
    let entry = gauges.entry(name.to_string()).or_insert(value);
    if value > *entry {
        *entry = value;
    }
}

/// Current value of a gauge, if ever set.
pub fn gauge_get(name: &str) -> Option<f64> {
    GAUGES.lock().expect("metrics gauges poisoned").get(name).copied()
}

/// Accumulate `secs` of wall-clock under the named phase.
pub fn phase_add(name: &str, secs: f64) {
    let mut phases = PHASES.lock().expect("metrics phases poisoned");
    let stat = phases.entry(name.to_string()).or_default();
    stat.wall_secs += secs;
    stat.count += 1;
}

/// Accumulated stats of a phase (zero if never recorded).
pub fn phase_get(name: &str) -> PhaseStat {
    PHASES.lock().expect("metrics phases poisoned").get(name).copied().unwrap_or_default()
}

/// The named shared histogram (created empty on first request).
///
/// Callers on hot paths resolve the `Arc` once (one map lock) and then
/// record lock-free through it; the registry keeps the histogram alive
/// for snapshotting.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut hists = HISTS.lock().expect("metrics histograms poisoned");
    Arc::clone(hists.entry(name.to_string()).or_default())
}

/// Record one value into the named histogram (convenience for cold
/// paths; takes the registry lock on every call).
pub fn hist_record(name: &str, value: u64) {
    histogram(name).record(value);
}

/// Snapshot of the named histogram (empty snapshot if never touched).
pub fn hist_get(name: &str) -> HistSnapshot {
    let hists = HISTS.lock().expect("metrics histograms poisoned");
    hists.get(name).map(|h| h.snapshot()).unwrap_or_else(|| Histogram::new().snapshot())
}

/// A point-in-time copy of the whole registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// All gauges, sorted by name.
    pub gauges: BTreeMap<String, f64>,
    /// All phase accumulators, sorted by name.
    pub phases: BTreeMap<String, PhaseStat>,
    /// All histograms, sorted by name.
    pub hists: BTreeMap<String, HistSnapshot>,
}

/// Snapshot the registry.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: COUNTERS.lock().expect("metrics counters poisoned").clone(),
        gauges: GAUGES.lock().expect("metrics gauges poisoned").clone(),
        phases: PHASES.lock().expect("metrics phases poisoned").clone(),
        hists: HISTS
            .lock()
            .expect("metrics histograms poisoned")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect(),
    }
}

/// Drop every recorded metric (harness binaries isolate measurement
/// sections; tests should prefer unique key names instead).
pub fn clear() {
    COUNTERS.lock().expect("metrics counters poisoned").clear();
    GAUGES.lock().expect("metrics gauges poisoned").clear();
    PHASES.lock().expect("metrics phases poisoned").clear();
    HISTS.lock().expect("metrics histograms poisoned").clear();
}

/// Render a snapshot as the `METRICS_campaigns.json` document.
pub fn render_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"trace_enabled\": {},\n", crate::trace::enabled()));

    out.push_str("  \"counters\": {");
    let mut first = true;
    for (k, v) in &snap.counters {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!("    \"{}\": {v}", json::escape(k)));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });

    out.push_str("  \"gauges\": {");
    first = true;
    for (k, v) in &snap.gauges {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!("    \"{}\": {}", json::escape(k), json::num(*v)));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });

    out.push_str("  \"phases\": {");
    first = true;
    for (k, v) in &snap.phases {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!(
            "    \"{}\": {{\"wall_secs\": {}, \"count\": {}}}",
            json::escape(k),
            json::num(v.wall_secs),
            v.count
        ));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });

    out.push_str("  \"histograms\": {");
    first = true;
    for (k, v) in &snap.hists {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!("    \"{}\": {}", json::escape(k), v.render_json()));
    }
    out.push_str(if first { "}\n" } else { "\n  }\n" });
    out.push_str("}\n");
    out
}

/// Write the current registry as JSON to `path`.
pub fn flush_json(path: &str) -> std::io::Result<()> {
    std::fs::write(path, render_json(&snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        counter_add("test.metrics.counter_a", 2);
        counter_add("test.metrics.counter_a", 3);
        assert_eq!(counter_get("test.metrics.counter_a"), 5);
        assert_eq!(counter_get("test.metrics.never_touched"), 0);
    }

    #[test]
    fn gauges_take_last_write() {
        gauge_set("test.metrics.gauge_a", 1.0);
        gauge_set("test.metrics.gauge_a", 2.5);
        assert_eq!(gauge_get("test.metrics.gauge_a"), Some(2.5));
        assert_eq!(gauge_get("test.metrics.gauge_none"), None);
    }

    #[test]
    fn phases_accumulate_time_and_count() {
        phase_add("test.metrics.phase_a", 0.5);
        phase_add("test.metrics.phase_a", 1.5);
        let stat = phase_get("test.metrics.phase_a");
        assert!((stat.wall_secs - 2.0).abs() < 1e-12);
        assert_eq!(stat.count, 2);
    }

    #[test]
    fn json_has_all_sections_and_escapes() {
        counter_add("test.metrics.\"quoted\"", 1);
        gauge_set("test.metrics.inf_gauge", f64::INFINITY);
        phase_add("test.metrics.phase_json", 0.25);
        let doc = render_json(&snapshot());
        assert!(doc.contains("\"counters\""));
        assert!(doc.contains("\"gauges\""));
        assert!(doc.contains("\"phases\""));
        assert!(doc.contains("\\\"quoted\\\""));
        assert!(doc.contains("\"test.metrics.inf_gauge\": null"));
        assert!(doc.contains("\"wall_secs\": 0.250000, \"count\": 1"));
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        let doc = render_json(&MetricsSnapshot::default());
        assert!(doc.contains("\"counters\": {}"));
        assert!(doc.contains("\"phases\": {}"));
        assert!(doc.contains("\"histograms\": {}"));
        assert!(json::parse(&doc).is_ok(), "document parses: {doc}");
    }

    #[test]
    fn gauge_max_keeps_the_maximum() {
        gauge_max("test.metrics.max_gauge", 2.0);
        gauge_max("test.metrics.max_gauge", 5.0);
        gauge_max("test.metrics.max_gauge", 3.0);
        assert_eq!(gauge_get("test.metrics.max_gauge"), Some(5.0));
    }

    #[test]
    fn histograms_register_and_render() {
        let h = histogram("test.metrics.hist_a");
        h.record(12);
        hist_record("test.metrics.hist_a", 12);
        let snap = hist_get("test.metrics.hist_a");
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.max, 12);
        let doc = render_json(&snapshot());
        assert!(doc.contains("\"test.metrics.hist_a\": {\"count\": 2"));
        assert!(json::parse(&doc).is_ok(), "document parses: {doc}");
        assert_eq!(hist_get("test.metrics.hist_never").count(), 0);
    }

    #[test]
    fn key_order_is_deterministic() {
        // BTreeMap-backed sections render sorted by name, so re-rendering
        // the same snapshot (or one built in a different insertion order)
        // diffs cleanly.
        counter_add("test.metrics.order_b", 1);
        counter_add("test.metrics.order_a", 1);
        let doc = render_json(&snapshot());
        let ia = doc.find("test.metrics.order_a").expect("a rendered");
        let ib = doc.find("test.metrics.order_b").expect("b rendered");
        assert!(ia < ib, "keys sorted regardless of insertion order");
        assert_eq!(doc, render_json(&snapshot()), "rendering is a pure function");
    }
}
