//! The per-run JSONL journal: one line per simulation run, buffered in a
//! process-global sink and flushed to the path selected by
//! `DIVERSEAV_TRACE` (see [`crate::trace::trace_path`]).
//!
//! Run records carry no timestamps — every field is a pure function of
//! the run's inputs — so, for a fixed sequence of campaigns, the
//! journal's run lines are bit-identical for any `DIVERSEAV_THREADS`
//! value (campaign code appends them from the engine's index-ordered
//! results, never from worker completion order). Engine span lines
//! (`"type": "span_events"`) do carry timestamps and worker ids, which
//! vary run to run by design.

use crate::json;
use crate::trace::Event;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The injection site of a faulted run, flattened for the journal.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSite {
    /// Target fabric (`"GPU"` / `"CPU"`).
    pub profile: String,
    /// Processor unit index.
    pub unit: usize,
    /// Fault model label (`"transient"` / `"permanent"`).
    pub model: String,
    /// XOR bit mask applied to the destination register.
    pub mask: u32,
    /// Dynamic-instruction index (cycle) for transient faults.
    pub cycle: Option<u64>,
    /// Targeted opcode for permanent faults.
    pub op: Option<String>,
}

/// Everything the journal records about one run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Campaign display label.
    pub campaign: String,
    /// `"golden"` or `"injected"`.
    pub kind: &'static str,
    /// Run index within its campaign phase.
    pub index: usize,
    /// The run seed.
    pub seed: u64,
    /// Scenario name.
    pub scenario: String,
    /// Outcome label: `"completed"`, `"collision"`, `"crash"`, `"hang"`.
    pub outcome: String,
    /// Simulation time reached (s).
    pub end_time: f64,
    /// Collision time, if the ego collided.
    pub collision_time: Option<f64>,
    /// Detector alarm time, if raised.
    pub alarm_time: Option<f64>,
    /// Whether the armed fault corrupted at least one register (fabric
    /// faults) or frame (sensor faults).
    pub fault_activated: bool,
    /// Simulation time of the first corrupted frame for sensor faults
    /// (`None` otherwise) — the detection-latency reference point.
    pub fault_onset_time: Option<f64>,
    /// Minimum CVIP distance over the run (`null` when no NPC was ever
    /// in view — infinity has no JSON encoding).
    pub min_cvip: f64,
    /// Peak rolling divergence per channel `[throttle, brake, steer]`.
    pub div_peak: [f64; 3],
    /// Injection site (`None` for golden runs).
    pub fault: Option<FaultSite>,
}

impl RunRecord {
    /// Render the record as one JSONL line (no trailing newline).
    pub fn render(&self) -> String {
        let fault = match &self.fault {
            None => "null".to_string(),
            Some(f) => format!(
                "{{\"profile\": \"{}\", \"unit\": {}, \"model\": \"{}\", \"mask\": {}, \
                 \"cycle\": {}, \"op\": {}}}",
                json::escape(&f.profile),
                f.unit,
                json::escape(&f.model),
                f.mask,
                f.cycle.map(|c| c.to_string()).unwrap_or_else(|| "null".to_string()),
                json::opt_str(f.op.as_deref()),
            ),
        };
        format!(
            "{{\"type\": \"run\", \"campaign\": \"{}\", \"kind\": \"{}\", \"index\": {}, \
             \"seed\": {}, \"scenario\": \"{}\", \"outcome\": \"{}\", \"end_time\": {}, \
             \"collision_time\": {}, \"alarm_time\": {}, \"fault_activated\": {}, \
             \"fault_onset_time\": {}, \"min_cvip\": {}, \"div_peak\": [{}, {}, {}], \
             \"fault\": {}}}",
            json::escape(&self.campaign),
            self.kind,
            self.index,
            self.seed,
            json::escape(&self.scenario),
            json::escape(&self.outcome),
            json::num(self.end_time),
            json::opt_num(self.collision_time),
            json::opt_num(self.alarm_time),
            self.fault_activated,
            json::opt_num(self.fault_onset_time),
            json::num(self.min_cvip),
            json::num(self.div_peak[0]),
            json::num(self.div_peak[1]),
            json::num(self.div_peak[2]),
            fault,
        )
    }
}

static SINK: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Default in-memory line cap (≈ a million lines; week-long campaigns
/// must not grow the journal without bound).
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// Current capacity; 0 means "not yet initialized from the environment".
static CAPACITY: AtomicUsize = AtomicUsize::new(0);

/// The in-memory line cap: `DIVERSEAV_TRACE_CAP` if set to a positive
/// integer, else [`DEFAULT_CAPACITY`]. Resolved once, then cached.
pub fn capacity() -> usize {
    match CAPACITY.load(Ordering::Relaxed) {
        0 => {
            let cap = std::env::var("DIVERSEAV_TRACE_CAP")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_CAPACITY);
            CAPACITY.store(cap, Ordering::Relaxed);
            cap
        }
        cap => cap,
    }
}

/// Override the line cap (tests; clamped to at least 1).
pub fn set_capacity(cap: usize) {
    CAPACITY.store(cap.max(1), Ordering::Relaxed);
}

/// Append one pre-rendered JSONL line to the sink.
///
/// Once the sink holds [`capacity`] lines, further lines are dropped and
/// tallied under the `journal.dropped` metrics counter instead — an
/// unattended week-long campaign degrades to a truncated journal, never
/// to unbounded memory growth.
pub fn append_line(line: String) {
    let cap = capacity();
    {
        let mut sink = SINK.lock().expect("journal sink poisoned");
        if sink.len() < cap {
            sink.push(line);
            return;
        }
    }
    crate::metrics::counter_add("journal.dropped", 1);
}

/// Append a run record to the sink.
pub fn append_record(record: &RunRecord) {
    append_line(record.render());
}

/// Append one fan-out slot's trace events as a single JSONL line.
pub fn append_slot_events(label: &str, index: usize, events: &[Event]) {
    if events.is_empty() {
        return;
    }
    let body: Vec<String> = events.iter().map(|e| format!("{{{}}}", e.render_fields())).collect();
    append_line(format!(
        "{{\"type\": \"span_events\", \"label\": \"{}\", \"index\": {}, \"events\": [{}]}}",
        json::escape(label),
        index,
        body.join(", "),
    ));
}

/// Copy of all buffered lines, in append order.
pub fn snapshot() -> Vec<String> {
    SINK.lock().expect("journal sink poisoned").clone()
}

/// Number of buffered lines (cheaper than [`snapshot`] for slicing).
pub fn len() -> usize {
    SINK.lock().expect("journal sink poisoned").len()
}

/// Drop all buffered lines.
pub fn clear() {
    SINK.lock().expect("journal sink poisoned").clear();
}

/// Write all buffered lines to `path` as JSONL.
pub fn flush(path: &str) -> std::io::Result<()> {
    let lines = snapshot();
    let mut doc = lines.join("\n");
    if !doc.is_empty() {
        doc.push('\n');
    }
    std::fs::write(path, doc)
}

/// Flush to the `DIVERSEAV_TRACE` path when tracing is enabled; returns
/// the path written, if any.
pub fn flush_if_enabled() -> std::io::Result<Option<String>> {
    match crate::trace::trace_path() {
        Some(path) => {
            flush(&path)?;
            Ok(Some(path))
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that append to (or bound) the shared sink,
    /// so capacity experiments cannot drop a sibling test's lines.
    static SINK_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn record() -> RunRecord {
        RunRecord {
            campaign: "GPU-transient LSD [diverseav]".into(),
            kind: "injected",
            index: 3,
            seed: 2003,
            scenario: "lead_slowdown".into(),
            outcome: "collision".into(),
            end_time: 12.5,
            collision_time: Some(12.5),
            alarm_time: Some(9.25),
            fault_activated: true,
            fault_onset_time: None,
            min_cvip: 0.0,
            div_peak: [0.5, 0.25, 0.125],
            fault: Some(FaultSite {
                profile: "GPU".into(),
                unit: 0,
                model: "transient".into(),
                mask: 1 << 21,
                cycle: Some(123_456),
                op: None,
            }),
        }
    }

    #[test]
    fn run_record_renders_complete_line() {
        let line = record().render();
        assert!(line.starts_with("{\"type\": \"run\""));
        assert!(line.contains("\"cycle\": 123456"));
        assert!(line.contains("\"op\": null"));
        assert!(line.contains("\"alarm_time\": 9.250000"));
        assert!(line.contains("\"fault_onset_time\": null"));
        assert!(line.contains("\"div_peak\": [0.500000, 0.250000, 0.125000]"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn sensor_record_carries_onset_time() {
        let mut r = record();
        r.fault_onset_time = Some(0.75);
        r.fault = Some(FaultSite {
            profile: "SENSOR".into(),
            unit: 0,
            model: "sensor".into(),
            mask: 0,
            cycle: Some(42),
            op: Some("dropout".into()),
        });
        let line = r.render();
        assert!(line.contains("\"fault_onset_time\": 0.750000"));
        assert!(line.contains("\"model\": \"sensor\""));
        assert!(line.contains("\"op\": \"dropout\""));
    }

    #[test]
    fn golden_record_has_null_fault() {
        let mut r = record();
        r.fault = None;
        r.kind = "golden";
        r.min_cvip = f64::INFINITY;
        let line = r.render();
        assert!(line.contains("\"fault\": null"));
        assert!(line.contains("\"min_cvip\": null"));
    }

    #[test]
    fn capacity_bounds_the_sink_and_counts_drops() {
        let _guard = SINK_TEST_LOCK.lock().expect("sink test lock");
        let base = len();
        set_capacity(base + 2);
        let dropped_before = crate::metrics::counter_get("journal.dropped");
        for i in 0..5 {
            append_line(format!("{{\"type\": \"cap_test\", \"i\": {i}}}"));
        }
        assert_eq!(len(), base + 2, "sink stops growing at the cap");
        assert_eq!(
            crate::metrics::counter_get("journal.dropped") - dropped_before,
            3,
            "every dropped line is tallied"
        );
        // Restore a roomy cap for the other tests in this process.
        set_capacity(DEFAULT_CAPACITY);
        assert_eq!(capacity(), DEFAULT_CAPACITY);
    }

    #[test]
    fn slot_events_render_one_line() {
        let _guard = SINK_TEST_LOCK.lock().expect("sink test lock");
        let before = len();
        append_slot_events(
            "test.journal.slot",
            2,
            &[
                Event::SpanBegin { name: "item", t_ns: 10 },
                Event::Counter { name: "worker", value: 1 },
                Event::SpanEnd { name: "item", t_ns: 20 },
            ],
        );
        append_slot_events("test.journal.slot", 3, &[]);
        let lines = snapshot();
        assert_eq!(lines.len(), before + 1, "empty slots are skipped");
        let line = &lines[before];
        assert!(line.contains("\"label\": \"test.journal.slot\""));
        assert!(line.contains("\"span_begin\""));
        assert!(line.contains("\"value\": 1"));
    }

    #[test]
    fn records_are_deterministic() {
        assert_eq!(record().render(), record().render());
    }
}
