//! # diverseav-obs
//!
//! Zero-dependency observability layer for the DiverseAV campaign
//! engine: the substrate every perf PR is measured against.
//!
//! Three cooperating pieces, all `std`-only:
//!
//! * [`trace`] — a lock-free per-worker event journal. A fan-out
//!   allocates one slot per work item *before* spawning workers; each
//!   worker writes span/counter/gauge events into the slot of the index
//!   it claimed. Slots are index-ordered and claimed exactly once, so
//!   enabling tracing never introduces cross-worker synchronization on
//!   the hot path and never perturbs the deterministic engine.
//! * [`metrics`] — a process-global registry of named counters, gauges,
//!   and per-phase wall-clock accumulators, flushed as the
//!   `METRICS_campaigns.json` artifact next to `BENCH_campaigns.json`.
//! * [`journal`] — a buffered per-run JSONL journal (injection site,
//!   bit mask, cycle, outcome, alarm time, divergence peaks) behind the
//!   `DIVERSEAV_TRACE` environment switch, bounded by a line cap
//!   (`DIVERSEAV_TRACE_CAP`) with dropped lines tallied in metrics.
//! * [`hist`] — lock-free log-bucketed latency histograms
//!   (p50/p90/p99/max), registered by name in [`metrics`] and rendered
//!   into `METRICS_campaigns.json`; the substrate of the tick-level
//!   profiling layer in `diverseav-runtime`.
//! * [`profile`] — the `DIVERSEAV_PROFILE` switch selecting the
//!   profiling time source: a deterministic work-based cost model
//!   (default, bit-identical across thread counts), host wall clock, or
//!   off.
//! * [`flight`] — flight-recorder primitives: a fixed-capacity
//!   overwrite-oldest ring of packed per-tick records (detector score,
//!   trend state, modeled phase latencies, actuator deltas — no
//!   timestamps) plus a lossless bit-hex JSONL codec for incident
//!   artifacts.
//!
//! Determinism contract: observability is *read-only* with respect to
//! campaign outcomes. Run results are pure functions of their explicit
//! seeds; this crate only records what happened (timestamps and worker
//! ids may vary between runs, recorded outcomes may not). The
//! differential test in `tests/parallel.rs` asserts campaign outputs
//! are bit-identical with tracing on and off at any thread count.

pub mod flight;
pub mod hist;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use flight::{FlightRing, TickRecord};
pub use hist::{HistSnapshot, Histogram};
pub use journal::{FaultSite, RunRecord};
pub use metrics::MetricsSnapshot;
pub use profile::TimeSource;
pub use trace::{Event, SlotJournal, SlotWriter};
