//! # diverseav-obs
//!
//! Zero-dependency observability layer for the DiverseAV campaign
//! engine: the substrate every perf PR is measured against.
//!
//! Three cooperating pieces, all `std`-only:
//!
//! * [`trace`] — a lock-free per-worker event journal. A fan-out
//!   allocates one slot per work item *before* spawning workers; each
//!   worker writes span/counter/gauge events into the slot of the index
//!   it claimed. Slots are index-ordered and claimed exactly once, so
//!   enabling tracing never introduces cross-worker synchronization on
//!   the hot path and never perturbs the deterministic engine.
//! * [`metrics`] — a process-global registry of named counters, gauges,
//!   and per-phase wall-clock accumulators, flushed as the
//!   `METRICS_campaigns.json` artifact next to `BENCH_campaigns.json`.
//! * [`journal`] — a buffered per-run JSONL journal (injection site,
//!   bit mask, cycle, outcome, alarm time, divergence peaks) behind the
//!   `DIVERSEAV_TRACE` environment switch.
//!
//! Determinism contract: observability is *read-only* with respect to
//! campaign outcomes. Run results are pure functions of their explicit
//! seeds; this crate only records what happened (timestamps and worker
//! ids may vary between runs, recorded outcomes may not). The
//! differential test in `tests/parallel.rs` asserts campaign outputs
//! are bit-identical with tracing on and off at any thread count.

pub mod journal;
pub mod json;
pub mod metrics;
pub mod trace;

pub use journal::{FaultSite, RunRecord};
pub use metrics::MetricsSnapshot;
pub use trace::{Event, SlotJournal, SlotWriter};
