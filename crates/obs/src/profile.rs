//! Profiling time-source selection (`DIVERSEAV_PROFILE`).
//!
//! The paper's real-time argument is a 40 Hz (25 ms) control-loop
//! deadline, but the reproduction interprets agent code on a fabric VM,
//! so wall-clock tick times say more about the host than about the
//! modeled AV computer — and they differ between runs, which would break
//! the engine's bit-identical-across-thread-counts artifact contract.
//! Profiling therefore supports two time sources:
//!
//! * [`TimeSource::Modeled`] (default) — per-phase latency is a
//!   deterministic cost model over the tick's *work*: pixels rendered,
//!   lidar rays cast, dynamic fabric instructions executed, NPCs
//!   stepped. Pure function of the run seed ⇒ histograms and
//!   deadline-miss counts are bit-identical for any `DIVERSEAV_THREADS`.
//! * [`TimeSource::Wall`] — real `Instant` timings of each loop phase,
//!   for profiling the reproduction itself. Values vary run to run by
//!   nature; artifacts produced in this mode are excluded from the
//!   determinism contract.
//! * [`TimeSource::Off`] — no per-tick profiling at all.
//!
//! The switch is consulted once per run (never per tick).

/// Where per-phase tick latencies come from.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum TimeSource {
    /// Deterministic work-based cost model (default).
    #[default]
    Modeled,
    /// Host wall clock (`Instant`).
    Wall,
    /// Profiling disabled.
    Off,
}

/// The time source selected by `DIVERSEAV_PROFILE`: `off`/`0` disables
/// profiling, `wall` selects wall-clock timing, anything else (including
/// unset) selects the deterministic cost model.
pub fn source() -> TimeSource {
    match std::env::var("DIVERSEAV_PROFILE") {
        Ok(v) => match v.trim() {
            "off" | "0" => TimeSource::Off,
            "wall" => TimeSource::Wall,
            _ => TimeSource::Modeled,
        },
        Err(_) => TimeSource::Modeled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_deterministic_model() {
        // Other tests in this binary do not touch DIVERSEAV_PROFILE, and
        // the harness leaves it unset.
        assert_eq!(source(), TimeSource::Modeled);
        assert_eq!(TimeSource::default(), TimeSource::Modeled);
    }
}
