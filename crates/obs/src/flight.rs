//! Flight-recorder primitives: a fixed-capacity ring of packed per-tick
//! records plus a lossless JSONL codec for incident artifacts.
//!
//! The ring is the *black box* of a run: the engine writes one
//! [`TickRecord`] per simulation tick (detector score/slope, armed and
//! alarm state, modeled phase latencies and deadline margin, actuator
//! command deltas) into a buffer whose storage is allocated once at
//! construction. Steady-state recording allocates zero bytes — pushed
//! records overwrite the oldest once the ring is full — and records
//! carry **no timestamps**, so a recording is a pure function of the
//! run's seeds: bit-identical across `DIVERSEAV_THREADS` and across
//! sharded vs. monolithic execution (`ci/lint.sh` Gate 4 greps this
//! module for wall-clock calls).
//!
//! When a run ends in an incident the ring is drained oldest-first and
//! serialized via [`render_record`] / [`parse_record`]: every `f64` as
//! its IEEE-754 bit pattern ([`json::f64_bits`]), every integer as a
//! quoted decimal, so the artifact round-trips bit-exactly (NaNs and
//! infinities included).

use crate::json::{self, Value};

/// Schema version stamped into incident-artifact manifests that embed
/// [`TickRecord`] payloads. Bump on any layout change.
pub const FLIGHT_SCHEMA_VERSION: u32 = 1;

/// Default ring capacity: the last ~12.8 s of a 40 Hz run, enough to
/// cover fault onset → alarm for every calibrated fault class while
/// keeping a drained incident under ~100 KiB.
pub const DEFAULT_RING_CAPACITY: usize = 512;

/// Flag bit: the detector observed a divergence sample this tick.
pub const FLAG_DETECTOR_OBSERVED: u8 = 1 << 0;
/// Flag bit: the trend path was armed (EWMA slope above threshold with
/// the score past the arming floor).
pub const FLAG_TREND_ARMED: u8 = 1 << 1;
/// Flag bit: the detector raised its alarm on this tick.
pub const FLAG_ALARM: u8 = 1 << 2;
/// Flag bit: an injected fault was active (had corrupted state) by this
/// tick.
pub const FLAG_FAULT_ACTIVE: u8 = 1 << 3;
/// Flag bit: the modeled tick latency missed the 25 ms deadline.
pub const FLAG_DEADLINE_MISS: u8 = 1 << 4;

/// One packed per-tick flight-recorder sample. `Copy` and fixed-size on
/// purpose: pushing one into a [`FlightRing`] is a store, never an
/// allocation.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct TickRecord {
    /// Simulation tick index (0-based from run start).
    pub tick: u64,
    /// Bit set over the `FLAG_*` constants.
    pub flags: u8,
    /// Normalized divergence score: max over channels of
    /// smoothed-divergence / threshold. 1.0 is the alarm line; 0.0 when
    /// the detector did not observe this tick.
    pub score: f64,
    /// Trend-EWMA slope of the score's first difference.
    pub slope: f64,
    /// Detector threshold margin, `1.0 - score` — positive while below
    /// the alarm line, negative once past it.
    pub margin: f64,
    /// Modeled per-phase latencies in ns: sense, driver, detect, step.
    pub phase_ns: [u64; 4],
    /// Deadline margin in ns: 25 ms budget minus the modeled tick total
    /// (negative on a miss).
    pub deadline_margin_ns: i64,
    /// Fused throttle delta vs. the previous tick's command.
    pub d_throttle: f64,
    /// Fused brake delta vs. the previous tick's command.
    pub d_brake: f64,
    /// Fused steer delta vs. the previous tick's command.
    pub d_steer: f64,
}

impl TickRecord {
    /// Whether the detector observed a divergence sample this tick.
    pub fn detector_observed(&self) -> bool {
        self.flags & FLAG_DETECTOR_OBSERVED != 0
    }

    /// Whether the trend path was armed this tick.
    pub fn trend_armed(&self) -> bool {
        self.flags & FLAG_TREND_ARMED != 0
    }

    /// Whether the detector alarm fired on this tick.
    pub fn alarm(&self) -> bool {
        self.flags & FLAG_ALARM != 0
    }

    /// Whether an injected fault was active by this tick.
    pub fn fault_active(&self) -> bool {
        self.flags & FLAG_FAULT_ACTIVE != 0
    }

    /// Whether the modeled tick latency missed the deadline.
    pub fn deadline_miss(&self) -> bool {
        self.flags & FLAG_DEADLINE_MISS != 0
    }
}

/// Fixed-capacity overwrite-oldest ring of [`TickRecord`]s.
///
/// Storage is allocated once in [`FlightRing::new`]; [`push`] never
/// allocates (the zero-alloc gate in `tests/zero_alloc.rs` covers the
/// recorder end-to-end). Once `capacity` records have been pushed, each
/// new record replaces the oldest; [`iter`] always yields the retained
/// window oldest-first.
///
/// [`push`]: FlightRing::push
/// [`iter`]: FlightRing::iter
#[derive(Clone, Debug)]
pub struct FlightRing {
    buf: Vec<TickRecord>,
    cap: usize,
    pushed: u64,
}

impl FlightRing {
    /// A ring retaining the last `capacity` records (clamped to ≥ 1).
    /// This is the only allocation the ring ever performs.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRing { buf: Vec::with_capacity(cap), cap, pushed: 0 }
    }

    /// Append a record, overwriting the oldest once full. Never
    /// allocates: the buffer was sized at construction.
    pub fn push(&mut self, r: TickRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(r);
        } else {
            self.buf[(self.pushed % self.cap as u64) as usize] = r;
        }
        self.pushed += 1;
    }

    /// Records currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retention limit fixed at construction.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total records pushed over the ring's lifetime (may exceed
    /// capacity; the excess was overwritten).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Retained records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TickRecord> {
        let split =
            if self.buf.len() < self.cap { 0 } else { (self.pushed % self.cap as u64) as usize };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// Drain the retained window oldest-first into an owned `Vec` — the
    /// incident-flush path. Allocates (once), so callers only invoke it
    /// after the run has ended.
    pub fn drain_ordered(&self) -> Vec<TickRecord> {
        self.iter().copied().collect()
    }
}

/// Render one [`TickRecord`] as a single-line JSON object, losslessly:
/// `f64`s as IEEE-754 bit-hex, `u64`/`i64` as quoted decimals.
pub fn render_record(r: &TickRecord) -> String {
    format!(
        "{{\"tick\": {}, \"flags\": {}, \"score\": {}, \"slope\": {}, \"margin\": {}, \
         \"phase_ns\": [{}, {}, {}, {}], \"deadline_margin_ns\": \"{}\", \
         \"d_throttle\": {}, \"d_brake\": {}, \"d_steer\": {}}}",
        json::u64_str(r.tick),
        r.flags,
        json::f64_bits(r.score),
        json::f64_bits(r.slope),
        json::f64_bits(r.margin),
        json::u64_str(r.phase_ns[0]),
        json::u64_str(r.phase_ns[1]),
        json::u64_str(r.phase_ns[2]),
        json::u64_str(r.phase_ns[3]),
        r.deadline_margin_ns,
        json::f64_bits(r.d_throttle),
        json::f64_bits(r.d_brake),
        json::f64_bits(r.d_steer),
    )
}

fn member<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing member {key:?}"))
}

/// Parse a value rendered by [`render_record`], bit-exactly.
///
/// # Errors
///
/// Any missing member, wrong encoding, or out-of-range flag byte.
pub fn parse_record(v: &Value) -> Result<TickRecord, String> {
    let tick = json::parse_u64_str(member(v, "tick")?)?;
    let flags_f = member(v, "flags")?.as_f64().ok_or("member \"flags\" must be a number")?;
    if flags_f.fract() != 0.0 || !(0.0..=255.0).contains(&flags_f) {
        return Err(format!("member \"flags\" out of byte range: {flags_f}"));
    }
    let phases = member(v, "phase_ns")?.as_arr().ok_or("member \"phase_ns\" must be an array")?;
    if phases.len() != 4 {
        return Err(format!("member \"phase_ns\" must hold 4 phases, got {}", phases.len()));
    }
    let mut phase_ns = [0u64; 4];
    for (slot, p) in phase_ns.iter_mut().zip(phases) {
        *slot = json::parse_u64_str(p)?;
    }
    let margin_s = member(v, "deadline_margin_ns")?
        .as_str()
        .ok_or("member \"deadline_margin_ns\" must be a decimal string")?;
    let deadline_margin_ns =
        margin_s.parse::<i64>().map_err(|e| format!("bad i64 string {margin_s:?}: {e}"))?;
    Ok(TickRecord {
        tick,
        flags: flags_f as u8,
        score: json::parse_f64_bits(member(v, "score")?)?,
        slope: json::parse_f64_bits(member(v, "slope")?)?,
        margin: json::parse_f64_bits(member(v, "margin")?)?,
        phase_ns,
        deadline_margin_ns,
        d_throttle: json::parse_f64_bits(member(v, "d_throttle")?)?,
        d_brake: json::parse_f64_bits(member(v, "d_brake")?)?,
        d_steer: json::parse_f64_bits(member(v, "d_steer")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tick: u64) -> TickRecord {
        TickRecord {
            tick,
            flags: FLAG_DETECTOR_OBSERVED | FLAG_FAULT_ACTIVE,
            score: 0.25 + tick as f64,
            slope: -0.5,
            margin: 0.75 - tick as f64,
            phase_ns: [1_000_000, 2_000_000, 350_000, 500_000 + tick],
            deadline_margin_ns: 25_000_000 - 3_850_000 - tick as i64,
            d_throttle: 0.01,
            d_brake: -0.0,
            d_steer: 0.002 * tick as f64,
        }
    }

    #[test]
    fn ring_retains_last_capacity_in_order() {
        let mut ring = FlightRing::new(4);
        assert!(ring.is_empty());
        for t in 0..3 {
            ring.push(rec(t));
        }
        assert_eq!(ring.len(), 3);
        let ticks: Vec<u64> = ring.iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![0, 1, 2], "unwrapped ring is in push order");

        for t in 3..11 {
            ring.push(rec(t));
        }
        assert_eq!(ring.len(), 4, "capacity bounds retention");
        assert_eq!(ring.pushed(), 11);
        let ticks: Vec<u64> = ring.iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![7, 8, 9, 10], "wrapped ring keeps the last C, oldest first");
        assert_eq!(ring.drain_ordered().len(), 4);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = FlightRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(rec(0));
        ring.push(rec(1));
        assert_eq!(ring.iter().map(|r| r.tick).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let mut r = rec(42);
        r.score = f64::NAN;
        r.slope = f64::NEG_INFINITY;
        r.deadline_margin_ns = -1_234_567;
        let line = render_record(&r);
        let v = json::parse(&line).expect("record line parses");
        let back = parse_record(&v).expect("record reconstructs");
        assert_eq!(back.tick, r.tick);
        assert_eq!(back.flags, r.flags);
        assert_eq!(back.score.to_bits(), r.score.to_bits(), "NaN payload survives");
        assert_eq!(back.slope.to_bits(), r.slope.to_bits());
        assert_eq!(back.margin.to_bits(), r.margin.to_bits());
        assert_eq!(back.phase_ns, r.phase_ns);
        assert_eq!(back.deadline_margin_ns, r.deadline_margin_ns);
        assert_eq!(back.d_brake.to_bits(), (-0.0f64).to_bits(), "-0.0 survives");
    }

    #[test]
    fn parse_rejects_malformed_records() {
        let good = render_record(&rec(1));
        let v = json::parse(&good).unwrap();
        assert!(parse_record(&v).is_ok());
        for bad in [
            good.replace("\"tick\"", "\"tock\""),
            good.replace("\"flags\": 9", "\"flags\": 1.5"),
            good.replace("\"flags\": 9", "\"flags\": 300"),
            good.replace("\"deadline_margin_ns\": \"", "\"deadline_margin_ns\": \"x"),
        ] {
            if bad == good {
                continue; // replacement did not apply; covered elsewhere
            }
            let v = json::parse(&bad).expect("still JSON");
            assert!(parse_record(&v).is_err(), "{bad} must not parse as a record");
        }
        // phase_ns must hold exactly 4 entries.
        let truncated = good.replace(
            &format!("[{}, {}, ", json::u64_str(1_000_000), json::u64_str(2_000_000)),
            &format!("[{}, ", json::u64_str(1_000_000)),
        );
        let v = json::parse(&truncated).expect("still JSON");
        assert!(parse_record(&v).is_err(), "3-phase record must be refused");
    }

    #[test]
    fn flag_helpers_match_bits() {
        let mut r = TickRecord::default();
        assert!(!r.detector_observed() && !r.alarm());
        r.flags = FLAG_ALARM | FLAG_TREND_ARMED | FLAG_DEADLINE_MISS;
        assert!(r.alarm() && r.trend_armed() && r.deadline_miss());
        assert!(!r.detector_observed() && !r.fault_active());
    }
}
