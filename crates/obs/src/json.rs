//! Minimal hand-rolled JSON helpers (no serde in the dependency
//! closure). The rendering half is shared by the metrics and journal
//! writers and by `bench::perf`; the parsing half ([`parse`] / [`Value`])
//! is what the `diverseav-tracecheck` CLI uses to read the JSONL run
//! journal, `METRICS_campaigns.json`, and `BENCH_campaigns.json` back.

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON value: finite values as decimals, non-finite
/// values (JSON has no Infinity/NaN) as `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Render an optional `f64` (`None` → `null`).
pub fn opt_num(v: Option<f64>) -> String {
    v.map(num).unwrap_or_else(|| "null".to_string())
}

/// Render an optional string (`None` → `null`).
pub fn opt_str(v: Option<&str>) -> String {
    v.map(|s| format!("\"{}\"", escape(s))).unwrap_or_else(|| "null".to_string())
}

/// Render an `f64` as its exact IEEE-754 bit pattern (a quoted 16-digit
/// hex string) — the lossless companion of [`num`] for artifacts that
/// must round-trip bit-identically. Handles every value, including the
/// infinities [`num`] flattens to `null`.
pub fn f64_bits(v: f64) -> String {
    format!("\"{:016x}\"", v.to_bits())
}

/// Render an optional `f64` bit pattern (`None` → `null`).
pub fn opt_f64_bits(v: Option<f64>) -> String {
    v.map(f64_bits).unwrap_or_else(|| "null".to_string())
}

/// Parse a value rendered by [`f64_bits`].
pub fn parse_f64_bits(v: &Value) -> Result<f64, String> {
    let s = v.as_str().ok_or("expected an f64 bit-pattern string")?;
    if s.len() != 16 {
        return Err(format!("bad f64 bit pattern {s:?}: want 16 hex digits"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bit pattern {s:?}: {e}"))
}

/// Render a `u64` losslessly as a quoted decimal string: plain JSON
/// numbers parse back as `f64` and lose precision past 2^53.
pub fn u64_str(v: u64) -> String {
    format!("\"{v}\"")
}

/// Parse a value rendered by [`u64_str`].
pub fn parse_u64_str(v: &Value) -> Result<u64, String> {
    let s = v.as_str().ok_or("expected a u64 decimal string")?;
    s.parse::<u64>().map_err(|e| format!("bad u64 string {s:?}: {e}"))
}

/// A parsed JSON document.
///
/// Objects keep their members as an ordered `Vec` (first occurrence wins
/// on [`Value::get`]), so round-tripping preserves the writer's
/// deterministic key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source member order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (first occurrence), if this is an
    /// object and the key is present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse a JSON document. Strict on structure (one value, nothing but
/// whitespace after it), tolerant of any member order.
///
/// # Errors
///
/// Returns a message with the byte offset of the first error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// Nesting depth limit (stack-overflow guard for hostile inputs).
const MAX_DEPTH: usize = 128;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number span");
    text.parse::<f64>().map(Value::Num).map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    let mut pending_surrogate: Option<u32> = None;
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                if pending_surrogate.is_some() {
                    out.push('\u{FFFD}');
                }
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escape = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                let simple = match escape {
                    b'"' => Some('"'),
                    b'\\' => Some('\\'),
                    b'/' => Some('/'),
                    b'b' => Some('\u{8}'),
                    b'f' => Some('\u{c}'),
                    b'n' => Some('\n'),
                    b'r' => Some('\r'),
                    b't' => Some('\t'),
                    b'u' => None,
                    _ => return Err(format!("invalid escape at byte {}", *pos - 1)),
                };
                if let Some(c) = simple {
                    if let Some(_lost) = pending_surrogate.take() {
                        out.push('\u{FFFD}');
                    }
                    out.push(c);
                    continue;
                }
                let hex = bytes
                    .get(*pos..*pos + 4)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("invalid \\u escape at byte {pos}"))?;
                *pos += 4;
                match (pending_surrogate.take(), hex) {
                    (None, 0xD800..=0xDBFF) => pending_surrogate = Some(hex),
                    (None, 0xDC00..=0xDFFF) => out.push('\u{FFFD}'),
                    (None, c) => out.push(char::from_u32(c).unwrap_or('\u{FFFD}')),
                    (Some(high), 0xDC00..=0xDFFF) => {
                        let c = 0x10000 + ((high - 0xD800) << 10) + (hex - 0xDC00);
                        out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                    }
                    (Some(_), c) => {
                        out.push('\u{FFFD}');
                        match c {
                            0xD800..=0xDBFF => pending_surrogate = Some(c),
                            _ => out.push(char::from_u32(c).unwrap_or('\u{FFFD}')),
                        }
                    }
                }
            }
            Some(_) => {
                // Copy a full UTF-8 scalar so multi-byte text survives.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {pos}"))?;
                let c = rest.chars().next().expect("non-empty rest");
                if pending_surrogate.take().is_some() {
                    out.push('\u{FFFD}');
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("tab\tret\r"), "tab\\tret\\r");
        assert_eq!(escape("héllo ✓"), "héllo ✓", "non-ASCII passes through");
        assert_eq!(escape(""), "");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NEG_INFINITY), "null");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(2.5), "2.500000");
        assert_eq!(num(-0.0), "-0.000000");
        assert_eq!(opt_num(None), "null");
        assert_eq!(opt_num(Some(f64::NAN)), "null");
        assert_eq!(opt_num(Some(1.0)), "1.000000");
        assert_eq!(opt_str(Some("x")), "\"x\"");
        assert_eq!(opt_str(None), "null");
    }

    #[test]
    fn bit_pattern_helpers_round_trip_exactly() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE, 1e300] {
            let rendered = f64_bits(v);
            let parsed = parse_f64_bits(&parse(&rendered).unwrap()).unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v} must round-trip bits");
        }
        assert_eq!(opt_f64_bits(None), "null");
        assert_eq!(opt_f64_bits(Some(1.0)), f64_bits(1.0));
        for v in [0u64, 1, u64::MAX, (1 << 53) + 1] {
            let parsed = parse_u64_str(&parse(&u64_str(v)).unwrap()).unwrap();
            assert_eq!(parsed, v, "{v} must round-trip exactly");
        }
        assert!(parse_f64_bits(&Value::Num(1.0)).is_err());
        assert!(parse_f64_bits(&Value::Str("xyz".into())).is_err());
        assert!(parse_f64_bits(&Value::Str("00".into())).is_err(), "length checked");
        assert!(parse_u64_str(&Value::Str("-1".into())).is_err());
        assert!(parse_u64_str(&Value::Num(3.0)).is_err());
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}, "x"], "c": 2}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_f64), Some(2.0));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b"), Some(&Value::Null));
        assert_eq!(arr[2].as_str(), Some("x"));
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let members = v.as_obj().unwrap();
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" slash\\ nl\n tab\t ctl\u{1} héllo";
        let rendered = format!("\"{}\"", escape(original));
        assert_eq!(parse(&rendered).unwrap(), Value::Str(original.to_string()));
        // \u surrogate pair decodes to one scalar.
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
        // Lone surrogate degrades to the replacement character.
        assert_eq!(parse(r#""\ud83dx""#).unwrap(), Value::Str("\u{FFFD}x".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn round_trips_a_rendered_metrics_style_document() {
        let doc = "{\n  \"counters\": {\n    \"a.b\": 3\n  },\n  \"gauges\": {},\n  \
                   \"list\": [1.5, null, true]\n}\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("counters").unwrap().get("a.b").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("list").unwrap().as_arr().unwrap().len(), 3);
    }
}
