//! Minimal hand-rolled JSON rendering helpers (no serde in the
//! dependency closure). Shared by the metrics and journal writers and by
//! `bench::perf`.

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON value: finite values as decimals, non-finite
/// values (JSON has no Infinity/NaN) as `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Render an optional `f64` (`None` → `null`).
pub fn opt_num(v: Option<f64>) -> String {
    v.map(num).unwrap_or_else(|| "null".to_string())
}

/// Render an optional string (`None` → `null`).
pub fn opt_str(v: Option<&str>) -> String {
    v.map(|s| format!("\"{}\"", escape(s))).unwrap_or_else(|| "null".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(2.5), "2.500000");
        assert_eq!(opt_num(None), "null");
        assert_eq!(opt_str(Some("x")), "\"x\"");
        assert_eq!(opt_str(None), "null");
    }
}
