//! Property tests for the flight-recorder ring and its lossless codec,
//! driven by the offline `proptest` shim.
//!
//! The incident artifacts only mean something if (a) the ring's
//! retention window is exact — capacity C holding N > C pushes keeps
//! precisely the *last* C, oldest-first — and (b) the drained records
//! survive the JSONL round trip bit-for-bit, NaN payloads and signed
//! zeros included.

use diverseav_obs::flight::{self, FlightRing, TickRecord};
use diverseav_obs::json;
use proptest::prelude::*;

/// SplitMix64 — arbitrary-but-deterministic record fields from (seed,
/// tick), covering every f64 bit pattern class (NaNs, infinities,
/// subnormals, -0.0) without depending on the shim's NaN-avoiding
/// `Arbitrary for f64`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A record's exact bit image — NaN-proof equality for assertions
/// (`PartialEq` on f64 fields says NaN != NaN).
#[allow(clippy::type_complexity)]
fn bits(r: &TickRecord) -> (u64, u8, u64, u64, u64, [u64; 4], i64, u64, u64, u64) {
    (
        r.tick,
        r.flags,
        r.score.to_bits(),
        r.slope.to_bits(),
        r.margin.to_bits(),
        r.phase_ns,
        r.deadline_margin_ns,
        r.d_throttle.to_bits(),
        r.d_brake.to_bits(),
        r.d_steer.to_bits(),
    )
}

fn synth_record(seed: u64, tick: u64) -> TickRecord {
    let h = |k: u64| mix(seed ^ tick.wrapping_mul(0x10001) ^ k);
    TickRecord {
        tick,
        flags: (h(1) & 0x1F) as u8,
        score: f64::from_bits(h(2)),
        slope: f64::from_bits(h(3)),
        margin: f64::from_bits(h(4)),
        phase_ns: [h(5), h(6), h(7), h(8)],
        deadline_margin_ns: h(9) as i64,
        d_throttle: f64::from_bits(h(10)),
        d_brake: f64::from_bits(h(11)),
        d_steer: f64::from_bits(h(12)),
    }
}

proptest! {
    /// A ring of capacity C holding N pushes retains exactly the last
    /// min(N, C) records, in push order.
    #[test]
    fn ring_retains_exactly_the_last_capacity_records(
        seed in any::<u64>(),
        capacity in 1usize..64,
        pushes in 0usize..200,
    ) {
        let mut ring = FlightRing::new(capacity);
        for t in 0..pushes as u64 {
            ring.push(synth_record(seed, t));
        }
        prop_assert_eq!(ring.capacity(), capacity);
        prop_assert_eq!(ring.pushed(), pushes as u64);
        let want = pushes.min(capacity);
        prop_assert_eq!(ring.len(), want, "retention must be min(N, C)");
        let drained = ring.drain_ordered();
        prop_assert_eq!(drained.len(), want);
        let first = pushes - want;
        for (i, r) in drained.iter().enumerate() {
            let tick = (first + i) as u64;
            prop_assert_eq!(
                bits(r), bits(&synth_record(seed, tick)),
                "slot {} must hold the record pushed at tick {}", i, tick
            );
        }
    }

    /// Drained records survive render → parse bit-exactly for arbitrary
    /// bit patterns in every f64 field (the codec is the only thing
    /// between a live ring and a merged incident artifact).
    #[test]
    fn drained_records_round_trip_bit_exactly(
        seed in any::<u64>(),
        capacity in 1usize..32,
        pushes in 1usize..96,
    ) {
        let mut ring = FlightRing::new(capacity);
        for t in 0..pushes as u64 {
            ring.push(synth_record(seed, t));
        }
        for r in ring.drain_ordered() {
            let line = flight::render_record(&r);
            let v = json::parse(&line)
                .map_err(|e| TestCaseError(format!("record line must parse: {e}")))?;
            let back = flight::parse_record(&v)
                .map_err(|e| TestCaseError(format!("record must reconstruct: {e}")))?;
            prop_assert_eq!(back.tick, r.tick);
            prop_assert_eq!(back.flags, r.flags);
            prop_assert_eq!(back.score.to_bits(), r.score.to_bits());
            prop_assert_eq!(back.slope.to_bits(), r.slope.to_bits());
            prop_assert_eq!(back.margin.to_bits(), r.margin.to_bits());
            prop_assert_eq!(back.phase_ns, r.phase_ns);
            prop_assert_eq!(back.deadline_margin_ns, r.deadline_margin_ns);
            prop_assert_eq!(back.d_throttle.to_bits(), r.d_throttle.to_bits());
            prop_assert_eq!(back.d_brake.to_bits(), r.d_brake.to_bits());
            prop_assert_eq!(back.d_steer.to_bits(), r.d_steer.to_bits());
        }
    }
}
