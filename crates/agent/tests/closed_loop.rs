//! Closed-loop tests: the agent drives the simulated world fault-free.
//!
//! These are the substrate-level sanity checks the whole evaluation rests
//! on: the agent must lane-keep, car-follow, stop for braking leads, and
//! handle the cut-in and front-accident scenarios without collisions.

use diverseav_agent::{AgentConfig, SensorimotorAgent};
use diverseav_fabric::{Fabric, FaultModel, Op, Profile};
use diverseav_simworld::{
    front_accident, ghost_cut_in, lead_slowdown, long_route, Scenario, SensorConfig, World,
    WorldStatus,
};

/// Drive a scenario with a single agent at the full 40 Hz rate.
/// Returns the world after the run and whether a fabric error occurred.
fn drive(scenario: Scenario, seed: u64) -> World {
    let mut world = World::new(scenario, SensorConfig::default(), seed);
    let mut agent = SensorimotorAgent::new(AgentConfig::default(), seed ^ 0x5A);
    let mut gpu = Fabric::new(Profile::Gpu);
    let mut cpu = Fabric::new(Profile::Cpu);
    while !world.finished() {
        let frame = world.sense();
        let hint = world.route_hint();
        let controls = agent
            .step(&frame, hint, 0.025, &mut gpu, &mut cpu)
            .expect("fault-free run must not trap");
        if world.step(controls) == WorldStatus::Collision {
            break;
        }
    }
    world
}

#[test]
fn agent_survives_lead_slowdown() {
    let world = drive(lead_slowdown(), 11);
    assert!(
        world.collision_time().is_none(),
        "collision at t={:?}, min CVIP {:.2}",
        world.collision_time(),
        world.min_cvip()
    );
    assert!(world.min_cvip() < 30.0, "the agent actually followed the lead");
}

#[test]
fn agent_survives_ghost_cut_in() {
    let world = drive(ghost_cut_in(), 12);
    assert!(
        world.collision_time().is_none(),
        "collision at t={:?}, min CVIP {:.2}",
        world.collision_time(),
        world.min_cvip()
    );
}

#[test]
fn agent_survives_front_accident() {
    let world = drive(front_accident(), 13);
    assert!(
        world.collision_time().is_none(),
        "collision at t={:?}, min CVIP {:.2}",
        world.collision_time(),
        world.min_cvip()
    );
}

#[test]
fn agent_lane_keeps_on_long_route() {
    let world = drive(long_route(0, 45.0), 14);
    assert!(world.collision_time().is_none(), "no collision on the training route");
    // Lane discipline: final lateral offset within the ego lane.
    let track = &world.scenario().track;
    let (_, lat) = track.project_near(world.ego_state().pose.pos, world.ego_s(), 30.0);
    assert!(lat.abs() < 1.5, "ended {lat:.2} m off lane center");
    assert!(world.ego_s() > 100.0, "made progress: s = {:.1}", world.ego_s());
}

#[test]
fn agent_reaches_cruise_speed_on_empty_road() {
    let mut scenario = lead_slowdown();
    scenario.npcs.clear();
    let mut world = World::new(scenario, SensorConfig::default(), 15);
    let mut agent = SensorimotorAgent::new(AgentConfig::default(), 99);
    let mut gpu = Fabric::new(Profile::Gpu);
    let mut cpu = Fabric::new(Profile::Cpu);
    let mut speeds = Vec::new();
    while !world.finished() {
        let frame = world.sense();
        let hint = world.route_hint();
        let c = agent.step(&frame, hint, 0.025, &mut gpu, &mut cpu).expect("no trap");
        world.step(c);
        speeds.push(world.ego_state().speed);
    }
    let late_avg = speeds[speeds.len() - 200..].iter().sum::<f64>() / 200.0;
    assert!((late_avg - 8.0).abs() < 1.0, "cruise speed settled at {late_avg:.2}");
}

#[test]
fn perception_estimates_lead_distance() {
    let mut world = World::new(lead_slowdown(), SensorConfig::default(), 16);
    let mut agent = SensorimotorAgent::new(AgentConfig::default(), 1);
    let mut gpu = Fabric::new(Profile::Gpu);
    let mut cpu = Fabric::new(Profile::Cpu);
    // Three frames so the temporal median filter confirms the detection.
    for _ in 0..3 {
        let frame = world.sense();
        let hint = world.route_hint();
        let c = agent.step(&frame, hint, 0.025, &mut gpu, &mut cpu).expect("no trap");
        world.step(c);
    }
    let dbg = agent.perception_debug();
    // True bumper gap is ~20.5 m (25 m center-to-center); row quantization
    // near the horizon makes the estimate coarse.
    assert!(
        dbg.distance > 8.0 && dbg.distance < 60.0,
        "distance estimate {:.1} m for a lead 25 m ahead",
        dbg.distance
    );
}

#[test]
fn perception_reports_no_vehicle_on_empty_road() {
    let mut scenario = lead_slowdown();
    scenario.npcs.clear();
    let mut world = World::new(scenario, SensorConfig::default(), 17);
    let mut agent = SensorimotorAgent::new(AgentConfig::default(), 2);
    let mut gpu = Fabric::new(Profile::Gpu);
    let mut cpu = Fabric::new(Profile::Cpu);
    let frame = world.sense();
    let hint = world.route_hint();
    agent.step(&frame, hint, 0.025, &mut gpu, &mut cpu).expect("no trap");
    assert!(agent.perception_debug().distance > 100.0, "no vehicle → huge distance");
}

#[test]
fn agent_memory_accounting_is_plausible() {
    let agent = SensorimotorAgent::new(AgentConfig::default(), 3);
    let (vram, ram) = agent.memory_bytes();
    assert!(vram > 50_000, "GPU context holds image planes: {vram}");
    assert!(ram < 4_096, "CPU context is small: {ram}");
}

#[test]
fn permanent_fmul_gpu_fault_perturbs_actuation() {
    let mut world = World::new(lead_slowdown(), SensorConfig::default(), 18);
    let mut clean_agent = SensorimotorAgent::new(AgentConfig::default(), 4);
    let mut faulty_agent = SensorimotorAgent::new(AgentConfig::default(), 4);
    let mut gpu_clean = Fabric::new(Profile::Gpu);
    let mut gpu_faulty = Fabric::new(Profile::Gpu);
    gpu_faulty.inject(FaultModel::Permanent { op: Op::FFma, mask: 1 << 30 });
    let mut cpu1 = Fabric::new(Profile::Cpu);
    let mut cpu2 = Fabric::new(Profile::Cpu);
    // Several frames so corruption passes the temporal median filter.
    let (mut clean, mut faulty) = (Ok(Default::default()), Ok(Default::default()));
    for _ in 0..3 {
        let frame = world.sense();
        let hint = world.route_hint();
        clean = clean_agent.step(&frame, hint, 0.025, &mut gpu_clean, &mut cpu1);
        faulty = faulty_agent.step(&frame, hint, 0.025, &mut gpu_faulty, &mut cpu2);
        if faulty.is_err() {
            break;
        }
        world.step(clean.expect("clean run"));
    }
    match (clean, faulty) {
        (Ok(_), Ok(_)) => {
            // Actuation may saturate identically; the perception state must
            // differ under an always-on FMA corruption.
            assert_ne!(
                clean_agent.perception_debug(),
                faulty_agent.perception_debug(),
                "a permanent FFma fault must perturb perception"
            );
        }
        (Ok(_), Err(_)) => {} // crash/hang is also an acceptable manifestation
        other => panic!("unexpected outcomes: {other:?}"),
    }
}

#[test]
fn corrupted_cpu_loop_counter_hangs_or_crashes() {
    let mut world = World::new(lead_slowdown(), SensorConfig::default(), 19);
    let mut agent = SensorimotorAgent::new(AgentConfig::default(), 5);
    let mut gpu = Fabric::new(Profile::Gpu);
    let mut cpu = Fabric::new(Profile::Cpu);
    cpu.inject(FaultModel::Permanent { op: Op::IAdd, mask: 1 });
    let frame = world.sense();
    let hint = world.route_hint();
    let res = agent.step(&frame, hint, 0.025, &mut gpu, &mut cpu);
    assert!(res.is_err(), "permanent IAdd corruption must trap, got {res:?}");
    let err = res.unwrap_err();
    assert_eq!(err.fabric, Profile::Cpu);
}

#[test]
fn agent_state_is_private_between_instances() {
    // Two agents stepping on the same fabrics keep independent PID state.
    let mut world = World::new(lead_slowdown(), SensorConfig::default(), 20);
    let mut a = SensorimotorAgent::new(AgentConfig::default(), 6);
    let mut b = SensorimotorAgent::new(AgentConfig::default(), 7);
    let mut gpu = Fabric::new(Profile::Gpu);
    let mut cpu = Fabric::new(Profile::Cpu);
    for _ in 0..5 {
        let frame = world.sense();
        let hint = world.route_hint();
        let ca = a.step(&frame, hint, 0.025, &mut gpu, &mut cpu).expect("a ok");
        let cb = b.step(&frame, hint, 0.025, &mut gpu, &mut cpu).expect("b ok");
        // Outputs are close (same inputs) but jitter keeps them distinct
        // over several steps; state must not leak between contexts.
        let _ = (ca, cb);
        world.step(ca);
    }
    assert_eq!(a.steps(), 5);
    assert_eq!(b.steps(), 5);
}

#[test]
#[ignore = "diagnostic trace for gain tuning"]
fn debug_lane_trace() {
    let scenario = long_route(0, 45.0);
    let mut world = World::new(scenario, SensorConfig::default(), 14);
    let mut agent = SensorimotorAgent::new(AgentConfig::default(), 14 ^ 0x5A);
    let mut gpu = Fabric::new(Profile::Gpu);
    let mut cpu = Fabric::new(Profile::Cpu);
    let mut i = 0u64;
    while !world.finished() {
        let frame = world.sense();
        let hint = world.route_hint();
        let c = agent.step(&frame, hint, 0.025, &mut gpu, &mut cpu).expect("no trap");
        world.step(c);
        if i.is_multiple_of(40) {
            let d = agent.perception_debug();
            println!(
                "t={:5.1} s={:6.1} lat={:+5.2} curv={:+.4} limit={:4.1} v={:4.1} steer={:+.3} latpx={:+6.1} dist={:6.1} thr={:.2} brk={:.2}",
                world.time(), world.ego_s(), hint.lateral_offset, hint.curvature,
                hint.speed_limit, world.ego_state().speed, c.steer, d.lat_err_px, d.distance,
                c.throttle, c.brake
            );
        }
        i += 1;
    }
}
