//! Closed-loop tests: the agent drives the simulated world fault-free.
//!
//! These are the substrate-level sanity checks the whole evaluation rests
//! on: the agent must lane-keep, car-follow, stop for braking leads, and
//! handle the cut-in and front-accident scenarios without collisions.
//!
//! All tests drive the canonical [`SimLoop`] from `diverseav-runtime`
//! (via [`AgentDriver`] or a purpose-built [`LoopDriver`]) rather than
//! hand-rolling the `sense → step` loop.

use diverseav::{TickOutput, VehState};
use diverseav_agent::{AgentConfig, AgentError, SensorimotorAgent};
use diverseav_fabric::{Fabric, FaultModel, Op, Profile};
use diverseav_runtime::{AgentDriver, LoopDriver, LoopObserver, SimLoop, Termination, TickContext};
use diverseav_simworld::{
    front_accident, ghost_cut_in, lead_slowdown, long_route, RouteHint, Scenario, SensorConfig,
    SensorFrame, World,
};

fn sim(scenario: Scenario, seed: u64) -> SimLoop<AgentDriver> {
    let world = World::new(scenario, SensorConfig::default(), seed);
    let agent = SensorimotorAgent::new(AgentConfig::default(), seed ^ 0x5A);
    SimLoop::new(world, AgentDriver::new(agent))
}

/// Drive a scenario with a single agent at the full 40 Hz rate.
/// Returns the world after the run; a fault-free run must not trap.
fn drive(scenario: Scenario, seed: u64) -> World {
    let mut sim = sim(scenario, seed);
    let term = sim.run();
    assert!(!term.is_hang_or_crash(), "fault-free run must not trap: {term:?}");
    sim.into_parts().0
}

#[test]
fn agent_survives_lead_slowdown() {
    let world = drive(lead_slowdown(), 11);
    assert!(
        world.collision_time().is_none(),
        "collision at t={:?}, min CVIP {:.2}",
        world.collision_time(),
        world.min_cvip()
    );
    assert!(world.min_cvip() < 30.0, "the agent actually followed the lead");
}

#[test]
fn agent_survives_ghost_cut_in() {
    let world = drive(ghost_cut_in(), 12);
    assert!(
        world.collision_time().is_none(),
        "collision at t={:?}, min CVIP {:.2}",
        world.collision_time(),
        world.min_cvip()
    );
}

#[test]
fn agent_survives_front_accident() {
    let world = drive(front_accident(), 13);
    assert!(
        world.collision_time().is_none(),
        "collision at t={:?}, min CVIP {:.2}",
        world.collision_time(),
        world.min_cvip()
    );
}

#[test]
fn agent_lane_keeps_on_long_route() {
    let world = drive(long_route(0, 45.0), 14);
    assert!(world.collision_time().is_none(), "no collision on the training route");
    // Lane discipline: final lateral offset within the ego lane.
    let track = &world.scenario().track;
    let (_, lat) = track.project_near(world.ego_state().pose.pos, world.ego_s(), 30.0);
    assert!(lat.abs() < 1.5, "ended {lat:.2} m off lane center");
    assert!(world.ego_s() > 100.0, "made progress: s = {:.1}", world.ego_s());
}

#[test]
fn agent_reaches_cruise_speed_on_empty_road() {
    struct Speeds(Vec<f64>);
    impl LoopObserver for Speeds {
        fn on_tick(&mut self, ctx: &TickContext<'_>) {
            self.0.push(ctx.world.ego_state().speed);
        }
    }
    let mut scenario = lead_slowdown();
    scenario.npcs.clear();
    let world = World::new(scenario, SensorConfig::default(), 15);
    let agent = SensorimotorAgent::new(AgentConfig::default(), 99);
    let mut sim = SimLoop::new(world, AgentDriver::new(agent));
    let mut speeds = Speeds(Vec::new());
    assert_eq!(sim.run_observed(&mut [&mut speeds]), Termination::Completed);
    let speeds = speeds.0;
    let late_avg = speeds[speeds.len() - 200..].iter().sum::<f64>() / 200.0;
    assert!((late_avg - 8.0).abs() < 1.0, "cruise speed settled at {late_avg:.2}");
}

#[test]
fn perception_estimates_lead_distance() {
    // Three frames so the temporal median filter confirms the detection.
    let mut sim = sim(lead_slowdown(), 16);
    assert!(sim.run_for(3, &mut []).is_none(), "run is still live after 3 ticks");
    let dbg = sim.driver().agent.perception_debug();
    // True bumper gap is ~20.5 m (25 m center-to-center); row quantization
    // near the horizon makes the estimate coarse.
    assert!(
        dbg.distance > 8.0 && dbg.distance < 60.0,
        "distance estimate {:.1} m for a lead 25 m ahead",
        dbg.distance
    );
}

#[test]
fn perception_reports_no_vehicle_on_empty_road() {
    let mut scenario = lead_slowdown();
    scenario.npcs.clear();
    let mut sim = sim(scenario, 17);
    assert!(sim.run_for(1, &mut []).is_none());
    assert!(sim.driver().agent.perception_debug().distance > 100.0, "no vehicle → huge distance");
}

#[test]
fn agent_memory_accounting_is_plausible() {
    let agent = SensorimotorAgent::new(AgentConfig::default(), 3);
    let (vram, ram) = agent.memory_bytes();
    assert!(vram > 50_000, "GPU context holds image planes: {vram}");
    assert!(ram < 4_096, "CPU context is small: {ram}");
}

/// Two agents fed the same frames: the clean one drives the world, the
/// faulty one runs shadow inference on its own fabric pair. A faulty-side
/// trap terminates the loop through the driver's error path.
struct ShadowPair {
    clean: AgentDriver,
    faulty: AgentDriver,
}

impl LoopDriver for ShadowPair {
    fn tick(
        &mut self,
        frame: &SensorFrame,
        hint: RouteHint,
        state: VehState,
        t: f64,
        world: &World,
    ) -> Result<TickOutput, AgentError> {
        let clean = self.clean.tick(frame, hint, state, t, world).expect("clean run");
        self.faulty.tick(frame, hint, state, t, world)?;
        Ok(clean)
    }
}

#[test]
fn permanent_fmul_gpu_fault_perturbs_actuation() {
    let world = World::new(lead_slowdown(), SensorConfig::default(), 18);
    let mut driver = ShadowPair {
        clean: AgentDriver::new(SensorimotorAgent::new(AgentConfig::default(), 4)),
        faulty: AgentDriver::new(SensorimotorAgent::new(AgentConfig::default(), 4)),
    };
    driver.faulty.gpu.inject(FaultModel::Permanent { op: Op::FFma, mask: 1 << 30 });
    let mut sim = SimLoop::new(world, driver);
    // Several frames so corruption passes the temporal median filter.
    match sim.run_for(3, &mut []) {
        None | Some(Termination::Completed) | Some(Termination::Collision) => {
            // Actuation may saturate identically; the perception state must
            // differ under an always-on FMA corruption.
            let d = sim.driver();
            assert_ne!(
                d.clean.agent.perception_debug(),
                d.faulty.agent.perception_debug(),
                "a permanent FFma fault must perturb perception"
            );
        }
        Some(Termination::Trap(_)) => {} // crash/hang is also acceptable
    }
}

#[test]
fn corrupted_cpu_loop_counter_hangs_or_crashes() {
    let world = World::new(lead_slowdown(), SensorConfig::default(), 19);
    let mut driver = AgentDriver::new(SensorimotorAgent::new(AgentConfig::default(), 5));
    driver.cpu.inject(FaultModel::Permanent { op: Op::IAdd, mask: 1 });
    let mut sim = SimLoop::new(world, driver);
    match sim.run_for(1, &mut []) {
        Some(Termination::Trap(err)) => assert_eq!(err.fabric, Profile::Cpu),
        other => panic!("permanent IAdd corruption must trap, got {other:?}"),
    }
}

/// Two agents time-sharing one fabric pair (the DiverseAV deployment
/// shape): agent `a` drives; agent `b` shadows on the same fabrics.
struct SharedFabricPair {
    a: SensorimotorAgent,
    b: SensorimotorAgent,
    gpu: Fabric,
    cpu: Fabric,
}

impl LoopDriver for SharedFabricPair {
    fn tick(
        &mut self,
        frame: &SensorFrame,
        hint: RouteHint,
        _state: VehState,
        _t: f64,
        _world: &World,
    ) -> Result<TickOutput, AgentError> {
        let ca = self.a.step(frame, hint, 0.025, &mut self.gpu, &mut self.cpu)?;
        let cb = self.b.step(frame, hint, 0.025, &mut self.gpu, &mut self.cpu)?;
        // Outputs are close (same inputs) but jitter keeps them distinct
        // over several steps; state must not leak between contexts.
        let _ = cb;
        Ok(TickOutput {
            controls: ca,
            pair: None,
            divergence: None,
            alarm_raised: false,
            detector: None,
            fault_active: false,
        })
    }
}

#[test]
fn agent_state_is_private_between_instances() {
    let world = World::new(lead_slowdown(), SensorConfig::default(), 20);
    let driver = SharedFabricPair {
        a: SensorimotorAgent::new(AgentConfig::default(), 6),
        b: SensorimotorAgent::new(AgentConfig::default(), 7),
        gpu: Fabric::new(Profile::Gpu),
        cpu: Fabric::new(Profile::Cpu),
    };
    let mut sim = SimLoop::new(world, driver);
    assert!(sim.run_for(5, &mut []).is_none(), "both agents stay trap-free");
    assert_eq!(sim.driver().a.steps(), 5);
    assert_eq!(sim.driver().b.steps(), 5);
}

#[test]
#[ignore = "diagnostic trace for gain tuning"]
fn debug_lane_trace() {
    /// Wraps the bare agent driver to print a 1 Hz diagnostic line.
    struct Traced {
        inner: AgentDriver,
        i: u64,
    }
    impl LoopDriver for Traced {
        fn tick(
            &mut self,
            frame: &SensorFrame,
            hint: RouteHint,
            state: VehState,
            t: f64,
            world: &World,
        ) -> Result<TickOutput, AgentError> {
            let out = self.inner.tick(frame, hint, state, t, world)?;
            if self.i.is_multiple_of(40) {
                let d = self.inner.agent.perception_debug();
                let c = out.controls;
                println!(
                    "t={:5.1} s={:6.1} lat={:+5.2} curv={:+.4} limit={:4.1} v={:4.1} steer={:+.3} latpx={:+6.1} dist={:6.1} thr={:.2} brk={:.2}",
                    world.time(), world.ego_s(), hint.lateral_offset, hint.curvature,
                    hint.speed_limit, world.ego_state().speed, c.steer, d.lat_err_px, d.distance,
                    c.throttle, c.brake
                );
            }
            self.i += 1;
            Ok(out)
        }
    }
    let world = World::new(long_route(0, 45.0), SensorConfig::default(), 14);
    let driver = Traced {
        inner: AgentDriver::new(SensorimotorAgent::new(AgentConfig::default(), 14 ^ 0x5A)),
        i: 0,
    };
    let term = SimLoop::new(world, driver).run();
    assert!(!term.is_hang_or_crash(), "no trap on the diagnostic route: {term:?}");
}
