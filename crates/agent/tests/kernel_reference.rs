//! Kernel-level verification: each GPU perception kernel is checked
//! against a host-side reference implementation on synthetic images.

use diverseav_agent::{kernels, layout::param, GpuLayout};
use diverseav_fabric::{Context, Fabric, Profile};

const W: usize = 32;
const H: usize = 24;

/// Build a context with a synthetic scene: image planes from a generator,
/// lane weights all 1 below the horizon, and a simple distance LUT.
fn make_ctx(l: &GpuLayout, pixel: impl Fn(usize, usize) -> (f32, f32, f32)) -> Context {
    let mut ctx = Context::new(l.total);
    for y in 0..H {
        for x in 0..W {
            let (r, g, b) = pixel(x, y);
            let i = y * W + x;
            ctx.write_f32(l.img_r + i, r);
            ctx.write_f32(l.img_g + i, g);
            ctx.write_f32(l.img_b + i, b);
            let w = if y > H / 2 { 1.0 } else { 0.0 };
            ctx.write_f32(l.lanew + i, w);
        }
    }
    for y2 in 0..l.h2 {
        ctx.write_f32(l.dist + y2, 100.0 - y2 as f32 * 4.0);
    }
    ctx.write_f32(l.params + param::BIAS, 0.15);
    ctx.write_f32(l.params + param::THRESH, 0.05);
    ctx.write_f32(l.params + param::KD, 0.5);
    ctx.write_f32(l.params + param::D_MIN, 6.0);
    ctx.write_f32(l.params + param::D_EMERG, 5.0);
    ctx.write_f32(l.params + param::LIMIT, 8.0);
    ctx
}

fn run_mask(l: &GpuLayout, ctx: &mut Context) {
    let mut gpu = Fabric::new(Profile::Gpu);
    let prog = kernels::build_mask_kernel(l);
    gpu.run_kernel(&prog, ctx, (W * H) as u32, &[], 400).expect("mask kernel");
}

#[test]
fn mask_kernel_matches_reference_formula() {
    let l = GpuLayout::new(W, H);
    let mut ctx = make_ctx(&l, |x, y| {
        // A gradient image with a "blue" block at (10..14, 16..20).
        if (10..14).contains(&x) && (16..20).contains(&y) {
            (0.15, 0.16, 0.80)
        } else {
            (0.2 + x as f32 / 100.0, 0.2, 0.25 + y as f32 / 200.0)
        }
    });
    run_mask(&l, &mut ctx);
    for y in 0..H {
        for x in 0..W {
            let i = y * W + x;
            let r = ctx.read_f32(l.img_r + i);
            let g = ctx.read_f32(l.img_g + i);
            let b = ctx.read_f32(l.img_b + i);
            let lanew = ctx.read_f32(l.lanew + i);
            let expected = ((b - 0.5 * (r + g)) - 0.15f32).max(0.0) * lanew;
            let got = ctx.read_f32(l.mask + i);
            assert!((got - expected).abs() < 1e-6, "mask[{x},{y}] = {got} vs {expected}");
        }
    }
}

#[test]
fn conv_kernel_is_a_3x3_box_filter() {
    let l = GpuLayout::new(W, H);
    let mut ctx = make_ctx(&l, |x, y| {
        if x == 15 && y == 17 {
            (0.0, 0.0, 1.0) // a single hot pixel
        } else {
            (0.3, 0.3, 0.3)
        }
    });
    run_mask(&l, &mut ctx);
    let mut gpu = Fabric::new(Profile::Gpu);
    let prog = kernels::build_conv_kernel(&l);
    gpu.run_kernel(&prog, &mut ctx, (l.w2 * l.h2) as u32, &[], 400).expect("conv kernel");
    // Host reference: conv sample (x2, y2) averages the 3×3 block centered
    // at (2x2+1, 2y2+1) of the mask plane.
    for y2 in 0..l.h2 {
        for x2 in 0..l.w2 {
            let (cx, cy) = (2 * x2 + 1, 2 * y2 + 1);
            let mut sum = 0.0f32;
            for dy in 0..3 {
                for dx in 0..3 {
                    sum += ctx.read_f32(l.mask + (cy + dy - 1) * W + (cx + dx - 1));
                }
            }
            // The kernel accumulates tap·(1/9) with FMA in tap order; the
            // tolerance absorbs association differences.
            let got = ctx.read_f32(l.conv + y2 * l.w2 + x2);
            assert!((got - sum / 9.0).abs() < 1e-5, "conv[{x2},{y2}] = {got} vs {}", sum / 9.0);
        }
    }
}

#[test]
fn rowmax_and_rowsum_match_reference() {
    let l = GpuLayout::new(W, H);
    let mut ctx = make_ctx(&l, |x, y| {
        let v = ((x * 7 + y * 13) % 10) as f32 / 10.0;
        (0.1, 0.1, 0.3 + v / 3.0)
    });
    run_mask(&l, &mut ctx);
    let mut gpu = Fabric::new(Profile::Gpu);
    gpu.run_kernel(&kernels::build_conv_kernel(&l), &mut ctx, (l.w2 * l.h2) as u32, &[], 400)
        .expect("conv");
    gpu.run_kernel(&kernels::build_rowmax_kernel(&l), &mut ctx, l.h2 as u32, &[], 400)
        .expect("rowmax");
    for y2 in 0..l.h2 {
        let row: Vec<f32> = (0..l.w2).map(|x2| ctx.read_f32(l.conv + y2 * l.w2 + x2)).collect();
        let maxv = row.iter().cloned().fold(0.0f32, f32::max);
        let sumv: f32 = row.iter().sum();
        assert!((ctx.read_f32(l.rowmax + y2) - maxv).abs() < 1e-6, "rowmax[{y2}]");
        assert!((ctx.read_f32(l.rowsum + y2) - sumv).abs() < 1e-4, "rowsum[{y2}]");
    }
}

#[test]
fn lane_kernel_sums_whiteness_over_bottom_third() {
    let l = GpuLayout::new(W, H);
    // Bright "marking" column at x = 20 in the bottom third.
    let mut ctx =
        make_ctx(
            &l,
            |x, y| {
                if x == 20 && y >= H * 2 / 3 {
                    (0.85, 0.85, 0.82)
                } else {
                    (0.2, 0.2, 0.2)
                }
            },
        );
    let mut gpu = Fabric::new(Profile::Gpu);
    gpu.run_kernel(&kernels::build_lane_kernel(&l), &mut ctx, W as u32, &[], 400).expect("lane");
    for x in 0..W {
        let mut expected = 0.0f32;
        for y in H * 2 / 3..H {
            let i = y * W + x;
            let m = ctx
                .read_f32(l.img_r + i)
                .min(ctx.read_f32(l.img_g + i))
                .min(ctx.read_f32(l.img_b + i));
            expected += (m - 0.55).max(0.0);
        }
        let got = ctx.read_f32(l.lane + x);
        assert!((got - expected).abs() < 1e-5, "lane[{x}] = {got} vs {expected}");
    }
    assert!(ctx.read_f32(l.lane + 20) > 0.5, "the marking column scores high");
}

#[test]
fn decide_kernel_scans_bottom_up_and_uses_the_lut() {
    let l = GpuLayout::new(W, H);
    let mut ctx = make_ctx(&l, |_, _| (0.2, 0.2, 0.2));
    // Hand-plant row maxima: signal at conv rows 4 and 8 → the scan from
    // the bottom must pick row 8 (closer) and read DIST[8].
    for y2 in 0..l.h2 {
        ctx.write_f32(l.rowmax + y2, 0.0);
    }
    ctx.write_f32(l.rowmax + 4, 0.2);
    ctx.write_f32(l.rowmax + 8, 0.3);
    // Neutral history so the median filter passes the fresh value through
    // (history slots are zero → median(d, 0, 0) = 0 on the first call), so
    // run the kernel three times to fill the history.
    let mut gpu = Fabric::new(Profile::Gpu);
    let prog = kernels::build_decide_kernel(&l);
    for _ in 0..3 {
        gpu.run_kernel(&prog, &mut ctx, 1, &[], 20_000).expect("decide");
    }
    let expected = 100.0 - 8.0 * 4.0; // DIST[8]
    let got = ctx.read_f32(l.out + diverseav_agent::layout::out::DIST);
    assert!((got - expected).abs() < 1e-4, "distance {got} vs {expected}");
    // v_des = min(limit, kd·(d − d_min)) = min(8, 0.5·(68 − 6)) = 8.
    let v = ctx.read_f32(l.out + diverseav_agent::layout::out::V_DES);
    assert!((v - 8.0).abs() < 1e-4, "v_des {v}");
}
