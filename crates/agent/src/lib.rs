//! # diverseav-agent
//!
//! A Sensorimotor-style end-to-end autonomous agent whose entire numeric
//! pipeline executes on the [`diverseav_fabric`] compute-fabric simulator,
//! standing in for the pretrained CNN agent (Chen et al., "Learning by
//! Cheating") used by the DiverseAV paper.
//!
//! Structure mirrors the paper's §IV-A: a High-level Route Planner
//! (supplied by the world), a vision-based local planner producing four
//! local waypoints (GPU-profile kernels: vehicle-mask extraction, 3×3
//! convolution, row reductions, lane centroid, planning head), and a
//! Waypoints Tracker + PID Control Unit (CPU-profile scalar program).
//! Because every arithmetic step runs on the fabric, NVBitFI/PinFI-style
//! destination-register faults propagate through genuine data flow into
//! the actuation commands — the property DiverseAV's evaluation depends
//! on.
//!
//! Departure from the paper, documented in DESIGN.md: the vision planner
//! uses deterministic matched filters instead of trained CNN weights (no
//! training data exists in this environment), and consumes the center
//! camera; the left/right cameras still feed the data distributor and the
//! diversity studies.
//!
//! ## Example
//!
//! ```
//! use diverseav_agent::{AgentConfig, SensorimotorAgent};
//! use diverseav_fabric::{Fabric, Profile};
//! use diverseav_simworld::{lead_slowdown, SensorConfig, World};
//!
//! # fn main() -> Result<(), diverseav_agent::AgentError> {
//! let mut world = World::new(lead_slowdown(), SensorConfig::default(), 1);
//! let mut agent = SensorimotorAgent::new(AgentConfig::default(), 7);
//! let mut gpu = Fabric::new(Profile::Gpu);
//! let mut cpu = Fabric::new(Profile::Cpu);
//! let frame = world.sense();
//! let hint = world.route_hint();
//! let controls = agent.step(&frame, hint, 0.025, &mut gpu, &mut cpu)?;
//! assert!(controls.throttle >= 0.0);
//! # Ok(())
//! # }
//! ```

pub mod agent;
pub mod kernels;
pub mod layout;

pub use agent::{AgentConfig, AgentError, PerceptionDebug, SensorimotorAgent};
pub use layout::GpuLayout;
