//! The Sensorimotor-style autonomous agent.
//!
//! Mirrors the structure of the paper's agent (§IV-A): a High-level Route
//! Planner (supplied by the world as a [`RouteHint`]), a vision-based local
//! planner producing four local waypoints (GPU-fabric kernels), and a
//! Waypoints Tracker + PID control unit (CPU-fabric program). The agent is
//! a black box to DiverseAV: it consumes a [`SensorFrame`] and produces
//! [`Controls`].

use crate::kernels::{
    build_control_program, build_conv_kernel, build_decide_kernel, build_lane_kernel,
    build_mask_kernel, build_rowmax_kernel,
};
use crate::layout::{cpu, out, param, GpuLayout};
use diverseav_fabric::{Context, Fabric, Profile, Program, Trap};
use diverseav_simworld::{Controls, RouteHint, SensorFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Abnormal agent termination: a trap on one of the fabrics.
///
/// The campaign manager classifies [`Trap::Watchdog`] as a *hang* and the
/// other traps as a *crash*, both detected by the platform (not by the
/// DiverseAV error detector).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AgentError {
    /// Which fabric trapped.
    pub fabric: Profile,
    /// The trap.
    pub trap: Trap,
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent {} fabric trapped: {}", self.fabric, self.trap)
    }
}

impl Error for AgentError {}

/// Tunable parameters of the agent.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AgentConfig {
    /// Camera image width — must match the sensor configuration.
    pub img_w: usize,
    /// Camera image height — must match the sensor configuration.
    pub img_h: usize,
    /// Camera horizontal FOV (deg) — must match the sensor configuration.
    pub hfov_deg: f64,
    /// Camera mount height (m) — must match the sensor configuration.
    pub cam_height: f64,
    /// Vehicle-mask blueness bias.
    pub bias: f32,
    /// Conv-activation threshold for vehicle presence.
    pub mask_thresh: f32,
    /// Car-following gain (per second).
    pub kd: f32,
    /// Minimum following distance (m).
    pub d_min: f32,
    /// Emergency-stop distance (m).
    pub d_emerg: f32,
    /// Steering gain on lane-centroid pixel error.
    pub ks: f32,
    /// Steering feed-forward gain on curvature.
    pub kc: f32,
    /// Yaw-rate damping gain.
    pub kdy: f32,
    /// Route-following gain on the localization lateral offset.
    pub kl: f32,
    /// Route-following gain on the heading error (damping).
    pub kh: f32,
    /// Gain on the constant-calibration drift pathway (steering trim).
    pub kcal: f32,
    /// Caution gain on the continuous conv-activation evidence sum — a
    /// CNN-like soft regression pathway. Default 0 (ablation knob): with
    /// the discretized planning head it injects frame-to-frame plan noise
    /// that inflates DiverseAV's learned thresholds and masks real faults.
    pub kv: f32,
    /// PID proportional gain.
    pub kp: f32,
    /// PID integral gain.
    pub ki: f32,
    /// Brake mapping gain.
    pub kb: f32,
    /// Desired-speed smoothing factor per received frame.
    pub ema_alpha: f32,
    /// Steering smoothing factor per received frame.
    pub steer_beta: f32,
    /// PID integrator clamp.
    pub integ_clamp: f32,
    /// Std-dev of the per-step compute jitter applied to the mask bias —
    /// models scheduling-dependent nondeterminism inside the perception
    /// stack (can flip marginal detections).
    pub jitter: f64,
    /// Half-width of the uniform per-channel actuation noise — models
    /// timing/rounding nondeterminism at the actuation interface (the
    /// reason the paper's FD-ADS outputs never match bit-for-bit). Kept
    /// below half the actuation quantum so fault-free outputs differ by at
    /// most one quantum.
    pub actuation_jitter: f64,
    /// Actuation command quantization step (CAN-bus style integer
    /// encoding of throttle/brake/steer).
    pub actuation_quantum: f64,
    /// Watchdog budget per GPU kernel thread (instructions).
    pub gpu_thread_budget: u64,
    /// Watchdog budget for the planning-head kernel.
    pub decide_budget: u64,
    /// Watchdog budget for the CPU control program.
    pub cpu_budget: u64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            img_w: 64,
            img_h: 48,
            hfov_deg: 70.0,
            cam_height: 1.5,
            bias: 0.15,
            mask_thresh: 0.05,
            kd: 0.5,
            d_min: 6.0,
            d_emerg: 5.0,
            ks: 0.012,
            kc: 4.5,
            kdy: 0.05,
            kl: 0.15,
            kh: 1.5,
            kv: 0.0,
            kcal: 1.0,
            kp: 0.30,
            ki: 0.12,
            kb: 1.5,
            ema_alpha: 0.065,
            steer_beta: 0.17,
            integ_clamp: 4.0,
            jitter: 0.0,
            actuation_jitter: 1.5e-3,
            actuation_quantum: 5.0e-3,
            gpu_thread_budget: 400,
            decide_budget: 8_000,
            cpu_budget: 20_000,
        }
    }
}

/// Perception telemetry for debugging and analysis (read back from the GPU
/// output block after a step).
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct PerceptionDebug {
    /// Estimated distance to the closest in-path vehicle (m; huge if none).
    pub distance: f32,
    /// Lane-centroid pixel error.
    pub lat_err_px: f32,
    /// Planned speed (m/s).
    pub v_des: f32,
    /// Feed-forward steering.
    pub steer_ff: f32,
}

/// The compiled fabric programs of an agent (shared, immutable).
#[derive(Clone, Debug)]
struct AgentPrograms {
    mask: Program,
    conv: Program,
    rowmax: Program,
    lane: Program,
    decide: Program,
    control: Program,
}

/// A Sensorimotor-style end-to-end agent executing on the compute fabric.
///
/// Each instance owns its private state: fabric memory contexts (image
/// planes, perception intermediates, PID integrator, speed filter) and a
/// jitter RNG. The *processor* (the [`Fabric`]) is passed in at each step,
/// so two agents can time-multiplex one fabric (DiverseAV) or run on
/// dedicated fabrics (the fully-duplicated baseline).
#[derive(Clone, Debug)]
pub struct SensorimotorAgent {
    cfg: AgentConfig,
    layout: GpuLayout,
    programs: AgentPrograms,
    gpu_ctx: Context,
    cpu_ctx: Context,
    jitter_rng: StdRng,
    last_controls: Controls,
    steps: u64,
}

impl SensorimotorAgent {
    /// Create an agent; `seed` controls its private compute jitter.
    pub fn new(cfg: AgentConfig, seed: u64) -> Self {
        let layout = GpuLayout::new(cfg.img_w, cfg.img_h);
        let programs = AgentPrograms {
            mask: build_mask_kernel(&layout),
            conv: build_conv_kernel(&layout),
            rowmax: build_rowmax_kernel(&layout),
            lane: build_lane_kernel(&layout),
            decide: build_decide_kernel(&layout),
            control: build_control_program(cfg.kp, cfg.ki, cfg.kb, cfg.integ_clamp),
        };
        let mut gpu_ctx = Context::new(layout.total);
        let mut cpu_ctx = Context::new(cpu::TOTAL);
        Self::init_lanew(&cfg, &layout, &mut gpu_ctx);
        Self::init_dist_lut(&cfg, &layout, &mut gpu_ctx);
        // Detection history starts at "no vehicle" so the median filter
        // does not hallucinate an obstacle on the first frames.
        gpu_ctx.write_f32(layout.hist, 1.0e6);
        gpu_ctx.write_f32(layout.hist + 1, 1.0e6);
        Self::init_params(&cfg, &layout, &mut gpu_ctx, &mut cpu_ctx);
        SensorimotorAgent {
            cfg,
            layout,
            programs,
            gpu_ctx,
            cpu_ctx,
            jitter_rng: StdRng::seed_from_u64(seed ^ 0xA6E7),
            last_controls: Controls::default(),
            steps: 0,
        }
    }

    /// Camera intrinsics implied by the configuration.
    fn intrinsics(cfg: &AgentConfig) -> (f64, f64, f64) {
        let fx = (cfg.img_w as f64 / 2.0) / (cfg.hfov_deg.to_radians() / 2.0).tan();
        let cx = cfg.img_w as f64 / 2.0;
        let cy = cfg.img_h as f64 / 2.0;
        (fx, cx, cy)
    }

    /// Precompute the in-lane weight mask: 1 for ground pixels whose
    /// flat-ground back-projection lies within the ego lane, else 0.
    fn init_lanew(cfg: &AgentConfig, l: &GpuLayout, ctx: &mut Context) {
        let (fx, cx, cy) = Self::intrinsics(cfg);
        let fy = fx;
        for y in 0..l.h {
            for x in 0..l.w {
                let yf = y as f64 + 0.5;
                let mut w = 0.0f32;
                if yf > cy + 0.2 {
                    let d = cfg.cam_height * fy / (yf - cy);
                    let lat = -((x as f64 + 0.5) - cx) * d / fx;
                    if lat.abs() < 2.2 && d < 70.0 {
                        w = 1.0;
                    }
                }
                ctx.write_f32(l.lanew + y * l.w + x, w);
            }
        }
    }

    /// Precompute the conv-row → ground-distance lookup table.
    fn init_dist_lut(cfg: &AgentConfig, l: &GpuLayout, ctx: &mut Context) {
        let (fx, _, cy) = Self::intrinsics(cfg);
        let fy = fx;
        for y2 in 0..l.h2 {
            let row = 2.0 * y2 as f64 + 1.5;
            let d = if row > cy + 0.3 {
                (cfg.cam_height * fy / (row - cy)).clamp(2.0, 200.0)
            } else {
                200.0
            };
            ctx.write_f32(l.dist + y2, d as f32);
        }
    }

    fn init_params(cfg: &AgentConfig, l: &GpuLayout, gpu: &mut Context, cpu_ctx: &mut Context) {
        gpu.write_f32(l.params + param::BIAS, cfg.bias);
        gpu.write_f32(l.params + param::THRESH, cfg.mask_thresh);
        gpu.write_f32(l.params + param::KD, cfg.kd);
        gpu.write_f32(l.params + param::D_MIN, cfg.d_min);
        gpu.write_f32(l.params + param::D_EMERG, cfg.d_emerg);
        gpu.write_f32(l.params + param::KS, cfg.ks);
        gpu.write_f32(l.params + param::KC, cfg.kc);
        gpu.write_f32(l.params + param::KL, cfg.kl);
        gpu.write_f32(l.params + param::KH, cfg.kh);
        gpu.write_f32(l.params + param::KV, cfg.kv);
        gpu.write_f32(l.params + param::KCAL, cfg.kcal);
        // Calibration reference: the exact f32 checksum the decide kernel
        // computes over the distance LUT (identical op order).
        let mut c0 = 0.0f32;
        for y2 in 0..l.h2 {
            c0 += gpu.read_f32(l.dist + y2) * 0.001f32;
        }
        gpu.write_f32(l.params + param::CAL_REF, c0);
        cpu_ctx.write_f32(cpu::PARAMS, cfg.kp);
        cpu_ctx.write_f32(cpu::PARAMS + 1, cfg.ki);
        cpu_ctx.write_f32(cpu::PARAMS + 2, cfg.kb);
        cpu_ctx.write_f32(cpu::PARAMS + 3, cfg.ema_alpha);
        cpu_ctx.write_f32(cpu::PARAMS + 4, cfg.kdy);
        cpu_ctx.write_f32(cpu::PARAMS + 5, cfg.integ_clamp);
        cpu_ctx.write_f32(cpu::PARAMS + 6, cfg.steer_beta);
    }

    /// The configuration this agent runs with.
    pub fn config(&self) -> &AgentConfig {
        &self.cfg
    }

    /// Controls produced by the most recent successful step.
    pub fn last_controls(&self) -> Controls {
        self.last_controls
    }

    /// Number of frames this agent has processed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Memory footprint `(vram_bytes, ram_bytes)` of the agent's private
    /// state (Table II accounting: GPU context vs CPU context).
    pub fn memory_bytes(&self) -> (usize, usize) {
        (self.gpu_ctx.bytes(), self.cpu_ctx.bytes())
    }

    /// Perception telemetry from the last step.
    pub fn perception_debug(&self) -> PerceptionDebug {
        let l = &self.layout;
        PerceptionDebug {
            distance: self.gpu_ctx.read_f32(l.out + out::DIST),
            lat_err_px: self.gpu_ctx.read_f32(l.out + out::LAT_ERR),
            v_des: self.gpu_ctx.read_f32(l.out + out::V_DES),
            steer_ff: self.gpu_ctx.read_f32(l.out + out::STEER_FF),
        }
    }

    /// Process one sensor frame into actuation commands.
    ///
    /// `gpu` and `cpu` are the processing elements to execute on; passing
    /// the same fabrics to two agents models DiverseAV's shared-processor
    /// deployment. `dt` is the agent's control period — 1/40 s when the
    /// agent receives every frame, 1/20 s under round-robin distribution;
    /// the controller's filter coefficients adapt so the closed-loop
    /// response is rate-independent (the engineering-margin property §III-D
    /// relies on).
    ///
    /// # Errors
    ///
    /// Returns [`AgentError`] if either fabric traps (crash) or exhausts
    /// its watchdog budget (hang) — typically the manifestation of an
    /// injected fault.
    pub fn step(
        &mut self,
        frame: &SensorFrame,
        hint: RouteHint,
        dt: f64,
        gpu: &mut Fabric,
        cpu_fab: &mut Fabric,
    ) -> Result<Controls, AgentError> {
        let l = self.layout;
        // --- host: upload the center camera image (normalized floats) ---
        let img = &frame.cameras[1];
        debug_assert_eq!(img.width(), l.w);
        debug_assert_eq!(img.height(), l.h);
        for y in 0..l.h {
            for x in 0..l.w {
                let [r, g, b] = img.pixel(x, y);
                let i = y * l.w + x;
                self.gpu_ctx.write_f32(l.img_r + i, r as f32 / 255.0);
                self.gpu_ctx.write_f32(l.img_g + i, g as f32 / 255.0);
                self.gpu_ctx.write_f32(l.img_b + i, b as f32 / 255.0);
            }
        }
        // Per-step compute jitter on the mask bias (nondeterminism model).
        let jitter: f64 = {
            let u1: f64 = self.jitter_rng.gen_range(1e-12..1.0);
            let u2: f64 = self.jitter_rng.gen();
            self.cfg.jitter * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        self.gpu_ctx.write_f32(l.params + param::BIAS, self.cfg.bias + jitter as f32);
        self.gpu_ctx.write_f32(l.params + param::LIMIT, hint.speed_limit);
        self.gpu_ctx.write_f32(l.params + param::CURV, hint.curvature);
        self.gpu_ctx.write_f32(l.params + param::LAT_OFF, hint.lateral_offset);
        self.gpu_ctx.write_f32(l.params + param::HEAD_ERR, hint.heading_err);

        // --- GPU perception pipeline ---
        let gerr = |trap| AgentError { fabric: Profile::Gpu, trap };
        let n = (l.w * l.h) as u32;
        gpu.run_kernel(&self.programs.mask, &mut self.gpu_ctx, n, &[], self.cfg.gpu_thread_budget)
            .map_err(gerr)?;
        gpu.run_kernel(
            &self.programs.conv,
            &mut self.gpu_ctx,
            (l.w2 * l.h2) as u32,
            &[],
            self.cfg.gpu_thread_budget,
        )
        .map_err(gerr)?;
        gpu.run_kernel(
            &self.programs.rowmax,
            &mut self.gpu_ctx,
            l.h2 as u32,
            &[],
            self.cfg.gpu_thread_budget,
        )
        .map_err(gerr)?;
        gpu.run_kernel(
            &self.programs.lane,
            &mut self.gpu_ctx,
            l.w as u32,
            &[],
            self.cfg.gpu_thread_budget,
        )
        .map_err(gerr)?;
        gpu.run_kernel(&self.programs.decide, &mut self.gpu_ctx, 1, &[], self.cfg.decide_budget)
            .map_err(gerr)?;

        // --- host DMA: waypoints GPU → CPU (stack buffer, no allocation) ---
        let mut wp = [0.0f32; 8];
        self.gpu_ctx.read_slice_f32_into(l.out + out::WP, &mut wp);
        self.cpu_ctx.write_slice_f32(cpu::WP, &wp);
        self.cpu_ctx.write_f32(cpu::SPEED, frame.speed);
        self.cpu_ctx.write_f32(cpu::DT, dt as f32);
        self.cpu_ctx.write_f32(cpu::YAW_RATE, frame.imu.yaw_rate);
        // Rate-adapted smoothing: the configured coefficients are per
        // 40 Hz frame; discretize for this agent's actual period.
        let k = dt * 40.0;
        let alpha_eff = 1.0 - (1.0 - self.cfg.ema_alpha as f64).powf(k);
        let beta_eff = 1.0 - (1.0 - self.cfg.steer_beta as f64).powf(k);
        self.cpu_ctx.write_f32(cpu::PARAMS + 3, alpha_eff as f32);
        self.cpu_ctx.write_f32(cpu::PARAMS + 6, beta_eff as f32);

        if self.steps == 0 {
            // Warm-start the speed filter so the first control period does
            // not slam the brakes from a zero-initialized plan.
            self.cpu_ctx.write_f32(cpu::VDES_EMA, frame.speed);
        }

        // --- CPU control program ---
        cpu_fab
            .run_scalar(&self.programs.control, &mut self.cpu_ctx, self.cfg.cpu_budget)
            .map_err(|trap| AgentError { fabric: Profile::Cpu, trap })?;

        let aj = self.cfg.actuation_jitter;
        let q = self.cfg.actuation_quantum;
        let mut emit = |raw: f32| {
            let noisy = raw as f64 + self.jitter_rng.gen_range(-aj..=aj);
            if q > 0.0 {
                (noisy / q).round() * q
            } else {
                noisy
            }
        };
        let controls = Controls::clamped(
            emit(self.cpu_ctx.read_f32(cpu::OUT_THROTTLE)),
            emit(self.cpu_ctx.read_f32(cpu::OUT_BRAKE)),
            emit(self.cpu_ctx.read_f32(cpu::OUT_STEER)),
        );
        self.last_controls = controls;
        self.steps += 1;
        Ok(controls)
    }
}
