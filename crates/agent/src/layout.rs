//! Memory layouts of the agent's fabric contexts.
//!
//! The GPU context holds the camera image, perception intermediates, and
//! constant lookup tables; the CPU context holds the waypoint buffer,
//! controller state, and outputs. Addresses are word offsets.

/// GPU-context memory layout, derived from the camera geometry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GpuLayout {
    /// Image width (px).
    pub w: usize,
    /// Image height (px).
    pub h: usize,
    /// Conv-grid width: `(w/2) - 1` (interior stride-2 samples).
    pub w2: usize,
    /// Conv-grid height: `(h/2) - 1`.
    pub h2: usize,
    /// Base of the red channel plane (`w*h` floats).
    pub img_r: usize,
    /// Base of the green channel plane.
    pub img_g: usize,
    /// Base of the blue channel plane.
    pub img_b: usize,
    /// Base of the in-lane weight mask (constant, `w*h`).
    pub lanew: usize,
    /// Base of the vehicle-mask plane (`w*h`).
    pub mask: usize,
    /// Base of the stride-2 3×3 conv output (`w2*h2`).
    pub conv: usize,
    /// Base of the per-conv-row maxima (`h2`).
    pub rowmax: usize,
    /// Base of the per-conv-row activation sums (`h2`) — the continuous
    /// evidence pathway of the planning head.
    pub rowsum: usize,
    /// Base of the per-column lane-marking scores (`w`).
    pub lane: usize,
    /// Base of the conv-row → ground-distance LUT (constant, `h2`).
    pub dist: usize,
    /// Base of the detection-history buffer (2 words, persistent agent
    /// state): the two previous raw distance estimates feeding the
    /// temporal median filter.
    pub hist: usize,
    /// Base of the runtime parameter block.
    pub params: usize,
    /// Base of the output block (see `OUT_*` constants).
    pub out: usize,
    /// Total words needed.
    pub total: usize,
}

/// Parameter-block slots (offsets from [`GpuLayout::params`]).
pub mod param {
    /// Blueness bias subtracted before ReLU (plus per-step jitter).
    pub const BIAS: usize = 0;
    /// Conv-activation threshold for vehicle presence.
    pub const THRESH: usize = 1;
    /// Car-following gain: `v_des = kd * (d - d_min)`.
    pub const KD: usize = 2;
    /// Minimum following distance (m).
    pub const D_MIN: usize = 3;
    /// Emergency distance: below this, `v_des = 0`.
    pub const D_EMERG: usize = 4;
    /// Steering gain on lane-centroid pixel error.
    pub const KS: usize = 5;
    /// Steering feed-forward gain on route curvature.
    pub const KC: usize = 6;
    /// Planner speed limit (m/s), updated every step.
    pub const LIMIT: usize = 7;
    /// Route curvature hint (1/m), updated every step.
    pub const CURV: usize = 8;
    /// Route-following gain on the localization lateral offset.
    pub const KL: usize = 9;
    /// Ego lateral offset from the route (m), updated every step.
    pub const LAT_OFF: usize = 10;
    /// Route-following gain on the heading error (damping term).
    pub const KH: usize = 11;
    /// Ego heading error relative to the route (rad), updated every step.
    pub const HEAD_ERR: usize = 12;
    /// Caution gain on the continuous vehicle-evidence sum.
    pub const KV: usize = 13;
    /// Reference value of the constant calibration pathway.
    pub const CAL_REF: usize = 14;
    /// Gain applied to calibration drift (bounded steering trim).
    pub const KCAL: usize = 15;
    /// Number of parameter slots.
    pub const COUNT: usize = 16;
}

/// Output-block slots (offsets from [`GpuLayout::out`]).
pub mod out {
    /// Four waypoints: (x, y) pairs, 8 floats.
    pub const WP: usize = 0;
    /// Estimated distance to the closest in-path vehicle (m).
    pub const DIST: usize = 8;
    /// Lane-centroid pixel error.
    pub const LAT_ERR: usize = 9;
    /// Planned speed (m/s).
    pub const V_DES: usize = 10;
    /// Feed-forward steering command.
    pub const STEER_FF: usize = 11;
    /// Number of output slots.
    pub const COUNT: usize = 12;
}

impl GpuLayout {
    /// Compute the layout for a `w × h` camera image.
    ///
    /// # Panics
    ///
    /// Panics if the image is smaller than 8×8 pixels.
    pub fn new(w: usize, h: usize) -> Self {
        assert!(w >= 8 && h >= 8, "image too small: {w}x{h}");
        let n = w * h;
        let w2 = w / 2 - 1;
        let h2 = h / 2 - 1;
        let img_r = 0;
        let img_g = img_r + n;
        let img_b = img_g + n;
        let lanew = img_b + n;
        let mask = lanew + n;
        let conv = mask + n;
        let rowmax = conv + w2 * h2;
        let rowsum = rowmax + h2;
        let lane = rowsum + h2;
        let dist = lane + w;
        let hist = dist + h2;
        let params = hist + 2;
        let out = params + param::COUNT;
        let total = out + out::COUNT;
        GpuLayout {
            w,
            h,
            w2,
            h2,
            img_r,
            img_g,
            img_b,
            lanew,
            mask,
            conv,
            rowmax,
            rowsum,
            lane,
            dist,
            hist,
            params,
            out,
            total,
        }
    }
}

/// CPU-context memory layout (fixed).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct CpuLayout;

/// CPU-context slots.
pub mod cpu {
    /// Waypoint buffer: 4 × (x, y), copied from the GPU output block.
    pub const WP: usize = 0;
    /// Speedometer reading (m/s).
    pub const SPEED: usize = 8;
    /// Control period (s).
    pub const DT: usize = 9;
    /// IMU yaw rate (rad/s).
    pub const YAW_RATE: usize = 10;
    /// PID integrator (persistent agent state).
    pub const INTEG: usize = 12;
    /// Smoothed planned speed (persistent agent state).
    pub const VDES_EMA: usize = 13;
    /// Smoothed steering command (persistent agent state).
    pub const STEER_EMA: usize = 14;
    /// Output: throttle.
    pub const OUT_THROTTLE: usize = 16;
    /// Output: brake.
    pub const OUT_BRAKE: usize = 17;
    /// Output: steer.
    pub const OUT_STEER: usize = 18;
    /// Guard region: a range-assertion load lands here (4 words).
    pub const GUARD: usize = 20;
    /// First parameter slot.
    pub const PARAMS: usize = 24;
    /// Parameters: kp, ki, kb, ema_alpha, yaw damping, integrator clamp,
    /// steering smoothing factor.
    pub const PARAM_COUNT: usize = 7;
    /// Total words of CPU context memory.
    pub const TOTAL: usize = PARAMS + PARAM_COUNT;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let l = GpuLayout::new(64, 48);
        let bounds = [
            (l.img_r, 64 * 48),
            (l.img_g, 64 * 48),
            (l.img_b, 64 * 48),
            (l.lanew, 64 * 48),
            (l.mask, 64 * 48),
            (l.conv, l.w2 * l.h2),
            (l.rowmax, l.h2),
            (l.rowsum, l.h2),
            (l.lane, l.w),
            (l.dist, l.h2),
            (l.hist, 2),
            (l.params, param::COUNT),
            (l.out, out::COUNT),
        ];
        for w in bounds.windows(2) {
            assert_eq!(w[0].0 + w[0].1, w[1].0, "regions must be contiguous");
        }
        assert_eq!(l.total, bounds.last().unwrap().0 + bounds.last().unwrap().1);
    }

    #[test]
    fn conv_grid_avoids_borders() {
        let l = GpuLayout::new(64, 48);
        assert_eq!(l.w2, 31);
        assert_eq!(l.h2, 23);
        // The farthest tap of the last conv sample stays inside the image:
        // x = 2*30+1 + 1 = 62 ≤ 63, y = 2*22+1 + 1 = 46 ≤ 47.
        assert!(2 * (l.w2 - 1) + 2 < l.w);
        assert!(2 * (l.h2 - 1) + 2 < l.h);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_image_panics() {
        let _ = GpuLayout::new(4, 4);
    }

    #[test]
    fn cpu_layout_slots_fit() {
        const { assert!(cpu::GUARD + 4 <= cpu::PARAMS) };
        assert_eq!(cpu::TOTAL, cpu::PARAMS + cpu::PARAM_COUNT);
    }
}
