//! Fabric programs of the agent: GPU perception kernels and the CPU
//! waypoint-tracker/PID program.
//!
//! Every numeric step of the agent executes on the fabric so that injected
//! hardware faults propagate through real data flow: image → vehicle mask →
//! 3×3 convolution → row reduction → planning head → waypoints → PID →
//! actuation.
//!
//! Register convention: GPU kernel register files are zeroed per thread, so
//! `r63` (never written) reads as integer 0 / float +0.0 and serves as the
//! zero register and the base register for absolute-address loads. The CPU
//! program runs on a persistent register file and therefore initializes
//! every register it reads.

use crate::layout::{cpu, out, param, GpuLayout};
use diverseav_fabric::{Program, ProgramBuilder, Reg};

const R0: Reg = Reg(0);
/// Zero register (GPU kernels only — never written, threads start zeroed).
const RZ: Reg = Reg(63);

fn r(i: u8) -> Reg {
    Reg(i)
}

/// Per-pixel vehicle-mask kernel (`w*h` threads):
/// `mask[p] = relu(B - 0.5(R+G) - bias) * lane_weight[p]`.
pub fn build_mask_kernel(l: &GpuLayout) -> Program {
    let mut b = ProgramBuilder::new();
    b.tid(R0);
    b.ld(r(1), R0, l.img_r as u32);
    b.ld(r(2), R0, l.img_g as u32);
    b.ld(r(3), R0, l.img_b as u32);
    b.fadd(r(4), r(1), r(2));
    b.ldimm_f(r(5), 0.5);
    b.fmul(r(4), r(4), r(5));
    b.fsub(r(4), r(3), r(4));
    b.ld(r(6), RZ, (l.params + param::BIAS) as u32);
    b.fsub(r(4), r(4), r(6));
    b.fmax(r(4), r(4), RZ);
    b.ld(r(8), R0, l.lanew as u32);
    b.fmul(r(4), r(4), r(8));
    b.st(R0, r(4), l.mask as u32);
    b.halt();
    b.build()
}

/// Stride-2 3×3 box-convolution kernel (`w2*h2` threads) over the vehicle
/// mask. Output grid samples full-resolution centers `(2x+1, 2y+1)`,
/// keeping every tap in bounds.
pub fn build_conv_kernel(l: &GpuLayout) -> Program {
    let w = l.w as u32;
    let mut b = ProgramBuilder::new();
    b.tid(R0);
    // Decompose tid into (x2, y2): y2 = floor((tid + 0.5) / w2).
    b.i2f(r(1), R0);
    b.ldimm_f(r(2), 0.5);
    b.fadd(r(1), r(1), r(2));
    b.ldimm_f(r(2), 1.0 / l.w2 as f32);
    b.fmul(r(1), r(1), r(2));
    b.f2i(r(3), r(1)); // y2
    b.ldimm_i(r(4), l.w2 as u32);
    b.imul(r(5), r(3), r(4));
    b.isub(r(6), R0, r(5)); // x2
    b.ldimm_i(r(7), 2);
    b.imul(r(8), r(3), r(7));
    b.imul(r(9), r(6), r(7));
    b.ldimm_i(r(10), 1);
    b.iadd(r(8), r(8), r(10)); // y = 2*y2 + 1
    b.iadd(r(9), r(9), r(10)); // x = 2*x2 + 1
    b.ldimm_i(r(11), w);
    b.imul(r(12), r(8), r(11));
    b.iadd(r(12), r(12), r(9)); // center index
    b.ldimm_i(r(13), w + 1);
    b.isub(r(14), r(12), r(13)); // base = center - w - 1
    let taps: [u32; 9] = [0, 1, 2, w, w + 1, w + 2, 2 * w, 2 * w + 1, 2 * w + 2];
    // Accumulate with fused multiply-adds: acc = tap·(1/9) + acc.
    b.ldimm_f(r(22), 1.0 / 9.0);
    // r20 (accumulator) starts zeroed.
    for &t in &taps {
        b.ld(r(21), r(14), l.mask as u32 + t);
        b.ffma(r(20), r(21), r(22), r(20));
    }
    b.st(R0, r(20), l.conv as u32);
    b.halt();
    b.build()
}

/// Per-conv-row reduction kernel (`h2` threads): the row maximum
/// (`rowmax[y2] = max_x conv[y2, x]`, the detection pathway) and the row
/// activation sum (`rowsum[y2] = Σ_x conv[y2, x]`, the continuous evidence
/// pathway of the planning head).
pub fn build_rowmax_kernel(l: &GpuLayout) -> Program {
    let mut b = ProgramBuilder::new();
    b.tid(R0);
    b.ldimm_i(r(1), l.w2 as u32);
    b.imul(r(2), R0, r(1)); // row start
                            // r4 = x (zeroed), r5 = running max, r10 = running sum (zeroed).
    let top = b.new_label();
    b.bind(top);
    b.iadd(r(6), r(2), r(4));
    b.ld(r(7), r(6), l.conv as u32);
    b.fmax(r(5), r(5), r(7));
    b.fadd(r(10), r(10), r(7));
    b.ldimm_i(r(8), 1);
    b.iadd(r(4), r(4), r(8));
    b.ilt(r(9), r(4), r(1));
    b.jnz(r(9), top);
    b.st(R0, r(5), l.rowmax as u32);
    b.st(R0, r(10), l.rowsum as u32);
    b.halt();
    b.build()
}

/// Per-column lane-marking score kernel (`w` threads): whiteness
/// `relu(min(R,G,B) - 0.55)` summed over the bottom third of the image.
pub fn build_lane_kernel(l: &GpuLayout) -> Program {
    let y0 = (l.h * 2 / 3) as u32;
    let mut b = ProgramBuilder::new();
    b.tid(R0);
    b.ldimm_i(r(1), y0);
    b.ldimm_i(r(2), l.w as u32);
    b.ldimm_i(r(3), l.h as u32);
    // r4 = whiteness sum (zeroed).
    let top = b.new_label();
    b.bind(top);
    b.imul(r(5), r(1), r(2));
    b.iadd(r(5), r(5), R0);
    b.ld(r(6), r(5), l.img_r as u32);
    b.ld(r(7), r(5), l.img_g as u32);
    b.fmin(r(6), r(6), r(7));
    b.ld(r(7), r(5), l.img_b as u32);
    b.fmin(r(6), r(6), r(7));
    b.ldimm_f(r(8), 0.55);
    b.fsub(r(6), r(6), r(8));
    b.fmax(r(6), r(6), RZ);
    b.fadd(r(4), r(4), r(6));
    b.ldimm_i(r(9), 1);
    b.iadd(r(1), r(1), r(9));
    b.ilt(r(10), r(1), r(3));
    b.jnz(r(10), top);
    b.st(R0, r(4), l.lane as u32);
    b.halt();
    b.build()
}

/// Planning-head kernel (1 thread): bottom-up scan of the row maxima →
/// distance LUT lookup, lane-centroid extraction, desired-speed law, and
/// the 4-waypoint output (waypoint spacing encodes planned speed, lateral
/// offsets encode the steering intent — Learning-by-Cheating style).
pub fn build_decide_kernel(l: &GpuLayout) -> Program {
    let mut b = ProgramBuilder::new();
    // --- closest-vehicle scan, bottom row upward ---
    b.ldimm_i(r(1), l.h2 as u32 - 1); // i = h2-1
    b.ldimm_f(r(2), 1.0e6); // found distance
    b.ld(r(3), RZ, (l.params + param::THRESH) as u32);
    let scan = b.new_label();
    let next = b.new_label();
    let done_scan = b.new_label();
    b.bind(scan);
    b.ld(r(4), r(1), l.rowmax as u32);
    b.flt(r(5), r(3), r(4)); // thresh < rowmax[i]?
    b.jz(r(5), next);
    b.ld(r(2), r(1), l.dist as u32); // distance LUT lookup
    b.jmp(done_scan);
    b.bind(next);
    b.ldimm_i(r(6), 1);
    b.isub(r(1), r(1), r(6));
    b.ldimm_i(r(8), l.h2 as u32);
    b.ilt(r(7), r(1), r(8)); // unsigned: fails after wrap below zero
    b.jnz(r(7), scan);
    b.bind(done_scan);

    // --- temporal median-of-3 on the raw distance (phantom rejection):
    // a single-frame spurious detection (or dropout) cannot pass a
    // 3-frame median, mirroring the temporal-consistency filtering of
    // production perception stacks. History lives in agent memory.
    b.ld(r(60), RZ, l.hist as u32); // previous raw
    b.ld(r(61), RZ, (l.hist + 1) as u32); // before that
    b.st(RZ, r(60), (l.hist + 1) as u32);
    b.st(RZ, r(2), l.hist as u32);
    // median(a=r2, b=r60, c=r61) = max(min(a,b), min(max(a,b), c))
    b.fmin(r(62), r(2), r(60));
    b.fmax(r(19), r(2), r(60));
    b.fmin(r(19), r(19), r(61));
    b.fmax(r(2), r(62), r(19));

    // --- lane centroid: r10 = x, r11 = Σw, r12 = Σ(w·x) (zeroed) ---
    let lloop = b.new_label();
    b.bind(lloop);
    b.ld(r(13), r(10), l.lane as u32);
    b.fadd(r(11), r(11), r(13));
    b.i2f(r(14), r(10));
    b.fmul(r(14), r(14), r(13));
    b.fadd(r(12), r(12), r(14));
    b.ldimm_i(r(15), 1);
    b.iadd(r(10), r(10), r(15));
    b.ldimm_i(r(16), l.w as u32);
    b.ilt(r(17), r(10), r(16));
    b.jnz(r(17), lloop);
    b.ldimm_f(r(18), 1e-6);
    b.fmax(r(19), r(11), r(18));
    b.fdiv(r(20), r(12), r(19));
    b.ldimm_f(r(21), l.w as f32 / 2.0 - 0.5);
    b.fsub(r(20), r(20), r(21)); // centroid pixel error
    b.ldimm_f(r(22), 0.3);
    b.flt(r(23), r(11), r(22)); // too little marking evidence?
    b.sel(r(20), r(23), RZ, r(20));

    // --- desired speed: v = clamp(kd·(d - d_min), 0, limit); 0 if d < d_emerg ---
    b.ld(r(24), RZ, (l.params + param::KD) as u32);
    b.ld(r(25), RZ, (l.params + param::D_MIN) as u32);
    b.fsub(r(26), r(2), r(25));
    b.fmul(r(26), r(26), r(24));
    b.fmax(r(26), r(26), RZ);
    b.ld(r(27), RZ, (l.params + param::LIMIT) as u32);
    b.fmin(r(26), r(26), r(27));
    b.ld(r(28), RZ, (l.params + param::D_EMERG) as u32);
    b.flt(r(29), r(2), r(28));
    b.sel(r(26), r(29), RZ, r(26));
    // Continuous caution pathway: v_des -= kv·Σ conv activation (a soft
    // regression term — every conv cell contributes to the plan, so
    // perturbations propagate continuously to actuation as they do
    // through a real CNN head).
    // r53 = i (int), r54 = Σ rowsum (both fresh registers, kernel-zeroed).
    let sloop = b.new_label();
    b.bind(sloop);
    b.ld(r(55), r(53), l.rowsum as u32);
    b.fadd(r(54), r(54), r(55));
    b.ldimm_i(r(56), 1);
    b.iadd(r(53), r(53), r(56));
    b.ldimm_i(r(57), l.h2 as u32);
    b.ilt(r(58), r(53), r(57));
    b.jnz(r(58), sloop);
    b.ld(r(59), RZ, (l.params + param::KV) as u32);
    b.fmul(r(54), r(54), r(59));
    b.fsub(r(26), r(26), r(54));
    b.fmax(r(26), r(26), RZ);

    // --- steering: -ks·centroid_err + kc·curvature, clamped to ±1 ---
    b.ld(r(30), RZ, (l.params + param::KS) as u32);
    b.fmul(r(31), r(30), r(20));
    b.fneg(r(31), r(31));
    b.ld(r(32), RZ, (l.params + param::KC) as u32);
    b.ld(r(33), RZ, (l.params + param::CURV) as u32);
    b.fmul(r(34), r(32), r(33));
    b.fadd(r(31), r(31), r(34));
    // Route-following correction: steer back toward the route centerline,
    // damped by the heading error (Stanley-style lateral control).
    b.ld(r(47), RZ, (l.params + param::KL) as u32);
    b.ld(r(48), RZ, (l.params + param::LAT_OFF) as u32);
    b.fmul(r(49), r(47), r(48));
    b.fsub(r(31), r(31), r(49));
    b.ld(r(50), RZ, (l.params + param::KH) as u32);
    b.ld(r(51), RZ, (l.params + param::HEAD_ERR) as u32);
    b.fmul(r(52), r(50), r(51));
    b.fsub(r(31), r(31), r(52));
    b.ldimm_f(r(35), 1.0);
    b.fmin(r(31), r(31), r(35));
    b.fneg(r(36), r(35));
    b.fmax(r(31), r(31), r(36));

    // --- constant calibration pathway (CNN bias/batch-norm analogue):
    // recompute a checksum over the constant distance LUT every inference
    // and apply the drift as a small, bounded steering trim. Fault-free,
    // the drift is exactly zero for every agent (no natural divergence);
    // a permanent fault corrupts it identically in both DiverseAV agents
    // (common-mode — invisible to DiverseAV, §VI-A) but diverges from a
    // clean duplicate processor, which is what makes FD-ADS "overly
    // sensitive" to non-hazardous mismatches (§VI-B).
    b.ldimm_i(r(53), 0);
    b.ldimm_f(r(54), 0.0); // checksum C
    let cal = b.new_label();
    b.bind(cal);
    b.ld(r(55), r(53), l.dist as u32);
    b.ldimm_f(r(56), 0.001);
    b.fmul(r(55), r(55), r(56));
    b.fadd(r(54), r(54), r(55));
    b.ldimm_i(r(56), 1);
    b.iadd(r(53), r(53), r(56));
    b.ldimm_i(r(57), l.h2 as u32);
    b.ilt(r(58), r(53), r(57));
    b.jnz(r(58), cal);
    b.ld(r(55), RZ, (l.params + param::CAL_REF) as u32);
    b.fsub(r(54), r(54), r(55));
    b.ld(r(56), RZ, (l.params + param::KCAL) as u32);
    b.fmul(r(54), r(54), r(56));
    b.ldimm_f(r(57), 0.08); // bounded trim: never safety-critical
    b.fmin(r(54), r(54), r(57));
    b.fneg(r(58), r(57));
    b.fmax(r(54), r(54), r(58));
    b.fadd(r(31), r(31), r(54));
    b.ldimm_f(r(57), 1.0);
    b.fmin(r(31), r(31), r(57));
    b.fneg(r(58), r(57));
    b.fmax(r(31), r(31), r(58));

    // --- waypoints: wp_k = (v·0.5·k, steer·0.3·k), k = 1..4 ---
    b.ldimm_f(r(37), 0.5);
    b.fmul(r(38), r(26), r(37));
    b.ldimm_f(r(39), 0.3);
    b.fmul(r(40), r(31), r(39));
    b.st(RZ, r(38), (l.out + out::WP) as u32);
    b.st(RZ, r(40), (l.out + out::WP + 1) as u32);
    b.fadd(r(41), r(38), r(38));
    b.fadd(r(42), r(40), r(40));
    b.st(RZ, r(41), (l.out + out::WP + 2) as u32);
    b.st(RZ, r(42), (l.out + out::WP + 3) as u32);
    b.fadd(r(43), r(41), r(38));
    b.fadd(r(44), r(42), r(40));
    b.st(RZ, r(43), (l.out + out::WP + 4) as u32);
    b.st(RZ, r(44), (l.out + out::WP + 5) as u32);
    b.fadd(r(45), r(43), r(38));
    b.fadd(r(46), r(44), r(40));
    b.st(RZ, r(45), (l.out + out::WP + 6) as u32);
    b.st(RZ, r(46), (l.out + out::WP + 7) as u32);
    // Debug/telemetry slots.
    b.st(RZ, r(2), (l.out + out::DIST) as u32);
    b.st(RZ, r(20), (l.out + out::LAT_ERR) as u32);
    b.st(RZ, r(26), (l.out + out::V_DES) as u32);
    b.st(RZ, r(31), (l.out + out::STEER_FF) as u32);
    b.halt();
    b.build()
}

/// CPU-profile waypoint tracker + PID controller.
///
/// Deliberate structure (see DESIGN.md §1): the waypoint-aggregation loop
/// derives its load addresses from *float* arithmetic (`F2I` of `i·2.0`),
/// a loop-count assertion and a range-assertion ("guard") load trap on
/// corrupted control flow or absurd outputs, and a per-step **software
/// self-test** (an ISO 26262-style logic BIST) checksums the constant
/// parameter block through every integer opcode and recomputes a known
/// float expression through every float opcode, trapping on mismatch.
/// Permanent faults on CPU arithmetic therefore crash (platform-detected)
/// rather than silently steering the vehicle — matching the paper's
/// observed CPU fault outcomes (§V-C: hang/crash or masked, no
/// safety-critical SDCs).
///
/// `kp`, `ki`, `kb`, and `integ_clamp` are the parameter-block constants
/// the self-test expectations are derived from (they must match what the
/// host writes into the context).
pub fn build_control_program(kp: f32, ki: f32, kb: f32, integ_clamp: f32) -> Program {
    // Host-side replicas of the self-test computations (identical op
    // order and IEEE semantics — the fabric executes the same f32 ops).
    let float_expect = {
        let v = kp * ki + kb;
        let v = v - integ_clamp;
        let v = -v;
        let v = v.abs();
        let h = v / 2.0f32;
        let m = v.min(h);
        m.max(h)
    };
    let (b0, b1, b2, b3) = (kp.to_bits(), ki.to_bits(), kb.to_bits(), integ_clamp.to_bits());
    let int_expect = {
        let mut c: u32 = b0;
        c <<= 3;
        c = c.wrapping_add(b1);
        c ^= b2;
        c = c.wrapping_mul(0x9E37_79B1);
        c >>= 5;
        c |= 0x0001_0000;
        c &= 0x7FFF_FFFF;
        c.wrapping_add(b3)
    };

    let mut b = ProgramBuilder::new();
    // Persistent register file: initialize everything we read.
    b.ldimm_f(r(0), 0.0); // i_f
    b.ldimm_f(r(1), 0.0); // Σ wp.x
    b.ldimm_f(r(2), 0.0); // Σ wp.y
    b.ldimm_i(r(3), 0); // i
    b.ldimm_i(r(62), 0); // zero base for absolute loads
    let wloop = b.new_label();
    b.bind(wloop);
    b.ldimm_f(r(4), 2.0);
    b.fmul(r(5), r(0), r(4));
    b.f2i(r(6), r(5)); // idx = 2i via the float path
    b.ld(r(7), r(6), cpu::WP as u32);
    b.ld(r(8), r(6), cpu::WP as u32 + 1);
    b.fadd(r(1), r(1), r(7));
    b.fadd(r(2), r(2), r(8));
    b.ldimm_f(r(9), 1.0);
    b.fadd(r(0), r(0), r(9));
    b.ldimm_i(r(10), 1);
    b.iadd(r(3), r(3), r(10));
    b.ldimm_i(r(11), 4);
    b.ilt(r(12), r(3), r(11));
    b.jnz(r(12), wloop);
    // Loop-count assertion: control code validates its iteration count; a
    // corrupted counter that exits early (or lands past 4) traps via an
    // out-of-bounds load instead of silently emitting a degraded plan.
    let count_ok = b.new_label();
    b.ieq(r(60), r(3), r(11));
    b.jnz(r(60), count_ok);
    b.ldimm_i(r(60), 0x000F_FFFF);
    b.ld(r(61), r(60), 0);
    b.bind(count_ok);

    // v_des_raw = Σx · 0.2 (waypoint spacing ↔ planned speed).
    b.ldimm_f(r(13), 0.2);
    b.fmul(r(14), r(1), r(13));
    // Exponential smoothing with persistent state.
    b.ld(r(15), r(62), cpu::VDES_EMA as u32);
    b.ld(r(16), r(62), (cpu::PARAMS + 3) as u32); // alpha
    b.ldimm_f(r(17), 1.0);
    b.fsub(r(18), r(17), r(16));
    b.fmul(r(15), r(15), r(18));
    b.fmul(r(19), r(14), r(16));
    b.fadd(r(15), r(15), r(19));
    b.st(r(62), r(15), cpu::VDES_EMA as u32);

    // steer = Σy/3 − kdy·yaw_rate, clamped to ±1.
    b.ldimm_f(r(20), 1.0 / 3.0);
    b.fmul(r(21), r(2), r(20));
    b.ld(r(22), r(62), (cpu::PARAMS + 4) as u32); // kdy
    b.ld(r(23), r(62), cpu::YAW_RATE as u32);
    b.fmul(r(24), r(22), r(23));
    b.fsub(r(21), r(21), r(24));
    b.ldimm_f(r(25), 1.0);
    b.fmin(r(21), r(21), r(25));
    b.fneg(r(26), r(25));
    b.fmax(r(21), r(21), r(26));
    // Steering low-pass (persistent state) to suppress limit cycles.
    b.ld(r(57), r(62), cpu::STEER_EMA as u32);
    b.ld(r(58), r(62), (cpu::PARAMS + 6) as u32); // beta
    b.fsub(r(59), r(25), r(58)); // 1 - beta
    b.fmul(r(57), r(57), r(59));
    b.fmul(r(60), r(21), r(58));
    b.fadd(r(21), r(57), r(60));
    b.st(r(62), r(21), cpu::STEER_EMA as u32);

    // PID speed control.
    b.ld(r(27), r(62), cpu::SPEED as u32);
    b.fsub(r(28), r(15), r(27)); // e
    b.ld(r(29), r(62), cpu::INTEG as u32);
    b.ld(r(30), r(62), cpu::DT as u32);
    b.fmul(r(31), r(28), r(30));
    b.fadd(r(29), r(29), r(31));
    b.ld(r(32), r(62), (cpu::PARAMS + 5) as u32); // integrator clamp
    b.fmin(r(29), r(29), r(32));
    b.fneg(r(33), r(32));
    b.fmax(r(29), r(29), r(33));
    b.st(r(62), r(29), cpu::INTEG as u32);
    b.ld(r(34), r(62), cpu::PARAMS as u32); // kp
    b.fmul(r(35), r(34), r(28));
    b.ld(r(36), r(62), (cpu::PARAMS + 1) as u32); // ki
    b.fmul(r(37), r(36), r(29));
    b.fadd(r(38), r(35), r(37)); // u

    // throttle = clamp(u, 0, 1)
    b.ldimm_f(r(39), 0.0);
    b.fmax(r(40), r(38), r(39));
    b.fmin(r(40), r(40), r(25));
    // brake = clamp(-(u + 0.05)·kb, 0, 1)
    b.ldimm_f(r(41), 0.05);
    b.fadd(r(42), r(38), r(41));
    b.fneg(r(42), r(42));
    b.ld(r(43), r(62), (cpu::PARAMS + 2) as u32); // kb
    b.fmul(r(42), r(42), r(43));
    b.fmax(r(42), r(42), r(39));
    b.fmin(r(42), r(42), r(25));
    // Emergency braking: a continuous ramp (not a hard step, which would
    // make inter-agent divergence binary): extra = clamp((1.5 − v_des)·0.6,
    // 0, 0.9) · clamp((v − 2.0)·0.5, 0, 1); brake = max(brake, extra).
    b.ldimm_f(r(44), 1.5);
    b.fsub(r(45), r(44), r(15));
    b.ldimm_f(r(46), 0.6);
    b.fmul(r(45), r(45), r(46));
    b.fmax(r(45), r(45), r(39));
    b.ldimm_f(r(47), 0.9);
    b.fmin(r(45), r(45), r(47));
    b.ldimm_f(r(48), 2.0);
    b.fsub(r(49), r(27), r(48));
    b.ldimm_f(r(51), 0.5);
    b.fmul(r(49), r(49), r(51));
    b.fmax(r(49), r(49), r(39));
    b.fmin(r(49), r(49), r(25));
    b.fmul(r(45), r(45), r(49));
    b.fmax(r(42), r(42), r(45));

    b.st(r(62), r(40), cpu::OUT_THROTTLE as u32);
    b.st(r(62), r(42), cpu::OUT_BRAKE as u32);
    b.st(r(62), r(21), cpu::OUT_STEER as u32);

    // --- software self-test (logic BIST) over the constant parameters ---
    // Integer path: checksum the four constant parameter words through
    // the full integer ALU; any persistent corruption of those opcodes
    // (or of loads/immediates) breaks the checksum and traps.
    b.ld(r(50), r(62), cpu::PARAMS as u32); // kp bits
    b.ldimm_i(r(51), 3);
    b.ishl(r(50), r(50), r(51));
    b.ld(r(51), r(62), (cpu::PARAMS + 1) as u32); // ki bits
    b.iadd(r(50), r(50), r(51));
    b.ld(r(51), r(62), (cpu::PARAMS + 2) as u32); // kb bits
    b.ixor(r(50), r(50), r(51));
    b.ldimm_i(r(51), 0x9E37_79B1);
    b.imul(r(50), r(50), r(51));
    b.ldimm_i(r(51), 5);
    b.ishr(r(50), r(50), r(51));
    b.ldimm_i(r(51), 0x0001_0000);
    b.ior(r(50), r(50), r(51));
    b.ldimm_i(r(51), 0x7FFF_FFFF);
    b.iand(r(50), r(50), r(51));
    b.ld(r(51), r(62), (cpu::PARAMS + 5) as u32); // integ_clamp bits
    b.iadd(r(50), r(50), r(51));
    b.ldimm_i(r(51), int_expect);
    b.ieq(r(52), r(50), r(51));
    let int_bist_ok = b.new_label();
    b.jnz(r(52), int_bist_ok);
    b.ldimm_i(r(52), 0x000F_FFFF);
    b.ld(r(53), r(52), 0); // trap: self-test failed
    b.bind(int_bist_ok);
    // Float path: recompute a known expression through every float
    // opcode the controller uses and compare result bits exactly.
    b.ld(r(50), r(62), cpu::PARAMS as u32); // kp
    b.ld(r(51), r(62), (cpu::PARAMS + 1) as u32); // ki
    b.fmul(r(52), r(50), r(51));
    b.ld(r(51), r(62), (cpu::PARAMS + 2) as u32); // kb
    b.fadd(r(52), r(52), r(51));
    b.ld(r(51), r(62), (cpu::PARAMS + 5) as u32); // integ_clamp
    b.fsub(r(52), r(52), r(51));
    b.fneg(r(52), r(52));
    b.fabs(r(52), r(52));
    b.ldimm_f(r(51), 2.0);
    b.fdiv(r(53), r(52), r(51));
    b.fmin(r(54), r(52), r(53));
    b.fmax(r(52), r(54), r(53));
    b.mov(r(55), r(52));
    b.ldimm_i(r(51), float_expect.to_bits());
    b.ieq(r(56), r(55), r(51));
    let float_bist_ok = b.new_label();
    b.jnz(r(56), float_bist_ok);
    b.ldimm_i(r(56), 0x000F_FFFF);
    b.ld(r(53), r(56), 0); // trap: self-test failed
    b.bind(float_bist_ok);

    // Range-assertion guard: index a 4-word region by a bounded function of
    // the outputs; absurd corrupted values index out of bounds and trap.
    b.fabs(r(50), r(21));
    b.fadd(r(51), r(40), r(42));
    b.fadd(r(51), r(51), r(50));
    b.ldimm_f(r(52), 0.05);
    b.fmul(r(53), r(15), r(52));
    b.fadd(r(51), r(51), r(53));
    b.ldimm_f(r(54), 0.8);
    b.fmul(r(51), r(51), r(54));
    b.f2i(r(55), r(51));
    b.ld(r(56), r(55), cpu::GUARD as u32);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_build_with_default_layout() {
        let l = GpuLayout::new(64, 48);
        assert!(build_mask_kernel(&l).len() > 10);
        assert!(build_conv_kernel(&l).len() > 30);
        assert!(build_rowmax_kernel(&l).len() > 8);
        assert!(build_lane_kernel(&l).len() > 15);
        assert!(build_decide_kernel(&l).len() > 60);
        assert!(build_control_program(0.3, 0.12, 1.5, 4.0).len() > 120);
    }

    #[test]
    fn kernels_build_for_alternate_resolutions() {
        for (w, h) in [(48, 36), (96, 64), (32, 24)] {
            let l = GpuLayout::new(w, h);
            let _ = build_mask_kernel(&l);
            let _ = build_conv_kernel(&l);
            let _ = build_rowmax_kernel(&l);
            let _ = build_lane_kernel(&l);
            let _ = build_decide_kernel(&l);
        }
    }
}
