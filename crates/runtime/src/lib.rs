//! # diverseav-runtime — the canonical closed-loop runtime
//!
//! The paper's entire evaluation is built on one closed feedback loop:
//! sensor frame → redundant agents → fused actuation → world kinematics
//! → next frame (Fig 2). This crate owns that loop; every layer above
//! the simulator drives a [`SimLoop`] instead of re-implementing
//! `sense → tick → step` by hand.
//!
//! Three coordinated pieces:
//!
//! - **[`SimLoop`]** — the single loop body, generic over a
//!   [`LoopDriver`] (the full [`Ads`](diverseav::Ads) stack, a bare
//!   [`AgentDriver`], or a perfect-knowledge [`PolicyDriver`]), with
//!   [`LoopObserver`] hooks (`on_tick` / `on_alarm` / `on_termination`)
//!   for training collection, perf accounting, telemetry, and tracing.
//! - **Zero-allocation steady state** — the loop owns a reusable
//!   [`SensorFrame`](diverseav_simworld::SensorFrame) and captures via
//!   [`World::sense_into`](diverseav_simworld::World::sense_into), so a
//!   steady-state tick performs no heap allocation (the campaign hot
//!   path the parallel engine fans out).
//! - **[`inject`]** — sensor-boundary fault injection: a seed-pure
//!   [`FrameInjector`] installed on the loop corrupts the pooled frame
//!   in place between `sense_into` and the driver (the broadened,
//!   component-agnostic fault model of ROADMAP item 5).
//! - **[`registry`]** — the named scenario catalog carrying interned
//!   `&'static str` scenario IDs end to end; a new workload is one
//!   [`registry::register`] call.
//! - **[`profiling`]** — per-phase tick latency histograms and 40 Hz
//!   (25 ms) deadline accounting via [`ProfilingObserver`], deterministic
//!   by default (modeled time source) and wall-clock on request
//!   (`DIVERSEAV_PROFILE=wall`).
//! - **[`flight`]** — the per-run flight recorder: an always-on,
//!   allocation-free [`FlightRecorder`] observer packing detector and
//!   deadline telemetry into a fixed ring, drained into incident
//!   artifacts when a run ends in an [`IncidentKind`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod inject;
pub mod observers;
pub mod profiling;
pub mod registry;
pub mod simloop;

pub use flight::{FlightRecorder, IncidentKind, DEADLINE_BURST_TICKS, SILENT_SCORE_FLOOR};
pub use inject::{FrameInjector, SensorFault, SensorFaultKind};
pub use observers::{PerfObserver, TrainingCollector};
pub use profiling::{DeadlineStats, ProfilingObserver, DEADLINE_NS};
pub use registry::ScenarioEntry;
pub use simloop::{
    AgentDriver, LoopDriver, LoopObserver, LoopPhase, PolicyDriver, SimLoop, Termination,
    TickContext,
};
