//! The canonical closed-loop driver.
//!
//! The paper's mechanism is a single feedback loop — sensor frame →
//! redundant agents → fused actuation → world kinematics → next frame
//! (Fig 2) — and this module is the **only** place in the workspace that
//! implements it. Every consumer (experiment runner, campaign fan-out,
//! bench reports, examples, agent tests) drives a [`SimLoop`] and hangs
//! its bookkeeping off [`LoopObserver`] hooks instead of copy-pasting
//! the loop body.
//!
//! The loop owns a reusable [`SensorFrame`] buffer and captures frames
//! with [`World::sense_into`], so the steady-state tick performs no heap
//! allocation (verified by the `zero_alloc` integration test).

use diverseav::{Ads, TickOutput, TickWork, VehState};
use diverseav_agent::{AgentError, SensorimotorAgent};
use diverseav_fabric::{Fabric, Profile, Trap};
use diverseav_simworld::{Controls, RouteHint, SensorFrame, World, WorldStatus, TICK_HZ};
use std::time::Instant;

/// The phases of one loop iteration, in execution order. Phase labels
/// name the tick-latency histograms (`tick.<label>`) in
/// `METRICS_campaigns.json`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LoopPhase {
    /// Sensor capture: camera render + lidar sweep into the frame buffer.
    Sense,
    /// The driver's control computation, excluding the detector check.
    Driver,
    /// The error detector's divergence check (zero-length for drivers
    /// without a detector).
    Detect,
    /// World kinematics under the tick's controls.
    Step,
}

impl LoopPhase {
    /// Stable lowercase label (histogram key suffix).
    pub fn label(&self) -> &'static str {
        match self {
            LoopPhase::Sense => "sense",
            LoopPhase::Driver => "driver",
            LoopPhase::Detect => "detect",
            LoopPhase::Step => "step",
        }
    }
}

/// How a closed-loop run ended.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Termination {
    /// Scenario duration elapsed.
    Completed,
    /// The ego vehicle collided.
    Collision,
    /// A fabric trapped (crash) or exhausted its watchdog (hang) — the
    /// platform-detected failure path.
    Trap(AgentError),
}

impl Termination {
    /// Whether the platform detected this run as a hang or crash.
    pub fn is_hang_or_crash(&self) -> bool {
        matches!(self, Termination::Trap(_))
    }

    /// Whether the trap specifically was a watchdog hang.
    pub fn is_hang(&self) -> bool {
        matches!(self, Termination::Trap(AgentError { trap: Trap::Watchdog, .. }))
    }

    /// Stable journal label: `completed`, `collision`, `hang`, or `crash`.
    pub fn label(&self) -> &'static str {
        match self {
            Termination::Completed => "completed",
            Termination::Collision => "collision",
            _ if self.is_hang() => "hang",
            _ => "crash",
        }
    }
}

/// The control-side half of one tick: consume a sensor frame (plus route
/// hint and vehicle state) and produce actuation.
///
/// `world` grants read access to ground truth for perfect-knowledge
/// policies ([`PolicyDriver`]); sensor-driven systems ([`Ads`],
/// [`AgentDriver`]) must ignore it.
pub trait LoopDriver {
    /// Process one sensor frame into a [`TickOutput`].
    ///
    /// # Errors
    ///
    /// Returns an [`AgentError`] when a fabric traps — the platform-level
    /// hang/crash failure path, which terminates the run.
    fn tick(
        &mut self,
        frame: &SensorFrame,
        hint: RouteHint,
        state: VehState,
        t: f64,
        world: &World,
    ) -> Result<TickOutput, AgentError>;

    /// Work accounting for the most recent tick (fabric instructions,
    /// detector activity), feeding the modeled profiling time source.
    /// Defaults to zero work for drivers that don't meter themselves.
    fn last_tick_work(&self) -> TickWork {
        TickWork::default()
    }
}

impl<D: LoopDriver + ?Sized> LoopDriver for &mut D {
    fn tick(
        &mut self,
        frame: &SensorFrame,
        hint: RouteHint,
        state: VehState,
        t: f64,
        world: &World,
    ) -> Result<TickOutput, AgentError> {
        (**self).tick(frame, hint, state, t, world)
    }

    fn last_tick_work(&self) -> TickWork {
        (**self).last_tick_work()
    }
}

impl LoopDriver for Ads {
    fn tick(
        &mut self,
        frame: &SensorFrame,
        hint: RouteHint,
        state: VehState,
        t: f64,
        _world: &World,
    ) -> Result<TickOutput, AgentError> {
        Ads::tick(self, frame, hint, state, t)
    }

    fn last_tick_work(&self) -> TickWork {
        Ads::last_tick_work(self)
    }
}

/// A perfect-knowledge policy driver: actuation from ground-truth world
/// state (violation baselines, ground-truth comparison studies).
pub struct PolicyDriver<F: FnMut(&World) -> Controls>(pub F);

impl<F: FnMut(&World) -> Controls> LoopDriver for PolicyDriver<F> {
    fn tick(
        &mut self,
        _frame: &SensorFrame,
        _hint: RouteHint,
        _state: VehState,
        _t: f64,
        world: &World,
    ) -> Result<TickOutput, AgentError> {
        Ok(TickOutput {
            controls: (self.0)(world),
            pair: None,
            divergence: None,
            alarm_raised: false,
            detector: None,
            fault_active: false,
        })
    }
}

/// A single bare [`SensorimotorAgent`] on its own GPU/CPU fabric pair —
/// the substrate-level driver used by agent closed-loop tests.
pub struct AgentDriver {
    /// The agent under test.
    pub agent: SensorimotorAgent,
    /// Its GPU fabric.
    pub gpu: Fabric,
    /// Its CPU fabric.
    pub cpu: Fabric,
    /// Control period handed to the agent (s).
    pub dt: f64,
    prev_instr: (u64, u64),
    last_work: TickWork,
}

impl AgentDriver {
    /// Wrap `agent` with fresh fault-free fabrics at the full tick rate.
    pub fn new(agent: SensorimotorAgent) -> Self {
        AgentDriver {
            agent,
            gpu: Fabric::new(Profile::Gpu),
            cpu: Fabric::new(Profile::Cpu),
            dt: 1.0 / TICK_HZ,
            prev_instr: (0, 0),
            last_work: TickWork::default(),
        }
    }
}

impl LoopDriver for AgentDriver {
    fn tick(
        &mut self,
        frame: &SensorFrame,
        hint: RouteHint,
        _state: VehState,
        _t: f64,
        _world: &World,
    ) -> Result<TickOutput, AgentError> {
        let controls = self.agent.step(frame, hint, self.dt, &mut self.gpu, &mut self.cpu)?;
        let totals = (self.gpu.dyn_instr_count(), self.cpu.dyn_instr_count());
        self.last_work = TickWork {
            gpu_instr: totals.0 - self.prev_instr.0,
            cpu_instr: totals.1 - self.prev_instr.1,
            detector_observed: false,
            detect_ns: 0,
        };
        self.prev_instr = totals;
        Ok(TickOutput {
            controls,
            pair: None,
            divergence: None,
            alarm_raised: false,
            detector: None,
            fault_active: false,
        })
    }

    fn last_tick_work(&self) -> TickWork {
        self.last_work
    }
}

/// Everything an observer can see about one completed tick, before the
/// world advances under the tick's controls.
pub struct TickContext<'a> {
    /// Simulation time at the start of the tick (s).
    pub t: f64,
    /// Vehicle state fed to the driver.
    pub state: VehState,
    /// The sensor frame the driver consumed.
    pub frame: &'a SensorFrame,
    /// The route hint fed to the driver.
    pub hint: RouteHint,
    /// The driver's output for this frame.
    pub out: &'a TickOutput,
    /// The driver's work accounting for this frame (zero for unmetered
    /// drivers).
    pub work: TickWork,
    /// Whether *any* injected fault — fabric-level
    /// ([`TickOutput::fault_active`]) or sensor-boundary (the loop's
    /// [`FrameInjector`](crate::FrameInjector)) — had corrupted state by
    /// this tick.
    pub fault_active: bool,
    /// The world *before* stepping (ground truth for CVIP etc.).
    pub world: &'a World,
}

/// Hook trait for per-run bookkeeping: training collection, perf
/// accounting, telemetry printing, trace journaling. All methods default
/// to no-ops so observers implement only what they need.
pub trait LoopObserver {
    /// Called after the driver produced `out`, before the world steps.
    fn on_tick(&mut self, _ctx: &TickContext<'_>) {}

    /// Called on every tick whose [`TickOutput::alarm_raised`] is set.
    fn on_alarm(&mut self, _t: f64) {}

    /// Called once when the loop ends, with the final world state.
    fn on_termination(&mut self, _world: &World, _termination: &Termination) {}

    /// Whether this observer needs wall-clock [`LoopPhase`] timings. The
    /// loop only reads the host clock when at least one observer asks
    /// (four `Instant` reads per tick otherwise avoided).
    fn wants_phase_timing(&self) -> bool {
        false
    }

    /// Called once per [`LoopPhase`] per tick with its wall-clock
    /// duration — only when [`LoopObserver::wants_phase_timing`] returned
    /// true for *some* observer in the run.
    fn on_phase(&mut self, _phase: LoopPhase, _dur_ns: u64) {}
}

/// The canonical `sense → tick → step` loop: one [`World`], one
/// [`LoopDriver`], one reusable frame buffer.
pub struct SimLoop<D: LoopDriver> {
    world: World,
    driver: D,
    frame: SensorFrame,
    injector: Option<crate::FrameInjector>,
}

impl<D: LoopDriver> SimLoop<D> {
    /// Couple `driver` to `world`.
    pub fn new(world: World, driver: D) -> Self {
        SimLoop { world, driver, frame: SensorFrame::empty(), injector: None }
    }

    /// Install a sensor-boundary fault injector: from now on every frame
    /// captured by `sense_into` is passed through
    /// [`FrameInjector::apply`](crate::FrameInjector::apply) before the
    /// driver sees it.
    pub fn set_injector(&mut self, injector: crate::FrameInjector) {
        self.injector = Some(injector);
    }

    /// The installed sensor-fault injector, if any (end-of-run
    /// activation/onset accounting).
    pub fn injector(&self) -> Option<&crate::FrameInjector> {
        self.injector.as_ref()
    }

    /// Drive the loop to termination with no observers.
    pub fn run(&mut self) -> Termination {
        self.run_observed(&mut [])
    }

    /// Drive the loop to termination, reporting each tick (and the final
    /// state) to `observers` in order.
    pub fn run_observed(&mut self, observers: &mut [&mut dyn LoopObserver]) -> Termination {
        self.run_for(usize::MAX, observers).expect("usize::MAX ticks outlasts any finite scenario")
    }

    /// Advance the loop by at most `max_ticks` ticks. Returns `Some`
    /// termination if the run ended within the budget, `None` if it is
    /// still live (partial-run probes in substrate tests). Observers get
    /// `on_termination` only when the run actually ends.
    pub fn run_for(
        &mut self,
        max_ticks: usize,
        observers: &mut [&mut dyn LoopObserver],
    ) -> Option<Termination> {
        let mut termination = None;
        let timing = observers.iter().any(|o| o.wants_phase_timing());
        for _ in 0..max_ticks {
            if self.world.finished() {
                termination = Some(Termination::Completed);
                break;
            }
            let t0 = timing.then(Instant::now);
            self.world.sense_into(&mut self.frame);
            if let Some(inj) = &mut self.injector {
                // The one sanctioned sensor-fault mutation point: between
                // capture and the driver (see crate::inject).
                inj.apply(&mut self.frame);
            }
            let hint = self.world.route_hint();
            let state = VehState::from(self.world.ego_state());
            let t_now = self.world.time();
            if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos() as u64;
                for obs in observers.iter_mut() {
                    obs.on_phase(LoopPhase::Sense, ns);
                }
            }
            let t0 = timing.then(Instant::now);
            match self.driver.tick(&self.frame, hint, state, t_now, &self.world) {
                Ok(out) => {
                    let work = self.driver.last_tick_work();
                    if let Some(t0) = t0 {
                        // The detector check runs inside the driver tick;
                        // the driver reports its share so the two phases
                        // partition the measured interval.
                        let ns = t0.elapsed().as_nanos() as u64;
                        for obs in observers.iter_mut() {
                            obs.on_phase(LoopPhase::Driver, ns.saturating_sub(work.detect_ns));
                            obs.on_phase(LoopPhase::Detect, work.detect_ns);
                        }
                    }
                    let fault_active =
                        out.fault_active || self.injector.as_ref().is_some_and(|i| i.activated());
                    for obs in observers.iter_mut() {
                        obs.on_tick(&TickContext {
                            t: t_now,
                            state,
                            frame: &self.frame,
                            hint,
                            out: &out,
                            work,
                            fault_active,
                            world: &self.world,
                        });
                        if out.alarm_raised {
                            obs.on_alarm(t_now);
                        }
                    }
                    let t0 = timing.then(Instant::now);
                    let status = self.world.step(out.controls);
                    if let Some(t0) = t0 {
                        let ns = t0.elapsed().as_nanos() as u64;
                        for obs in observers.iter_mut() {
                            obs.on_phase(LoopPhase::Step, ns);
                        }
                    }
                    if status == WorldStatus::Collision {
                        termination = Some(Termination::Collision);
                        break;
                    }
                }
                Err(e) => {
                    termination = Some(Termination::Trap(e));
                    break;
                }
            }
        }
        if termination.is_none() && self.world.finished() {
            termination = Some(Termination::Completed);
        }
        if let Some(t) = &termination {
            for obs in observers.iter_mut() {
                obs.on_termination(&self.world, t);
            }
        }
        termination
    }

    /// The world being driven.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The driver.
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// The driver, mutably (e.g. to inject faults between runs).
    pub fn driver_mut(&mut self) -> &mut D {
        &mut self.driver
    }

    /// Decompose into the world and driver for end-of-run accounting.
    pub fn into_parts(self) -> (World, D) {
        (self.world, self.driver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diverseav::{AdsConfig, AgentMode};
    use diverseav_agent::AgentConfig;
    use diverseav_simworld::{lead_slowdown, SensorConfig};

    fn short_world(seed: u64) -> World {
        let mut scenario = lead_slowdown();
        scenario.duration = 1.0;
        World::new(scenario, SensorConfig::default(), seed)
    }

    #[test]
    fn ads_driver_completes_a_short_run() {
        let ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 21));
        let mut sim = SimLoop::new(short_world(21), ads);
        assert_eq!(sim.run(), Termination::Completed);
        assert!((sim.world().time() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn policy_driver_sees_ground_truth() {
        let mut cvip_seen = f64::INFINITY;
        let driver = PolicyDriver(|world: &World| {
            cvip_seen = cvip_seen.min(world.cvip().unwrap_or(f64::INFINITY));
            Controls::default()
        });
        let mut sim = SimLoop::new(short_world(22), driver);
        assert_eq!(sim.run(), Termination::Completed);
        drop(sim);
        assert!(cvip_seen < 30.0, "policy read CVIP from the world: {cvip_seen}");
    }

    #[test]
    fn agent_driver_runs_a_bare_agent() {
        let driver = AgentDriver::new(SensorimotorAgent::new(AgentConfig::default(), 7));
        let mut sim = SimLoop::new(short_world(23), driver);
        assert_eq!(sim.run(), Termination::Completed);
        assert_eq!(sim.driver().agent.steps(), 40);
    }

    #[test]
    fn observers_see_every_tick_and_the_termination() {
        struct Counting {
            ticks: usize,
            terminated: Option<Termination>,
        }
        impl LoopObserver for Counting {
            fn on_tick(&mut self, ctx: &TickContext<'_>) {
                assert!(ctx.out.controls.throttle.is_finite());
                self.ticks += 1;
            }
            fn on_termination(&mut self, world: &World, termination: &Termination) {
                assert!(world.finished());
                self.terminated = Some(*termination);
            }
        }
        let ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 24));
        let mut sim = SimLoop::new(short_world(24), ads);
        let mut counting = Counting { ticks: 0, terminated: None };
        sim.run_observed(&mut [&mut counting]);
        assert_eq!(counting.ticks, 40, "one on_tick per 40 Hz frame over 1 s");
        assert_eq!(counting.terminated, Some(Termination::Completed));
    }

    #[test]
    fn termination_labels_are_stable() {
        assert_eq!(Termination::Completed.label(), "completed");
        assert_eq!(Termination::Collision.label(), "collision");
        let hang = Termination::Trap(AgentError { fabric: Profile::Cpu, trap: Trap::Watchdog });
        assert_eq!(hang.label(), "hang");
        assert!(hang.is_hang());
        assert!(hang.is_hang_or_crash());
        let crash = Termination::Trap(AgentError {
            fabric: Profile::Cpu,
            trap: Trap::OutOfBounds { addr: 7 },
        });
        assert_eq!(crash.label(), "crash");
        assert!(!crash.is_hang());
    }
}
