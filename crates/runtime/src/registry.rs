//! The scenario registry: a named catalog mapping stable `&'static str`
//! keys to scenario constructors.
//!
//! Campaign configs, `RunResult`s, and the trace journal carry these
//! interned keys (which equal [`Scenario::name`]) instead of per-run
//! `String` clones, and adding a new workload to the suite is one
//! [`register`] call.

use diverseav_simworld::{front_accident, ghost_cut_in, lead_slowdown, long_route, Scenario};
use std::sync::Mutex;

/// One registry entry: a stable key plus a parameterless constructor.
#[derive(Copy, Clone)]
pub struct ScenarioEntry {
    /// Stable scenario ID; equals the built scenario's `name`.
    pub key: &'static str,
    /// Constructor with default (paper-like) timing.
    pub build: fn() -> Scenario,
}

fn long_route_0() -> Scenario {
    long_route(0, 200.0)
}
fn long_route_1() -> Scenario {
    long_route(1, 200.0)
}
fn long_route_2() -> Scenario {
    long_route(2, 200.0)
}

/// The built-in catalog: the three NHTSA-style safety-critical scenarios
/// (§IV-C1) and the three long training routes (§IV-C2).
pub const BUILTINS: &[ScenarioEntry] = &[
    ScenarioEntry { key: "lead-slowdown", build: lead_slowdown },
    ScenarioEntry { key: "ghost-cut-in", build: ghost_cut_in },
    ScenarioEntry { key: "front-accident", build: front_accident },
    ScenarioEntry { key: "long-route-0", build: long_route_0 },
    ScenarioEntry { key: "long-route-1", build: long_route_1 },
    ScenarioEntry { key: "long-route-2", build: long_route_2 },
];

static EXTRA: Mutex<Vec<ScenarioEntry>> = Mutex::new(Vec::new());

/// Register a new workload under `key`. Returns `false` (and registers
/// nothing) if the key is already taken.
pub fn register(key: &'static str, build: fn() -> Scenario) -> bool {
    let mut extra = EXTRA.lock().expect("scenario registry poisoned");
    if BUILTINS.iter().any(|e| e.key == key) || extra.iter().any(|e| e.key == key) {
        return false;
    }
    extra.push(ScenarioEntry { key, build });
    true
}

/// All entries: built-ins first, then registrations in insertion order.
pub fn entries() -> Vec<ScenarioEntry> {
    let extra = EXTRA.lock().expect("scenario registry poisoned");
    BUILTINS.iter().copied().chain(extra.iter().copied()).collect()
}

/// Build the scenario registered under `key`, if any.
pub fn build(key: &str) -> Option<Scenario> {
    let build = BUILTINS.iter().find(|e| e.key == key).map(|e| e.build).or_else(|| {
        let extra = EXTRA.lock().expect("scenario registry poisoned");
        extra.iter().find(|e| e.key == key).map(|e| e.build)
    })?;
    Some(build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_keys_match_scenario_names() {
        for entry in BUILTINS {
            let scenario = (entry.build)();
            assert_eq!(entry.key, scenario.name, "registry key must equal the interned name");
        }
    }

    #[test]
    fn build_resolves_builtins() {
        let s = build("ghost-cut-in").expect("builtin resolves");
        assert_eq!(s.name, "ghost-cut-in");
        assert!(build("no-such-scenario").is_none());
    }

    #[test]
    fn register_rejects_duplicates_and_serves_new_keys() {
        fn toy() -> Scenario {
            let mut s = lead_slowdown();
            s.duration = 1.0;
            s
        }
        assert!(!register("lead-slowdown", toy), "builtin keys are reserved");
        assert!(register("test-toy-scenario", toy), "fresh key registers");
        assert!(!register("test-toy-scenario", toy), "duplicate rejected");
        let s = build("test-toy-scenario").expect("registered key resolves");
        assert_eq!(s.duration, 1.0);
        assert!(entries().iter().any(|e| e.key == "test-toy-scenario"));
    }
}
