//! Tick-level latency profiling and 40 Hz deadline accounting.
//!
//! [`ProfilingObserver`] times every [`LoopPhase`] of every tick into the
//! shared latency histograms of [`diverseav_obs::metrics`]
//! (`tick.sense`, `tick.driver`, `tick.detect`, `tick.step`,
//! `tick.total`) and tallies ticks whose total exceeds the control
//! period's 25 ms budget ([`DEADLINE_NS`]) — the paper's real-time
//! constraint: an AV compute system that misses its 40 Hz actuation
//! deadline is late even when its outputs are correct.
//!
//! Two time sources (see [`diverseav_obs::profile`]):
//!
//! * **Modeled** (default) — per-phase latency is a linear cost model
//!   over the tick's work: pixels rendered, lidar rays cast, dynamic
//!   fabric instructions executed ([`TickWork`]), NPCs stepped. Every
//!   input is a pure function of the run seed, so the histograms and
//!   deadline tallies are bit-identical for any `DIVERSEAV_THREADS`.
//!   The constants are calibrated against the interpreted fabric's
//!   per-tick instruction counts such that a single-agent control tick
//!   (Single / RoundRobin: ≈ 16 ms) holds the budget while the
//!   fully-duplicated FD baseline (two agent steps per tick: ≈ 26 ms)
//!   misses it — the modeled analogue of the paper's Table II resource
//!   argument.
//! * **Wall** — real phase durations from the loop's `Instant` brackets
//!   (the observer answers [`LoopObserver::wants_phase_timing`]); values
//!   vary run to run and are excluded from the determinism contract.
//!
//! Per-tick recording is allocation-free: the observer resolves its
//! histogram `Arc`s at construction and `on_tick` performs only
//! arithmetic and relaxed atomic increments (the `zero_alloc`
//! integration test covers the profiled loop). Scenario-keyed counters
//! are flushed once at `on_termination`, through commutative operations
//! only (`counter_add`, `gauge_max`), so merged campaign metrics stay
//! independent of worker scheduling.

use crate::simloop::{LoopObserver, LoopPhase, Termination, TickContext};
use diverseav::TickWork;
use diverseav_obs::hist::Histogram;
use diverseav_obs::{metrics, profile, TimeSource};
use diverseav_simworld::World;
use std::sync::Arc;

/// The 40 Hz control-period budget: 25 ms per tick, in nanoseconds.
pub const DEADLINE_NS: u64 = 25_000_000;

/// Modeled cost constants (ns). Linear in the tick's work; calibrated
/// against ≈ 98.8 k dynamic GPU instructions per agent step and 9216
/// camera pixels per frame (3 × 64 × 48) so that one agent step per
/// tick totals ≈ 16 ms and two (FD duplicate) ≈ 26 ms.
mod cost {
    /// Per camera pixel rendered.
    pub const PIXEL: u64 = 540;
    /// Per lidar ray cast.
    pub const RAY: u64 = 1_500;
    /// Fixed sensor-capture overhead per tick.
    pub const SENSE_BASE: u64 = 200_000;
    /// Per dynamic GPU-fabric instruction.
    pub const GPU_INSTR: u64 = 100;
    /// Per dynamic CPU-fabric instruction.
    pub const CPU_INSTR: u64 = 200;
    /// Fixed distribution/fusion overhead per tick.
    pub const DRIVER_BASE: u64 = 500_000;
    /// One error-detector divergence check.
    pub const DETECT: u64 = 350_000;
    /// Per NPC stepped by the world.
    pub const NPC: u64 = 150_000;
    /// Fixed world-kinematics overhead per tick.
    pub const STEP_BASE: u64 = 300_000;
}

/// Per-run deadline tally, flushed into metrics at termination.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DeadlineStats {
    /// Ticks profiled.
    pub ticks: u64,
    /// Ticks whose total latency exceeded [`DEADLINE_NS`].
    pub misses: u64,
    /// Worst total tick latency seen (ns).
    pub worst_ns: u64,
}

impl DeadlineStats {
    /// Fold another tally into this one (sum ticks and misses, max of
    /// worst latencies). Commutative and associative, so totals merged
    /// from per-run or per-shard tallies are independent of the order
    /// the pieces arrive in.
    pub fn absorb(&mut self, other: &DeadlineStats) {
        self.ticks += other.ticks;
        self.misses += other.misses;
        self.worst_ns = self.worst_ns.max(other.worst_ns);
    }
}

/// A [`LoopObserver`] recording per-phase tick latencies and 25 ms
/// deadline misses for one run. Attach one per run (the fault-injection
/// runner does this automatically unless `DIVERSEAV_PROFILE=off`).
pub struct ProfilingObserver {
    source: TimeSource,
    scenario: &'static str,
    hists: [Arc<Histogram>; 5], // sense, driver, detect, step, total
    stats: DeadlineStats,
    /// Wall mode: phase durations of the in-flight tick, finalized when
    /// the `Step` phase (always last) arrives.
    pending: [u64; 4],
    pending_any: bool,
}

impl ProfilingObserver {
    /// An observer for one run of `scenario`, using the process-wide
    /// time source from `DIVERSEAV_PROFILE`.
    pub fn new(scenario: &'static str) -> Self {
        Self::with_source(scenario, profile::source())
    }

    /// An observer with an explicit time source (tests).
    pub fn with_source(scenario: &'static str, source: TimeSource) -> Self {
        ProfilingObserver {
            source,
            scenario,
            hists: [
                metrics::histogram("tick.sense"),
                metrics::histogram("tick.driver"),
                metrics::histogram("tick.detect"),
                metrics::histogram("tick.step"),
                metrics::histogram("tick.total"),
            ],
            stats: DeadlineStats::default(),
            pending: [0; 4],
            pending_any: false,
        }
    }

    /// Whether profiling is enabled at all for this observer.
    pub fn enabled(&self) -> bool {
        self.source != TimeSource::Off
    }

    /// The deadline tally so far.
    pub fn stats(&self) -> DeadlineStats {
        self.stats
    }

    /// Record one complete tick's phase latencies and account its total
    /// against the deadline.
    fn record_tick(&mut self, phases: [u64; 4]) {
        let mut total = 0u64;
        for (hist, ns) in self.hists.iter().zip(phases) {
            hist.record(ns);
            total += ns;
        }
        self.hists[4].record(total);
        self.stats.ticks += 1;
        if total > DEADLINE_NS {
            self.stats.misses += 1;
        }
        if total > self.stats.worst_ns {
            self.stats.worst_ns = total;
        }
    }

    /// The modeled per-phase costs of one tick: `[sense, driver, detect,
    /// step]` in ns, a pure function of the tick's work. Public because
    /// the flight recorder ([`crate::FlightRecorder`]) records modeled
    /// latencies unconditionally — even under `DIVERSEAV_PROFILE=wall` —
    /// so incident artifacts never carry wall-clock values.
    pub fn modeled_phases(ctx: &TickContext<'_>) -> [u64; 4] {
        let pixels: usize = ctx.frame.cameras.iter().map(|c| c.width() * c.height()).sum();
        let rays = ctx.frame.lidar.as_ref().map_or(0, |r| r.len());
        let TickWork { gpu_instr, cpu_instr, detector_observed, .. } = ctx.work;
        let sense = cost::SENSE_BASE + pixels as u64 * cost::PIXEL + rays as u64 * cost::RAY;
        let driver = cost::DRIVER_BASE + gpu_instr * cost::GPU_INSTR + cpu_instr * cost::CPU_INSTR;
        let detect = if detector_observed { cost::DETECT } else { 0 };
        let step = cost::STEP_BASE + ctx.world.npcs().len() as u64 * cost::NPC;
        [sense, driver, detect, step]
    }
}

impl LoopObserver for ProfilingObserver {
    fn on_tick(&mut self, ctx: &TickContext<'_>) {
        if self.source == TimeSource::Modeled {
            let phases = Self::modeled_phases(ctx);
            self.record_tick(phases);
        }
    }

    fn wants_phase_timing(&self) -> bool {
        self.source == TimeSource::Wall
    }

    fn on_phase(&mut self, phase: LoopPhase, dur_ns: u64) {
        if self.source != TimeSource::Wall {
            return;
        }
        let slot = match phase {
            LoopPhase::Sense => 0,
            LoopPhase::Driver => 1,
            LoopPhase::Detect => 2,
            LoopPhase::Step => 3,
        };
        self.pending[slot] = dur_ns;
        self.pending_any = true;
        if phase == LoopPhase::Step {
            let phases = self.pending;
            self.record_tick(phases);
            self.pending = [0; 4];
            self.pending_any = false;
        }
    }

    fn on_termination(&mut self, _world: &World, _termination: &Termination) {
        if self.source == TimeSource::Wall && self.pending_any {
            // A trapped tick never reaches its Step phase; account the
            // partial measurement rather than dropping it.
            let phases = self.pending;
            self.record_tick(phases);
            self.pending = [0; 4];
            self.pending_any = false;
        }
        if !self.enabled() || self.stats.ticks == 0 {
            return;
        }
        metrics::counter_add("deadline.ticks", self.stats.ticks);
        metrics::counter_add("deadline.misses", self.stats.misses);
        metrics::counter_add(&format!("deadline.{}.ticks", self.scenario), self.stats.ticks);
        metrics::counter_add(&format!("deadline.{}.misses", self.scenario), self.stats.misses);
        metrics::gauge_max("deadline.worst_ns", self.stats.worst_ns as f64);
        metrics::gauge_max(
            &format!("deadline.{}.worst_ns", self.scenario),
            self.stats.worst_ns as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simloop::SimLoop;
    use diverseav::{Ads, AdsConfig, AgentMode};
    use diverseav_simworld::{lead_slowdown, SensorConfig};

    fn run_profiled(mode: AgentMode, seed: u64) -> DeadlineStats {
        let mut scenario = lead_slowdown();
        scenario.duration = 1.0;
        let world = World::new(scenario, SensorConfig::default(), seed);
        let ads = Ads::new(AdsConfig::for_mode(mode, seed));
        let mut prof = ProfilingObserver::with_source("lead_slowdown", TimeSource::Modeled);
        let mut sim = SimLoop::new(world, ads);
        sim.run_observed(&mut [&mut prof]);
        prof.stats()
    }

    #[test]
    fn single_agent_ticks_hold_the_40hz_budget() {
        let stats = run_profiled(AgentMode::RoundRobin, 31);
        assert_eq!(stats.ticks, 40, "one profiled tick per 40 Hz frame over 1 s");
        assert_eq!(stats.misses, 0, "round-robin holds 25 ms (worst {})", stats.worst_ns);
        assert!(stats.worst_ns > 0 && stats.worst_ns < DEADLINE_NS);
    }

    #[test]
    fn duplicate_mode_blows_the_budget_every_tick() {
        let stats = run_profiled(AgentMode::Duplicate, 31);
        assert_eq!(stats.ticks, 40);
        assert_eq!(
            stats.misses, stats.ticks,
            "two agent steps per tick exceed 25 ms (worst {})",
            stats.worst_ns
        );
        assert!(stats.worst_ns > DEADLINE_NS);
    }

    #[test]
    fn deadline_stats_absorb_is_order_independent() {
        let a = DeadlineStats { ticks: 40, misses: 3, worst_ns: 26_000_000 };
        let b = DeadlineStats { ticks: 80, misses: 0, worst_ns: 24_000_000 };
        let c = DeadlineStats { ticks: 10, misses: 10, worst_ns: 30_000_000 };
        let mut fwd = DeadlineStats::default();
        for s in [a, b, c] {
            fwd.absorb(&s);
        }
        let mut rev = DeadlineStats::default();
        for s in [c, b, a] {
            rev.absorb(&s);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd, DeadlineStats { ticks: 130, misses: 13, worst_ns: 30_000_000 });
    }

    #[test]
    fn modeled_stats_are_reproducible() {
        assert_eq!(run_profiled(AgentMode::RoundRobin, 7), run_profiled(AgentMode::RoundRobin, 7));
    }

    #[test]
    fn off_source_records_nothing() {
        let mut scenario = lead_slowdown();
        scenario.duration = 0.5;
        let world = World::new(scenario, SensorConfig::default(), 5);
        let ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 5));
        let mut prof = ProfilingObserver::with_source("lead_slowdown", TimeSource::Off);
        assert!(!prof.enabled());
        SimLoop::new(world, ads).run_observed(&mut [&mut prof]);
        assert_eq!(prof.stats(), DeadlineStats::default());
    }

    #[test]
    fn wall_source_times_real_phases() {
        let mut scenario = lead_slowdown();
        scenario.duration = 0.5;
        let world = World::new(scenario, SensorConfig::default(), 9);
        let ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 9));
        let mut prof = ProfilingObserver::with_source("lead_slowdown", TimeSource::Wall);
        assert!(prof.wants_phase_timing());
        SimLoop::new(world, ads).run_observed(&mut [&mut prof]);
        let stats = prof.stats();
        assert_eq!(stats.ticks, 20, "every tick finalized on its Step phase");
        assert!(stats.worst_ns > 0, "wall phases measured something");
    }
}
