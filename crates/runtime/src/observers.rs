//! Stock [`LoopObserver`](crate::LoopObserver) implementations: the
//! bookkeeping that used to be copy-pasted into every hand-rolled loop.

use crate::simloop::{LoopObserver, Termination, TickContext};
use diverseav::TrainSample;
use diverseav_obs::metrics;
use diverseav_simworld::{Controls, World};
use std::time::Instant;

/// Records the divergence stream (detector training / offline sweeps)
/// and the actuation + CVIP trace (Fig 2) — exactly what
/// `run_experiment` collects when `collect_training` is set.
pub struct TrainingCollector {
    enabled: bool,
    /// Collected divergence samples, one per tick with a comparison pair.
    pub training: Vec<TrainSample>,
    /// Actuation + CVIP trace: `(t, controls, cvip)` per tick.
    pub actuation: Vec<(f64, Controls, f64)>,
}

impl TrainingCollector {
    /// A collector that records only when `enabled`; `capacity_ticks`
    /// pre-sizes the buffers so steady-state pushes never reallocate.
    pub fn new(enabled: bool, capacity_ticks: usize) -> Self {
        let cap = if enabled { capacity_ticks } else { 0 };
        TrainingCollector {
            enabled,
            training: Vec::with_capacity(cap),
            actuation: Vec::with_capacity(cap),
        }
    }
}

impl LoopObserver for TrainingCollector {
    fn on_tick(&mut self, ctx: &TickContext<'_>) {
        if !self.enabled {
            return;
        }
        if let Some(div) = ctx.out.divergence {
            self.training.push(TrainSample { t: ctx.t, state: ctx.state, div });
        }
        let cvip = ctx.world.cvip().unwrap_or(f64::INFINITY);
        self.actuation.push((ctx.t, ctx.out.controls, cvip));
    }
}

/// Counts ticks and wall time for throughput accounting.
///
/// Per-tick work is a local increment; the process-global
/// `runtime.ticks` metrics counter is bumped once at termination, so the
/// hot loop takes no locks. Campaign-level reports derive a
/// `ticks_per_sec` figure by sampling the counter around a timed phase.
pub struct PerfObserver {
    ticks: u64,
    started: Instant,
}

impl PerfObserver {
    /// Start the wall clock now.
    pub fn new() -> Self {
        PerfObserver { ticks: 0, started: Instant::now() }
    }

    /// Ticks observed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Observed throughput since construction (ticks per wall second).
    pub fn ticks_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.ticks as f64 / secs
        } else {
            0.0
        }
    }
}

impl Default for PerfObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl LoopObserver for PerfObserver {
    fn on_tick(&mut self, _ctx: &TickContext<'_>) {
        self.ticks += 1;
    }

    fn on_termination(&mut self, _world: &World, _termination: &Termination) {
        metrics::counter_add("runtime.ticks", self.ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simloop::SimLoop;
    use diverseav::{Ads, AdsConfig, AgentMode};
    use diverseav_simworld::{lead_slowdown, SensorConfig};

    #[test]
    fn training_collector_matches_tick_count() {
        let mut scenario = lead_slowdown();
        scenario.duration = 1.0;
        let world = World::new(scenario, SensorConfig::default(), 31);
        let ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 31));
        let mut collector = TrainingCollector::new(true, 64);
        let mut perf = PerfObserver::new();
        let before = metrics::counter_get("runtime.ticks");
        SimLoop::new(world, ads).run_observed(&mut [&mut collector, &mut perf]);
        assert_eq!(collector.actuation.len(), 40, "one actuation sample per tick");
        // Round-robin produces a comparison pair from the second tick on.
        assert_eq!(collector.training.len(), 39);
        assert_eq!(perf.ticks(), 40);
        assert_eq!(metrics::counter_get("runtime.ticks") - before, 40);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut scenario = lead_slowdown();
        scenario.duration = 0.5;
        let world = World::new(scenario, SensorConfig::default(), 32);
        let ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 32));
        let mut collector = TrainingCollector::new(false, 64);
        SimLoop::new(world, ads).run_observed(&mut [&mut collector]);
        assert!(collector.training.is_empty());
        assert!(collector.actuation.is_empty());
        assert_eq!(collector.training.capacity(), 0, "disabled collector allocates nothing");
    }
}
