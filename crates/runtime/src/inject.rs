//! Sensor-boundary fault injection (ROADMAP item 5).
//!
//! The paper's fault model is register bit-flips inside the compute
//! fabric (§II-B), but DiverseAV's detection claim — temporal diversity
//! catches safety-critical divergence early — should hold for *any*
//! corruption that reaches the control loop. Following the
//! component-agnostic argument of "Injecting Hallucinations in
//! Autonomous Vehicles" (PAPERS.md), this module injects faults at the
//! sensor/driver boundary: a [`FrameInjector`] installed on the
//! [`SimLoop`](crate::SimLoop) mutates the reusable `SensorFrame` in
//! place immediately after `World::sense_into`, before the driver ever
//! sees it.
//!
//! Design invariants:
//!
//! * **Seed purity** — every realized fault is a pure function of
//!   `(SensorFault, frame.step)`. No RNG state is carried between
//!   frames; all randomness comes from SplitMix64 hashes of the fault
//!   seed, so shard partitioning, the golden cache, and bit-identical
//!   campaign merges keep working unchanged.
//! * **Zero allocation** — corruption happens in place on the pooled
//!   frame buffers (`Image::data_mut`, the lidar vector), preserving
//!   the allocation-free steady state that `tests/zero_alloc.rs` pins.
//! * **This is the only sanctioned `SensorFrame` mutation site** outside
//!   `simworld` itself — `ci/lint.sh` greps for violations.

use diverseav_simworld::SensorFrame;

/// SplitMix64 — the same cheap deterministic hash the sensor models use.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash two words into a uniform f64 in `[0, 1)`.
#[inline]
fn unit(a: u64, b: u64) -> f64 {
    (mix(a ^ mix(b)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Hash two words into a signed amplitude in `[-1, 1]`.
#[inline]
fn signed(a: u64, b: u64) -> f64 {
    unit(a, b) * 2.0 - 1.0
}

/// The five sensor-fault classes of the broadened fault model.
///
/// Each class corrupts the channels the agent's perception/control path
/// actually consumes — the center camera, the speedometer, and the IMU
/// yaw rate — plus GPS and LiDAR where present, so the corruption is
/// visible to any downstream consumer.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SensorFaultKind {
    /// Intermittent total sensor loss: every other frame from onset is
    /// blanked (black cameras, zero speed/IMU/LiDAR).
    Dropout,
    /// Slow calibration drift: an additive bias on speed, yaw rate, GPS
    /// and camera blueness that grows linearly from onset.
    BiasDrift,
    /// Bursts of extreme out-of-range readings: blocks of frames with
    /// saturated pixels and wild speed/yaw values, alternating with
    /// clean blocks.
    OutlierBurst,
    /// Inflated measurement noise: heavy per-frame pseudo-noise on every
    /// pixel and scalar channel from onset onward.
    NoiseInflation,
    /// Sign-alternating perturbation at the frame rate: `+mag` on even
    /// steps, `-mag` on odd steps, on speed, yaw rate, and blueness.
    Oscillation,
}

impl SensorFaultKind {
    /// All classes, in stable campaign-enumeration order.
    pub const ALL: [SensorFaultKind; 5] = [
        SensorFaultKind::Dropout,
        SensorFaultKind::BiasDrift,
        SensorFaultKind::OutlierBurst,
        SensorFaultKind::NoiseInflation,
        SensorFaultKind::Oscillation,
    ];

    /// Stable kebab-case label (journal artifacts, Table I row names,
    /// CLI `--kind` values as `sensor-<label>`).
    pub fn label(self) -> &'static str {
        match self {
            SensorFaultKind::Dropout => "dropout",
            SensorFaultKind::BiasDrift => "bias-drift",
            SensorFaultKind::OutlierBurst => "outlier-burst",
            SensorFaultKind::NoiseInflation => "noise-inflation",
            SensorFaultKind::Oscillation => "oscillation",
        }
    }

    /// Stable small integer used in campaign plan-seed folding.
    pub fn class_code(self) -> u64 {
        match self {
            SensorFaultKind::Dropout => 0,
            SensorFaultKind::BiasDrift => 1,
            SensorFaultKind::OutlierBurst => 2,
            SensorFaultKind::NoiseInflation => 3,
            SensorFaultKind::Oscillation => 4,
        }
    }

    /// Parse a label produced by [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == s)
    }
}

impl std::fmt::Display for SensorFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One planned sensor fault: a class plus the seed that fully determines
/// its realization (onset step, magnitudes, per-frame noise).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SensorFault {
    /// The fault class.
    pub kind: SensorFaultKind,
    /// Realization seed — the *only* source of randomness.
    pub seed: u64,
}

impl SensorFault {
    /// Onset step derived from the seed: `[8, 48)`, early enough that
    /// even short scenarios leave room to observe detection.
    pub fn onset_step(&self) -> u64 {
        8 + mix(self.seed ^ 0x0_5E7) % 40
    }

    /// Class magnitude scale in `[0, 1)` derived from the seed.
    fn magnitude(&self) -> f64 {
        unit(self.seed, 0x4A61)
    }
}

impl std::fmt::Display for SensorFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SENSOR {} seed={:#x}", self.kind, self.seed)
    }
}

/// The injection hook: owns one [`SensorFault`] and mutates frames in
/// place as they pass from the world to the driver.
#[derive(Clone, Debug)]
pub struct FrameInjector {
    fault: SensorFault,
    onset_step: u64,
    activated: bool,
    onset_time: Option<f64>,
}

impl FrameInjector {
    /// Build the injector for one planned fault.
    pub fn new(fault: SensorFault) -> Self {
        let onset_step = fault.onset_step();
        FrameInjector { fault, onset_step, activated: false, onset_time: None }
    }

    /// The fault this injector realizes.
    pub fn fault(&self) -> SensorFault {
        self.fault
    }

    /// Whether at least one frame has been corrupted.
    pub fn activated(&self) -> bool {
        self.activated
    }

    /// Simulation time of the first corrupted frame, if any.
    pub fn onset_time(&self) -> Option<f64> {
        self.onset_time
    }

    /// Corrupt `frame` in place according to the fault class. Pure
    /// function of `(self.fault, frame)`; allocation-free.
    pub fn apply(&mut self, frame: &mut SensorFrame) {
        if frame.step < self.onset_step {
            return;
        }
        let since = frame.step - self.onset_step;
        let seed = self.fault.seed;
        let mag = self.fault.magnitude();
        let corrupted = match self.fault.kind {
            SensorFaultKind::Dropout => {
                // Period-2 intermittency: under round-robin distribution
                // one agent sees only blanked frames while its peer sees
                // the real world — the starkest possible divergence.
                if since.is_multiple_of(2) {
                    for cam in &mut frame.cameras {
                        cam.data_mut().fill(0);
                    }
                    frame.speed = 0.0;
                    frame.imu.accel = 0.0;
                    frame.imu.yaw_rate = 0.0;
                    if let Some(lidar) = &mut frame.lidar {
                        lidar.fill(0.0);
                    }
                    true
                } else {
                    false
                }
            }
            SensorFaultKind::BiasDrift => {
                // Linear drift per step since onset; rates scale with the
                // seed-drawn magnitude. The one-frame skew between the
                // round-robin agents turns the slope into divergence, so
                // the slope must be steep enough that consecutive frames
                // yield visibly different control outputs (kp = 0.3 per
                // m/s): the detectable window is the ramp between onset
                // and both agents saturating the brake, after which the
                // corruption is pure common mode.
                let steps = (since + 1) as f64;
                let speed_rate = 0.40 + 0.60 * mag; // m/s per step
                let yaw_rate = 0.12 + 0.20 * mag; // rad/s per step
                let px_rate = 2.5 + 3.5 * mag; // blue LSBs per step
                frame.speed += (speed_rate * steps) as f32;
                frame.imu.yaw_rate += (yaw_rate * steps) as f32;
                frame.gps[0] += (0.2 * steps) as f32;
                frame.gps[1] += (0.1 * steps) as f32;
                let blue = (px_rate * steps).min(120.0) as u16;
                for cam in &mut frame.cameras {
                    for px in cam.data_mut().chunks_exact_mut(3) {
                        px[2] = (px[2] as u16 + blue).min(255) as u8;
                    }
                }
                true
            }
            SensorFaultKind::OutlierBurst => {
                // 8-on / 8-off bursts of extreme readings; burst content
                // re-drawn per frame from the seed.
                if (since / 8).is_multiple_of(2) {
                    let h = mix(seed ^ frame.step);
                    frame.speed = if h & 1 == 0 { 60.0 + (20.0 * mag) as f32 } else { -8.0 };
                    frame.imu.yaw_rate = if h & 2 == 0 { 4.0 } else { -4.0 };
                    frame.imu.accel = 30.0;
                    frame.gps[0] += 500.0;
                    // Saturate a hashed horizontal band of every camera
                    // to vehicle-blue: a hallucinated obstacle.
                    for cam in &mut frame.cameras {
                        let h_px = cam.height();
                        let band = (h % h_px as u64) as usize;
                        let lo = band.min(h_px.saturating_sub(8));
                        let w = cam.width();
                        let data = cam.data_mut();
                        for y in lo..(lo + 8).min(h_px) {
                            let row = &mut data[y * w * 3..(y + 1) * w * 3];
                            for px in row.chunks_exact_mut(3) {
                                px[0] = 20;
                                px[1] = 20;
                                px[2] = 255;
                            }
                        }
                    }
                    if let Some(lidar) = &mut frame.lidar {
                        lidar.fill(0.5);
                    }
                    true
                } else {
                    false
                }
            }
            SensorFaultKind::NoiseInflation => {
                // Heavy, per-frame-keyed pseudo-noise on every channel.
                let amp_px = 30.0 + 40.0 * mag;
                let amp_speed = 2.0 + 4.0 * mag;
                let amp_yaw = 0.5 + 1.0 * mag;
                let fkey = mix(seed ^ frame.step.wrapping_mul(0x9E37));
                frame.speed += (amp_speed * signed(fkey, 1)) as f32;
                frame.imu.yaw_rate += (amp_yaw * signed(fkey, 2)) as f32;
                frame.imu.accel += (3.0 * signed(fkey, 3)) as f32;
                frame.gps[0] += (4.0 * signed(fkey, 4)) as f32;
                frame.gps[1] += (4.0 * signed(fkey, 5)) as f32;
                for (c, cam) in frame.cameras.iter_mut().enumerate() {
                    let ckey = fkey ^ ((c as u64) << 48);
                    for (i, px) in cam.data_mut().iter_mut().enumerate() {
                        let n = signed(ckey, i as u64) * amp_px;
                        *px = (*px as f64 + n).clamp(0.0, 255.0) as u8;
                    }
                }
                if let Some(lidar) = &mut frame.lidar {
                    for (i, r) in lidar.iter_mut().enumerate() {
                        *r += (signed(fkey, 0x11DA ^ i as u64) * 2.0) as f32;
                    }
                }
                true
            }
            SensorFaultKind::Oscillation => {
                // ±mag alternating at the frame rate: with round-robin
                // distribution one agent sees only +, the other only −.
                let sign = if since.is_multiple_of(2) { 1.0 } else { -1.0 };
                let d_speed = (3.0 + 5.0 * mag) * sign;
                let d_yaw = (0.6 + 1.0 * mag) * sign;
                frame.speed = (frame.speed + d_speed as f32).max(0.0);
                frame.imu.yaw_rate += d_yaw as f32;
                let d_blue = (40.0 + 50.0 * mag) * sign;
                for cam in &mut frame.cameras {
                    for px in cam.data_mut().chunks_exact_mut(3) {
                        px[2] = (px[2] as f64 + d_blue).clamp(0.0, 255.0) as u8;
                    }
                }
                true
            }
        };
        if corrupted && !self.activated {
            self.activated = true;
            self.onset_time = Some(frame.t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diverseav_simworld::SensorFrame;

    fn frame_at(step: u64) -> SensorFrame {
        let mut f = SensorFrame::empty();
        f.step = step;
        f.t = step as f64 / 40.0;
        f.speed = 10.0;
        f.cameras.push(diverseav_simworld::Image::new(8, 6));
        f
    }

    #[test]
    fn labels_and_codes_are_stable() {
        let labels: Vec<&str> = SensorFaultKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            ["dropout", "bias-drift", "outlier-burst", "noise-inflation", "oscillation"]
        );
        for (i, k) in SensorFaultKind::ALL.into_iter().enumerate() {
            assert_eq!(k.class_code(), i as u64);
            assert_eq!(SensorFaultKind::from_label(k.label()), Some(k));
        }
        assert_eq!(SensorFaultKind::from_label("bogus"), None);
    }

    #[test]
    fn onset_is_seed_pure_and_in_range() {
        for seed in 0..200u64 {
            let f = SensorFault { kind: SensorFaultKind::Dropout, seed };
            let o = f.onset_step();
            assert!((8..48).contains(&o), "onset {o} out of range");
            assert_eq!(o, f.onset_step(), "onset must be deterministic");
        }
    }

    #[test]
    fn no_corruption_before_onset() {
        for kind in SensorFaultKind::ALL {
            let fault = SensorFault { kind, seed: 9 };
            let mut inj = FrameInjector::new(fault);
            let mut frame = frame_at(fault.onset_step() - 1);
            let before = frame.clone();
            inj.apply(&mut frame);
            assert_eq!(frame, before, "{kind} corrupted before onset");
            assert!(!inj.activated());
            assert_eq!(inj.onset_time(), None);
        }
    }

    #[test]
    fn every_class_activates_and_records_onset_time() {
        for kind in SensorFaultKind::ALL {
            let fault = SensorFault { kind, seed: 123 };
            let mut inj = FrameInjector::new(fault);
            let mut mutated = false;
            for step in 0..128 {
                let mut frame = frame_at(step);
                let before = frame.clone();
                inj.apply(&mut frame);
                mutated |= frame != before;
            }
            assert!(mutated, "{kind} never corrupted a frame");
            assert!(inj.activated(), "{kind} never activated");
            let t = inj.onset_time().expect("onset time recorded");
            assert!((t - fault.onset_step() as f64 / 40.0).abs() < 1e-9, "{kind} onset at {t}");
        }
    }

    #[test]
    fn realization_is_bit_identical_across_injectors() {
        for kind in SensorFaultKind::ALL {
            let fault = SensorFault { kind, seed: 777 };
            let mut a = FrameInjector::new(fault);
            let mut b = FrameInjector::new(fault);
            for step in 0..96 {
                let mut fa = frame_at(step);
                let mut fb = frame_at(step);
                a.apply(&mut fa);
                b.apply(&mut fb);
                assert_eq!(fa, fb, "{kind} diverged at step {step}");
            }
        }
    }

    #[test]
    fn oscillation_alternates_polarity_with_frame_parity() {
        let fault = SensorFault { kind: SensorFaultKind::Oscillation, seed: 5 };
        let onset = fault.onset_step();
        let mut inj = FrameInjector::new(fault);
        let mut even = frame_at(onset);
        let mut odd = frame_at(onset + 1);
        inj.apply(&mut even);
        inj.apply(&mut odd);
        assert!(even.speed > 10.0, "even-parity frame biased up");
        assert!(odd.speed < 10.0, "odd-parity frame biased down");
    }

    #[test]
    fn dropout_blanks_alternating_frames() {
        let fault = SensorFault { kind: SensorFaultKind::Dropout, seed: 31 };
        let onset = fault.onset_step();
        let mut inj = FrameInjector::new(fault);
        let mut hit = frame_at(onset);
        let mut skip = frame_at(onset + 1);
        inj.apply(&mut hit);
        inj.apply(&mut skip);
        assert_eq!(hit.speed, 0.0);
        assert!(hit.cameras[0].data().iter().all(|&b| b == 0));
        assert_eq!(skip.speed, 10.0, "odd-parity frames pass clean");
    }
}
