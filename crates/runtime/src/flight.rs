//! The per-run flight recorder: an always-on, allocation-free
//! [`LoopObserver`] feeding a [`FlightRing`] of packed
//! [`TickRecord`]s, plus the incident classifier that decides when the
//! ring is worth draining.
//!
//! Every tick the recorder packs the detector's normalized score, trend
//! slope and armed state, the threshold margin, the fault-activation
//! flag, the **modeled** per-phase latencies and deadline margin, and
//! the fused actuator deltas into one fixed-size record. Latencies come
//! from [`ProfilingObserver::modeled_phases`] unconditionally — even
//! under `DIVERSEAV_PROFILE=wall` — and records carry no timestamps, so
//! a recording is a pure function of the run's seeds: bit-identical
//! across `DIVERSEAV_THREADS` and sharded vs. monolithic execution
//! (`ci/lint.sh` Gate 4 greps this module for wall-clock calls).
//!
//! Most runs end quietly and their ring is simply dropped. A run that
//! ends badly — see [`IncidentKind`] — has its ring drained into a
//! schema-versioned incident artifact by the faultinj runner, giving
//! every alarm, hang, crash, deadline burst, and silent-divergence
//! verdict a per-tick narrative.

use crate::profiling::{ProfilingObserver, DEADLINE_NS};
use crate::simloop::{LoopObserver, Termination, TickContext};
use diverseav_obs::flight::{
    FlightRing, TickRecord, DEFAULT_RING_CAPACITY, FLAG_ALARM, FLAG_DEADLINE_MISS,
    FLAG_DETECTOR_OBSERVED, FLAG_FAULT_ACTIVE, FLAG_TREND_ARMED,
};
use diverseav_simworld::Controls;

/// Consecutive modeled deadline misses that qualify a run as a
/// [`IncidentKind::DeadlineBurst`] incident. Eight ticks ≡ 200 ms of
/// sustained lateness at 40 Hz — well past transient jitter, short
/// enough to catch bursts that recover before the run ends.
pub const DEADLINE_BURST_TICKS: u64 = 8;

/// Peak normalized score an un-alarmed faulty run must have reached for
/// a [`IncidentKind::SilentDivergence`] verdict: halfway to the alarm
/// line. Below this the fault was benign at the actuation boundary, not
/// silently dangerous.
pub const SILENT_SCORE_FLOOR: f64 = 0.5;

/// Why a run's flight recording was flushed into an incident artifact.
///
/// Classification is deterministic and mutually exclusive, in this
/// precedence order (a hanged run that also alarmed is a `Hang`: the
/// platform-level verdict subsumes the detector-level one).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IncidentKind {
    /// A fabric exhausted its watchdog (platform-detected hang).
    Hang,
    /// A fabric trapped (platform-detected crash).
    Crash,
    /// The error detector raised its alarm.
    Alarm,
    /// ≥ [`DEADLINE_BURST_TICKS`] consecutive modeled deadline misses.
    DeadlineBurst,
    /// A fault activated, no alarm fired, and the normalized score still
    /// reached [`SILENT_SCORE_FLOOR`] — the near-miss the
    /// `no_silent_divergence` gate exists to catch.
    SilentDivergence,
}

impl IncidentKind {
    /// Every kind, in classification precedence order.
    pub const ALL: [IncidentKind; 5] = [
        IncidentKind::Hang,
        IncidentKind::Crash,
        IncidentKind::Alarm,
        IncidentKind::DeadlineBurst,
        IncidentKind::SilentDivergence,
    ];

    /// Stable kebab-case artifact label.
    pub fn label(&self) -> &'static str {
        match self {
            IncidentKind::Hang => "hang",
            IncidentKind::Crash => "crash",
            IncidentKind::Alarm => "alarm",
            IncidentKind::DeadlineBurst => "deadline-burst",
            IncidentKind::SilentDivergence => "silent-divergence",
        }
    }

    /// Inverse of [`label`](IncidentKind::label).
    pub fn from_label(label: &str) -> Option<IncidentKind> {
        IncidentKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

impl std::fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The flight-recorder [`LoopObserver`]: one per run, attached
/// automatically by the faultinj runner.
///
/// Steady-state recording allocates zero bytes — the ring buffer is
/// sized at construction and `on_tick` performs only arithmetic and
/// stores (covered by the `zero_alloc` integration test).
pub struct FlightRecorder {
    ring: FlightRing,
    prev_controls: Option<Controls>,
    miss_streak: u64,
    max_miss_streak: u64,
    peak_score: f64,
    alarmed: bool,
}

impl FlightRecorder {
    /// A recorder retaining the last [`DEFAULT_RING_CAPACITY`] ticks.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recorder with an explicit retention window (tests).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            ring: FlightRing::new(capacity),
            prev_controls: None,
            miss_streak: 0,
            max_miss_streak: 0,
            peak_score: 0.0,
            alarmed: false,
        }
    }

    /// The ring of retained records.
    pub fn ring(&self) -> &FlightRing {
        &self.ring
    }

    /// Drain the retained window oldest-first (the incident-flush path;
    /// allocates, so call only after the run ended).
    pub fn drain(&self) -> Vec<TickRecord> {
        self.ring.drain_ordered()
    }

    /// Peak normalized divergence score seen over the whole run (not
    /// just the retained window).
    pub fn peak_score(&self) -> f64 {
        self.peak_score
    }

    /// Longest run of consecutive modeled deadline misses.
    pub fn max_miss_streak(&self) -> u64 {
        self.max_miss_streak
    }

    /// Classify the finished run against the incident triggers, in
    /// precedence order: hang, crash, alarm, deadline burst, silent
    /// divergence. `None` means the run was unremarkable and its
    /// recording can be dropped.
    ///
    /// `fault_activated` covers both fault boundaries (fabric faults via
    /// [`TickOutput::fault_active`](diverseav::TickOutput::fault_active),
    /// sensor faults via the runner's injector accounting).
    pub fn classify(
        &self,
        termination: &Termination,
        fault_activated: bool,
    ) -> Option<IncidentKind> {
        if termination.is_hang() {
            return Some(IncidentKind::Hang);
        }
        if termination.is_hang_or_crash() {
            return Some(IncidentKind::Crash);
        }
        if self.alarmed {
            return Some(IncidentKind::Alarm);
        }
        if self.max_miss_streak >= DEADLINE_BURST_TICKS {
            return Some(IncidentKind::DeadlineBurst);
        }
        if fault_activated && self.peak_score >= SILENT_SCORE_FLOOR {
            return Some(IncidentKind::SilentDivergence);
        }
        None
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LoopObserver for FlightRecorder {
    fn on_tick(&mut self, ctx: &TickContext<'_>) {
        let phase_ns = ProfilingObserver::modeled_phases(ctx);
        let total: u64 = phase_ns.iter().sum();
        let miss = total > DEADLINE_NS;
        if miss {
            self.miss_streak += 1;
            self.max_miss_streak = self.max_miss_streak.max(self.miss_streak);
        } else {
            self.miss_streak = 0;
        }

        let (score, slope, armed) = match ctx.out.detector {
            Some(tel) => (tel.score, tel.slope, tel.armed),
            None => (0.0, 0.0, false),
        };
        self.peak_score = self.peak_score.max(score);
        self.alarmed |= ctx.out.alarm_raised;

        let mut flags = 0u8;
        if ctx.out.detector.is_some() {
            flags |= FLAG_DETECTOR_OBSERVED;
        }
        if armed {
            flags |= FLAG_TREND_ARMED;
        }
        if ctx.out.alarm_raised {
            flags |= FLAG_ALARM;
        }
        if ctx.fault_active {
            flags |= FLAG_FAULT_ACTIVE;
        }
        if miss {
            flags |= FLAG_DEADLINE_MISS;
        }

        let prev = self.prev_controls.unwrap_or(ctx.out.controls);
        let c = ctx.out.controls;
        self.ring.push(TickRecord {
            tick: self.ring.pushed(),
            flags,
            score,
            slope,
            margin: 1.0 - score,
            phase_ns,
            deadline_margin_ns: DEADLINE_NS as i64 - total as i64,
            d_throttle: c.throttle - prev.throttle,
            d_brake: c.brake - prev.brake,
            d_steer: c.steer - prev.steer,
        });
        self.prev_controls = Some(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simloop::SimLoop;
    use diverseav::{Ads, AdsConfig, AgentMode};
    use diverseav_simworld::{lead_slowdown, SensorConfig, World};

    fn record_run(mode: AgentMode, seed: u64) -> (FlightRecorder, Termination) {
        let mut scenario = lead_slowdown();
        scenario.duration = 1.0;
        let world = World::new(scenario, SensorConfig::default(), seed);
        let ads = Ads::new(AdsConfig::for_mode(mode, seed));
        let mut rec = FlightRecorder::new();
        let mut sim = SimLoop::new(world, ads);
        let term = sim.run_observed(&mut [&mut rec]);
        (rec, term)
    }

    #[test]
    fn records_one_tick_per_frame_with_modeled_margins() {
        let (rec, term) = record_run(AgentMode::RoundRobin, 51);
        assert_eq!(term, Termination::Completed);
        assert_eq!(rec.ring().pushed(), 40, "one record per 40 Hz frame over 1 s");
        for (i, r) in rec.ring().iter().enumerate() {
            assert_eq!(r.tick, i as u64, "ticks are consecutive from 0");
            assert!(r.phase_ns.iter().sum::<u64>() > 0, "modeled phases populated");
            assert!(!r.deadline_miss(), "round-robin holds the budget");
            assert!(r.deadline_margin_ns > 0);
            assert!(!r.fault_active() && !r.alarm(), "clean run");
        }
        assert_eq!(rec.classify(&term, false), None, "clean run is no incident");
    }

    #[test]
    fn duplicate_mode_is_a_deadline_burst_incident() {
        let (rec, term) = record_run(AgentMode::Duplicate, 51);
        assert!(rec.max_miss_streak() >= DEADLINE_BURST_TICKS, "FD misses every tick");
        assert!(rec.ring().iter().all(|r| r.deadline_miss() && r.deadline_margin_ns < 0));
        assert_eq!(rec.classify(&term, false), Some(IncidentKind::DeadlineBurst));
    }

    #[test]
    fn recordings_are_bit_identical_for_equal_seeds() {
        let (a, _) = record_run(AgentMode::RoundRobin, 77);
        let (b, _) = record_run(AgentMode::RoundRobin, 77);
        let av: Vec<String> = a.ring().iter().map(diverseav_obs::flight::render_record).collect();
        let bv: Vec<String> = b.ring().iter().map(diverseav_obs::flight::render_record).collect();
        assert_eq!(av, bv, "flight recording is a pure function of the seed");
    }

    #[test]
    fn classification_precedence_is_stable() {
        use diverseav_agent::AgentError;
        use diverseav_fabric::{Profile, Trap};
        let mut rec = FlightRecorder::new();
        rec.alarmed = true;
        rec.max_miss_streak = DEADLINE_BURST_TICKS + 1;
        rec.peak_score = 1.0;
        let hang = Termination::Trap(AgentError { fabric: Profile::Cpu, trap: Trap::Watchdog });
        let crash = Termination::Trap(AgentError {
            fabric: Profile::Gpu,
            trap: Trap::OutOfBounds { addr: 3 },
        });
        assert_eq!(rec.classify(&hang, true), Some(IncidentKind::Hang));
        assert_eq!(rec.classify(&crash, true), Some(IncidentKind::Crash));
        assert_eq!(rec.classify(&Termination::Completed, true), Some(IncidentKind::Alarm));
        rec.alarmed = false;
        assert_eq!(rec.classify(&Termination::Completed, true), Some(IncidentKind::DeadlineBurst));
        rec.max_miss_streak = 0;
        assert_eq!(
            rec.classify(&Termination::Completed, true),
            Some(IncidentKind::SilentDivergence)
        );
        assert_eq!(rec.classify(&Termination::Completed, false), None, "no fault, no verdict");
        rec.peak_score = SILENT_SCORE_FLOOR / 2.0;
        assert_eq!(rec.classify(&Termination::Completed, true), None, "benign fault");
    }

    #[test]
    fn incident_labels_round_trip() {
        for kind in IncidentKind::ALL {
            assert_eq!(IncidentKind::from_label(kind.label()), Some(kind));
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(IncidentKind::from_label("nonsense"), None);
    }
}
