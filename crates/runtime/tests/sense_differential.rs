//! Differential test for the zero-allocation sensing path: for every
//! registered scenario, `World::sense_into` must produce frames
//! bit-identical to the allocating `World::sense`, including when the
//! destination buffer is reused across ticks, scenarios, and sensor
//! configurations (the reuse pattern `SimLoop` relies on).

use diverseav_runtime::registry;
use diverseav_simworld::{Controls, SensorConfig, SensorFrame, World};

#[test]
fn sense_into_is_bit_identical_to_sense_for_all_registered_scenarios() {
    // One buffer shared across every scenario/seed/lidar combination so
    // stale state from a previous (differently shaped) frame would show.
    let mut frame = SensorFrame::empty();
    for entry in registry::entries() {
        for seed in [1u64, 77, 0xC0FFEE] {
            for enable_lidar in [false, true] {
                let cfg = SensorConfig { enable_lidar, ..Default::default() };
                let mut fresh = World::new((entry.build)(), cfg, seed);
                let mut reused = World::new((entry.build)(), cfg, seed);
                for tick in 0..8 {
                    let expected = fresh.sense();
                    reused.sense_into(&mut frame);
                    assert_eq!(
                        expected, frame,
                        "frame mismatch: scenario={} seed={seed} lidar={enable_lidar} tick={tick}",
                        entry.key
                    );
                    // Advance both worlds identically so later frames see
                    // evolved NPC/ego state, not just the spawn scene.
                    let controls = Controls::clamped(0.4, 0.0, 0.02);
                    fresh.step(controls);
                    reused.step(controls);
                }
            }
        }
    }
}

#[test]
fn sense_into_recovers_from_mismatched_buffer_shape() {
    // A buffer previously filled at one camera resolution (with lidar)
    // must be fully reshaped by a world with a different configuration.
    let lidar_cfg =
        SensorConfig { enable_lidar: true, width: 96, height: 64, ..Default::default() };
    let mut donor = World::new(registry::build("ghost-cut-in").expect("builtin"), lidar_cfg, 3);
    let mut frame = SensorFrame::empty();
    donor.sense_into(&mut frame);
    assert!(frame.lidar.is_some());

    let cfg = SensorConfig::default();
    let mut fresh = World::new(registry::build("lead-slowdown").expect("builtin"), cfg, 9);
    let mut reused = World::new(registry::build("lead-slowdown").expect("builtin"), cfg, 9);
    reused.sense_into(&mut frame);
    assert_eq!(fresh.sense(), frame, "reshaped buffer must match a fresh frame exactly");
}
