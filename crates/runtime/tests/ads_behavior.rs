//! Closed-loop behavior of the ADS plumbing — frame distribution, pair
//! production, fusion, overlap, detector alarms, fault activation —
//! driven on the canonical [`SimLoop`] (these checks used to hand-roll
//! the `sense → tick → step` loop inside `diverseav`'s unit tests).

use diverseav::{
    Ads, AdsConfig, AgentMode, DetectorConfig, DetectorModel, FusionPolicy, TickOutput,
};
use diverseav_fabric::{FaultModel, Op, Profile};
use diverseav_runtime::{LoopObserver, SimLoop, Termination, TickContext};
use diverseav_simworld::{lead_slowdown, SensorConfig, World};

fn world() -> World {
    World::new(lead_slowdown(), SensorConfig::default(), 5)
}

/// Drive `ads` for `n` ticks of `world` on the canonical loop, collecting
/// each tick's output through an observer.
fn run_ticks(ads: &mut Ads, world: World, n: usize) -> Vec<TickOutput> {
    struct Collect(Vec<TickOutput>);
    impl LoopObserver for Collect {
        fn on_tick(&mut self, ctx: &TickContext<'_>) {
            self.0.push(*ctx.out);
        }
    }
    let mut collect = Collect(Vec::with_capacity(n));
    let term = SimLoop::new(world, ads).run_for(n, &mut [&mut collect]);
    assert!(
        matches!(term, None | Some(Termination::Completed) | Some(Termination::Collision)),
        "fault-free ticks must not trap: {term:?}"
    );
    collect.0
}

#[test]
fn round_robin_produces_pairs_from_second_tick() {
    let mut ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 1));
    let outs = run_ticks(&mut ads, world(), 4);
    assert!(outs[0].pair.is_none(), "no reference before the peer ran");
    assert!(outs[1].pair.is_some());
    assert!(outs[2].divergence.is_some());
}

#[test]
fn duplicate_mode_pairs_every_tick() {
    let mut ads = Ads::new(AdsConfig::for_mode(AgentMode::Duplicate, 2));
    let outs = run_ticks(&mut ads, world(), 3);
    assert!(outs.iter().all(|o| o.pair.is_some()));
    // Compute jitter keeps the two agents from being bit-identical
    // forever; divergence is nonetheless small in fault-free runs.
    let max_div = outs
        .iter()
        .filter_map(|o| o.divergence)
        .map(|d| d.throttle.max(d.brake).max(d.steer))
        .fold(0.0f64, f64::max);
    assert!(max_div < 0.5, "fault-free FD divergence is bounded: {max_div}");
}

#[test]
fn single_mode_compares_with_previous_output() {
    let mut ads = Ads::new(AdsConfig::for_mode(AgentMode::Single, 3));
    let outs = run_ticks(&mut ads, world(), 3);
    assert!(outs[0].pair.is_none());
    assert!(outs[1].pair.is_some());
}

#[test]
fn round_robin_agents_each_process_half_the_frames() {
    let mut ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 6));
    run_ticks(&mut ads, world(), 10);
    assert_eq!(ads.agent_steps(), vec![5, 5]);
}

#[test]
fn fault_injection_reaches_the_shared_fabric() {
    let mut ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 7));
    ads.inject_fault(0, Profile::Gpu, FaultModel::Permanent { op: Op::FAdd, mask: 1 });
    assert!(!ads.fault_activated());
    run_ticks(&mut ads, world(), 2);
    assert!(ads.fault_activated(), "FAdd executes every inference");
}

#[test]
fn detector_alarm_passthrough() {
    let mut ads = Ads::new(AdsConfig::for_mode(AgentMode::RoundRobin, 8));
    // An untrained (empty) model has floor thresholds → tiny natural
    // divergence may alarm; attach and ensure the plumbing works.
    ads.attach_detector(
        DetectorModel::train(&[], &DetectorConfig::default()),
        DetectorConfig::default(),
    );
    let outs = run_ticks(&mut ads, world(), 30);
    let alarmed = outs.iter().any(|o| o.alarm_raised);
    assert_eq!(alarmed, ads.alarm_time().is_some());
}

#[test]
fn overlap_frames_run_both_agents() {
    let mut cfg = AdsConfig::for_mode(AgentMode::RoundRobin, 10);
    cfg.overlap_period = Some(4);
    let mut ads = Ads::new(cfg);
    run_ticks(&mut ads, world(), 8);
    // Steps 0 and 4 are overlap frames (both agents), so each agent
    // processes its half plus the overlap extras.
    let total: u64 = ads.agent_steps().iter().sum();
    assert_eq!(total, 8 + 2, "two overlap frames add two extra inferences");
    // Overlap frames produce same-frame pairs immediately.
    let mut cfg2 = AdsConfig::for_mode(AgentMode::RoundRobin, 10);
    cfg2.overlap_period = Some(1);
    let mut ads2 = Ads::new(cfg2);
    let outs = run_ticks(&mut ads2, world(), 2);
    assert!(outs[0].pair.is_some(), "overlap gives a reference on the first tick");
}

#[test]
fn average_fusion_blends_agent_outputs() {
    let mut cfg = AdsConfig::for_mode(AgentMode::RoundRobin, 11);
    cfg.fusion = FusionPolicy::Average;
    let mut ads = Ads::new(cfg);
    let outs = run_ticks(&mut ads, world(), 4);
    // Once a peer reference exists, the driven controls are the mean
    // of the fresh output and the peer's last output.
    let out = outs[2];
    let (fresh, peer) = out.pair.expect("reference exists by tick 3");
    let expected = FusionPolicy::Average.fuse(fresh, Some(peer));
    assert_eq!(out.controls, expected);
}

#[test]
fn dyn_instr_counts_accumulate() {
    let mut ads = Ads::new(AdsConfig::for_mode(AgentMode::Single, 9));
    run_ticks(&mut ads, world(), 2);
    assert!(ads.dyn_instr(Profile::Gpu) > 10_000);
    assert!(ads.dyn_instr(Profile::Cpu) > 100);
}
