//! Property-based tests of the world substrate: geometry, track
//! parameterization, vehicle physics, and traffic behaviors.

use diverseav_simworld::{
    generate_long_route, idm_accel, Controls, IdmParams, Obb, Pose, Track, Vec2, Vehicle,
};
use proptest::prelude::*;

proptest! {
    /// Projecting a pose generated from (s, lateral) recovers both within
    /// polyline tolerance, for arbitrary routes and offsets.
    #[test]
    fn track_projection_roundtrips(
        seed in 0u64..50,
        frac in 0.05f64..0.95,
        lateral in -3.0f64..3.0,
    ) {
        let track = generate_long_route(seed, 600.0);
        let s = track.length() * frac;
        let pose = track.pose_at(s, lateral);
        let (s2, lat2) = track.project(pose.pos);
        prop_assert!((s2 - s).abs() < 2.0, "s {s:.1} → {s2:.1}");
        prop_assert!((lat2 - lateral).abs() < 0.5, "lat {lateral:.2} → {lat2:.2}");
    }

    /// Arclength parameterization is monotone: pos_at of increasing s
    /// advances along the track (successive points are close together).
    #[test]
    fn track_positions_are_continuous(seed in 0u64..50, frac in 0.0f64..0.9) {
        let track = generate_long_route(seed, 500.0);
        let s = track.length() * frac;
        let a = track.pos_at(s);
        let b = track.pos_at(s + 1.0);
        let step = a.dist(b);
        prop_assert!(step <= 1.2, "1 m of arclength moves at most ~1 m: {step:.3}");
        prop_assert!(step >= 0.5, "and at least half (no degenerate segments): {step:.3}");
    }

    /// OBB intersection is symmetric and reflexive.
    #[test]
    fn obb_intersection_properties(
        x in -20.0f64..20.0,
        y in -20.0f64..20.0,
        h1 in 0.0f64..6.3,
        h2 in 0.0f64..6.3,
    ) {
        let a = Obb::new(Pose::new(Vec2::ZERO, h1), 4.6, 1.9);
        let b = Obb::new(Pose::new(Vec2::new(x, y), h2), 4.4, 1.8);
        prop_assert!(a.intersects(&a), "reflexive");
        prop_assert_eq!(a.intersects(&b), b.intersects(&a), "symmetric");
        // Far-apart boxes never intersect; near-coincident ones always do.
        if (x * x + y * y).sqrt() > 10.0 {
            prop_assert!(!a.intersects(&b));
        }
        if (x * x + y * y).sqrt() < 0.5 {
            prop_assert!(a.intersects(&b));
        }
    }

    /// The bicycle model never produces NaN state, never reverses, and
    /// caps speed, for arbitrary (clamped) control inputs.
    #[test]
    fn vehicle_state_stays_physical(
        throttle in -2.0f64..2.0,
        brake in -2.0f64..2.0,
        steer in -2.0f64..2.0,
        v0 in 0.0f64..30.0,
    ) {
        let mut v = Vehicle::new(Pose::new(Vec2::ZERO, 0.0), v0);
        for _ in 0..200 {
            v.step(Controls::clamped(throttle, brake, steer), 0.025);
            prop_assert!(v.state.speed.is_finite());
            prop_assert!(v.state.pose.pos.x.is_finite() && v.state.pose.pos.y.is_finite());
            prop_assert!(v.state.speed >= 0.0, "no reversing");
            prop_assert!(v.state.speed < 60.0, "drag caps speed");
        }
    }

    /// IDM never accelerates into a standing obstacle at close range, and
    /// always accelerates on a free road below desired speed.
    #[test]
    fn idm_is_sane(v in 0.0f64..15.0, gap in 0.5f64..100.0) {
        let p = IdmParams::default();
        let closing = idm_accel(v, gap, 0.0, &p);
        if gap < 3.0 && v > 1.0 {
            prop_assert!(closing < 0.0, "must brake near a standing obstacle");
        }
        let free = idm_accel(v.min(p.desired_speed * 0.8), f64::INFINITY, 0.0, &p);
        prop_assert!(free > 0.0, "free road below desired speed accelerates");
    }

    /// Track generation is total: any seed/length yields a well-formed
    /// track with finite curvature everywhere.
    #[test]
    fn generated_routes_are_well_formed(seed in 0u64..200, len in 200.0f64..1500.0) {
        let track = generate_long_route(seed, len);
        prop_assert!(track.length() >= len * 0.8);
        let mut s = 0.0;
        while s < track.length() {
            let k = track.curvature_at(s);
            prop_assert!(k.is_finite());
            prop_assert!(k.abs() < 0.2, "curvature bounded by min turn radius: {k}");
            s += 25.0;
        }
    }
}

#[test]
fn straight_track_has_zero_curvature_everywhere() {
    let t = Track::straight(300.0);
    for i in 0..30 {
        assert!(t.curvature_at(i as f64 * 10.0).abs() < 1e-9);
    }
}
