//! Non-player-character (NPC) vehicles: scripted scenario actors and
//! IDM-based background traffic.
//!
//! NPCs move in *track coordinates* `(s, lateral, speed)` — they are
//! scenario scripting devices, not dynamically simulated vehicles, matching
//! how CARLA scenario runners drive scenario actors.

use crate::geometry::{Obb, Pose};
use crate::track::{Track, TrafficLight};

/// Parameters of the Intelligent Driver Model used by background traffic.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct IdmParams {
    /// Desired cruise speed (m/s).
    pub desired_speed: f64,
    /// Desired time headway (s).
    pub headway: f64,
    /// Maximum acceleration (m/s²).
    pub max_accel: f64,
    /// Comfortable deceleration (m/s²).
    pub comfort_brake: f64,
    /// Minimum standstill gap (m).
    pub min_gap: f64,
}

impl Default for IdmParams {
    fn default() -> Self {
        IdmParams {
            desired_speed: 8.0,
            headway: 1.5,
            max_accel: 2.0,
            comfort_brake: 2.5,
            min_gap: 2.0,
        }
    }
}

/// Scripted behavior of an NPC.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum NpcBehavior {
    /// Cruise, then at `brake_at` seconds decelerate at `decel` (m/s²)
    /// until stopped — the *Lead Slowdown* actor.
    LeadSlowdown {
        /// Scenario time at which emergency braking starts (s).
        brake_at: f64,
        /// Braking deceleration (m/s²).
        decel: f64,
    },
    /// Cruise in the adjacent lane, then at `cut_at` shift laterally to
    /// `target_lateral` over `duration` seconds and settle at `post_speed`
    /// — the *Ghost Cut-in* actor.
    CutIn {
        /// Scenario time at which the cut-in maneuver starts (s).
        cut_at: f64,
        /// Duration of the lateral shift (s).
        duration: f64,
        /// Final lateral offset (m, 0 = ego-lane center).
        target_lateral: f64,
        /// Speed after the maneuver (m/s).
        post_speed: f64,
    },
    /// Adjacent-lane merger that collides with the lead NPC at `crash_at`
    /// and stops abruptly — the striking actor of *Front Accident*.
    MergeCollider {
        /// Scenario time of the collision (s).
        crash_at: f64,
    },
    /// Lead vehicle struck at `crash_at`; stops abruptly with a small
    /// lateral shove — the struck actor of *Front Accident*.
    MergeVictim {
        /// Scenario time of the collision (s).
        crash_at: f64,
    },
    /// IDM car-following along its lane, obeying traffic lights.
    Idm(IdmParams),
    /// Constant-speed cruise at the spawn lateral offset.
    Cruise,
    /// Stop-and-go traffic: periodically brakes hard to a stop, waits,
    /// then accelerates back to cruise — the dense-traffic braking events
    /// of the long training routes (§IV-C2).
    StopAndGo {
        /// Full cycle period (s).
        period: f64,
        /// Portion of the cycle spent braking/stopped (s).
        stop_time: f64,
        /// Braking deceleration (m/s²).
        decel: f64,
        /// Cruise speed to recover to (m/s).
        cruise: f64,
    },
}

/// View of the nearest obstacle ahead of an NPC in its lane, used by IDM.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct GapAhead {
    /// Bumper-to-bumper gap (m).
    pub gap: f64,
    /// Speed of the leading obstacle (m/s; 0 for a red light).
    pub lead_speed: f64,
}

/// An NPC vehicle in track coordinates.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Npc {
    /// Arclength along the track (m).
    pub s: f64,
    /// Signed lateral offset (m, positive = left).
    pub lateral: f64,
    /// Speed along the track (m/s).
    pub speed: f64,
    /// Body length (m).
    pub length: f64,
    /// Body width (m).
    pub width: f64,
    /// Scripted behavior.
    pub behavior: NpcBehavior,
    /// Shade index used by the camera rasterizer (vehicle paint variety).
    pub shade: u8,
}

impl Npc {
    /// Spawn an NPC at `(s, lateral)` moving at `speed`.
    pub fn new(s: f64, lateral: f64, speed: f64, behavior: NpcBehavior) -> Self {
        Npc { s, lateral, speed, length: 4.4, width: 1.8, behavior, shade: 0 }
    }

    /// Spawn with a specific paint shade (affects rendering only).
    pub fn with_shade(mut self, shade: u8) -> Self {
        self.shade = shade;
        self
    }

    /// World pose on `track`.
    pub fn pose(&self, track: &Track) -> Pose {
        track.pose_at(self.s, self.lateral)
    }

    /// Collision footprint on `track`.
    pub fn footprint(&self, track: &Track) -> Obb {
        Obb::new(self.pose(track), self.length, self.width)
    }

    /// Advance the NPC by `dt` at scenario time `t`.
    ///
    /// `gap` supplies the nearest-obstacle view for IDM NPCs; scripted
    /// behaviors ignore it.
    pub fn step(&mut self, t: f64, dt: f64, gap: Option<GapAhead>) {
        match self.behavior {
            NpcBehavior::LeadSlowdown { brake_at, decel } => {
                if t >= brake_at {
                    self.speed = (self.speed - decel * dt).max(0.0);
                }
            }
            NpcBehavior::CutIn { cut_at, duration, target_lateral, post_speed } => {
                if t >= cut_at {
                    let frac = ((t - cut_at) / duration).min(1.0);
                    // Smoothstep lateral shift.
                    let sm = frac * frac * (3.0 - 2.0 * frac);
                    let start = crate::track::LANE_WIDTH;
                    self.lateral = start + (target_lateral - start) * sm;
                    if frac >= 1.0 {
                        // Settle toward the post-maneuver speed.
                        let dv = (post_speed - self.speed).clamp(-3.0 * dt, 2.0 * dt);
                        self.speed = (self.speed + dv).max(0.0);
                    }
                }
            }
            NpcBehavior::MergeCollider { crash_at } => {
                // Begin merging 2 s before impact; stop hard at impact.
                if t >= crash_at - 2.0 && t < crash_at {
                    let frac = ((t - (crash_at - 2.0)) / 2.0).min(1.0);
                    let sm = frac * frac * (3.0 - 2.0 * frac);
                    self.lateral = crate::track::LANE_WIDTH * (1.0 - 0.75 * sm);
                } else if t >= crash_at {
                    self.speed = (self.speed - 12.0 * dt).max(0.0);
                }
            }
            NpcBehavior::MergeVictim { crash_at } => {
                if t >= crash_at {
                    self.speed = (self.speed - 12.0 * dt).max(0.0);
                    // Shoved slightly left by the impact.
                    self.lateral = (self.lateral + 0.3 * dt).min(0.5);
                }
            }
            NpcBehavior::Idm(p) => {
                let accel = match gap {
                    Some(g) => idm_accel(self.speed, g.gap, g.lead_speed, &p),
                    None => idm_accel(self.speed, f64::INFINITY, 0.0, &p),
                };
                self.speed = (self.speed + accel * dt).max(0.0);
            }
            NpcBehavior::Cruise => {}
            NpcBehavior::StopAndGo { period, stop_time, decel, cruise } => {
                let phase = t.rem_euclid(period);
                if phase < stop_time {
                    self.speed = (self.speed - decel * dt).max(0.0);
                } else {
                    self.speed = (self.speed + 2.0 * dt).min(cruise);
                }
            }
        }
        self.s += self.speed * dt;
    }
}

/// IDM acceleration law.
///
/// `gap` is the bumper-to-bumper distance to the leader (may be infinite),
/// `lead_speed` the leader's speed.
pub fn idm_accel(v: f64, gap: f64, lead_speed: f64, p: &IdmParams) -> f64 {
    let free = 1.0 - (v / p.desired_speed).powi(4);
    if !gap.is_finite() {
        return p.max_accel * free;
    }
    let dv = v - lead_speed;
    let s_star = p.min_gap
        + (v * p.headway + v * dv / (2.0 * (p.max_accel * p.comfort_brake).sqrt())).max(0.0);
    let interaction = (s_star / gap.max(0.1)).powi(2);
    p.max_accel * (free - interaction)
}

/// Distance from a vehicle at arclength `s` to the next traffic light that
/// currently demands a stop, if within `horizon` meters.
pub fn next_stopping_light(s: f64, t: f64, lights: &[TrafficLight], horizon: f64) -> Option<f64> {
    lights
        .iter()
        .filter(|l| l.s > s && l.s - s < horizon && l.demands_stop(t))
        .map(|l| l.s - s)
        .min_by(|a, b| a.partial_cmp(b).expect("finite distances"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::LANE_WIDTH;

    #[test]
    fn lead_slowdown_brakes_to_stop() {
        let mut npc =
            Npc::new(25.0, 0.0, 8.0, NpcBehavior::LeadSlowdown { brake_at: 1.0, decel: 6.0 });
        let dt = 0.025;
        let mut t = 0.0;
        while t < 0.9 {
            npc.step(t, dt, None);
            t += dt;
        }
        assert!((npc.speed - 8.0).abs() < 1e-9, "cruises before brake_at");
        while t < 5.0 {
            npc.step(t, dt, None);
            t += dt;
        }
        assert_eq!(npc.speed, 0.0, "stopped after braking");
        assert!(npc.s > 25.0);
    }

    #[test]
    fn cut_in_shifts_into_ego_lane() {
        let mut npc = Npc::new(
            0.0,
            LANE_WIDTH,
            10.0,
            NpcBehavior::CutIn { cut_at: 1.0, duration: 1.5, target_lateral: 0.0, post_speed: 6.0 },
        );
        let dt = 0.025;
        let mut t = 0.0;
        while t < 0.99 {
            npc.step(t, dt, None);
            t += dt;
        }
        assert!((npc.lateral - LANE_WIDTH).abs() < 1e-9);
        while t < 4.0 {
            npc.step(t, dt, None);
            t += dt;
        }
        assert!(npc.lateral.abs() < 0.01, "fully merged, lateral = {}", npc.lateral);
        assert!(npc.speed < 10.0, "slows after merging");
    }

    #[test]
    fn merge_pair_stops_at_crash() {
        let dt = 0.025;
        let mut collider =
            Npc::new(5.0, LANE_WIDTH, 9.0, NpcBehavior::MergeCollider { crash_at: 3.0 });
        let mut victim = Npc::new(10.0, 0.0, 8.0, NpcBehavior::MergeVictim { crash_at: 3.0 });
        let mut t = 0.0;
        while t < 6.0 {
            collider.step(t, dt, None);
            victim.step(t, dt, None);
            t += dt;
        }
        assert_eq!(collider.speed, 0.0);
        assert_eq!(victim.speed, 0.0);
        assert!(collider.lateral < LANE_WIDTH * 0.5, "collider merged toward victim lane");
    }

    #[test]
    fn idm_free_road_reaches_desired_speed() {
        let p = IdmParams::default();
        let mut npc = Npc::new(0.0, 0.0, 0.0, NpcBehavior::Idm(p));
        let dt = 0.025;
        for i in 0..4000 {
            npc.step(i as f64 * dt, dt, None);
        }
        assert!((npc.speed - p.desired_speed).abs() < 0.3, "speed {}", npc.speed);
    }

    #[test]
    fn idm_maintains_gap_behind_stopped_leader() {
        let p = IdmParams::default();
        let mut v = 8.0;
        let mut gap = 60.0;
        let dt = 0.025;
        for _ in 0..4000 {
            let a = idm_accel(v, gap, 0.0, &p);
            v = (v + a * dt).max(0.0);
            gap -= v * dt;
        }
        assert!(v < 0.2, "approaches a stop, v = {v}");
        assert!(gap > 0.5, "does not rear-end the leader, gap = {gap}");
    }

    #[test]
    fn idm_accel_decreases_with_closing_speed() {
        let p = IdmParams::default();
        let slow_closing = idm_accel(8.0, 20.0, 8.0, &p);
        let fast_closing = idm_accel(8.0, 20.0, 0.0, &p);
        assert!(fast_closing < slow_closing);
    }

    #[test]
    fn next_stopping_light_picks_nearest_red() {
        let lights = vec![
            TrafficLight { s: 50.0, green: 1.0, yellow: 1.0, red: 100.0, offset: 2.0 },
            TrafficLight { s: 80.0, green: 1.0, yellow: 1.0, red: 100.0, offset: 2.0 },
        ];
        let d = next_stopping_light(10.0, 0.0, &lights, 200.0);
        assert_eq!(d, Some(40.0));
        // Behind the vehicle or out of horizon → none.
        assert_eq!(next_stopping_light(90.0, 0.0, &lights, 200.0), None);
        assert_eq!(next_stopping_light(10.0, 0.0, &lights, 20.0), None);
    }

    #[test]
    fn stop_and_go_cycles_speed() {
        let mut npc = Npc::new(
            0.0,
            0.0,
            7.0,
            NpcBehavior::StopAndGo { period: 10.0, stop_time: 4.0, decel: 6.0, cruise: 7.0 },
        );
        let dt = 0.025;
        let mut t = 0.0;
        while t < 3.0 {
            npc.step(t, dt, None);
            t += dt;
        }
        assert_eq!(npc.speed, 0.0, "stopped during the stop phase");
        while t < 9.5 {
            npc.step(t, dt, None);
            t += dt;
        }
        assert!(npc.speed > 5.0, "recovered to cruise, v = {}", npc.speed);
    }

    #[test]
    fn cruise_moves_forward_at_constant_speed() {
        let mut npc = Npc::new(0.0, 1.0, 5.0, NpcBehavior::Cruise);
        for i in 0..40 {
            npc.step(i as f64 * 0.025, 0.025, None);
        }
        assert!((npc.s - 5.0).abs() < 1e-9);
        assert_eq!(npc.speed, 5.0);
        assert_eq!(npc.lateral, 1.0);
    }
}
